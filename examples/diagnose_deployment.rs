//! Deployment diagnosis: build a query with the fluent builder, run the
//! static diagnostics lints over the candidate deployments, simulate a
//! deliberately under-provisioned deployment, print the per-operator
//! cost breakdown, and use occlusion attribution to see which feature
//! group drives the model's what-if prediction.
//!
//! Run with: `cargo run --release --example diagnose_deployment`

use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::dataset::{generate_dataset, GenConfig};
use zerotune::core::diagnostics::{lint_pqp, Report};
use zerotune::core::explain::{attribute, Attribution};
use zerotune::core::features::FeatureMask;
use zerotune::core::graph::encode;
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::train::{train, TrainConfig};
use zerotune::dspsim::analytical::{simulate, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::dspsim::explain::diagnose;
use zerotune::dspsim::ChainingMode;
use zerotune::query::builder::StreamBuilder;
use zerotune::query::{
    AggFunction, DataType, FilterFunction, ParallelQueryPlan, WindowPolicy, WindowSpec,
};

fn main() {
    // A fraud-detection-style pipeline built with the fluent API.
    let transactions = StreamBuilder::source(800_000.0, DataType::Double, 5).filter(
        FilterFunction::Ge,
        DataType::Double,
        0.3,
    );
    let plan = StreamBuilder::source(600_000.0, DataType::Double, 4)
        .join(
            transactions,
            WindowSpec::sliding(WindowPolicy::Time, 1_000.0, 500.0),
            DataType::Int,
            0.001,
        )
        .window_aggregate(
            WindowSpec::tumbling(WindowPolicy::Time, 2_000.0),
            AggFunction::Sum,
            DataType::Double,
            Some(DataType::Int),
            0.1,
        )
        .sink("fraud-detection");

    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let sim = SimConfig::noiseless();
    let mut rng = StdRng::seed_from_u64(1);

    // Under-provisioned deployment: everything at parallelism 1.
    let bad = ParallelQueryPlan::new(plan.clone());

    // Static lints run before any simulation: here the P=1 deployment
    // draws a ZT106 wasted-shuffle warning for the hash-partitioned
    // keyed aggregation.
    println!("--- static diagnostics (zt-lint passes, no execution) ---");
    let report = Report::new(lint_pqp(&bad, Some(&cluster)));
    print!("{report}");
    println!("\n");

    let m_bad = simulate(&bad, &cluster, &sim, &mut rng);
    println!("--- under-provisioned deployment (P = 1 everywhere) ---");
    print!("{}", diagnose(&bad, &m_bad));

    // A sane deployment.
    let good = ParallelQueryPlan::with_parallelism(plan.clone(), vec![8, 8, 4, 12, 6, 2]);
    let m_good = simulate(&good, &cluster, &sim, &mut rng);
    println!("\n--- provisioned deployment ---");
    print!("{}", diagnose(&good, &m_good));

    // What does the trained model base its prediction on?
    println!("\ntraining a small model for attribution…");
    let data = generate_dataset(&GenConfig::seen(), 800, 3);
    let mut model = ZeroTuneModel::new(ModelConfig::default());
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 15,
            ..TrainConfig::default()
        },
    );
    let graph = encode(&good, &cluster, ChainingMode::Auto, &FeatureMask::all());
    let a = attribute(&model, &graph);
    println!(
        "prediction: latency {:.1} ms, throughput {:.0} ev/s",
        a.prediction.0, a.prediction.1
    );
    for (i, (l, t)) in a
        .latency_impact
        .iter()
        .zip(a.throughput_impact.iter())
        .enumerate()
    {
        println!(
            "occluding {:<12} features shifts latency by e^{l:.2}, throughput by e^{t:.2}",
            Attribution::group_name(i)
        );
    }
    println!(
        "dominant latency driver: {} features",
        Attribution::group_name(a.dominant_latency_group())
    );
}
