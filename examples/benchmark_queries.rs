//! The public benchmark queries (spike detection, smart-grid local and
//! global) executed on both simulator paths: the analytical solver used
//! for training labels and the discrete-event engine that actually runs
//! tuples through operators.
//!
//! Run with: `cargo run --release --example benchmark_queries`

use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::dspsim::analytical::{simulate, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::dspsim::engine::{run, EngineConfig};
use zerotune::query::benchmarks::{smart_grid_global, smart_grid_local, spike_detection};
use zerotune::query::{LogicalPlan, ParallelQueryPlan};

fn show(name: &str, plan: LogicalPlan, parallelism: Vec<u32>, cluster: &Cluster) {
    let pqp = ParallelQueryPlan::with_parallelism(plan, parallelism);
    println!("\n=== {name} ===");
    println!("{pqp}");

    // Analytical steady-state solution.
    let mut rng = StdRng::seed_from_u64(1);
    let analytical = simulate(&pqp, cluster, &SimConfig::noiseless(), &mut rng);
    println!(
        "analytical : latency {:>8.2} ms | throughput {:>9.0} ev/s | bottleneck util {:.2}",
        analytical.latency_ms, analytical.throughput, analytical.bottleneck_utilization
    );

    // Discrete-event execution (tuples actually flow). The horizon must
    // comfortably exceed the largest window slide (smart-grid: 3 s) so
    // windows fire and results reach the sink.
    let mut rng = StdRng::seed_from_u64(2);
    let engine = run(
        &pqp,
        cluster,
        &EngineConfig {
            horizon_secs: 15.0,
            ..EngineConfig::default()
        },
        &mut rng,
    );
    println!(
        "event-level: latency {:>8.2} ms (p95 {:.2}) | source rate {:>9.0} ev/s | {} sink samples",
        engine.latency_p50_ms, engine.latency_p95_ms, engine.source_throughput, engine.samples
    );
}

fn main() {
    let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
    println!(
        "cluster: {} × m510 ({} cores)",
        cluster.num_workers(),
        cluster.total_cores()
    );

    show(
        "spike detection (Intel lab)",
        spike_detection(10_000.0),
        vec![2, 4, 2, 1],
        &cluster,
    );
    show(
        "smart-grid local load (DEBS'14)",
        smart_grid_local(20_000.0),
        vec![4, 4, 2, 1],
        &cluster,
    );
    show(
        "smart-grid global load (DEBS'14)",
        smart_grid_global(20_000.0),
        vec![4, 1, 1],
        &cluster,
    );
}
