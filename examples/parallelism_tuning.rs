//! Parallelism tuning on the smart-grid benchmark: ZeroTune's what-if
//! optimizer vs the greedy heuristic [20] and a Dhalion-style controller
//! [19] (the comparison behind Fig. 10 of the paper).
//!
//! Run with: `cargo run --release --example parallelism_tuning`

use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::baselines::{dhalion_tune, greedy_tune, DhalionConfig, GreedyConfig};
use zerotune::core::dataset::{generate_dataset, GenConfig};
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::optimizer::{tune, OptimizerConfig};
use zerotune::core::train::{train, TrainConfig};
use zerotune::dspsim::analytical::{simulate, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::query::benchmarks::smart_grid_local;
use zerotune::query::ParallelQueryPlan;

fn main() {
    // Train a cost model on the synthetic seen workload (smart-grid is
    // never part of training — this is zero-shot tuning).
    println!("training ZeroTune…");
    let data = generate_dataset(&GenConfig::seen(), 2_000, 11);
    let mut model = ZeroTuneModel::new(ModelConfig::default());
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
    );

    // The benchmark query and target cluster.
    let plan = smart_grid_local(200_000.0);
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    println!("query:\n{plan}");
    println!(
        "cluster: {} × {} ({} cores total)\n",
        cluster.num_workers(),
        cluster.nodes[0].name,
        cluster.total_cores()
    );

    let sim = SimConfig::noiseless();
    let mut rng = StdRng::seed_from_u64(1);

    // --- the three tuners --------------------------------------------
    let zt = tune(&model, &plan, &cluster, &OptimizerConfig::default()).expect("valid plan");
    let greedy = greedy_tune(&plan, &cluster, &GreedyConfig::default());
    let dhalion = dhalion_tune(&plan, &cluster, &DhalionConfig::default(), &sim, &mut rng);

    let measure = |name: &str, parallelism: &Vec<u32>, reconfigs: Option<usize>| {
        let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), parallelism.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let m = simulate(&pqp, &cluster, &sim, &mut rng);
        println!(
            "{name:<10} parallelism {:?} -> latency {:>9.2} ms, throughput {:>9.0} ev/s{}",
            parallelism,
            m.latency_ms,
            m.throughput,
            reconfigs
                .map(|r| format!(", {r} costly reconfigurations"))
                .unwrap_or_default()
        );
        m
    };

    println!("deploying each tuner's configuration on the simulator:");
    let m_zt = measure("ZeroTune", &zt.parallelism, None);
    let m_gr = measure("greedy", &greedy, None);
    let m_dh = measure(
        "Dhalion",
        &dhalion.parallelism,
        Some(dhalion.reconfigurations),
    );

    println!(
        "\nspeed-up vs greedy : latency {:.2}x, throughput {:.2}x",
        m_gr.latency_ms / m_zt.latency_ms,
        m_zt.throughput / m_gr.throughput
    );
    println!(
        "speed-up vs Dhalion: latency {:.2}x, throughput {:.2}x — and ZeroTune needed zero reconfigurations",
        m_dh.latency_ms / m_zt.latency_ms,
        m_zt.throughput / m_dh.throughput
    );
}
