//! Quickstart: train a small zero-shot cost model, predict the cost of an
//! unseen query, and tune its parallelism.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::dataset::{generate_dataset, GenConfig};
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::optimizer::{tune, OptimizerConfig};
use zerotune::core::train::{evaluate, train, TrainConfig};
use zerotune::dspsim::analytical::{simulate, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::query::{ParallelQueryPlan, QueryGenerator, QueryStructure};

fn main() {
    // 1. Collect a training workload: synthetic queries over the paper's
    //    seen parameter ranges, labeled by the DSP simulator, with
    //    parallelism degrees enumerated by OptiSample.
    println!("generating training workload…");
    let data = generate_dataset(&GenConfig::seen(), 1_500, 42);
    let (train_set, test_set, _val) = data.split(0.8, 0.1, 0);

    // 2. Train the zero-shot GNN cost model.
    println!("training ZeroTune on {} queries…", train_set.len());
    let mut model = ZeroTuneModel::new(ModelConfig::default());
    let report = train(
        &mut model,
        &train_set,
        &TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
    );
    println!(
        "trained for {} epochs in {:.1}s (val loss {:.4})",
        report.epochs_run, report.wall_secs, report.best_val_loss
    );

    // 3. Check accuracy on held-out queries.
    let (lat_q, tpt_q) = evaluate(&model, &test_set.samples);
    println!("held-out q-errors: latency {lat_q}, throughput {tpt_q}");

    // 4. Zero-shot cost prediction for a *never-seen* query structure.
    // (Chained filters never occur in training; deeper join cascades are
    // also available — see EXPERIMENTS.md for how accuracy degrades with
    // structural distance from the training set.)
    let mut rng = StdRng::seed_from_u64(7);
    let plan = QueryGenerator::unseen().generate(QueryStructure::ChainedFilters(3), &mut rng);
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    println!("\nunseen query:\n{plan}");

    // 5. Let the optimizer pick parallelism degrees from what-if costs.
    let outcome = tune(&model, &plan, &cluster, &OptimizerConfig::default()).expect("valid plan");
    println!(
        "optimizer chose parallelism {:?} ({} candidates)",
        outcome.parallelism, outcome.candidates_evaluated
    );
    println!(
        "predicted: latency {:.1} ms, throughput {:.0} ev/s",
        outcome.predicted_latency_ms, outcome.predicted_throughput
    );

    // 6. Deploy the chosen configuration on the simulator and compare.
    let pqp = ParallelQueryPlan::with_parallelism(plan, outcome.parallelism);
    let measured = simulate(&pqp, &cluster, &SimConfig::noiseless(), &mut rng);
    println!(
        "measured : latency {:.1} ms, throughput {:.0} ev/s (bottleneck util {:.2})",
        measured.latency_ms, measured.throughput, measured.bottleneck_utilization
    );
}
