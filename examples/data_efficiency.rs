//! Data efficiency: compare models trained on OptiSample-enumerated vs
//! randomly-enumerated workloads at increasing training-set sizes (the
//! experiment behind Fig. 9 of the paper).
//!
//! Run with: `cargo run --release --example data_efficiency`

use zerotune::core::datagen::{generate_dataset_report, GenPlan};
use zerotune::core::dataset::{generate_dataset, GenConfig};
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::optisample::EnumerationStrategy;
use zerotune::core::train::{evaluate, train, TrainConfig};

fn main() {
    // one fixed evaluation set for all sweep points
    let eval = generate_dataset(&GenConfig::seen(), 200, 77);

    // training sweeps go through the sharded pipeline (ZT_DATAGEN_WORKERS /
    // ZT_DATAGEN_SHARD_SIZE / ZT_DATAGEN_RESUME override the defaults);
    // output is bitwise identical at any worker count.
    let plan = GenPlan::from_env();
    println!(
        "datagen: {} worker(s), shard size {}\n",
        plan.workers, plan.shard_size
    );

    println!(
        "{:>12} | {:>10} | {:>14} | {:>14} | {:>9}",
        "strategy", "#queries", "lat median q", "tpt median q", "time (s)"
    );
    for strategy in [
        EnumerationStrategy::opti_sample(),
        EnumerationStrategy::random(),
    ] {
        for n in [200usize, 400, 800, 1600] {
            let start = std::time::Instant::now();
            let (data, report) =
                generate_dataset_report(&GenConfig::seen().with_strategy(strategy), n, 7, &plan);
            debug_assert_eq!(report.shards, n.div_ceil(plan.shard_size.max(1)));
            let mut model = ZeroTuneModel::new(ModelConfig {
                hidden: 32,
                seed: 1,
            });
            train(
                &mut model,
                &data,
                &TrainConfig {
                    epochs: 20,
                    ..TrainConfig::default()
                },
            );
            let secs = start.elapsed().as_secs_f64();
            let (lat, tpt) = evaluate(&model, &eval.samples);
            println!(
                "{:>12} | {:>10} | {:>14.2} | {:>14.2} | {:>9.1}",
                strategy.name(),
                n,
                lat.median,
                tpt.median,
                secs
            );
        }
    }
    println!(
        "\nOptiSample provisions parallelism proportionally to estimated input\n\
         rates (Algorithm 1), so its training plans are realistic and the model\n\
         converges with less data and time than with random enumeration."
    );
}
