//! What-if analysis: sweep the parallelism degree of a linear query and
//! compare the trained model's *predicted* cost curve against the
//! simulator's *measured* curve — the core capability behind the paper's
//! optimizer (Fig. 2, inference phase).
//!
//! Run with: `cargo run --release --example whatif_analysis`

use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::dataset::{generate_dataset, GenConfig};
use zerotune::core::features::FeatureMask;
use zerotune::core::graph::encode;
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::train::{train, TrainConfig};
use zerotune::core::CostEstimator;
use zerotune::dspsim::analytical::{simulate, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::dspsim::ChainingMode;
use zerotune::experiments::fig3::microbench_query;
use zerotune::query::ParallelQueryPlan;

fn main() {
    println!("training ZeroTune…");
    let data = generate_dataset(&GenConfig::seen(), 2_000, 5);
    let mut model = ZeroTuneModel::new(ModelConfig::default());
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
    );

    let plan = microbench_query(500_000.0);
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let sim = SimConfig::noiseless();

    println!("\nwhat-if cost curve for the linear query (offered 500k ev/s):");
    println!(
        "{:>4} | {:>14} | {:>14} | {:>16} | {:>16}",
        "P", "pred lat (ms)", "true lat (ms)", "pred tpt (ev/s)", "true tpt (ev/s)"
    );
    for p in [1u32, 2, 4, 8, 16, 32] {
        let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), vec![p; 4]);
        let graph = encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all());
        let (pred_lat, pred_tpt) = model.predict(&graph).pair();
        let mut rng = StdRng::seed_from_u64(1);
        let m = simulate(&pqp, &cluster, &sim, &mut rng);
        println!(
            "{:>4} | {:>14.1} | {:>14.1} | {:>16.0} | {:>16.0}",
            p, pred_lat, m.latency_ms, pred_tpt, m.throughput
        );
    }
    println!(
        "\nthe optimizer picks the degree minimizing the weighted cost of Eq. 1 —\n\
         without ever deploying the rejected configurations."
    );
}
