//! # zt-dspsim
//!
//! A distributed stream processing **performance simulator** standing in for
//! the paper's Apache Flink + CloudLab testbed (see `DESIGN.md`,
//! substitutions table).
//!
//! Two execution paths share one cluster/placement/cost model:
//!
//! * [`analytical`] — a steady-state queueing solver that computes
//!   end-to-end latency and sustained throughput of a
//!   [`zt_query::ParallelQueryPlan`] deployed on a [`cluster::Cluster`].
//!   It models selectivity-driven rate propagation, per-instance and
//!   per-node utilization, backpressure, operator chaining / slot sharing,
//!   partitioning-dependent exchange costs, network transfer and window
//!   residence times. This is the fast path used to label tens of
//!   thousands of training queries.
//! * [`engine`] — a discrete-event, tuple-batch-level execution engine that
//!   actually runs the operators (filters drop tuples, windows fill and
//!   fire, joins probe state) and measures latency/throughput empirically.
//!   It is used to validate the analytical model and in the examples.
//!
//! The modules:
//!
//! * [`cluster`] — node/cluster model plus the CloudLab hardware presets of
//!   Table II in the paper.
//! * [`placement`] — scheduler: operator chaining decisions, slot
//!   assignment, data locality.
//! * [`costmodel`] — per-tuple CPU service costs, serialization and network
//!   costs.
//! * [`analytical`] — the queueing solver.
//! * [`simcache`] — memoization of the deterministic solver core for
//!   repeated `(plan, cluster, parallelism)` evaluations.
//! * [`noise`] — multiplicative lognormal measurement noise.
//! * [`engine`] — the discrete-event engine.
//! * [`metrics`] — summary statistics helpers.

#![deny(unsafe_code)]

pub mod analytical;
pub mod cluster;
pub mod costmodel;
pub mod engine;
pub mod explain;
pub mod metrics;
pub mod noise;
pub mod placement;
pub mod simcache;

pub use analytical::{
    simulate, simulate_core, OpMetrics, QueryMetrics, SimConfig, CHAINED_HOP_MS,
    EXCHANGE_OVERHEAD_MS, INFLIGHT_WAIT_CAP_MS, NET_UTIL_CAP, RHO_CAP,
};
pub use cluster::{Cluster, ClusterType, NodeSpec};
pub use engine::{EngineConfig, EngineMetrics, SinkMetrics};
pub use noise::NoiseConfig;
pub use placement::{place, place_with, ChainingMode, Deployment, EdgeExchange};
pub use simcache::{CacheStats, SimCache};
