//! Memoization of the deterministic simulator core.
//!
//! OptiSample's factored enumeration revisits identical
//! `(template, cluster, parallelism-assignment)` tuples: the per-query
//! scaling-factor draws frequently clamp to the same parallelism vector,
//! and the experiment harness executes the same chosen deployment under
//! several tuners. [`SimCache`] memoizes [`simulate_core`] results behind
//! an exact key so those repeats cost one hash-map lookup instead of a
//! full fixed-point solve.
//!
//! Two properties make the cache safe for label generation:
//!
//! * **Exact keys** — the key is the serialized `(plan, parallelism,
//!   cluster, noise-free config)` tuple, so a hit can only ever return the
//!   metrics the solver itself would have produced. There is no hashing
//!   collision risk because the full key string is compared.
//! * **Noise outside the cache** — measurement noise is applied *after*
//!   lookup via [`apply_noise`], drawing from the caller's RNG exactly as
//!   the uncached path would. Labels are therefore bitwise identical
//!   whether a call hits or misses, which keeps sharded generation
//!   deterministic regardless of cache state.
//!
//! The cache is `Send + Sync` (internally sharded behind mutexes) so one
//! instance can be shared by all data-generation workers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::Rng;
use zt_query::ParallelQueryPlan;

use crate::analytical::{apply_noise, simulate_core, QueryMetrics, SimConfig};
use crate::cluster::Cluster;
use crate::noise::NoiseConfig;

/// Number of independently locked shards; keeps workers from serializing
/// on one mutex during parallel generation.
const LOCK_SHARDS: usize = 16;

/// Hit/miss counters of a [`SimCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe memo table for [`simulate_core`] results.
pub struct SimCache {
    shards: Vec<Mutex<HashMap<String, QueryMetrics>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Total entry budget; when one lock shard exceeds its slice of the
    /// budget it is cleared wholesale (coarse but O(1) bookkeeping).
    capacity: usize,
}

impl Default for SimCache {
    fn default() -> Self {
        SimCache::new(64 * 1024)
    }
}

impl std::fmt::Debug for SimCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "SimCache {{ entries: {}, hits: {}, misses: {} }}",
            s.entries, s.hits, s.misses
        )
    }
}

/// The exact memo key for one deployment: the serialized plan,
/// parallelism assignment, cluster and *noise-free* simulator
/// configuration (noise never enters the deterministic core).
pub fn cache_key(pqp: &ParallelQueryPlan, cluster: &Cluster, cfg: &SimConfig) -> String {
    let key_cfg = SimConfig {
        noise: NoiseConfig::none(),
        ..cfg.clone()
    };
    serde_json::to_string(&(pqp, cluster, &key_cfg)).expect("simulator inputs serialize")
}

impl SimCache {
    /// A cache holding at most ~`capacity` deployments.
    pub fn new(capacity: usize) -> Self {
        SimCache {
            shards: (0..LOCK_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: capacity.max(LOCK_SHARDS),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<HashMap<String, QueryMetrics>> {
        // FNV-1a over the key bytes picks the lock shard.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h as usize) % LOCK_SHARDS]
    }

    /// Noise-free metrics for a deployment, memoized. Equivalent to
    /// [`simulate_core`] — identical output on hit and miss.
    pub fn core(
        &self,
        pqp: &ParallelQueryPlan,
        cluster: &Cluster,
        cfg: &SimConfig,
    ) -> QueryMetrics {
        let key = cache_key(pqp, cluster, cfg);
        let shard = self.shard_of(&key);
        if let Some(m) = shard.lock().expect("simcache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            zt_telemetry::counter_add("sim.cache.hit", 1);
            return m.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        zt_telemetry::counter_add("sim.cache.miss", 1);
        let metrics = simulate_core(pqp, cluster, cfg);
        let mut map = shard.lock().expect("simcache lock");
        if map.len() >= self.capacity / LOCK_SHARDS {
            map.clear();
        }
        map.insert(key, metrics.clone());
        metrics
    }

    /// Drop-in replacement for [`crate::analytical::simulate`]: memoized
    /// deterministic core plus fresh measurement noise from `rng`. The RNG
    /// stream advances identically on hit and miss.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        pqp: &ParallelQueryPlan,
        cluster: &Cluster,
        cfg: &SimConfig,
        rng: &mut R,
    ) -> QueryMetrics {
        let mut metrics = self.core(pqp, cluster, cfg);
        apply_noise(&mut metrics, &cfg.noise, rng);
        metrics
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("simcache lock").len())
                .sum(),
        }
    }

    /// Forget all memoized deployments (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("simcache lock").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::simulate;
    use crate::cluster::ClusterType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_query::operators::*;
    use zt_query::{DataType, LogicalPlan, OperatorKind, TupleSchema};

    fn pqp(rate: f64, p: u32) -> ParallelQueryPlan {
        let mut plan = LogicalPlan::new("t");
        let s = plan.add(OperatorKind::Source(SourceOp {
            event_rate: rate,
            schema: TupleSchema::uniform(DataType::Int, 3),
            key_cardinality: None,
        }));
        let f = plan.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Int,
            selectivity: 0.5,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s, f);
        plan.connect(f, k);
        ParallelQueryPlan::with_parallelism(plan, vec![p, p, p])
    }

    fn cluster() -> Cluster {
        Cluster::homogeneous(ClusterType::M510, 2, 10.0)
    }

    #[test]
    fn hit_returns_exactly_the_solver_result() {
        let cache = SimCache::default();
        let cfg = SimConfig::noiseless();
        let plan = pqp(10_000.0, 4);
        let direct = simulate_core(&plan, &cluster(), &cfg);
        let miss = cache.core(&plan, &cluster(), &cfg);
        let hit = cache.core(&plan, &cluster(), &cfg);
        assert_eq!(direct.latency_ms, miss.latency_ms);
        assert_eq!(miss.latency_ms, hit.latency_ms);
        assert_eq!(miss.throughput, hit.throughput);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn noisy_labels_identical_on_hit_and_miss() {
        let cache = SimCache::default();
        let cfg = SimConfig::default(); // noise on
        let plan = pqp(10_000.0, 2);
        let uncached = simulate(&plan, &cluster(), &cfg, &mut StdRng::seed_from_u64(9));
        let miss = cache.simulate(&plan, &cluster(), &cfg, &mut StdRng::seed_from_u64(9));
        let hit = cache.simulate(&plan, &cluster(), &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(uncached.latency_ms, miss.latency_ms);
        assert_eq!(miss.latency_ms, hit.latency_ms);
        assert_eq!(uncached.throughput, hit.throughput);
    }

    #[test]
    fn different_deployments_do_not_collide() {
        let cache = SimCache::default();
        let cfg = SimConfig::noiseless();
        let a = cache.core(&pqp(10_000.0, 1), &cluster(), &cfg);
        let b = cache.core(&pqp(10_000.0, 8), &cluster(), &cfg);
        assert_ne!(a.latency_ms, b.latency_ms);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn noise_config_does_not_split_the_key() {
        let cache = SimCache::default();
        let plan = pqp(5_000.0, 2);
        let mut rng = StdRng::seed_from_u64(1);
        cache.simulate(&plan, &cluster(), &SimConfig::noiseless(), &mut rng);
        cache.simulate(&plan, &cluster(), &SimConfig::default(), &mut rng);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn clear_and_capacity_bound() {
        let cache = SimCache::new(LOCK_SHARDS); // one entry per lock shard
        let cfg = SimConfig::noiseless();
        for p in 1..=40u32 {
            cache.core(&pqp(1_000.0, p), &cluster(), &cfg);
        }
        assert!(cache.stats().entries <= 40);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn cache_is_send_and_sync() {
        fn takes<T: Send + Sync>() {}
        takes::<SimCache>();
    }
}
