//! Scheduler: operator chaining, slot assignment and data locality.
//!
//! Mirrors the deployment decisions a DSP scheduler (Flink's job/task
//! manager) makes before execution:
//!
//! 1. **Operator chaining.** Adjacent operators connected by a
//!    forward-partitioned edge with equal parallelism can be fused into one
//!    task ("chain group"); fused hand-offs are function calls, paying no
//!    serialization or network cost. The paper's *grouping number* feature
//!    (Table I) is the size of this group. The [`ChainingMode::Auto`]
//!    policy reproduces the behaviour behind Fig. 3 of the paper: with
//!    plenty of free slots the scheduler keeps operators *unchained* to
//!    exploit pipeline parallelism across cores, and switches to fused
//!    execution once the deployment needs a large share of the cluster's
//!    slots — causing the sudden cost improvement the paper highlights at
//!    high parallelism degrees.
//! 2. **Slot assignment.** Every node offers one slot per core. Group
//!    instances are placed round-robin over the slot list, wrapping when
//!    the deployment is larger than the cluster (oversubscription is then
//!    penalized by the node-utilization model in [`crate::analytical`]).
//! 3. **Locality.** For every non-chained edge we compute the fraction of
//!    traffic that stays on the same node (no NIC crossing).

use serde::{Deserialize, Serialize};
use zt_query::{OpId, ParallelQueryPlan, Partitioning, PlanIr};

use crate::cluster::Cluster;

/// Chaining policy of the scheduler.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Default)]
pub enum ChainingMode {
    /// Chain only when the deployment would otherwise need more than
    /// ~90% of the cluster's slots (trades pipeline parallelism for
    /// fusion; see module docs and Fig. 3).
    #[default]
    Auto,
    /// Always chain chainable edges (Flink's default configuration).
    Always,
    /// Never chain.
    Never,
}

/// How data moves across one plan edge at runtime.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum EdgeExchange {
    /// Both operators are fused into the same task: in-process hand-off.
    Chained,
    /// A real exchange; `local_fraction` of the traffic stays on-node.
    Exchange { local_fraction: f64 },
}

impl EdgeExchange {
    pub fn is_chained(&self) -> bool {
        matches!(self, EdgeExchange::Chained)
    }

    pub fn local_fraction(&self) -> f64 {
        match self {
            EdgeExchange::Chained => 1.0,
            EdgeExchange::Exchange { local_fraction } => *local_fraction,
        }
    }
}

/// A set of chained operators deployed as one task with `parallelism`
/// parallel instances.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChainGroup {
    /// Member operators in data-flow order.
    pub ops: Vec<OpId>,
    pub parallelism: u32,
    /// Node index (into the cluster's node list) hosting each instance.
    pub instance_nodes: Vec<usize>,
}

/// The scheduler's output: chain groups, instance placement and edge
/// exchange characteristics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Deployment {
    pub groups: Vec<ChainGroup>,
    /// Group index per operator (indexed by `OpId`).
    pub op_group: Vec<usize>,
    /// Exchange kind per plan edge (parallel to `plan.edges()`).
    pub edge_exchange: Vec<EdgeExchange>,
    /// Total task slots in the cluster (= total cores).
    pub total_slots: usize,
    /// Whether the Auto policy decided to fuse (exposed for tests and the
    /// Fig. 3 micro-benchmark).
    pub chained: bool,
}

impl Deployment {
    /// The paper's *grouping number* feature: how many operators are fused
    /// into `op`'s task.
    pub fn grouping_number(&self, op: OpId) -> u32 {
        self.groups[self.op_group[op.idx()]].ops.len() as u32
    }

    /// Node index of each parallel instance of `op`.
    pub fn instance_nodes(&self, op: OpId) -> &[usize] {
        &self.groups[self.op_group[op.idx()]].instance_nodes
    }

    /// `(node index, #instances)` pairs for `op` — the operator-resource
    /// mapping edges of the paper's graph representation.
    pub fn instance_counts(&self, op: OpId) -> Vec<(usize, u32)> {
        let mut counts: Vec<u32> = Vec::new();
        for &n in self.instance_nodes(op) {
            if counts.len() <= n {
                counts.resize(n + 1, 0);
            }
            counts[n] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect()
    }

    /// Total deployed task instances (after chaining).
    pub fn total_instances(&self) -> usize {
        self.groups.iter().map(|g| g.parallelism as usize).sum()
    }
}

/// Fraction of the slot budget above which [`ChainingMode::Auto`] fuses.
pub const AUTO_CHAIN_SLOT_PRESSURE: f64 = 0.9;

/// Compute the deployment of `pqp` on `cluster` under the given chaining
/// policy. Seals the plan into a [`PlanIr`]; hot loops that already hold a
/// sealed IR should call [`place_with`] instead.
pub fn place(pqp: &ParallelQueryPlan, cluster: &Cluster, mode: ChainingMode) -> Deployment {
    let ir = pqp.plan.validate().expect("validated plan");
    place_with(pqp, &ir, cluster, mode)
}

/// [`place`] over a pre-sealed [`PlanIr`] (no re-validation, zero-alloc
/// topology lookups).
pub fn place_with(
    pqp: &ParallelQueryPlan,
    ir: &PlanIr,
    cluster: &Cluster,
    mode: ChainingMode,
) -> Deployment {
    let plan = &pqp.plan;
    let n_ops = plan.num_ops();
    let total_slots: usize = cluster.total_cores() as usize;

    // 1. Structural chain candidates: forward edge + equal parallelism +
    //    the downstream op has exactly this one input. Parallelism here is
    //    the *effective* (physically active) degree — the same notion
    //    `reset_partitioning` uses to assign Forward.
    let candidate = |i: usize| -> bool {
        let (u, d) = plan.edges()[i];
        pqp.partitioning[i] == Partitioning::Forward
            && pqp.effective_parallelism_of(u) == pqp.effective_parallelism_of(d)
            && ir.upstream(d).len() == 1
    };

    // 2. Policy: chain or not. Slot pressure counts the instances that
    //    will actually be scheduled (effective degrees).
    let unchained_instances: u64 = plan
        .ops()
        .iter()
        .map(|op| pqp.effective_parallelism_of(op.id) as u64)
        .sum();
    let chain = match mode {
        ChainingMode::Always => true,
        ChainingMode::Never => false,
        ChainingMode::Auto => {
            unchained_instances as f64 > AUTO_CHAIN_SLOT_PRESSURE * total_slots as f64
        }
    };

    // 3. Union-find over chained edges.
    let mut parent: Vec<usize> = (0..n_ops).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    if chain {
        for i in 0..plan.edges().len() {
            if candidate(i) {
                let (u, d) = plan.edges()[i];
                let ru = find(&mut parent, u.idx());
                let rd = find(&mut parent, d.idx());
                if ru != rd {
                    parent[rd] = ru;
                }
            }
        }
    }

    // Group ids in topological order for stable output.
    let mut group_of_root: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut groups: Vec<ChainGroup> = Vec::new();
    let mut op_group = vec![usize::MAX; n_ops];
    for &id in ir.topo_order() {
        let root = find(&mut parent, id.idx());
        let g = *group_of_root.entry(root).or_insert_with(|| {
            groups.push(ChainGroup {
                ops: Vec::new(),
                // Chained edges require equal *effective* parallelism, so
                // every member of the group schedules this many instances.
                parallelism: pqp.effective_parallelism_of(id),
                instance_nodes: Vec::new(),
            });
            groups.len() - 1
        });
        groups[g].ops.push(id);
        op_group[id.idx()] = g;
    }

    // 4. Slot assignment: round-robin over the slot list, wrapping.
    let mut slot_node: Vec<usize> = Vec::with_capacity(total_slots);
    for (n, spec) in cluster.nodes.iter().enumerate() {
        for _ in 0..spec.cores {
            slot_node.push(n);
        }
    }
    // Interleave slots across nodes (slot 0 of node 0, slot 0 of node 1, …)
    // so low-parallelism deployments spread over machines.
    let mut interleaved: Vec<usize> = Vec::with_capacity(total_slots);
    let max_cores = cluster.nodes.iter().map(|n| n.cores).max().unwrap_or(0);
    for c in 0..max_cores {
        for (n, spec) in cluster.nodes.iter().enumerate() {
            if c < spec.cores {
                interleaved.push(n);
            }
        }
    }
    debug_assert_eq!(interleaved.len(), total_slots);

    let mut offset = 0usize;
    for g in &mut groups {
        g.instance_nodes = (0..g.parallelism as usize)
            .map(|j| interleaved[(offset + j) % total_slots.max(1)])
            .collect();
        offset += g.parallelism as usize;
    }

    // 5. Edge exchange characteristics.
    let edge_exchange = plan
        .edges()
        .iter()
        .enumerate()
        .map(|(i, &(u, d))| {
            if op_group[u.idx()] == op_group[d.idx()] {
                return EdgeExchange::Chained;
            }
            let up_nodes = &groups[op_group[u.idx()]].instance_nodes;
            let down_nodes = &groups[op_group[d.idx()]].instance_nodes;
            let local_fraction = match pqp.partitioning[i] {
                // Forward routes instance k -> instance k.
                Partitioning::Forward => {
                    let pairs = up_nodes.len().min(down_nodes.len()).max(1);
                    let local = up_nodes
                        .iter()
                        .zip(down_nodes.iter())
                        .filter(|(a, b)| a == b)
                        .count();
                    local as f64 / pairs as f64
                }
                // Hash/rebalance route uniformly over all downstream
                // instances: P(local) = Σ_n P(up on n)·P(down on n).
                Partitioning::Rebalance | Partitioning::Hash => {
                    let num_nodes = cluster.num_workers();
                    let mut up_cnt = vec![0f64; num_nodes];
                    let mut down_cnt = vec![0f64; num_nodes];
                    for &n in up_nodes {
                        up_cnt[n] += 1.0;
                    }
                    for &n in down_nodes {
                        down_cnt[n] += 1.0;
                    }
                    let pu = up_nodes.len().max(1) as f64;
                    let pd = down_nodes.len().max(1) as f64;
                    (0..num_nodes)
                        .map(|n| (up_cnt[n] / pu) * (down_cnt[n] / pd))
                        .sum()
                }
            };
            EdgeExchange::Exchange { local_fraction }
        })
        .collect();

    Deployment {
        groups,
        op_group,
        edge_exchange,
        total_slots,
        chained: chain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterType;
    use zt_query::operators::SinkOp;
    use zt_query::{
        AggFunction, AggregateOp, DataType, FilterFunction, FilterOp, LogicalPlan, OperatorKind,
        SourceOp, TupleSchema, WindowPolicy, WindowSpec,
    };

    fn linear_pqp(p: u32) -> ParallelQueryPlan {
        let mut plan = LogicalPlan::new("linear");
        let s = plan.add(OperatorKind::Source(SourceOp {
            event_rate: 10_000.0,
            schema: TupleSchema::uniform(DataType::Double, 3),
            key_cardinality: None,
        }));
        let f = plan.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Double,
            selectivity: 0.5,
        }));
        let a = plan.add(OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 10.0),
            function: AggFunction::Avg,
            agg_class: DataType::Double,
            key_class: Some(DataType::Int),
            selectivity: 0.2,
            key_cardinality: None,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s, f);
        plan.connect(f, a);
        plan.connect(a, k);
        ParallelQueryPlan::with_parallelism(plan, vec![p, p, p, p])
    }

    #[test]
    fn always_mode_chains_forward_edges() {
        let pqp = linear_pqp(2);
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
        let d = place(&pqp, &cluster, ChainingMode::Always);
        // source+filter chained; agg+sink chained; hash edge separates them.
        assert_eq!(d.groups.len(), 2);
        assert_eq!(d.grouping_number(OpId(0)), 2);
        assert_eq!(d.grouping_number(OpId(2)), 2);
        assert!(d.edge_exchange[0].is_chained());
        assert!(!d.edge_exchange[1].is_chained());
        assert!(d.edge_exchange[2].is_chained());
    }

    use zt_query::OpId;

    #[test]
    fn never_mode_keeps_ops_separate() {
        let pqp = linear_pqp(2);
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
        let d = place(&pqp, &cluster, ChainingMode::Never);
        assert_eq!(d.groups.len(), 4);
        assert!(d.edge_exchange.iter().all(|e| !e.is_chained()));
        assert_eq!(d.grouping_number(OpId(1)), 1);
    }

    #[test]
    fn auto_mode_fuses_under_slot_pressure() {
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0); // 16 slots
        let low = place(&linear_pqp(2), &cluster, ChainingMode::Auto); // 8 instances
        assert!(!low.chained);
        assert_eq!(low.groups.len(), 4);
        let high = place(&linear_pqp(8), &cluster, ChainingMode::Auto); // 32 instances
        assert!(high.chained);
        assert_eq!(high.groups.len(), 2);
    }

    #[test]
    fn instances_spread_across_nodes() {
        let pqp = linear_pqp(4);
        let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
        let d = place(&pqp, &cluster, ChainingMode::Never);
        let nodes = d.instance_nodes(OpId(1));
        assert_eq!(nodes.len(), 4);
        // interleaved slots: 4 instances land on 4 distinct nodes
        let distinct: std::collections::HashSet<_> = nodes.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn oversubscription_wraps() {
        let pqp = linear_pqp(64);
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0); // 16 slots
        let d = place(&pqp, &cluster, ChainingMode::Always);
        assert_eq!(d.instance_nodes(OpId(0)).len(), 64);
        // all instances still map to valid nodes
        assert!(d.instance_nodes(OpId(0)).iter().all(|&n| n < 2));
    }

    #[test]
    fn local_fraction_in_unit_interval() {
        for p in [1u32, 2, 4, 16, 64] {
            let pqp = linear_pqp(p);
            let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
            let d = place(&pqp, &cluster, ChainingMode::Auto);
            for e in &d.edge_exchange {
                let f = e.local_fraction();
                assert!((0.0..=1.0).contains(&f), "local fraction {f} out of range");
            }
        }
    }

    #[test]
    fn instance_counts_sum_to_parallelism() {
        let pqp = linear_pqp(10);
        let cluster = Cluster::homogeneous(ClusterType::M510, 3, 10.0);
        let d = place(&pqp, &cluster, ChainingMode::Never);
        let counts = d.instance_counts(OpId(2));
        let total: u32 = counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn hash_edge_never_chains() {
        let pqp = linear_pqp(32);
        let cluster = Cluster::homogeneous(ClusterType::M510, 1, 10.0);
        let d = place(&pqp, &cluster, ChainingMode::Always);
        // edge 1 (filter -> keyed agg) is hash partitioned
        assert!(!d.edge_exchange[1].is_chained());
    }

    #[test]
    fn single_node_cluster_is_fully_local() {
        let pqp = linear_pqp(4);
        let cluster = Cluster::homogeneous(ClusterType::M510, 1, 10.0);
        let d = place(&pqp, &cluster, ChainingMode::Never);
        for e in &d.edge_exchange {
            assert!((e.local_fraction() - 1.0).abs() < 1e-12);
        }
    }
}
