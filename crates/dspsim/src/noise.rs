//! Multiplicative lognormal measurement noise.
//!
//! Real DSP measurements fluctuate (JIT warm-up, GC pauses, OS jitter,
//! co-tenancy). We model this with multiplicative lognormal noise on both
//! metrics, which creates the irreducible q-error floor visible in the
//! paper's results. Throughput noise is slightly larger than latency noise,
//! matching the paper's observation that throughput is harder to predict
//! (it depends directly on the incoming data distribution).

use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Noise configuration for the analytical simulator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// σ of the lognormal factor applied to latency.
    pub sigma_latency: f64,
    /// σ of the lognormal factor applied to throughput.
    pub sigma_throughput: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            sigma_latency: 0.08,
            sigma_throughput: 0.11,
        }
    }
}

impl NoiseConfig {
    /// Noise-free configuration (for deterministic tests).
    pub fn none() -> Self {
        NoiseConfig {
            sigma_latency: 0.0,
            sigma_throughput: 0.0,
        }
    }

    /// Draw a multiplicative factor with the given σ; mean-one lognormal
    /// (μ = −σ²/2 keeps the expected factor at 1 so noise does not bias the labels).
    pub fn factor<R: Rng + ?Sized>(sigma: f64, rng: &mut R) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        let dist = LogNormal::new(-sigma * sigma / 2.0, sigma).expect("valid lognormal");
        dist.sample(rng)
    }

    pub fn latency_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Self::factor(self.sigma_latency, rng)
    }

    pub fn throughput_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Self::factor(self.sigma_throughput, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(NoiseConfig::none().latency_factor(&mut rng), 1.0);
        assert_eq!(NoiseConfig::none().throughput_factor(&mut rng), 1.0);
    }

    #[test]
    fn factors_are_positive_and_mean_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = NoiseConfig::default();
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let f = cfg.latency_factor(&mut rng);
            assert!(f > 0.0);
            sum += f;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn throughput_noise_larger_than_latency_noise() {
        let cfg = NoiseConfig::default();
        assert!(cfg.sigma_throughput > cfg.sigma_latency);
    }
}
