//! Cluster and hardware model, with the CloudLab presets of Table II.
//!
//! A [`Cluster`] is a set of worker [`NodeSpec`]s. The resource-related
//! transferable features of Table I (CPU cores, CPU frequency, total
//! memory, network link speed, node identifier) come straight from these
//! specs.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One worker node (a Flink TaskManager host in the paper's setup).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Hardware family name (e.g. `m510`).
    pub name: String,
    /// Number of processing cores (= task slots offered by the node).
    pub cores: u32,
    /// CPU frequency in GHz.
    pub cpu_ghz: f64,
    /// Total memory in GB.
    pub memory_gb: f64,
    /// Disk capacity in GB (not performance-relevant for our cost model but
    /// kept for completeness of Table II).
    pub disk_gb: f64,
    /// Network link speed in Gbit/s.
    pub network_gbps: f64,
}

/// CloudLab hardware families used in the paper (Table II).
///
/// `Ho`/`He` (homogeneous/heterogeneous cluster type) and the seen/unseen
/// split are captured by [`ClusterType::is_seen`] and
/// [`ClusterType::is_homogeneous`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ClusterType {
    /// 8 cores, 64 GB, Xeon D 2.0 GHz — homogeneous, seen.
    M510,
    /// 32 cores, 384 GB, Skylake 2.6 GHz — homogeneous, unseen.
    C6420,
    /// 8–10 cores, 128–384 GB, Xeon 2.2 GHz — heterogeneous, seen.
    Rs620,
    /// 20 cores, 256 GB, Ivy Bridge 2.2 GHz — heterogeneous, unseen.
    C8220x,
    /// 20 cores, 256 GB, Ivy Bridge 2.2 GHz — heterogeneous, unseen.
    C8220,
    /// 12 cores, 128 GB, Haswell 2.4 GHz — heterogeneous, unseen.
    Dss7500,
    /// 28 cores, 256 GB, Haswell 2.0 GHz — heterogeneous, unseen.
    C6320,
    /// 64 cores, 256 GB, AMD EPYC 2.8 GHz — heterogeneous, unseen.
    Rs6525,
}

impl ClusterType {
    pub const ALL: [ClusterType; 8] = [
        ClusterType::M510,
        ClusterType::C6420,
        ClusterType::Rs620,
        ClusterType::C8220x,
        ClusterType::C8220,
        ClusterType::Dss7500,
        ClusterType::C6320,
        ClusterType::Rs6525,
    ];

    /// Hardware families used for training-data generation ("S" in
    /// Table II).
    pub fn seen() -> Vec<ClusterType> {
        vec![ClusterType::M510, ClusterType::Rs620]
    }

    /// Hardware families held out for generalization tests ("U").
    pub fn unseen() -> Vec<ClusterType> {
        vec![
            ClusterType::C6420,
            ClusterType::C8220x,
            ClusterType::C8220,
            ClusterType::Dss7500,
            ClusterType::C6320,
            ClusterType::Rs6525,
        ]
    }

    pub fn is_seen(self) -> bool {
        matches!(self, ClusterType::M510 | ClusterType::Rs620)
    }

    /// "Ho" rows of Table II.
    pub fn is_homogeneous(self) -> bool {
        matches!(self, ClusterType::M510 | ClusterType::C6420)
    }

    pub fn name(self) -> &'static str {
        match self {
            ClusterType::M510 => "m510",
            ClusterType::C6420 => "c6420",
            ClusterType::Rs620 => "rs620",
            ClusterType::C8220x => "c8220x",
            ClusterType::C8220 => "c8220",
            ClusterType::Dss7500 => "dss7500",
            ClusterType::C6320 => "c6320",
            ClusterType::Rs6525 => "rs6525",
        }
    }

    /// Build one node of this family. `variant` disambiguates the
    /// heterogeneous rs620 row (8–10 cores / 128–384 GB in Table II).
    pub fn node(self, variant: usize, network_gbps: f64) -> NodeSpec {
        let (cores, memory_gb, disk_gb, cpu_ghz) = match self {
            ClusterType::M510 => (8, 64.0, 256.0, 2.0),
            ClusterType::C6420 => (32, 384.0, 1024.0, 2.6),
            ClusterType::Rs620 => {
                // 8–10 cores and 128–384 GB depending on the sub-model.
                let cores = 8 + (variant % 3) as u32;
                let mem = [128.0, 256.0, 384.0][variant % 3];
                (cores, mem, 900.0, 2.2)
            }
            ClusterType::C8220x => (20, 256.0, 4096.0, 2.2),
            ClusterType::C8220 => (20, 256.0, 2048.0, 2.2),
            ClusterType::Dss7500 => (12, 128.0, 120.0, 2.4),
            ClusterType::C6320 => (28, 256.0, 1024.0, 2.0),
            ClusterType::Rs6525 => (64, 256.0, 1600.0, 2.8),
        };
        NodeSpec {
            name: self.name().to_string(),
            cores,
            cpu_ghz,
            memory_gb,
            disk_gb,
            network_gbps,
        }
    }
}

impl std::fmt::Display for ClusterType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of worker nodes onto which a parallel query plan is deployed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    pub nodes: Vec<NodeSpec>,
}

impl Cluster {
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        Cluster { nodes }
    }

    /// Homogeneous cluster of `n` workers of one hardware family.
    pub fn homogeneous(ty: ClusterType, n: usize, network_gbps: f64) -> Self {
        Cluster {
            nodes: (0..n).map(|i| ty.node(i, network_gbps)).collect(),
        }
    }

    /// Heterogeneous cluster mixing several families round-robin.
    pub fn heterogeneous(types: &[ClusterType], n: usize, network_gbps: f64) -> Self {
        assert!(!types.is_empty());
        Cluster {
            nodes: (0..n)
                .map(|i| types[i % types.len()].node(i, network_gbps))
                .collect(),
        }
    }

    /// Sample a cluster from the given hardware families, as the paper's
    /// training-data generator does: a random family mix, `n_workers`
    /// nodes, one of the given link speeds.
    pub fn sample<R: Rng + ?Sized>(
        types: &[ClusterType],
        n_workers: usize,
        link_speeds: &[f64],
        rng: &mut R,
    ) -> Self {
        let link = *link_speeds.choose(rng).expect("non-empty link speeds");
        let mixed = rng.gen_bool(0.5) && types.len() > 1;
        if mixed {
            let mut shuffled = types.to_vec();
            shuffled.shuffle(rng);
            let k = rng.gen_range(2..=shuffled.len());
            Cluster::heterogeneous(&shuffled[..k], n_workers, link)
        } else {
            let ty = *types.choose(rng).expect("non-empty types");
            Cluster::homogeneous(ty, n_workers, link)
        }
    }

    /// Total processing cores (= total task slots) in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.cores).sum()
    }

    /// Number of worker nodes.
    pub fn num_workers(&self) -> usize {
        self.nodes.len()
    }

    /// Whether all nodes share the same hardware family.
    pub fn is_homogeneous(&self) -> bool {
        self.nodes
            .windows(2)
            .all(|w| w[0].name == w[1].name && w[0].cores == w[1].cores)
    }

    /// Mean CPU frequency across nodes, used for quick capacity estimates.
    pub fn mean_ghz(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.cpu_ghz).sum::<f64>() / self.nodes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_ii_presets() {
        let m510 = ClusterType::M510.node(0, 10.0);
        assert_eq!(m510.cores, 8);
        assert_eq!(m510.memory_gb, 64.0);
        assert_eq!(m510.cpu_ghz, 2.0);

        let rs6525 = ClusterType::Rs6525.node(0, 1.0);
        assert_eq!(rs6525.cores, 64);
        assert_eq!(rs6525.cpu_ghz, 2.8);
    }

    #[test]
    fn seen_unseen_split_matches_paper() {
        assert!(ClusterType::M510.is_seen());
        assert!(ClusterType::Rs620.is_seen());
        for t in ClusterType::unseen() {
            assert!(!t.is_seen());
        }
        assert_eq!(
            ClusterType::seen().len() + ClusterType::unseen().len(),
            ClusterType::ALL.len()
        );
    }

    #[test]
    fn homogeneity_flags() {
        assert!(ClusterType::M510.is_homogeneous());
        assert!(ClusterType::C6420.is_homogeneous());
        assert!(!ClusterType::C8220.is_homogeneous());
    }

    #[test]
    fn rs620_variants_differ() {
        let a = ClusterType::Rs620.node(0, 1.0);
        let b = ClusterType::Rs620.node(1, 1.0);
        assert_ne!((a.cores, a.memory_gb as u64), (b.cores, b.memory_gb as u64));
        assert!((8..=10).contains(&a.cores));
        assert!((8..=10).contains(&b.cores));
    }

    #[test]
    fn homogeneous_cluster() {
        let c = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
        assert_eq!(c.num_workers(), 4);
        assert_eq!(c.total_cores(), 32);
        assert!(c.is_homogeneous());
    }

    #[test]
    fn heterogeneous_cluster() {
        let c = Cluster::heterogeneous(&[ClusterType::C8220, ClusterType::Dss7500], 4, 1.0);
        assert_eq!(c.num_workers(), 4);
        assert!(!c.is_homogeneous());
        assert_eq!(c.total_cores(), 20 + 12 + 20 + 12);
    }

    #[test]
    fn sampled_cluster_respects_worker_count() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let c = Cluster::sample(&ClusterType::ALL, 6, &[1.0, 10.0], &mut rng);
            assert_eq!(c.num_workers(), 6);
            assert!(c.total_cores() > 0);
            let link = c.nodes[0].network_gbps;
            assert!(link == 1.0 || link == 10.0);
        }
    }

    #[test]
    fn serde_round_trip() {
        let c = Cluster::homogeneous(ClusterType::C6420, 2, 10.0);
        let json = serde_json::to_string(&c).unwrap();
        let back: Cluster = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
