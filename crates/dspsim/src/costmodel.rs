//! Per-tuple CPU, serialization and network cost primitives.
//!
//! All CPU costs are expressed in **microseconds per tuple at 1 GHz** and
//! scaled by the hosting node's clock frequency by the solver. The
//! constants were calibrated so that a single 2 GHz core sustains on the
//! order of 10⁵–10⁶ simple tuples per second — the right ballpark for a
//! JVM-based DSP like Flink — and so that serialization is a substantial
//! fraction of a cheap operator's work (which is why operator chaining
//! pays off, Fig. 3 of the paper).

use serde::{Deserialize, Serialize};
use zt_query::{OperatorKind, TupleSchema, WindowSpec};

/// Tunable cost constants of the simulator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Source: per-tuple ingestion/emission base cost (µs @ 1 GHz).
    pub source_base_us: f64,
    /// Source: additional cost per field (× type cost factor).
    pub source_per_field_us: f64,
    /// Filter: predicate evaluation base cost.
    pub filter_base_us: f64,
    pub filter_per_field_us: f64,
    /// Aggregate: per-tuple state update base cost.
    pub agg_update_us: f64,
    pub agg_per_field_us: f64,
    /// Aggregate: extra cost to hash the group-by key.
    pub agg_key_us: f64,
    /// Aggregate/join: cost of emitting one result tuple.
    pub emit_base_us: f64,
    pub emit_per_field_us: f64,
    /// Join: per-tuple window insertion cost.
    pub join_insert_us: f64,
    pub join_insert_per_field_us: f64,
    /// Join: hash-probe base cost per arriving tuple.
    pub join_probe_us: f64,
    /// Sink: per-tuple delivery cost.
    pub sink_base_us: f64,
    pub sink_per_field_us: f64,
    /// Serialization cost per tuple and side (sender or receiver).
    pub ser_base_us: f64,
    pub ser_per_field_us: f64,
    /// Sliding windows touch `overlap` window instances per tuple; the
    /// effective multiplier is capped (pane-based implementations share
    /// work across overlapping windows).
    pub max_overlap_factor: f64,
    /// Fixed per-hop network latency (switch + propagation), ms.
    pub net_hop_ms: f64,
    /// Extra per-hop latency under hash partitioning (key-group routing).
    pub hash_route_us: f64,
    /// Load imbalance factor of hash partitioning (hottest instance
    /// receives `hash_skew ×` the average share).
    pub hash_skew: f64,
    /// Tuples per network buffer / processing batch. DSP runtimes hand
    /// tuples between tasks in buffers, so queueing delays act on buffers,
    /// not single tuples.
    pub batch_tuples: f64,
    /// Buffers are flushed after this timeout even when not full
    /// (Flink's `execution.buffer-timeout`), bounding the latency floor of
    /// lightly loaded channels, ms.
    pub buffer_timeout_ms: f64,
    /// Credit-based flow control keeps up to this many buffers in flight
    /// per channel; under backpressure they sit full and add queueing
    /// delay.
    pub inflight_buffers: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            source_base_us: 0.8,
            source_per_field_us: 0.12,
            filter_base_us: 0.35,
            filter_per_field_us: 0.05,
            agg_update_us: 0.5,
            agg_per_field_us: 0.06,
            agg_key_us: 0.25,
            emit_base_us: 0.6,
            emit_per_field_us: 0.08,
            join_insert_us: 0.3,
            join_insert_per_field_us: 0.05,
            join_probe_us: 0.4,
            sink_base_us: 0.25,
            sink_per_field_us: 0.04,
            ser_base_us: 0.35,
            ser_per_field_us: 0.08,
            max_overlap_factor: 8.0,
            net_hop_ms: 0.12,
            hash_route_us: 0.15,
            hash_skew: 1.15,
            batch_tuples: 100.0,
            buffer_timeout_ms: 100.0,
            inflight_buffers: 8.0,
        }
    }
}

impl CostModel {
    fn effective_overlap(&self, w: &WindowSpec) -> f64 {
        w.overlap_factor().min(self.max_overlap_factor)
    }

    /// CPU service cost of processing one input tuple in `op`, in µs at
    /// 1 GHz.
    ///
    /// * `in_schema` / `out_schema` — the operator's input/output schemas.
    /// * `instance_in_rate` — tuples/s arriving at *one* parallel instance
    ///   (needed to amortize window-emission work).
    /// * `other_window_tuples` — for joins: expected tuples held in the
    ///   *opposite* window of one instance (drives match emission).
    pub fn service_us(
        &self,
        op: &OperatorKind,
        in_schema: &TupleSchema,
        out_schema: &TupleSchema,
        instance_in_rate: f64,
        other_window_tuples: f64,
    ) -> f64 {
        let w_in = in_schema.width() as f64 * in_schema.avg_cost_factor();
        let w_out = out_schema.width() as f64 * out_schema.avg_cost_factor();
        match op {
            OperatorKind::Source(_) => self.source_base_us + self.source_per_field_us * w_out,
            OperatorKind::Filter(f) => {
                self.filter_base_us
                    + self.filter_per_field_us * w_in
                    + 0.08 * f.literal_class.cost_factor()
            }
            OperatorKind::Aggregate(a) => {
                let overlap = self.effective_overlap(&a.window);
                let key_cost = a
                    .key_class
                    .map_or(0.0, |k| self.agg_key_us * k.cost_factor());
                let update =
                    (self.agg_update_us + self.agg_per_field_us * w_in + key_cost) * overlap;
                // Emission: `sel × |W|` groups fire per window instance;
                // amortized per input tuple this is `sel × overlap` result
                // tuples (see Definition 6 and the module docs).
                let emit_per_tuple =
                    a.selectivity * overlap * (self.emit_base_us + self.emit_per_field_us * w_out);
                let _ = instance_in_rate; // rate-independent under this amortization
                update + emit_per_tuple
            }
            OperatorKind::Join(j) => {
                let overlap = self.effective_overlap(&j.window);
                let insert = (self.join_insert_us + self.join_insert_per_field_us * w_in) * overlap;
                let probe = self.join_probe_us * j.key_class.cost_factor();
                // Every arriving tuple matches `sel × |W_other|` partners.
                let matches = j.selectivity * other_window_tuples;
                let emit = matches * (self.emit_base_us + self.emit_per_field_us * w_out);
                insert + probe + emit
            }
            OperatorKind::Sink(_) => self.sink_base_us + self.sink_per_field_us * w_in,
        }
    }

    /// Serialization (or deserialization) cost of one tuple, µs at 1 GHz.
    pub fn serialization_us(&self, schema: &TupleSchema) -> f64 {
        self.ser_base_us + self.ser_per_field_us * schema.width() as f64 * schema.avg_cost_factor()
    }

    /// Wire time of one tuple over a link of `gbps`, in ms.
    pub fn wire_ms(&self, schema: &TupleSchema, gbps: f64) -> f64 {
        let bits = (schema.bytes() * 8) as f64;
        bits / (gbps * 1e9) * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zt_query::operators::SinkOp;
    use zt_query::{
        AggFunction, AggregateOp, DataType, FilterFunction, FilterOp, JoinOp, SourceOp,
        WindowPolicy,
    };

    fn schema(w: usize) -> TupleSchema {
        TupleSchema::uniform(DataType::Double, w)
    }

    #[test]
    fn wider_tuples_cost_more_everywhere() {
        let cm = CostModel::default();
        let narrow = schema(1);
        let wide = schema(10);
        let src = OperatorKind::Source(SourceOp {
            event_rate: 100.0,
            schema: wide.clone(),
            key_cardinality: None,
        });
        assert!(
            cm.service_us(&src, &narrow, &wide, 100.0, 0.0)
                > cm.service_us(&src, &narrow, &narrow, 100.0, 0.0)
        );
        assert!(cm.serialization_us(&wide) > cm.serialization_us(&narrow));
        assert!(cm.wire_ms(&wide, 1.0) > cm.wire_ms(&narrow, 1.0));
    }

    #[test]
    fn string_fields_cost_more_than_ints() {
        let cm = CostModel::default();
        let ints = TupleSchema::uniform(DataType::Int, 4);
        let strs = TupleSchema::uniform(DataType::Text, 4);
        let f = OperatorKind::Filter(FilterOp {
            function: FilterFunction::Lt,
            literal_class: DataType::Int,
            selectivity: 0.5,
        });
        assert!(
            cm.service_us(&f, &strs, &strs, 0.0, 0.0) > cm.service_us(&f, &ints, &ints, 0.0, 0.0)
        );
    }

    #[test]
    fn sliding_windows_cost_more_than_tumbling() {
        let cm = CostModel::default();
        let s = schema(3);
        let mk = |slide: Option<f64>| {
            OperatorKind::Aggregate(AggregateOp {
                window: WindowSpec {
                    policy: WindowPolicy::Count,
                    length: 100.0,
                    slide,
                },
                function: AggFunction::Avg,
                agg_class: DataType::Double,
                key_class: Some(DataType::Int),
                selectivity: 0.1,
                key_cardinality: None,
            })
        };
        let tumbling = cm.service_us(&mk(None), &s, &s, 1000.0, 0.0);
        let sliding = cm.service_us(&mk(Some(25.0)), &s, &s, 1000.0, 0.0);
        assert!(sliding > tumbling);
    }

    #[test]
    fn overlap_factor_is_capped() {
        let cm = CostModel::default();
        let s = schema(2);
        let mk = |slide: f64| {
            OperatorKind::Aggregate(AggregateOp {
                window: WindowSpec {
                    policy: WindowPolicy::Count,
                    length: 1000.0,
                    slide: Some(slide),
                },
                function: AggFunction::Sum,
                agg_class: DataType::Double,
                key_class: None,
                selectivity: 0.01,
                key_cardinality: None,
            })
        };
        // overlap 100 vs 1000 — both above the cap, equal cost
        let a = cm.service_us(&mk(10.0), &s, &s, 100.0, 0.0);
        let b = cm.service_us(&mk(1.0), &s, &s, 100.0, 0.0);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn join_cost_grows_with_opposite_window() {
        let cm = CostModel::default();
        let s = schema(3);
        let j = OperatorKind::Join(JoinOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 50.0),
            key_class: DataType::Int,
            selectivity: 0.05,
            key_cardinality: None,
        });
        let small = cm.service_us(&j, &s, &schema(6), 100.0, 10.0);
        let big = cm.service_us(&j, &s, &schema(6), 100.0, 10_000.0);
        assert!(big > small * 5.0);
    }

    #[test]
    fn sink_is_cheapest_operator() {
        let cm = CostModel::default();
        let s = schema(3);
        let sink = cm.service_us(&OperatorKind::Sink(SinkOp), &s, &s, 0.0, 0.0);
        let src = cm.service_us(
            &OperatorKind::Source(SourceOp {
                event_rate: 1.0,
                schema: s.clone(),
                key_cardinality: None,
            }),
            &s,
            &s,
            0.0,
            0.0,
        );
        assert!(sink < src);
    }

    #[test]
    fn wire_time_scales_inverse_with_bandwidth() {
        let cm = CostModel::default();
        let s = schema(5);
        let slow = cm.wire_ms(&s, 1.0);
        let fast = cm.wire_ms(&s, 10.0);
        assert!((slow / fast - 10.0).abs() < 1e-9);
    }

    #[test]
    fn realistic_single_core_capacity() {
        // A 2 GHz core should sustain roughly 10^5..10^6 simple filter
        // tuples per second under these constants.
        let cm = CostModel::default();
        let s = schema(3);
        let f = OperatorKind::Filter(FilterOp {
            function: FilterFunction::Le,
            literal_class: DataType::Double,
            selectivity: 0.5,
        });
        let us = cm.service_us(&f, &s, &s, 0.0, 0.0) / 2.0; // 2 GHz
        let capacity = 1e6 / us;
        assert!(capacity > 1e5 && capacity < 1e7, "capacity {capacity}");
    }
}
