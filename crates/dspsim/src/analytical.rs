//! Steady-state analytical performance model.
//!
//! Given a [`ParallelQueryPlan`] deployed on a [`Cluster`], the solver
//! computes the two cost metrics of the paper (Definitions 1 and 2):
//!
//! * **End-to-end latency** — the longest source→sink path through the
//!   plan, where each operator contributes M/M/1-style sojourn time
//!   (service inflated by `1/(1−ρ)`), windowed operators add the expected
//!   residence until their window fires, and each non-chained exchange adds
//!   serialization plus (for off-node traffic) network transfer. Constant
//!   `L_in`/`L_out` terms model reading from / writing to external systems.
//! * **Throughput** — the sustained ingestion rate. If any operator
//!   instance or worker node would exceed the utilization target, the
//!   sources are throttled (backpressure) until the bottleneck sits at the
//!   target; throughput is the throttled total source rate.
//!
//! The solver runs a small fixed-point iteration because join service
//! times depend on window contents, which depend on the (possibly
//! throttled) rates.

use rand::Rng;
use serde::{Deserialize, Serialize};
use zt_query::{OpId, OperatorKind, ParallelQueryPlan, Partitioning, PlanIr, TupleSchema};

use crate::cluster::Cluster;
use crate::costmodel::CostModel;
use crate::noise::NoiseConfig;
use crate::placement::{place_with, ChainingMode, Deployment, EdgeExchange};

// --- Shared solver constants ---------------------------------------------
//
// These constants parameterize the latency composition of the solver and
// are also consumed by the static interval analysis in `zt_core::bounds`,
// which must bracket the solver exactly. Keeping them as named `pub const`s
// (instead of inline literals) guarantees the two cannot drift.

/// In-process hand-off latency of a chained (operator-fused) edge, ms.
pub const CHAINED_HOP_MS: f64 = 0.002;
/// Fixed per-exchange overhead (queue hand-off, task wake-up), ms.
pub const EXCHANGE_OVERHEAD_MS: f64 = 0.01;
/// Cap on the in-flight-buffer wait added to exchanges under
/// backpressure, ms (credit-based flow control bounds the buffered data).
pub const INFLIGHT_WAIT_CAP_MS: f64 = 250.0;
/// Cap on the utilization entering the M/M/1 `1/(1 − ρ)` sojourn factor,
/// so throttled-but-saturated operators keep a finite sojourn time.
pub const RHO_CAP: f64 = 0.98;
/// Cap on the aggregate network utilization entering the congestion
/// factor `1/(1 − u_net)`.
pub const NET_UTIL_CAP: f64 = 0.95;

/// Configuration of the analytical simulator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    pub cost: CostModel,
    pub chaining: ChainingMode,
    /// Backpressure throttles sources so the hottest resource sits at this
    /// utilization (Flink's credit-based flow control keeps pipelines just
    /// below saturation).
    pub utilization_target: f64,
    pub noise: NoiseConfig,
    /// Constant external input+output latency (`L_in + L_out` of
    /// Definition 1), ms.
    pub external_io_ms: f64,
    /// Event-time ingestion penalty under backpressure. Definition 1
    /// measures latency from the *production* of a tuple; when the offered
    /// rate exceeds capacity, events queue up in front of the sources, so
    /// the measured latency grows with the excess ratio over the
    /// measurement window. This constant is half a typical measurement
    /// window (ms).
    pub backpressure_ingest_ms: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cost: CostModel::default(),
            chaining: ChainingMode::Auto,
            utilization_target: 0.95,
            noise: NoiseConfig::default(),
            external_io_ms: 1.0,
            backpressure_ingest_ms: 5_000.0,
        }
    }
}

impl SimConfig {
    /// Deterministic configuration without measurement noise.
    pub fn noiseless() -> Self {
        SimConfig {
            noise: NoiseConfig::none(),
            ..SimConfig::default()
        }
    }
}

/// Per-operator solver output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpMetrics {
    /// Total tuples/s arriving at the operator (after backpressure).
    pub input_rate: f64,
    /// Total tuples/s emitted.
    pub output_rate: f64,
    /// Per-tuple work of one instance, µs (including exchange work).
    pub work_us: f64,
    /// Utilization of the hottest instance.
    pub utilization: f64,
    /// M/M/1 sojourn contribution, ms.
    pub sojourn_ms: f64,
    /// Expected window residence, ms (0 for unwindowed operators).
    pub residence_ms: f64,
}

/// The solver's result for one deployment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// End-to-end latency (Definition 1), ms. For multi-sink plans this
    /// is the *maximum* over [`QueryMetrics::latency_per_sink_ms`].
    pub latency_ms: f64,
    /// Definition-1 latency per sink, in sink-id order (one entry per
    /// sink of the plan; single-sink plans have exactly one, equal to
    /// `latency_ms`).
    #[serde(default)]
    pub latency_per_sink_ms: Vec<f64>,
    /// Sustained throughput (Definition 2), tuples/s.
    pub throughput: f64,
    /// Total offered source rate, tuples/s.
    pub offered_rate: f64,
    /// Source throttle factor ∈ (0, 1]; < 1 means backpressure.
    pub backpressure_scale: f64,
    /// Bottleneck utilization at the *offered* rate (may exceed 1).
    pub bottleneck_utilization: f64,
    pub per_op: Vec<OpMetrics>,
    pub deployment: Deployment,
}

impl QueryMetrics {
    pub fn backpressured(&self) -> bool {
        self.backpressure_scale < 1.0
    }
}

/// Steady-state rates of a plan at one source throttle factor. Public so
/// the interval analysis in `zt_core::bounds` can evaluate the solver's
/// rate transfer function at the endpoints of a throttle interval.
pub struct Rates {
    /// Total input rate per operator.
    pub input: Vec<f64>,
    /// Total output rate per operator.
    pub output: Vec<f64>,
    /// Rate flowing over each plan edge.
    pub edge: Vec<f64>,
}

/// Propagate rates through the plan at a given source throttle factor.
///
/// Seals the plan on every call; hot loops should seal once and use
/// [`propagate_with`].
pub fn propagate(pqp: &ParallelQueryPlan, scale: f64) -> Rates {
    let ir = pqp.plan.validate().expect("validated plan");
    propagate_with(pqp, &ir, scale)
}

/// [`propagate`] over a pre-sealed [`PlanIr`] (no per-call validation or
/// adjacency allocation).
pub fn propagate_with(pqp: &ParallelQueryPlan, ir: &PlanIr, scale: f64) -> Rates {
    let plan = &pqp.plan;
    let n = plan.num_ops();
    let mut input = vec![0f64; n];
    let mut output = vec![0f64; n];
    for &id in ir.topo_order() {
        let i = id.idx();
        let p = pqp.effective_parallelism_of(id).max(1) as f64;
        let up = ir.upstream(id);
        let in_rate: f64 = up.iter().map(|u| output[u.idx()]).sum();
        match &plan.op(id).kind {
            OperatorKind::Source(s) => {
                input[i] = s.event_rate * scale;
                output[i] = input[i];
            }
            OperatorKind::Filter(f) => {
                input[i] = in_rate;
                output[i] = in_rate * f.selectivity;
            }
            OperatorKind::Aggregate(a) => {
                input[i] = in_rate;
                // `sel × |W|` groups fire every emission period; amortized
                // this is `in × sel × overlap` results/s (see Def. 6).
                output[i] = in_rate * a.selectivity * a.window.overlap_factor();
            }
            OperatorKind::Join(j) => {
                let in_l = up.first().map_or(0.0, |u| output[u.idx()]);
                let in_r = up.get(1).map_or(0.0, |u| output[u.idx()]);
                input[i] = in_l + in_r;
                // Stream-join output: every arriving tuple matches
                // `sel × |W_other|` partners (Def. 5). Window contents are
                // per instance (hash co-partitioning).
                let wl = j.window.tuples_per_window(in_l / p);
                let wr = j.window.tuples_per_window(in_r / p);
                output[i] = j.selectivity * (in_l * wr + in_r * wl);
            }
            OperatorKind::Sink(_) => {
                input[i] = in_rate;
                output[i] = in_rate;
            }
        }
    }
    let edge = plan.edges().iter().map(|&(u, _)| output[u.idx()]).collect();
    Rates {
        input,
        output,
        edge,
    }
}

/// Expected tuples in the *opposite* window of one join instance, averaged
/// over arrival sides; 0 for non-joins.
fn join_other_window(pqp: &ParallelQueryPlan, ir: &PlanIr, rates: &Rates, id: OpId) -> f64 {
    let plan = &pqp.plan;
    if let OperatorKind::Join(j) = &plan.op(id).kind {
        let p = pqp.effective_parallelism_of(id).max(1) as f64;
        let up = ir.upstream(id);
        let in_l = up.first().map_or(0.0, |u| rates.output[u.idx()]);
        let in_r = up.get(1).map_or(0.0, |u| rates.output[u.idx()]);
        let wl = j.window.tuples_per_window(in_l / p);
        let wr = j.window.tuples_per_window(in_r / p);
        let total = (in_l + in_r).max(1e-9);
        (in_l * wr + in_r * wl) / total
    } else {
        0.0
    }
}

/// Whether [`work_profile`] applies the cost model's hash-skew multiplier
/// to hash-partitioned operators. [`SkewMode::None`] models a perfectly
/// balanced partitioner — the lower envelope used by `zt_core::bounds`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SkewMode {
    Model,
    None,
}

/// Per-instance and per-node utilization profile at one set of rates.
/// Public (like [`Rates`]) for the interval analysis in `zt_core::bounds`.
pub struct WorkProfile {
    /// \[op\] utilization of the hottest instance.
    pub hottest_util: Vec<f64>,
    /// \[node\] demand / cores.
    pub node_util: Vec<f64>,
    /// \[op\] mean per-tuple work µs at 1 GHz.
    pub work_us: Vec<f64>,
}

/// Compute per-instance and per-node utilization for given rates.
///
/// Seals the plan on every call; hot loops should seal once and use
/// [`work_profile_with`].
#[allow(clippy::too_many_arguments)]
pub fn work_profile(
    pqp: &ParallelQueryPlan,
    cluster: &Cluster,
    dep: &Deployment,
    cm: &CostModel,
    rates: &Rates,
    in_schemas: &[TupleSchema],
    out_schemas: &[TupleSchema],
    skew_mode: SkewMode,
) -> WorkProfile {
    let ir = pqp.plan.validate().expect("validated plan");
    work_profile_with(
        pqp,
        &ir,
        cluster,
        dep,
        cm,
        rates,
        in_schemas,
        out_schemas,
        skew_mode,
    )
}

/// [`work_profile`] over a pre-sealed [`PlanIr`]: per-operator exchange
/// work comes from the IR's O(degree) edge slices instead of scanning the
/// whole edge list once per operator.
// The argument list is the solver's full evaluation context; bundling it
// into a struct would obscure that this *is* the transfer function.
#[allow(clippy::too_many_arguments)]
pub fn work_profile_with(
    pqp: &ParallelQueryPlan,
    ir: &PlanIr,
    cluster: &Cluster,
    dep: &Deployment,
    cm: &CostModel,
    rates: &Rates,
    in_schemas: &[TupleSchema],
    out_schemas: &[TupleSchema],
    skew_mode: SkewMode,
) -> WorkProfile {
    let plan = &pqp.plan;
    let n = plan.num_ops();
    let mut hottest = vec![0f64; n];
    let mut node_util = vec![0f64; cluster.num_workers()];
    let mut work_us = vec![0f64; n];

    for op in plan.ops() {
        let id = op.id;
        let i = id.idx();
        let p = pqp.effective_parallelism_of(id).max(1) as f64;
        let nodes = dep.instance_nodes(id);
        let other_w = join_other_window(pqp, ir, rates, id);
        // Skew: hash-partitioned input concentrates load on the hottest
        // instance. The first input edge defines the partitioning, as in
        // `ParallelQueryPlan::input_partitioning`.
        let input_part = ir
            .first_input_edge(id)
            .map_or(Partitioning::Forward, |e| pqp.partitioning[e as usize]);
        let skew = if skew_mode == SkewMode::Model && input_part == Partitioning::Hash {
            cm.hash_skew
        } else {
            1.0
        };

        // Per-tuple exchange work (serialization both directions, hash
        // routing), in µs at 1 GHz, per *input* tuple and *output* tuple.
        // Each accumulator sums its edge subset in insertion order — the
        // same order (and therefore bitwise the same f64 sum) as the old
        // whole-edge-list scan.
        let mut deser_us = 0.0;
        let mut ser_us_total = 0.0;
        for (&u, &e) in ir.upstream(id).iter().zip(ir.upstream_edges(id)) {
            let e = e as usize;
            if dep.edge_exchange[e].is_chained() {
                continue;
            }
            deser_us += cm.serialization_us(&out_schemas[u.idx()]) * rates.edge[e];
        }
        for &e in ir.downstream_edges(id) {
            let e = e as usize;
            if dep.edge_exchange[e].is_chained() {
                continue;
            }
            let mut s = cm.serialization_us(&out_schemas[i]);
            if pqp.partitioning[e] == Partitioning::Hash {
                s += cm.hash_route_us;
            }
            ser_us_total += s * rates.edge[e];
        }

        let srv_us = cm.service_us(
            &op.kind,
            &in_schemas[i],
            &out_schemas[i],
            rates.input[i] / p,
            other_w,
        );

        // Work per second of one instance at 1 GHz, µs/s.
        let inst_work_per_s = (rates.input[i] * srv_us + deser_us + ser_us_total) / p;

        work_us[i] = if rates.input[i] > 0.0 {
            inst_work_per_s * p / rates.input[i]
        } else {
            srv_us
        };

        let mut utils = Vec::with_capacity(nodes.len());
        for &node in nodes {
            let ghz = cluster.nodes[node].cpu_ghz;
            let u = inst_work_per_s / ghz * 1e-6; // fraction of one core
            utils.push(u);
            node_util[node] += u;
        }
        let max_u = utils.iter().copied().fold(0.0f64, f64::max);
        hottest[i] = max_u * skew;
    }

    // Normalize node utilization by core count.
    for (n_idx, spec) in cluster.nodes.iter().enumerate() {
        node_util[n_idx] /= spec.cores.max(1) as f64;
    }

    WorkProfile {
        hottest_util: hottest,
        node_util,
        work_us,
    }
}

/// Run the analytical model. `rng` drives the measurement noise; pass a
/// seeded RNG for reproducible labels.
pub fn simulate<R: Rng + ?Sized>(
    pqp: &ParallelQueryPlan,
    cluster: &Cluster,
    cfg: &SimConfig,
    rng: &mut R,
) -> QueryMetrics {
    let mut metrics = simulate_core(pqp, cluster, cfg);
    apply_noise(&mut metrics, &cfg.noise, rng);
    metrics
}

/// Multiply the two headline metrics by lognormal measurement-noise
/// factors. Draws nothing from `rng` when both σ are zero, so noiseless
/// runs leave the RNG stream untouched (the contract the label cache and
/// the sharded data generator rely on).
pub fn apply_noise<R: Rng + ?Sized>(metrics: &mut QueryMetrics, noise: &NoiseConfig, rng: &mut R) {
    let lf = noise.latency_factor(rng);
    metrics.latency_ms *= lf;
    for l in &mut metrics.latency_per_sink_ms {
        *l *= lf;
    }
    metrics.throughput *= noise.throughput_factor(rng);
}

/// The deterministic part of [`simulate`]: everything except measurement
/// noise. Two calls with the same `(pqp, cluster, cfg)` return identical
/// metrics, which makes the result memoizable — see
/// [`crate::simcache::SimCache`].
pub fn simulate_core(pqp: &ParallelQueryPlan, cluster: &Cluster, cfg: &SimConfig) -> QueryMetrics {
    debug_assert!(pqp.validate().is_ok(), "simulate() requires a valid PQP");
    let _span = zt_telemetry::span("sim.solve");
    zt_telemetry::counter_add("sim.solves", 1);
    let plan = &pqp.plan;
    // Seal the topology once; every traversal below is an O(degree)
    // slice lookup on the IR.
    let ir = plan.validate().expect("simulate() requires a valid plan");
    let dep = place_with(pqp, &ir, cluster, cfg.chaining);
    let in_schemas = ir.input_schemas();
    let out_schemas = ir.output_schemas();
    let cm = &cfg.cost;

    let offered: f64 = ir
        .sources()
        .iter()
        .map(|&s| match &plan.op(s).kind {
            OperatorKind::Source(src) => src.event_rate,
            _ => 0.0,
        })
        .sum();

    // --- Backpressure fixed point -----------------------------------
    let mut scale = 1.0f64;
    let mut bottleneck_at_offered = 0.0f64;
    let mut rates = propagate_with(pqp, &ir, scale);
    let mut profile = work_profile_with(
        pqp,
        &ir,
        cluster,
        &dep,
        cm,
        &rates,
        in_schemas,
        out_schemas,
        SkewMode::Model,
    );
    for iter in 0..6 {
        let u_inst = profile.hottest_util.iter().copied().fold(0.0f64, f64::max);
        let u_node = profile.node_util.iter().copied().fold(0.0f64, f64::max);
        let u = u_inst.max(u_node);
        if iter == 0 {
            bottleneck_at_offered = u;
        }
        if u > cfg.utilization_target {
            scale *= cfg.utilization_target / u;
            rates = propagate_with(pqp, &ir, scale);
            profile = work_profile_with(
                pqp,
                &ir,
                cluster,
                &dep,
                cm,
                &rates,
                in_schemas,
                out_schemas,
                SkewMode::Model,
            );
        } else {
            break;
        }
    }

    // --- Network congestion ------------------------------------------
    let mut remote_bytes_per_s = 0.0f64;
    for (e, &(u, _)) in plan.edges().iter().enumerate() {
        let remote_frac = 1.0 - dep.edge_exchange[e].local_fraction();
        remote_bytes_per_s += rates.edge[e] * out_schemas[u.idx()].bytes() as f64 * remote_frac;
    }
    let agg_link_bytes: f64 = cluster
        .nodes
        .iter()
        .map(|n| n.network_gbps * 1e9 / 8.0)
        .sum();
    let net_util = (remote_bytes_per_s / agg_link_bytes.max(1.0)).min(NET_UTIL_CAP);
    let net_congestion = 1.0 / (1.0 - net_util);

    // --- Per-operator latency contributions --------------------------
    let n = plan.num_ops();
    let mut per_op = Vec::with_capacity(n);
    for op in plan.ops() {
        let i = op.id.idx();
        let p = pqp.effective_parallelism_of(op.id).max(1) as f64;
        let rho = profile.hottest_util[i].min(RHO_CAP);
        // Oversubscribed nodes stretch service times (processor sharing).
        let stretch = dep
            .instance_nodes(op.id)
            .iter()
            .map(|&nd| profile.node_util[nd].max(1.0))
            .fold(1.0f64, f64::max);
        let work_ms = profile.work_us[i] * 1e-3 * stretch
            / cluster
                .nodes
                .get(dep.instance_nodes(op.id)[0])
                .map_or(1.0, |nsp| nsp.cpu_ghz);
        // Queueing acts on processing batches (network buffers), not on
        // single tuples: a batch only fills as fast as tuples arrive, and
        // is handed over after the flush timeout at the latest.
        let inst_rate = rates.input[i] / p;
        let batch = cm
            .batch_tuples
            .min(inst_rate * cm.buffer_timeout_ms * 1e-3 + 1.0);
        let sojourn_ms = work_ms * batch / (1.0 - rho);
        let residence_ms = match op.kind.window() {
            Some(w) => w.emission_period_secs(rates.input[i] / p) / 2.0 * 1e3,
            None => 0.0,
        };
        per_op.push(OpMetrics {
            input_rate: rates.input[i],
            output_rate: rates.output[i],
            work_us: profile.work_us[i],
            utilization: profile.hottest_util[i],
            sojourn_ms,
            residence_ms,
        });
    }

    // --- Edge latency contributions ----------------------------------
    let backpressured = scale < 1.0;
    let mut edge_ms = vec![0f64; plan.edges().len()];
    for (e, &(u, d)) in plan.edges().iter().enumerate() {
        edge_ms[e] = match dep.edge_exchange[e] {
            EdgeExchange::Chained => CHAINED_HOP_MS,
            EdgeExchange::Exchange { local_fraction } => {
                let schema = &out_schemas[u.idx()];
                let ghz = cluster.mean_ghz().max(0.1);
                let serde_ms = 2.0 * cm.serialization_us(schema) / ghz * 1e-3;
                let remote = 1.0 - local_fraction;
                let link = cluster.nodes[0].network_gbps;
                let net_ms = remote * (cm.net_hop_ms + cm.wire_ms(schema, link)) * net_congestion;
                // Buffer batching: tuples wait until their buffer fills or
                // the flush timeout expires. The edge rate is spread over
                // p_u × p_d channels (hash/rebalance) or p channels
                // (forward).
                let pu = pqp.effective_parallelism_of(u).max(1) as f64;
                let pd = pqp.effective_parallelism_of(d).max(1) as f64;
                let channels = match pqp.partitioning[e] {
                    Partitioning::Forward => pu,
                    Partitioning::Rebalance | Partitioning::Hash => pu * pd,
                };
                let channel_rate = (rates.edge[e] / channels).max(1e-9);
                let fill_ms = cm.batch_tuples / channel_rate * 1e3;
                let mut buffer_ms = fill_ms.min(cm.buffer_timeout_ms);
                if backpressured {
                    // Credit-based flow control: in-flight buffers sit
                    // full and drain at the (throttled) channel rate.
                    buffer_ms += (cm.inflight_buffers * fill_ms).min(INFLIGHT_WAIT_CAP_MS);
                }
                serde_ms + net_ms + buffer_ms + EXCHANGE_OVERHEAD_MS
            }
        };
    }

    // --- Longest path (joins wait for the slower input) --------------
    let mut path_ms = vec![0f64; n];
    for &id in ir.topo_order() {
        let i = id.idx();
        let own = per_op[i].sojourn_ms + per_op[i].residence_ms;
        let mut best_in = 0.0f64;
        for (&up, &e) in ir.upstream(id).iter().zip(ir.upstream_edges(id)) {
            best_in = best_in.max(path_ms[up.idx()] + edge_ms[e as usize]);
        }
        path_ms[i] = best_in + own;
    }
    // Definition-1 latency per sink; the headline is the slowest sink
    // (identical to the single value for single-sink plans).
    let mut latency_per_sink_ms: Vec<f64> = ir
        .sinks()
        .iter()
        .map(|s| path_ms[s.idx()] + cfg.external_io_ms)
        .collect();
    // Event-time queueing in front of the sources when the offered rate
    // exceeds the sustainable rate (see SimConfig::backpressure_ingest_ms).
    if scale < 1.0 {
        let ingest_ms = cfg.backpressure_ingest_ms * (1.0 / scale - 1.0);
        for l in &mut latency_per_sink_ms {
            *l += ingest_ms;
        }
    }
    let latency_ms = latency_per_sink_ms
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let throughput = offered * scale;

    QueryMetrics {
        latency_ms,
        latency_per_sink_ms,
        throughput,
        offered_rate: offered,
        backpressure_scale: scale,
        bottleneck_utilization: bottleneck_at_offered,
        per_op,
        deployment: dep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_query::operators::SinkOp;
    use zt_query::{
        AggFunction, AggregateOp, DataType, FilterFunction, FilterOp, JoinOp, LogicalPlan,
        SourceOp, WindowPolicy, WindowSpec,
    };

    fn linear_plan(rate: f64, sel: f64) -> LogicalPlan {
        let mut plan = LogicalPlan::new("linear");
        let s = plan.add(OperatorKind::Source(SourceOp {
            event_rate: rate,
            schema: TupleSchema::uniform(DataType::Double, 3),
            key_cardinality: None,
        }));
        let f = plan.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Double,
            selectivity: sel,
        }));
        let a = plan.add(OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 50.0),
            function: AggFunction::Avg,
            agg_class: DataType::Double,
            key_class: Some(DataType::Int),
            selectivity: 0.2,
            key_cardinality: None,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s, f);
        plan.connect(f, a);
        plan.connect(a, k);
        plan
    }

    fn pqp(rate: f64, p: u32) -> ParallelQueryPlan {
        ParallelQueryPlan::with_parallelism(linear_plan(rate, 0.5), vec![p, p, p, p])
    }

    fn cluster() -> Cluster {
        Cluster::homogeneous(ClusterType::M510, 4, 10.0)
    }

    #[test]
    fn rates_propagate_with_selectivity() {
        let plan = ParallelQueryPlan::new(linear_plan(1000.0, 0.5));
        let r = propagate(&plan, 1.0);
        assert_eq!(r.input[0], 1000.0);
        assert_eq!(r.output[0], 1000.0);
        assert_eq!(r.input[1], 1000.0);
        assert_eq!(r.output[1], 500.0);
        assert_eq!(r.input[2], 500.0);
        // tumbling count window: out = in × sel
        assert!((r.output[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn low_rate_is_not_backpressured() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = simulate(
            &pqp(500.0, 2),
            &cluster(),
            &SimConfig::noiseless(),
            &mut rng,
        );
        assert!(!m.backpressured());
        assert!((m.throughput - 500.0).abs() < 1e-6);
        assert!(m.latency_ms > 0.0 && m.latency_ms.is_finite());
    }

    #[test]
    fn overload_triggers_backpressure() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = simulate(
            &pqp(50_000_000.0, 1),
            &cluster(),
            &SimConfig::noiseless(),
            &mut rng,
        );
        assert!(m.backpressured());
        assert!(m.throughput < 50_000_000.0);
        assert!(m.bottleneck_utilization > 1.0);
    }

    #[test]
    fn more_parallelism_raises_capacity() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SimConfig::noiseless();
        let heavy = 50_000_000.0;
        let t1 = simulate(&pqp(heavy, 1), &cluster(), &cfg, &mut rng).throughput;
        let t8 = simulate(&pqp(heavy, 8), &cluster(), &cfg, &mut rng).throughput;
        assert!(t8 > t1 * 2.0, "t1={t1} t8={t8}");
    }

    #[test]
    fn more_parallelism_lowers_latency_under_load() {
        // At 3M ev/s a single instance is backpressured: events queue in
        // front of the source and event-time latency explodes; scaling
        // out removes the backpressure.
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SimConfig::noiseless();
        let rate = 3_000_000.0;
        let m1 = simulate(&pqp(rate, 1), &cluster(), &cfg, &mut rng);
        let m8 = simulate(&pqp(rate, 8), &cluster(), &cfg, &mut rng);
        assert!(m1.backpressured());
        assert!(
            m8.latency_ms < m1.latency_ms / 10.0,
            "l1={} l8={}",
            m1.latency_ms,
            m8.latency_ms
        );
    }

    #[test]
    fn faster_hardware_is_faster() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = SimConfig::noiseless();
        let slow = Cluster::homogeneous(ClusterType::M510, 2, 10.0); // 2.0 GHz, 8 cores
        let fast = Cluster::homogeneous(ClusterType::Rs6525, 2, 10.0); // 2.8 GHz, 64 cores
        let heavy = 20_000_000.0;
        let t_slow = simulate(&pqp(heavy, 8), &slow, &cfg, &mut rng).throughput;
        let t_fast = simulate(&pqp(heavy, 8), &fast, &cfg, &mut rng).throughput;
        assert!(t_fast > t_slow);
    }

    #[test]
    fn chaining_reduces_latency() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut cfg = SimConfig::noiseless();
        let plan = pqp(10_000.0, 4);
        cfg.chaining = ChainingMode::Never;
        let unchained = simulate(&plan, &cluster(), &cfg, &mut rng).latency_ms;
        cfg.chaining = ChainingMode::Always;
        let chained = simulate(&plan, &cluster(), &cfg, &mut rng).latency_ms;
        assert!(
            chained < unchained,
            "chained={chained} unchained={unchained}"
        );
    }

    #[test]
    fn count_window_residence_grows_with_parallelism() {
        // Higher parallelism -> fewer tuples per instance -> count windows
        // fill more slowly (the effect the paper notes for count windows).
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = SimConfig::noiseless();
        let m2 = simulate(&pqp(5_000.0, 2), &cluster(), &cfg, &mut rng);
        let m16 = simulate(&pqp(5_000.0, 16), &cluster(), &cfg, &mut rng);
        let agg = 2usize;
        assert!(m16.per_op[agg].residence_ms > m2.per_op[agg].residence_ms);
    }

    #[test]
    fn join_query_simulates() {
        let mut plan = LogicalPlan::new("join");
        let s1 = plan.add(OperatorKind::Source(SourceOp {
            event_rate: 10_000.0,
            schema: TupleSchema::uniform(DataType::Int, 3),
            key_cardinality: None,
        }));
        let s2 = plan.add(OperatorKind::Source(SourceOp {
            event_rate: 8_000.0,
            schema: TupleSchema::uniform(DataType::Int, 3),
            key_cardinality: None,
        }));
        let j = plan.add(OperatorKind::Join(JoinOp {
            window: WindowSpec::tumbling(WindowPolicy::Time, 1_000.0),
            key_class: DataType::Int,
            selectivity: 0.001,
            key_cardinality: None,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s1, j);
        plan.connect(s2, j);
        plan.connect(j, k);
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![2, 2, 4, 2]);
        let mut rng = StdRng::seed_from_u64(8);
        let m = simulate(&pqp, &cluster(), &SimConfig::noiseless(), &mut rng);
        assert!(m.latency_ms.is_finite() && m.latency_ms > 0.0);
        assert!(m.throughput > 0.0);
        // join output reflects both windows
        assert!(m.per_op[2].output_rate > 0.0);
    }

    #[test]
    fn noise_changes_labels_but_not_wildly() {
        let cfg = SimConfig::default();
        let plan = pqp(10_000.0, 4);
        let mut r1 = StdRng::seed_from_u64(10);
        let mut r2 = StdRng::seed_from_u64(11);
        let a = simulate(&plan, &cluster(), &cfg, &mut r1);
        let b = simulate(&plan, &cluster(), &cfg, &mut r2);
        assert_ne!(a.latency_ms, b.latency_ms);
        let ratio = a.latency_ms / b.latency_ms;
        assert!(ratio > 0.5 && ratio < 2.0);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let cfg = SimConfig::default();
        let plan = pqp(10_000.0, 4);
        let a = simulate(&plan, &cluster(), &cfg, &mut StdRng::seed_from_u64(42));
        let b = simulate(&plan, &cluster(), &cfg, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.throughput, b.throughput);
    }

    #[test]
    fn throughput_never_exceeds_offered_without_noise() {
        let cfg = SimConfig::noiseless();
        let mut rng = StdRng::seed_from_u64(12);
        for rate in [100.0, 10_000.0, 1_000_000.0, 100_000_000.0] {
            for p in [1u32, 4, 16, 64] {
                let m = simulate(&pqp(rate, p), &cluster(), &cfg, &mut rng);
                assert!(m.throughput <= m.offered_rate + 1e-6);
                assert!(m.backpressure_scale > 0.0 && m.backpressure_scale <= 1.0);
            }
        }
    }

    #[test]
    fn single_sink_per_sink_vector_equals_headline() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = simulate(
            &pqp(10_000.0, 2),
            &cluster(),
            &SimConfig::noiseless(),
            &mut rng,
        );
        assert_eq!(m.latency_per_sink_ms, vec![m.latency_ms]);
    }

    #[test]
    fn multi_sink_plan_reports_per_sink_latencies() {
        let plan = zt_query::benchmarks::smart_grid_combined(5_000.0);
        let pqp = ParallelQueryPlan::new(plan);
        let mut rng = StdRng::seed_from_u64(14);
        let m = simulate(&pqp, &cluster(), &SimConfig::noiseless(), &mut rng);
        assert_eq!(m.latency_per_sink_ms.len(), 2);
        // headline = max over the per-sink Definition-1 latencies
        let max = m
            .latency_per_sink_ms
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(m.latency_ms, max);
        assert!(m
            .latency_per_sink_ms
            .iter()
            .all(|l| l.is_finite() && *l > 0.0));
        assert!(m.throughput > 0.0);
    }

    #[test]
    fn propagate_with_matches_sealing_wrapper() {
        let pqp = pqp(2_000.0, 2);
        let ir = pqp.plan.validate().unwrap();
        let a = propagate(&pqp, 1.0);
        let b = propagate_with(&pqp, &ir, 1.0);
        assert_eq!(a.input, b.input);
        assert_eq!(a.output, b.output);
        assert_eq!(a.edge, b.edge);
    }
}
