//! Summary-statistics helpers shared by the simulator, the trainer and the
//! experiment harness.
//!
//! The implementation lives in [`zt_telemetry::summary`] so the telemetry
//! registry's histograms and the simulator share one statistics type
//! without a dependency cycle; this module re-exports it under the
//! historical `zt_dspsim::metrics` paths. See the source module for the
//! pinned edge-case semantics (NaN on empty, 0.0 spread on single-sample
//! and constant series) and the property tests backing them.

pub use zt_telemetry::summary::{percentile, Summary};
