//! Summary-statistics helpers shared by the simulator, the trainer and the
//! experiment harness.

/// Online accumulator for a stream of f64 samples.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    pub fn new() -> Self {
        Summary { values: Vec::new() }
    }

    pub fn add(&mut self, v: f64) {
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Percentile via linear interpolation on the sorted sample
    /// (`q ∈ [0, 100]`).
    pub fn percentile(&self, q: f64) -> f64 {
        percentile(&self.values, q)
    }

    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    pub fn std(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Summary {
            values: iter.into_iter().collect(),
        }
    }
}

/// Percentile of a sample with linear interpolation (`q ∈ [0, 100]`).
/// Returns NaN on an empty slice.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.std() - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 50.0), 25.0);
        assert!((percentile(&v, 95.0) - 38.5).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_nan() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert!(s.mean().is_nan());
        assert!(s.percentile(50.0).is_nan());
    }

    #[test]
    fn single_value() {
        let s: Summary = [7.0].into_iter().collect();
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.percentile(95.0), 7.0);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let v = [1.0, 2.0];
        assert_eq!(percentile(&v, -5.0), 1.0);
        assert_eq!(percentile(&v, 150.0), 2.0);
    }
}
