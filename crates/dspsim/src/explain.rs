//! Human-readable breakdowns of a simulated deployment.
//!
//! Turns a [`QueryMetrics`] into the per-operator latency decomposition
//! and bottleneck diagnosis an engineer would extract from a Flink web-UI
//! + metrics stack: where the end-to-end latency comes from (queueing vs
//!   window residence vs exchanges) and which operator throttles the
//!   throughput.

use zt_query::{OpId, ParallelQueryPlan};

use crate::analytical::QueryMetrics;

/// One operator's share of the deployment's costs.
#[derive(Clone, Debug)]
pub struct OpBreakdown {
    pub op: OpId,
    pub label: String,
    pub parallelism: u32,
    pub grouping: u32,
    pub input_rate: f64,
    pub utilization: f64,
    pub sojourn_ms: f64,
    pub residence_ms: f64,
}

/// A full deployment diagnosis.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    pub per_op: Vec<OpBreakdown>,
    /// Operator with the highest instance utilization.
    pub bottleneck: OpId,
    pub bottleneck_utilization: f64,
    pub backpressured: bool,
    pub latency_ms: f64,
    pub throughput: f64,
}

/// Build the diagnosis from solver output.
pub fn diagnose(pqp: &ParallelQueryPlan, metrics: &QueryMetrics) -> Diagnosis {
    let per_op: Vec<OpBreakdown> = pqp
        .plan
        .ops()
        .iter()
        .zip(metrics.per_op.iter())
        .map(|(op, m)| OpBreakdown {
            op: op.id,
            label: op.kind.label().to_string(),
            parallelism: pqp.parallelism_of(op.id),
            grouping: metrics.deployment.grouping_number(op.id),
            input_rate: m.input_rate,
            utilization: m.utilization,
            sojourn_ms: m.sojourn_ms,
            residence_ms: m.residence_ms,
        })
        .collect();
    let (bottleneck, bottleneck_utilization) = per_op
        .iter()
        .map(|o| (o.op, o.utilization))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite utilization"))
        .expect("non-empty plan");
    Diagnosis {
        per_op,
        bottleneck,
        bottleneck_utilization,
        backpressured: metrics.backpressured(),
        latency_ms: metrics.latency_ms,
        throughput: metrics.throughput,
    }
}

impl std::fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "latency {:.2} ms, throughput {:.0} ev/s{}",
            self.latency_ms,
            self.throughput,
            if self.backpressured {
                " (BACKPRESSURED)"
            } else {
                ""
            }
        )?;
        writeln!(
            f,
            "{:>4} {:<12} {:>3} {:>5} {:>12} {:>6} {:>12} {:>12}",
            "op", "kind", "P", "group", "in (ev/s)", "util", "sojourn(ms)", "window(ms)"
        )?;
        for o in &self.per_op {
            writeln!(
                f,
                "{:>4} {:<12} {:>3} {:>5} {:>12.0} {:>6.2} {:>12.3} {:>12.2}{}",
                o.op.to_string(),
                o.label,
                o.parallelism,
                o.grouping,
                o.input_rate,
                o.utilization,
                o.sojourn_ms,
                o.residence_ms,
                if o.op == self.bottleneck {
                    "  <- bottleneck"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical::{simulate, SimConfig};
    use crate::cluster::{Cluster, ClusterType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_query::builder::StreamBuilder;
    use zt_query::{AggFunction, DataType, FilterFunction, WindowPolicy, WindowSpec};

    fn fixture() -> (ParallelQueryPlan, QueryMetrics) {
        let plan = StreamBuilder::source(500_000.0, DataType::Double, 3)
            .filter(FilterFunction::Gt, DataType::Double, 0.5)
            .window_aggregate(
                WindowSpec::tumbling(WindowPolicy::Count, 50.0),
                AggFunction::Avg,
                DataType::Double,
                Some(DataType::Int),
                0.2,
            )
            .sink("diag");
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![2, 2, 2, 2]);
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let metrics = simulate(&pqp, &cluster, &SimConfig::noiseless(), &mut rng);
        (pqp, metrics)
    }

    #[test]
    fn diagnosis_covers_every_operator() {
        let (pqp, metrics) = fixture();
        let d = diagnose(&pqp, &metrics);
        assert_eq!(d.per_op.len(), pqp.plan.num_ops());
        assert_eq!(d.latency_ms, metrics.latency_ms);
        // bottleneck utilization is the max
        for o in &d.per_op {
            assert!(o.utilization <= d.bottleneck_utilization + 1e-12);
        }
    }

    #[test]
    fn bottleneck_is_a_hot_operator() {
        let (pqp, metrics) = fixture();
        let d = diagnose(&pqp, &metrics);
        let b = d
            .per_op
            .iter()
            .find(|o| o.op == d.bottleneck)
            .expect("bottleneck in list");
        assert!(b.utilization > 0.0);
    }

    #[test]
    fn display_renders_all_rows() {
        let (pqp, metrics) = fixture();
        let d = diagnose(&pqp, &metrics);
        let text = format!("{d}");
        assert!(text.contains("bottleneck"));
        assert!(text.contains("window-agg"));
        assert_eq!(text.lines().count(), 2 + pqp.plan.num_ops());
    }
}
