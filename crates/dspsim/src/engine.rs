//! Discrete-event, tuple-batch-level execution engine.
//!
//! While [`crate::analytical`] solves for steady-state metrics, this module
//! actually *executes* a parallel query plan: sources emit timestamped
//! tuple batches, filters drop tuples, count/time windows fill and fire,
//! joins maintain per-instance window state and emit matches, and every
//! task instance is a FIFO server whose service time comes from the same
//! [`CostModel`] as the analytical path. Exchanges route batches by the
//! edge's partitioning strategy and pay network delay when they cross
//! nodes.
//!
//! The engine is used to validate the analytical model (same inputs must
//! produce the same *orderings* and comparable magnitudes) and by the
//! examples. It is not meant to label 24k training queries — that is the
//! analytical path's job.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::Rng;
use zt_query::{OpId, OperatorKind, ParallelQueryPlan, Partitioning, PlanIr};

use crate::cluster::Cluster;
use crate::costmodel::CostModel;
use crate::metrics::Summary;
use crate::placement::{place_with, ChainingMode, Deployment};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    pub cost: CostModel,
    pub chaining: ChainingMode,
    /// Simulated wall-clock horizon, seconds.
    pub horizon_secs: f64,
    /// Fraction of the horizon discarded as warm-up.
    pub warmup_fraction: f64,
    /// Target number of source-emission events per source instance over
    /// the horizon; batches are sized to hit it (bounds the event count
    /// for very fast sources).
    pub target_emissions: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cost: CostModel::default(),
            chaining: ChainingMode::Auto,
            horizon_secs: 5.0,
            warmup_fraction: 0.2,
            target_emissions: 2_000,
        }
    }
}

/// Empirical measurement produced by [`run`].
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    /// Mean end-to-end latency of tuples reaching any sink, ms.
    pub latency_mean_ms: f64,
    /// Median end-to-end latency, ms.
    pub latency_p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub latency_p95_ms: f64,
    /// Tuples/s ingested by the sources during the measured interval.
    pub source_throughput: f64,
    /// Tuples/s arriving at all sinks during the measured interval.
    pub sink_rate: f64,
    /// Number of sink-side latency samples (all sinks pooled).
    pub samples: usize,
    /// Per-sink breakdown, one entry per [`PlanIr::sinks`] element in
    /// sink-id order. Single-sink plans get a one-element vector whose
    /// aggregates match the headline fields.
    pub per_sink: Vec<SinkMetrics>,
}

/// Per-sink slice of the engine measurement.
#[derive(Clone, Debug)]
pub struct SinkMetrics {
    /// The sink operator.
    pub op: OpId,
    /// Mean end-to-end latency of tuples reaching this sink, ms.
    pub latency_mean_ms: f64,
    /// Tuples/s arriving at this sink during the measured interval.
    pub sink_rate: f64,
    /// Latency samples recorded at this sink.
    pub samples: usize,
}

/// A batch of tuples sharing a creation timestamp.
#[derive(Clone, Debug)]
struct Batch {
    /// Number of tuples in the batch (fractional counts are resolved
    /// probabilistically at the operator that shrinks them).
    count: f64,
    /// Source emission time of the oldest tuple, seconds.
    created: f64,
}

#[derive(Debug)]
enum EventKind {
    /// A source instance emits its next batch.
    SourceEmit { op: OpId, instance: usize },
    /// A batch arrives at an instance's input queue.
    Arrival {
        op: OpId,
        instance: usize,
        batch: Batch,
    },
    /// An instance finished its current service.
    ServiceDone { op: OpId, instance: usize },
    /// A time-based window fires on an instance.
    WindowTimer { op: OpId, instance: usize },
}

struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap by (time, seq)
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Join window state of one instance: one buffer per input side.
#[derive(Default, Clone)]
struct JoinState {
    /// (insertion time, tuple count) per side.
    left: Vec<(f64, f64)>,
    right: Vec<(f64, f64)>,
}

impl JoinState {
    fn prune_count(buf: &mut Vec<(f64, f64)>, max_tuples: f64) {
        let mut total: f64 = buf.iter().map(|&(_, c)| c).sum();
        while total > max_tuples && !buf.is_empty() {
            let (_, c) = buf.remove(0);
            total -= c;
        }
    }

    fn prune_time(buf: &mut Vec<(f64, f64)>, now: f64, horizon_secs: f64) {
        buf.retain(|&(t, _)| now - t <= horizon_secs);
    }

    fn total(buf: &[(f64, f64)]) -> f64 {
        buf.iter().map(|&(_, c)| c).sum()
    }
}

/// Window-aggregate state of one instance.
#[derive(Default, Clone)]
struct AggState {
    /// Accumulated tuple count since the last fire.
    pending: f64,
    /// Oldest pending creation timestamp.
    oldest: f64,
    has_pending: bool,
}

/// Per-instance runtime state.
struct InstanceState {
    queue: std::collections::VecDeque<Batch>,
    busy_until: f64,
    /// Current batch in service (routed downstream on completion).
    in_service: Option<Batch>,
    rr_counter: usize,
    agg: AggState,
    join: JoinState,
}

impl InstanceState {
    fn new() -> Self {
        InstanceState {
            queue: std::collections::VecDeque::new(),
            busy_until: 0.0,
            in_service: None,
            rr_counter: 0,
            agg: AggState::default(),
            join: JoinState::default(),
        }
    }
}

/// Run the plan for the configured horizon and measure latency/throughput.
pub fn run<R: Rng + ?Sized>(
    pqp: &ParallelQueryPlan,
    cluster: &Cluster,
    cfg: &EngineConfig,
    rng: &mut R,
) -> EngineMetrics {
    debug_assert!(pqp.validate().is_ok());
    let _span = zt_telemetry::span("engine.run");
    let plan = &pqp.plan;
    let ir = plan.validate().expect("run() requires a valid plan");
    let dep = place_with(pqp, &ir, cluster, cfg.chaining);
    let in_schemas = ir.input_schemas();
    let out_schemas = ir.output_schemas();
    let n_ops = plan.num_ops();

    // Per-op instance states. Only *effective* instances are scheduled:
    // under hash partitioning an operator with key cardinality K never
    // routes tuples to more than ceil(K) instances, so the surplus ones
    // would sit idle for the whole run.
    let mut states: Vec<Vec<InstanceState>> = plan
        .ops()
        .iter()
        .map(|op| {
            (0..pqp.effective_parallelism_of(op.id) as usize)
                .map(|_| InstanceState::new())
                .collect()
        })
        .collect();

    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
        *seq += 1;
        heap.push(Event {
            time,
            seq: *seq,
            kind,
        });
    };

    // Source emission setup: batch sizes bound the event count.
    let mut batch_of: Vec<f64> = vec![1.0; n_ops];
    for &s in ir.sources() {
        if let OperatorKind::Source(src) = &plan.op(s).kind {
            let p = pqp.parallelism_of(s).max(1) as f64;
            let per_inst = src.event_rate / p;
            let total = per_inst * cfg.horizon_secs;
            batch_of[s.idx()] = (total / cfg.target_emissions as f64).max(1.0);
            for j in 0..pqp.parallelism_of(s) as usize {
                push(
                    &mut heap,
                    &mut seq,
                    rng.gen_range(0.0..batch_of[s.idx()] / per_inst.max(1e-12)),
                    EventKind::SourceEmit { op: s, instance: j },
                );
            }
        }
    }

    // Time-window timers.
    for op in plan.ops() {
        if let Some(w) = op.kind.window() {
            if w.policy == zt_query::WindowPolicy::Time && !matches!(op.kind, OperatorKind::Join(_))
            {
                let period = w.emission_period() / 1e3;
                for j in 0..pqp.effective_parallelism_of(op.id) as usize {
                    push(
                        &mut heap,
                        &mut seq,
                        period,
                        EventKind::WindowTimer {
                            op: op.id,
                            instance: j,
                        },
                    );
                }
            }
        }
    }

    let warmup = cfg.horizon_secs * cfg.warmup_fraction;
    let mut sink_latencies = Summary::new();
    let mut sink_tuples = 0f64;
    let mut source_tuples = 0f64;
    // Per-sink accumulators, indexed by position in `ir.sinks()`.
    let mut sink_index = vec![usize::MAX; n_ops];
    for (k, &s) in ir.sinks().iter().enumerate() {
        sink_index[s.idx()] = k;
    }
    let mut per_sink_latencies: Vec<Summary> = ir.sinks().iter().map(|_| Summary::new()).collect();
    let mut per_sink_tuples = vec![0f64; ir.sinks().len()];

    // Helper: route a batch over each out-edge of `from`. CSR out-lists
    // preserve edge-insertion order, so the event sequence (and therefore
    // the seeded RNG stream) is identical to the old whole-edge-list scan.
    #[allow(clippy::too_many_arguments)]
    fn route<R2: Rng + ?Sized>(
        heap: &mut BinaryHeap<Event>,
        seq: &mut u64,
        pqp: &ParallelQueryPlan,
        ir: &PlanIr,
        dep: &Deployment,
        cluster: &Cluster,
        cm: &CostModel,
        schema_bytes_edge: &[f64],
        from: OpId,
        from_instance: usize,
        rr: &mut usize,
        now: f64,
        batch: Batch,
        rng: &mut R2,
    ) {
        for (&d, &e) in ir.downstream(from).iter().zip(ir.downstream_edges(from)) {
            let e = e as usize;
            let pd = pqp.effective_parallelism_of(d) as usize;
            let target = match pqp.partitioning[e] {
                Partitioning::Forward => from_instance % pd,
                Partitioning::Rebalance => {
                    *rr += 1;
                    (*rr) % pd
                }
                Partitioning::Hash => rng.gen_range(0..pd),
            };
            let src_node = dep.instance_nodes(from)
                [from_instance.min(dep.instance_nodes(from).len().saturating_sub(1))];
            let dst_node =
                dep.instance_nodes(d)[target.min(dep.instance_nodes(d).len().saturating_sub(1))];
            let mut delay = 1e-6;
            if !dep.edge_exchange[e].is_chained() {
                let ghz = cluster.nodes[src_node].cpu_ghz;
                delay += 2.0 * cm.ser_base_us / ghz * 1e-6;
                if src_node != dst_node {
                    let link = cluster.nodes[src_node].network_gbps;
                    delay += cm.net_hop_ms * 1e-3 + schema_bytes_edge[e] * 8.0 / (link * 1e9);
                }
            }
            *seq += 1;
            heap.push(Event {
                time: now + delay,
                seq: *seq,
                kind: EventKind::Arrival {
                    op: d,
                    instance: target,
                    batch: batch.clone(),
                },
            });
        }
    }

    let schema_bytes_edge: Vec<f64> = plan
        .edges()
        .iter()
        .map(|&(u, _)| out_schemas[u.idx()].bytes() as f64)
        .collect();

    // Probabilistic rounding of fractional tuple counts.
    fn round_count<R2: Rng + ?Sized>(c: f64, rng: &mut R2) -> f64 {
        let floor = c.floor();
        if rng.gen_bool((c - floor).clamp(0.0, 1.0)) {
            floor + 1.0
        } else {
            floor
        }
    }

    // Apply an operator's semantics to an in-service batch, producing the
    // batch to forward (if any).
    #[allow(clippy::too_many_arguments)]
    fn apply_op<R2: Rng + ?Sized>(
        kind: &OperatorKind,
        state: &mut InstanceState,
        batch: &Batch,
        now: f64,
        rng: &mut R2,
    ) -> Option<Batch> {
        match kind {
            OperatorKind::Source(_) | OperatorKind::Sink(_) => Some(batch.clone()),
            OperatorKind::Filter(f) => {
                let out = round_count(batch.count * f.selectivity, rng);
                (out > 0.0).then_some(Batch {
                    count: out,
                    created: batch.created,
                })
            }
            OperatorKind::Aggregate(a) => {
                if !state.agg.has_pending {
                    state.agg.oldest = batch.created;
                    state.agg.has_pending = true;
                }
                state.agg.pending += batch.count;
                match a.window.policy {
                    zt_query::WindowPolicy::Count => {
                        let fire_at = a.window.emission_period();
                        if state.agg.pending >= fire_at {
                            let windows = (state.agg.pending / fire_at).floor();
                            let groups =
                                round_count(a.selectivity * a.window.length * windows, rng)
                                    .max(1.0);
                            let created = state.agg.oldest;
                            state.agg.pending -= windows * fire_at;
                            state.agg.has_pending = state.agg.pending > 0.0;
                            state.agg.oldest = now;
                            Some(Batch {
                                count: groups,
                                created,
                            })
                        } else {
                            None
                        }
                    }
                    // time windows fire on timer events, not per batch
                    zt_query::WindowPolicy::Time => None,
                }
            }
            OperatorKind::Join(_) => {
                // handled in the arrival path (needs to know the side)
                Some(batch.clone())
            }
        }
    }

    let cm = &cfg.cost;
    let mut now = 0.0f64;
    let mut events = 0u64;
    let max_events = 5_000_000u64;

    while let Some(ev) = heap.pop() {
        now = ev.time;
        if now > cfg.horizon_secs {
            break;
        }
        events += 1;
        if events > max_events {
            break;
        }
        match ev.kind {
            EventKind::SourceEmit { op, instance } => {
                if let OperatorKind::Source(src) = &plan.op(op).kind {
                    let p = pqp.parallelism_of(op).max(1) as f64;
                    let per_inst = src.event_rate / p;
                    let b = batch_of[op.idx()];
                    if now >= warmup {
                        source_tuples += b;
                    }
                    let batch = Batch {
                        count: b,
                        created: now,
                    };
                    let rr = &mut states[op.idx()][instance].rr_counter;
                    route(
                        &mut heap,
                        &mut seq,
                        pqp,
                        &ir,
                        &dep,
                        cluster,
                        cm,
                        &schema_bytes_edge,
                        op,
                        instance,
                        rr,
                        now,
                        batch,
                        rng,
                    );
                    push(
                        &mut heap,
                        &mut seq,
                        now + b / per_inst.max(1e-12),
                        EventKind::SourceEmit { op, instance },
                    );
                }
            }
            EventKind::Arrival {
                op,
                instance,
                batch,
            } => {
                let i = op.idx();
                if plan.op(op).kind.is_sink() {
                    if now >= warmup {
                        sink_tuples += batch.count;
                        sink_latencies.add((now - batch.created) * 1e3);
                        let k = sink_index[i];
                        per_sink_tuples[k] += batch.count;
                        per_sink_latencies[k].add((now - batch.created) * 1e3);
                    }
                    continue;
                }
                // Joins record which side the batch came from by pushing
                // it straight into window state; matches are emitted after
                // service.
                let st = &mut states[i][instance];
                st.queue.push_back(batch);
                if st.in_service.is_none() {
                    // start service
                    let b = st.queue.pop_front().expect("just pushed");
                    let node = dep.instance_nodes(op)
                        [instance.min(dep.instance_nodes(op).len().saturating_sub(1))];
                    let ghz = cluster.nodes[node].cpu_ghz;
                    let other_w = match &plan.op(op).kind {
                        OperatorKind::Join(_) => {
                            JoinState::total(&st.join.left).max(JoinState::total(&st.join.right))
                        }
                        _ => 0.0,
                    };
                    let us = cm.service_us(
                        &plan.op(op).kind,
                        &in_schemas[i],
                        &out_schemas[i],
                        0.0,
                        other_w,
                    );
                    let service = b.count * us / ghz * 1e-6;
                    st.in_service = Some(b);
                    st.busy_until = now + service;
                    push(
                        &mut heap,
                        &mut seq,
                        now + service,
                        EventKind::ServiceDone { op, instance },
                    );
                }
            }
            EventKind::ServiceDone { op, instance } => {
                let i = op.idx();
                // Take what we need out of the state before routing.
                let (out, next_service): (Option<Batch>, Option<(Batch, f64)>);
                {
                    let st = &mut states[i][instance];
                    let batch = st.in_service.take().expect("service done without batch");
                    out = match &plan.op(op).kind {
                        OperatorKind::Join(j) => {
                            // Which side? Use alternating assignment keyed
                            // on the creation hash — sides are symmetric in
                            // our cost model; windows are pruned per spec.
                            let side_left = rng.gen_bool(0.5);
                            let (own, other) = if side_left {
                                (&mut st.join.left, &mut st.join.right)
                            } else {
                                (&mut st.join.right, &mut st.join.left)
                            };
                            own.push((now, batch.count));
                            let p = pqp.effective_parallelism_of(op).max(1) as f64;
                            match j.window.policy {
                                zt_query::WindowPolicy::Count => {
                                    JoinState::prune_count(own, j.window.length / p.sqrt());
                                    JoinState::prune_count(other, j.window.length / p.sqrt());
                                }
                                zt_query::WindowPolicy::Time => {
                                    let h = j.window.length / 1e3;
                                    JoinState::prune_time(own, now, h);
                                    JoinState::prune_time(other, now, h);
                                }
                            }
                            let matches = round_count(
                                j.selectivity * batch.count * JoinState::total(other),
                                rng,
                            );
                            (matches > 0.0).then_some(Batch {
                                count: matches,
                                created: batch.created,
                            })
                        }
                        kind => apply_op(kind, st, &batch, now, rng),
                    };
                    next_service = st.queue.pop_front().map(|b| {
                        let node = dep.instance_nodes(op)
                            [instance.min(dep.instance_nodes(op).len().saturating_sub(1))];
                        let ghz = cluster.nodes[node].cpu_ghz;
                        let other_w = match &plan.op(op).kind {
                            OperatorKind::Join(_) => JoinState::total(&st.join.left)
                                .max(JoinState::total(&st.join.right)),
                            _ => 0.0,
                        };
                        let us = cm.service_us(
                            &plan.op(op).kind,
                            &in_schemas[i],
                            &out_schemas[i],
                            0.0,
                            other_w,
                        );
                        (b, us / ghz * 1e-6)
                    });
                }
                if let Some(batch) = out {
                    let mut rr = states[i][instance].rr_counter;
                    route(
                        &mut heap,
                        &mut seq,
                        pqp,
                        &ir,
                        &dep,
                        cluster,
                        cm,
                        &schema_bytes_edge,
                        op,
                        instance,
                        &mut rr,
                        now,
                        batch,
                        rng,
                    );
                    states[i][instance].rr_counter = rr;
                }
                if let Some((b, per_tuple)) = next_service {
                    let service = b.count * per_tuple;
                    let st = &mut states[i][instance];
                    st.in_service = Some(b);
                    st.busy_until = now + service;
                    push(
                        &mut heap,
                        &mut seq,
                        now + service,
                        EventKind::ServiceDone { op, instance },
                    );
                }
            }
            EventKind::WindowTimer { op, instance } => {
                let i = op.idx();
                if let OperatorKind::Aggregate(a) = &plan.op(op).kind {
                    let (fire, created): (f64, f64);
                    {
                        let st = &mut states[i][instance];
                        let pending = st.agg.pending;
                        created = if st.agg.has_pending {
                            st.agg.oldest
                        } else {
                            now
                        };
                        // groups = sel × |W|
                        fire = if pending > 0.0 {
                            round_count(a.selectivity * pending * a.window.overlap_factor(), rng)
                                .max(1.0)
                        } else {
                            0.0
                        };
                        // tumbling clears everything; sliding keeps the
                        // overlap share
                        let keep = match a.window.window_type() {
                            zt_query::WindowType::Tumbling => 0.0,
                            zt_query::WindowType::Sliding => {
                                pending * (1.0 - 1.0 / a.window.overlap_factor())
                            }
                        };
                        st.agg.pending = keep;
                        st.agg.has_pending = keep > 0.0;
                        if st.agg.has_pending {
                            st.agg.oldest = now;
                        }
                    }
                    if fire > 0.0 {
                        let batch = Batch {
                            count: fire,
                            created,
                        };
                        let mut rr = states[i][instance].rr_counter;
                        route(
                            &mut heap,
                            &mut seq,
                            pqp,
                            &ir,
                            &dep,
                            cluster,
                            cm,
                            &schema_bytes_edge,
                            op,
                            instance,
                            &mut rr,
                            now,
                            batch,
                            rng,
                        );
                        states[i][instance].rr_counter = rr;
                    }
                    let period = a.window.emission_period() / 1e3;
                    push(
                        &mut heap,
                        &mut seq,
                        now + period,
                        EventKind::WindowTimer { op, instance },
                    );
                }
            }
        }
    }

    let measured = (now.min(cfg.horizon_secs) - warmup).max(1e-9);
    zt_telemetry::counter_add("engine.source_tuples", source_tuples as u64);
    zt_telemetry::counter_add("engine.sink_tuples", sink_tuples as u64);
    let per_sink = ir
        .sinks()
        .iter()
        .enumerate()
        .map(|(k, &s)| SinkMetrics {
            op: s,
            latency_mean_ms: per_sink_latencies[k].mean(),
            sink_rate: per_sink_tuples[k] / measured,
            samples: per_sink_latencies[k].len(),
        })
        .collect();
    EngineMetrics {
        latency_mean_ms: sink_latencies.mean(),
        latency_p50_ms: sink_latencies.median(),
        latency_p95_ms: sink_latencies.percentile(95.0),
        source_throughput: source_tuples / measured,
        sink_rate: sink_tuples / measured,
        samples: sink_latencies.len(),
        per_sink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_query::operators::SinkOp;
    use zt_query::{
        AggFunction, AggregateOp, DataType, FilterFunction, FilterOp, LogicalPlan, SourceOp,
        TupleSchema, WindowPolicy, WindowSpec,
    };

    fn linear_pqp(rate: f64, p: u32, window_len: f64) -> ParallelQueryPlan {
        let mut plan = LogicalPlan::new("linear");
        let s = plan.add(OperatorKind::Source(SourceOp {
            event_rate: rate,
            schema: TupleSchema::uniform(DataType::Double, 3),
            key_cardinality: None,
        }));
        let f = plan.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Double,
            selectivity: 0.5,
        }));
        let a = plan.add(OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, window_len),
            function: AggFunction::Avg,
            agg_class: DataType::Double,
            key_class: Some(DataType::Int),
            selectivity: 0.2,
            key_cardinality: None,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s, f);
        plan.connect(f, a);
        plan.connect(a, k);
        ParallelQueryPlan::with_parallelism(plan, vec![p, p, p, p])
    }

    fn cluster() -> Cluster {
        Cluster::homogeneous(ClusterType::M510, 2, 10.0)
    }

    #[test]
    fn tuples_flow_to_the_sink() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = run(
            &linear_pqp(2_000.0, 2, 10.0),
            &cluster(),
            &EngineConfig::default(),
            &mut rng,
        );
        assert!(m.samples > 10, "samples = {}", m.samples);
        assert!(m.latency_mean_ms > 0.0);
        assert!(m.sink_rate > 0.0);
    }

    #[test]
    fn source_throughput_close_to_offered() {
        let mut rng = StdRng::seed_from_u64(2);
        let rate = 5_000.0;
        let m = run(
            &linear_pqp(rate, 2, 10.0),
            &cluster(),
            &EngineConfig::default(),
            &mut rng,
        );
        assert!(
            (m.source_throughput - rate).abs() / rate < 0.15,
            "throughput {} vs offered {rate}",
            m.source_throughput
        );
    }

    #[test]
    fn filter_and_window_reduce_sink_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let rate = 5_000.0;
        let m = run(
            &linear_pqp(rate, 2, 10.0),
            &cluster(),
            &EngineConfig::default(),
            &mut rng,
        );
        // filter keeps 50%, window emits sel×in = 10% of that
        let expected = rate * 0.5 * 0.2;
        assert!(
            m.sink_rate < rate * 0.5,
            "sink rate {} not reduced",
            m.sink_rate
        );
        assert!(
            (m.sink_rate - expected).abs() / expected < 0.5,
            "sink rate {} vs expected {expected}",
            m.sink_rate
        );
    }

    #[test]
    fn bigger_count_windows_mean_higher_latency() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = EngineConfig::default();
        let small = run(&linear_pqp(2_000.0, 2, 5.0), &cluster(), &cfg, &mut rng);
        let large = run(&linear_pqp(2_000.0, 2, 500.0), &cluster(), &cfg, &mut rng);
        assert!(
            large.latency_p50_ms > small.latency_p50_ms,
            "large {} vs small {}",
            large.latency_p50_ms,
            small.latency_p50_ms
        );
    }

    #[test]
    fn time_windows_fire() {
        let mut plan = LogicalPlan::new("time-window");
        let s = plan.add(OperatorKind::Source(SourceOp {
            event_rate: 1_000.0,
            schema: TupleSchema::uniform(DataType::Double, 2),
            key_cardinality: None,
        }));
        let a = plan.add(OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Time, 500.0),
            function: AggFunction::Sum,
            agg_class: DataType::Double,
            key_class: None,
            selectivity: 0.01,
            key_cardinality: None,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s, a);
        plan.connect(a, k);
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![1, 1, 1]);
        let mut rng = StdRng::seed_from_u64(5);
        let m = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
        assert!(m.samples > 0);
        // one window firing every 500 ms per instance ≈ 2 results/s min
        assert!(m.sink_rate >= 1.0, "sink rate {}", m.sink_rate);
    }

    #[test]
    fn join_emits_matches() {
        use zt_query::JoinOp;
        let mut plan = LogicalPlan::new("join");
        let s1 = plan.add(OperatorKind::Source(SourceOp {
            event_rate: 2_000.0,
            schema: TupleSchema::uniform(DataType::Int, 2),
            key_cardinality: None,
        }));
        let s2 = plan.add(OperatorKind::Source(SourceOp {
            event_rate: 2_000.0,
            schema: TupleSchema::uniform(DataType::Int, 2),
            key_cardinality: None,
        }));
        let j = plan.add(OperatorKind::Join(JoinOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 100.0),
            key_class: DataType::Int,
            selectivity: 0.01,
            key_cardinality: None,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s1, j);
        plan.connect(s2, j);
        plan.connect(j, k);
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![1, 1, 2, 1]);
        let mut rng = StdRng::seed_from_u64(6);
        let m = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
        assert!(m.sink_rate > 0.0, "join produced nothing");
        assert!(m.samples > 0);
    }

    #[test]
    fn multi_sink_plan_executes_and_reports_per_sink() {
        let plan = zt_query::benchmarks::smart_grid_combined(2_000.0);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![1; n]);
        let mut rng = StdRng::seed_from_u64(8);
        let m = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
        assert_eq!(m.per_sink.len(), 2);
        assert!(m.samples > 0);
        // pooled counts are the sum of the per-sink slices
        let pooled: usize = m.per_sink.iter().map(|s| s.samples).sum();
        assert_eq!(pooled, m.samples);
        let rate: f64 = m.per_sink.iter().map(|s| s.sink_rate).sum();
        assert!((rate - m.sink_rate).abs() < 1e-9);
        // at least one branch delivered tuples
        assert!(m.per_sink.iter().any(|s| s.samples > 0));
    }

    #[test]
    fn single_sink_per_sink_slice_matches_headline() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = run(
            &linear_pqp(2_000.0, 2, 10.0),
            &cluster(),
            &EngineConfig::default(),
            &mut rng,
        );
        assert_eq!(m.per_sink.len(), 1);
        assert_eq!(m.per_sink[0].samples, m.samples);
        assert_eq!(m.per_sink[0].latency_mean_ms, m.latency_mean_ms);
        assert_eq!(m.per_sink[0].sink_rate, m.sink_rate);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = EngineConfig::default();
        let a = run(
            &linear_pqp(2_000.0, 2, 10.0),
            &cluster(),
            &cfg,
            &mut StdRng::seed_from_u64(7),
        );
        let b = run(
            &linear_pqp(2_000.0, 2, 10.0),
            &cluster(),
            &cfg,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.latency_mean_ms, b.latency_mean_ms);
    }
}
