//! Random-forest regression baseline on the flat vector.
//!
//! CART regression trees with variance-reduction splits, bagging
//! (bootstrap per tree) and per-split feature subsampling. Each leaf
//! stores a two-dimensional mean `[ln latency, ln throughput]`; the split
//! criterion minimizes the summed variance of both targets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zt_core::dataset::Dataset;
use zt_core::graph::GraphEncoding;

use crate::flat::{flatten, FLAT_DIM};

/// Forest hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct RandomForestConfig {
    pub n_trees: usize,
    pub max_depth: usize,
    pub min_leaf: usize,
    /// Features considered per split.
    pub features_per_split: usize,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 40,
            max_depth: 12,
            min_leaf: 3,
            features_per_split: 5, // ≈ √FLAT_DIM
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        mean: [f64; 2],
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Clone, Debug)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> [f64; 2] {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { mean } => return *mean,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Bagged regression forest with 2-output leaves.
pub struct RandomForest {
    trees: Vec<Tree>,
}

fn leaf_mean(ys: &[[f64; 2]], idx: &[usize]) -> [f64; 2] {
    let mut m = [0f64; 2];
    for &i in idx {
        m[0] += ys[i][0];
        m[1] += ys[i][1];
    }
    let n = idx.len().max(1) as f64;
    [m[0] / n, m[1] / n]
}

fn sse(ys: &[[f64; 2]], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let m = leaf_mean(ys, idx);
    idx.iter()
        .map(|&i| {
            let d0 = ys[i][0] - m[0];
            let d1 = ys[i][1] - m[1];
            d0 * d0 + d1 * d1
        })
        .sum()
}

fn build_tree(
    xs: &[[f64; FLAT_DIM]],
    ys: &[[f64; 2]],
    idx: Vec<usize>,
    cfg: &RandomForestConfig,
    rng: &mut StdRng,
) -> Tree {
    let mut nodes = Vec::new();
    build_node(xs, ys, idx, cfg, rng, 0, &mut nodes);
    Tree { nodes }
}

fn build_node(
    xs: &[[f64; FLAT_DIM]],
    ys: &[[f64; 2]],
    idx: Vec<usize>,
    cfg: &RandomForestConfig,
    rng: &mut StdRng,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let my_index = nodes.len();
    if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_leaf {
        nodes.push(Node::Leaf {
            mean: leaf_mean(ys, &idx),
        });
        return my_index;
    }

    // Best split over a random feature subset.
    let parent_sse = sse(ys, &idx);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for _ in 0..cfg.features_per_split {
        let f = rng.gen_range(0..FLAT_DIM);
        // candidate thresholds from quantiles of the feature values
        let mut vals: Vec<f64> = idx.iter().map(|&i| xs[i][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for q in [0.25, 0.5, 0.75] {
            let t = vals[((vals.len() - 1) as f64 * q) as usize];
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in &idx {
                if xs[i][f] <= t {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            if left.len() < cfg.min_leaf || right.len() < cfg.min_leaf {
                continue;
            }
            let gain = parent_sse - sse(ys, &left) - sse(ys, &right);
            if best.map_or(gain > 1e-12, |(_, _, g)| gain > g) {
                best = Some((f, t, gain));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        nodes.push(Node::Leaf {
            mean: leaf_mean(ys, &idx),
        });
        return my_index;
    };

    let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
    for &i in &idx {
        if xs[i][feature] <= threshold {
            left_idx.push(i);
        } else {
            right_idx.push(i);
        }
    }
    nodes.push(Node::Split {
        feature,
        threshold,
        left: 0,
        right: 0,
    });
    let left = build_node(xs, ys, left_idx, cfg, rng, depth + 1, nodes);
    let right = build_node(xs, ys, right_idx, cfg, rng, depth + 1, nodes);
    if let Node::Split {
        left: l, right: r, ..
    } = &mut nodes[my_index]
    {
        *l = left;
        *r = right;
    }
    my_index
}

impl RandomForest {
    /// Fit a forest on the dataset.
    pub fn fit(data: &Dataset, cfg: &RandomForestConfig, seed: u64) -> Self {
        assert!(!data.is_empty());
        let xs: Vec<[f64; FLAT_DIM]> = data.samples.iter().map(|s| flatten(&s.graph)).collect();
        let ys: Vec<[f64; 2]> = data
            .samples
            .iter()
            .map(|s| [s.latency_ms.max(1e-9).ln(), s.throughput.max(1e-9).ln()])
            .collect();
        let n = xs.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let trees = (0..cfg.n_trees)
            .map(|_| {
                let bootstrap: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                build_tree(&xs, &ys, bootstrap, cfg, &mut rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Predict `(latency_ms, throughput)` as the exponentiated average of
    /// the trees' log-space predictions.
    pub fn predict(&self, graph: &GraphEncoding) -> (f64, f64) {
        let x = flatten(graph);
        let mut sum = [0f64; 2];
        for t in &self.trees {
            let p = t.predict(&x);
            sum[0] += p[0];
            sum[1] += p[1];
        }
        let n = self.trees.len().max(1) as f64;
        ((sum[0] / n).exp(), (sum[1] / n).exp())
    }

    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zt_core::dataset::{generate_dataset, GenConfig};
    use zt_core::qerror::QErrorStats;

    #[test]
    fn forest_fits_training_distribution() {
        let data = generate_dataset(&GenConfig::seen(), 200, 71);
        let (train, test, _) = data.split(0.8, 0.2, 0);
        let forest = RandomForest::fit(&train, &RandomForestConfig::default(), 1);
        assert_eq!(forest.num_trees(), 40);
        let q = QErrorStats::from_pairs(
            test.samples
                .iter()
                .map(|s| (forest.predict(&s.graph).0, s.latency_ms)),
        );
        assert!(q.median < 6.0, "forest median q-error {}", q.median);
    }

    #[test]
    fn deeper_forest_fits_train_better_than_stump() {
        let data = generate_dataset(&GenConfig::seen(), 150, 72);
        let stump_cfg = RandomForestConfig {
            max_depth: 1,
            n_trees: 10,
            ..RandomForestConfig::default()
        };
        let deep_cfg = RandomForestConfig {
            max_depth: 12,
            n_trees: 10,
            ..RandomForestConfig::default()
        };
        let stump = RandomForest::fit(&data, &stump_cfg, 2);
        let deep = RandomForest::fit(&data, &deep_cfg, 2);
        let q_train = |m: &RandomForest| {
            QErrorStats::from_pairs(
                data.samples
                    .iter()
                    .map(|s| (m.predict(&s.graph).0, s.latency_ms)),
            )
            .median
        };
        assert!(q_train(&deep) < q_train(&stump));
    }

    #[test]
    fn predictions_positive_finite_everywhere() {
        let data = generate_dataset(&GenConfig::seen(), 80, 73);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default(), 3);
        let unseen = generate_dataset(&GenConfig::unseen_structures(), 30, 74);
        for s in data.samples.iter().chain(unseen.samples.iter()) {
            let (lat, tpt) = forest.predict(&s.graph);
            assert!(lat > 0.0 && lat.is_finite());
            assert!(tpt > 0.0 && tpt.is_finite());
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = generate_dataset(&GenConfig::seen(), 60, 75);
        let a = RandomForest::fit(&data, &RandomForestConfig::default(), 7);
        let b = RandomForest::fit(&data, &RandomForestConfig::default(), 7);
        let g = &data.samples[0].graph;
        assert_eq!(a.predict(g), b.predict(g));
    }
}
