//! Dhalion-style self-regulating scaling controller (Floratou et al.
//! \[19\]).
//!
//! Dhalion observes a *running* topology and applies symptom→diagnosis→
//! resolution rules: backpressure at an operator ⇒ scale it up
//! proportionally to the overload; sustained low utilization ⇒ scale down.
//! It converges over several reconfigurations — precisely the oscillation
//! cost (paper challenge C1) that ZeroTune's what-if predictions avoid.
//!
//! The controller is faithful to its design focus: it reasons about
//! per-operator *throughput symptoms* only. It has no model of latency,
//! window residence, chaining or network placement, which is why its
//! configurations trail ZeroTune's on complex plans (Fig. 10b) even
//! though it performs well on simple chains.

use rand::Rng;
use zt_dspsim::analytical::{simulate, SimConfig};
use zt_dspsim::cluster::Cluster;
use zt_query::{LogicalPlan, ParallelQueryPlan};

/// Controller configuration.
#[derive(Clone, Copy, Debug)]
pub struct DhalionConfig {
    /// Maximum reconfiguration rounds before giving up.
    pub max_iters: usize,
    /// Utilization above which an operator is diagnosed as backpressured.
    pub high_watermark: f64,
    /// Utilization below which an operator is diagnosed as over-provisioned.
    pub low_watermark: f64,
    /// Headroom target when resolving backpressure.
    pub target_utilization: f64,
    pub max_parallelism: u32,
}

impl Default for DhalionConfig {
    fn default() -> Self {
        DhalionConfig {
            max_iters: 15,
            high_watermark: 0.9,
            low_watermark: 0.3,
            target_utilization: 0.7,
            max_parallelism: 128,
        }
    }
}

/// Result of a Dhalion tuning session.
#[derive(Clone, Debug)]
pub struct DhalionResult {
    /// Final parallelism degrees.
    pub parallelism: Vec<u32>,
    /// Number of *reconfigurations* performed (each one is a costly
    /// redeployment on a real system).
    pub reconfigurations: usize,
    /// Per-round maximum utilization, for convergence analysis.
    pub utilization_history: Vec<f64>,
}

/// Run the scaling controller against the simulator until the symptoms
/// disappear or the round budget is exhausted.
pub fn dhalion_tune<R: Rng + ?Sized>(
    plan: &LogicalPlan,
    cluster: &Cluster,
    cfg: &DhalionConfig,
    sim: &SimConfig,
    rng: &mut R,
) -> DhalionResult {
    let n = plan.num_ops();
    let cap = cfg.max_parallelism.min(cluster.total_cores()).max(1);
    let mut p = vec![1u32; n];
    let mut history = Vec::new();
    let mut reconfigurations = 0usize;

    for _ in 0..cfg.max_iters {
        let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), p.clone());
        let metrics = simulate(&pqp, cluster, sim, rng);
        let max_util = metrics
            .per_op
            .iter()
            .map(|o| o.utilization)
            .fold(0.0f64, f64::max);
        history.push(max_util);

        let mut changed = false;
        // Symptom: backpressure. Diagnosis: the hottest operator(s).
        // Resolution: scale proportionally to the overload.
        for (i, op) in metrics.per_op.iter().enumerate() {
            if op.utilization >= cfg.high_watermark && p[i] < cap {
                let factor = (op.utilization / cfg.target_utilization).max(1.25);
                let new_p = ((p[i] as f64 * factor).ceil() as u32).min(cap);
                if new_p != p[i] {
                    p[i] = new_p;
                    changed = true;
                }
            }
        }
        if !changed {
            // Symptom: over-provisioning. Resolution: shrink the coldest
            // operator one step at a time (Dhalion is conservative when
            // scaling down).
            for (i, op) in metrics.per_op.iter().enumerate() {
                if op.utilization <= cfg.low_watermark && p[i] > 1 {
                    p[i] -= 1;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
        reconfigurations += 1;
    }

    DhalionResult {
        parallelism: p,
        reconfigurations,
        utilization_history: history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_dspsim::cluster::ClusterType;
    use zt_query::operators::*;
    use zt_query::{DataType, OperatorKind, QueryGenerator, QueryStructure, TupleSchema};

    fn cluster() -> Cluster {
        Cluster::homogeneous(ClusterType::M510, 4, 10.0)
    }

    fn linear(rate: f64) -> LogicalPlan {
        let mut plan = LogicalPlan::new("t");
        let s = plan.add(OperatorKind::Source(SourceOp {
            event_rate: rate,
            schema: TupleSchema::uniform(DataType::Double, 3),
            key_cardinality: None,
        }));
        let f = plan.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Double,
            selectivity: 0.5,
        }));
        let a = plan.add(OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 50.0),
            function: AggFunction::Avg,
            agg_class: DataType::Double,
            key_class: Some(DataType::Int),
            selectivity: 0.2,
            key_cardinality: None,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s, f);
        plan.connect(f, a);
        plan.connect(a, k);
        plan
    }

    #[test]
    fn resolves_backpressure_on_simple_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let sim = SimConfig::noiseless();
        let r = dhalion_tune(
            &linear(3_000_000.0),
            &cluster(),
            &DhalionConfig::default(),
            &sim,
            &mut rng,
        );
        assert!(r.reconfigurations > 0, "no scaling happened");
        // final deployment must not be backpressured anymore
        let pqp = ParallelQueryPlan::with_parallelism(linear(3_000_000.0), r.parallelism.clone());
        let m = simulate(&pqp, &cluster(), &sim, &mut rng);
        assert!(
            m.bottleneck_utilization < 1.0,
            "still backpressured at util {}",
            m.bottleneck_utilization
        );
    }

    #[test]
    fn low_rate_stays_minimal() {
        let mut rng = StdRng::seed_from_u64(2);
        let sim = SimConfig::noiseless();
        let r = dhalion_tune(
            &linear(100.0),
            &cluster(),
            &DhalionConfig::default(),
            &sim,
            &mut rng,
        );
        assert!(r.parallelism.iter().all(|&p| p == 1), "{:?}", r.parallelism);
    }

    #[test]
    fn convergence_requires_iterations() {
        // The controller needs several rounds for a heavy workload —
        // the oscillation cost the paper's C1 describes.
        let mut rng = StdRng::seed_from_u64(3);
        let sim = SimConfig::noiseless();
        let r = dhalion_tune(
            &linear(3_000_000.0),
            &cluster(),
            &DhalionConfig::default(),
            &sim,
            &mut rng,
        );
        assert!(r.reconfigurations >= 2, "converged suspiciously fast");
        assert_eq!(r.utilization_history.len(), r.reconfigurations + 1);
    }

    #[test]
    fn parallelism_within_bounds_for_random_queries() {
        let mut rng = StdRng::seed_from_u64(4);
        let sim = SimConfig::noiseless();
        let gen = QueryGenerator::seen();
        for s in [QueryStructure::Linear, QueryStructure::TwoWayJoin] {
            let plan = gen.generate(s, &mut rng);
            let r = dhalion_tune(&plan, &cluster(), &DhalionConfig::default(), &sim, &mut rng);
            assert!(r
                .parallelism
                .iter()
                .all(|&p| p >= 1 && p <= cluster().total_cores()));
        }
    }
}
