//! # zt-baselines
//!
//! The comparison points used in the paper's evaluation:
//!
//! * **Non-transferable model architectures** (Fig. 1 / Fig. 5): a flat
//!   vector representation in the spirit of Ganapathi et al. \[4\] — counts
//!   of operator types, average selectivities and parallelism degrees —
//!   fed into [`linreg::LinearRegression`], [`flat_mlp::FlatMlp`] and
//!   [`forest::RandomForest`]. These models cannot see the plan
//!   *structure*, which is exactly the failure mode the paper attributes
//!   to them.
//! * **Non-learned parallelism tuners** (Fig. 10): a greedy
//!   autopipelining-style heuristic \[20\] in [`greedy`] and a
//!   Dhalion-style symptom-driven scaling controller \[19\] in [`dhalion`].

#![deny(unsafe_code)]

pub mod dhalion;
pub mod flat;
pub mod flat_mlp;
pub mod forest;
pub mod greedy;
pub mod linreg;

pub use dhalion::{dhalion_tune, DhalionConfig, DhalionResult};
pub use flat::{flatten, FLAT_DIM};
pub use flat_mlp::FlatMlp;
pub use forest::{RandomForest, RandomForestConfig};
pub use greedy::{greedy_tune, GreedyConfig};
pub use linreg::LinearRegression;

// The unified estimation interface lives in zt-core (the optimizer needs
// it); re-exported here because the baselines are its other implementors.
pub use zt_core::estimator::{evaluate_estimator, CostEstimator, CostPrediction};

use zt_core::dataset::Dataset;
use zt_core::graph::GraphEncoding;

impl CostEstimator for LinearRegression {
    fn name(&self) -> &'static str {
        "Linear Regression"
    }

    fn predict(&self, graph: &GraphEncoding) -> CostPrediction {
        LinearRegression::predict(self, graph).into()
    }
}

impl CostEstimator for FlatMlp {
    fn name(&self) -> &'static str {
        "Flat Vector MLP"
    }

    fn predict(&self, graph: &GraphEncoding) -> CostPrediction {
        FlatMlp::predict(self, graph).into()
    }
}

impl CostEstimator for RandomForest {
    fn name(&self) -> &'static str {
        "Random Forest"
    }

    fn predict(&self, graph: &GraphEncoding) -> CostPrediction {
        RandomForest::predict(self, graph).into()
    }
}

/// The three flat-vector baseline architectures, trainable from one call.
pub enum BaselineModel {
    Linear(LinearRegression),
    FlatMlp(FlatMlp),
    Forest(RandomForest),
}

impl BaselineModel {
    /// Fit all three baselines on a dataset.
    pub fn fit_all(data: &Dataset, seed: u64) -> Vec<BaselineModel> {
        vec![
            BaselineModel::Linear(LinearRegression::fit(data, 1e-3)),
            BaselineModel::FlatMlp(FlatMlp::fit(data, seed)),
            BaselineModel::Forest(RandomForest::fit(
                data,
                &RandomForestConfig::default(),
                seed,
            )),
        ]
    }
}

impl CostEstimator for BaselineModel {
    fn name(&self) -> &'static str {
        match self {
            BaselineModel::Linear(_) => "Linear Regression",
            BaselineModel::FlatMlp(_) => "Flat Vector MLP",
            BaselineModel::Forest(_) => "Random Forest",
        }
    }

    fn predict(&self, graph: &GraphEncoding) -> CostPrediction {
        match self {
            BaselineModel::Linear(m) => m.predict(graph).into(),
            BaselineModel::FlatMlp(m) => m.predict(graph).into(),
            BaselineModel::Forest(m) => m.predict(graph).into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zt_core::dataset::{generate_dataset, GenConfig};

    #[test]
    fn all_baselines_fit_and_predict() {
        let data = generate_dataset(&GenConfig::seen(), 60, 41);
        let models = BaselineModel::fit_all(&data, 1);
        assert_eq!(models.len(), 3);
        for m in &models {
            let p = CostEstimator::predict(m, &data.samples[0].graph);
            assert!(
                p.latency_ms > 0.0 && p.latency_ms.is_finite(),
                "{}: bad latency {}",
                m.name(),
                p.latency_ms
            );
            assert!(
                p.throughput > 0.0 && p.throughput.is_finite(),
                "{}: bad throughput {}",
                m.name(),
                p.throughput
            );
        }
    }

    #[test]
    fn evaluate_estimator_reports_counts() {
        let data = generate_dataset(&GenConfig::seen(), 40, 42);
        let model = BaselineModel::Linear(LinearRegression::fit(&data, 1e-3));
        let (lat, tpt) = evaluate_estimator(&model, &data.samples);
        assert_eq!(lat.count, 40);
        assert_eq!(tpt.count, 40);
        assert!(lat.median >= 1.0);
    }
}
