//! # zt-baselines
//!
//! The comparison points used in the paper's evaluation:
//!
//! * **Non-transferable model architectures** (Fig. 1 / Fig. 5): a flat
//!   vector representation in the spirit of Ganapathi et al. \[4\] — counts
//!   of operator types, average selectivities and parallelism degrees —
//!   fed into [`linreg::LinearRegression`], [`flat_mlp::FlatMlp`] and
//!   [`forest::RandomForest`]. These models cannot see the plan
//!   *structure*, which is exactly the failure mode the paper attributes
//!   to them.
//! * **Non-learned parallelism tuners** (Fig. 10): a greedy
//!   autopipelining-style heuristic \[20\] in [`greedy`] and a
//!   Dhalion-style symptom-driven scaling controller \[19\] in [`dhalion`].

pub mod dhalion;
pub mod flat;
pub mod flat_mlp;
pub mod forest;
pub mod greedy;
pub mod linreg;

pub use dhalion::{dhalion_tune, DhalionConfig, DhalionResult};
pub use flat::{flatten, FLAT_DIM};
pub use flat_mlp::FlatMlp;
pub use forest::{RandomForest, RandomForestConfig};
pub use greedy::{greedy_tune, GreedyConfig};
pub use linreg::LinearRegression;

use zt_core::dataset::Dataset;
use zt_core::graph::GraphEncoding;

/// A cost model that predicts `(latency_ms, throughput)` for an encoded
/// plan — implemented by ZeroTune and by every flat-vector baseline so the
/// experiment harness can evaluate them uniformly.
pub trait CostEstimator {
    fn name(&self) -> &'static str;
    fn predict_costs(&self, graph: &GraphEncoding) -> (f64, f64);
}

impl CostEstimator for zt_core::model::ZeroTuneModel {
    fn name(&self) -> &'static str {
        "ZeroTune"
    }

    fn predict_costs(&self, graph: &GraphEncoding) -> (f64, f64) {
        self.predict(graph)
    }
}

/// Q-error statistics of any estimator over a sample set, per metric.
pub fn evaluate_estimator(
    est: &dyn CostEstimator,
    samples: &[zt_core::dataset::Sample],
) -> (zt_core::qerror::QErrorStats, zt_core::qerror::QErrorStats) {
    let mut lat = Vec::with_capacity(samples.len());
    let mut tpt = Vec::with_capacity(samples.len());
    for s in samples {
        let (l, t) = est.predict_costs(&s.graph);
        lat.push((l, s.latency_ms));
        tpt.push((t, s.throughput));
    }
    (
        zt_core::qerror::QErrorStats::from_pairs(lat),
        zt_core::qerror::QErrorStats::from_pairs(tpt),
    )
}

/// The three flat-vector baseline architectures, trainable from one call.
pub enum BaselineModel {
    Linear(LinearRegression),
    FlatMlp(FlatMlp),
    Forest(RandomForest),
}

impl BaselineModel {
    /// Fit all three baselines on a dataset.
    pub fn fit_all(data: &Dataset, seed: u64) -> Vec<BaselineModel> {
        vec![
            BaselineModel::Linear(LinearRegression::fit(data, 1e-3)),
            BaselineModel::FlatMlp(FlatMlp::fit(data, seed)),
            BaselineModel::Forest(RandomForest::fit(data, &RandomForestConfig::default(), seed)),
        ]
    }
}

impl CostEstimator for BaselineModel {
    fn name(&self) -> &'static str {
        match self {
            BaselineModel::Linear(_) => "Linear Regression",
            BaselineModel::FlatMlp(_) => "Flat Vector MLP",
            BaselineModel::Forest(_) => "Random Forest",
        }
    }

    fn predict_costs(&self, graph: &GraphEncoding) -> (f64, f64) {
        match self {
            BaselineModel::Linear(m) => m.predict(graph),
            BaselineModel::FlatMlp(m) => m.predict(graph),
            BaselineModel::Forest(m) => m.predict(graph),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zt_core::dataset::{generate_dataset, GenConfig};

    #[test]
    fn all_baselines_fit_and_predict() {
        let data = generate_dataset(&GenConfig::seen(), 60, 41);
        let models = BaselineModel::fit_all(&data, 1);
        assert_eq!(models.len(), 3);
        for m in &models {
            let (lat, tpt) = m.predict_costs(&data.samples[0].graph);
            assert!(lat > 0.0 && lat.is_finite(), "{}: bad latency {lat}", m.name());
            assert!(tpt > 0.0 && tpt.is_finite(), "{}: bad throughput {tpt}", m.name());
        }
    }

    #[test]
    fn evaluate_estimator_reports_counts() {
        let data = generate_dataset(&GenConfig::seen(), 40, 42);
        let model = BaselineModel::Linear(LinearRegression::fit(&data, 1e-3));
        let (lat, tpt) = evaluate_estimator(&model, &data.samples);
        assert_eq!(lat.count, 40);
        assert_eq!(tpt.count, 40);
        assert!(lat.median >= 1.0);
    }
}
