//! Flat-vector MLP baseline: the deep-network extension of the flat
//! representation (the paper's "Flat Vector MLP").
//!
//! Same aggregate input vector as [`crate::linreg`], but a two-hidden-layer
//! MLP trained with Adam on normalized log targets — i.e. the learning
//! machinery of ZeroTune without the graph representation. Its remaining
//! gap to ZeroTune isolates the contribution of the structural encoding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zt_core::dataset::Dataset;
use zt_core::graph::GraphEncoding;
use zt_core::model::TargetNorm;
use zt_nn::optim::clip_grad_norm;
use zt_nn::{Adam, Matrix, Mlp, Optimizer, ParamStore, Scratch, Tape};

use crate::flat::{flatten, FLAT_DIM};

/// MLP over the flat plan vector.
///
/// Inputs are z-standardized with statistics fitted on the training set
/// (standard practice for MLPs on raw-scale features); note that
/// standardization does not grant extrapolation — unseen parameter values
/// still map far outside the training z-range.
pub struct FlatMlp {
    store: ParamStore,
    mlp: Mlp,
    norm: TargetNorm,
    input_mean: Vec<f32>,
    input_std: Vec<f32>,
}

thread_local! {
    /// Per-thread scratch arena so `predict(&self)` stays allocation-free
    /// after warm-up while the model remains `Sync`.
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::new());
}

impl FlatMlp {
    /// Fit with default hyper-parameters (40 epochs, Adam 2e-3).
    pub fn fit(data: &Dataset, seed: u64) -> Self {
        Self::fit_with(data, seed, 40, 2e-3)
    }

    /// Fit with explicit epoch/learning-rate settings.
    pub fn fit_with(data: &Dataset, seed: u64, epochs: usize, lr: f32) -> Self {
        assert!(!data.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "flat", &[FLAT_DIM, 64, 64, 2], &mut rng);
        let norm = TargetNorm::fit(data.labels());

        // fit input standardization on the training vectors
        let raw: Vec<[f64; FLAT_DIM]> = data.samples.iter().map(|s| flatten(&s.graph)).collect();
        let n = raw.len() as f64;
        let mut input_mean = vec![0f32; FLAT_DIM];
        let mut input_std = vec![0f32; FLAT_DIM];
        for d in 0..FLAT_DIM {
            let mean = raw.iter().map(|r| r[d]).sum::<f64>() / n;
            let var = raw.iter().map(|r| (r[d] - mean).powi(2)).sum::<f64>() / n;
            input_mean[d] = mean as f32;
            input_std[d] = (var.sqrt().max(1e-6)) as f32;
        }
        let standardize = |f: &[f64; FLAT_DIM]| {
            let z: Vec<f32> = f
                .iter()
                .enumerate()
                .map(|(d, &v)| ((v as f32) - input_mean[d]) / input_std[d])
                .collect();
            Matrix::row(&z)
        };
        let inputs: Vec<Matrix> = raw.iter().map(standardize).collect();
        let targets: Vec<Matrix> = data
            .samples
            .iter()
            .map(|s| Matrix::row(&norm.normalize(s.latency_ms, s.throughput)))
            .collect();

        let mut opt = Adam::new(lr);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(16) {
                store.zero_grad();
                for &i in batch {
                    let mut tape = Tape::new();
                    let x = tape.leaf(inputs[i].clone());
                    let out = mlp.forward(&mut tape, &store, x);
                    let t = tape.leaf(targets[i].clone());
                    let loss = tape.mse_loss(out, t);
                    tape.backward(loss, &mut store);
                }
                store.scale_grads(1.0 / batch.len() as f32);
                clip_grad_norm(&mut store, 5.0);
                opt.step(&mut store);
            }
        }

        FlatMlp {
            store,
            mlp,
            norm,
            input_mean,
            input_std,
        }
    }

    /// Predict `(latency_ms, throughput)` via the tapeless forward pass.
    pub fn predict(&self, graph: &GraphEncoding) -> (f64, f64) {
        SCRATCH.with(|s| self.predict_with(graph, &mut s.borrow_mut()))
    }

    /// Tapeless prediction reusing an explicit scratch arena.
    pub fn predict_with(&self, graph: &GraphEncoding, scratch: &mut Scratch) -> (f64, f64) {
        let f = flatten(graph);
        let mut x = scratch.zeros(1, FLAT_DIM);
        for (d, &v) in f.iter().enumerate() {
            x.data[d] = ((v as f32) - self.input_mean[d]) / self.input_std[d];
        }
        let out = self.mlp.infer(&self.store, &x, scratch);
        let pred = self.norm.denormalize([
            out.data[0].clamp(-20.0, 20.0),
            out.data[1].clamp(-20.0, 20.0),
        ]);
        scratch.recycle(x);
        scratch.recycle(out);
        pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;
    use zt_core::dataset::{generate_dataset, GenConfig};
    use zt_core::qerror::QErrorStats;

    fn qerr(pairs: impl Iterator<Item = (f64, f64)>) -> QErrorStats {
        QErrorStats::from_pairs(pairs)
    }

    #[test]
    fn mlp_learns_the_training_distribution() {
        let data = generate_dataset(&GenConfig::seen(), 200, 61);
        let (train, test, _) = data.split(0.8, 0.2, 0);
        let model = FlatMlp::fit(&train, 1);
        let q = qerr(
            test.samples
                .iter()
                .map(|s| (model.predict(&s.graph).0, s.latency_ms)),
        );
        assert!(q.median < 5.0, "flat MLP median q-error {}", q.median);
    }

    #[test]
    fn mlp_at_least_matches_linear_regression_in_distribution() {
        let data = generate_dataset(&GenConfig::seen(), 220, 62);
        let (train, test, _) = data.split(0.8, 0.2, 0);
        let mlp = FlatMlp::fit(&train, 2);
        let lin = LinearRegression::fit(&train, 1e-3);
        let q_mlp = qerr(
            test.samples
                .iter()
                .map(|s| (mlp.predict(&s.graph).0, s.latency_ms)),
        );
        let q_lin = qerr(
            test.samples
                .iter()
                .map(|s| (lin.predict(&s.graph).0, s.latency_ms)),
        );
        assert!(
            q_mlp.median < q_lin.median * 1.5,
            "flat MLP {} much worse than linreg {}",
            q_mlp.median,
            q_lin.median
        );
    }

    #[test]
    fn tapeless_predict_matches_taped_forward() {
        let data = generate_dataset(&GenConfig::seen(), 60, 65);
        let model = FlatMlp::fit(&data, 4);
        for s in data.samples.iter().take(10) {
            let f = flatten(&s.graph);
            let z: Vec<f32> = f
                .iter()
                .enumerate()
                .map(|(d, &v)| ((v as f32) - model.input_mean[d]) / model.input_std[d])
                .collect();
            let mut tape = Tape::new();
            let x = tape.leaf(Matrix::row(&z));
            let out = model.mlp.forward(&mut tape, &model.store, x);
            let v = tape.value(out);
            let taped = model
                .norm
                .denormalize([v.data[0].clamp(-20.0, 20.0), v.data[1].clamp(-20.0, 20.0)]);
            assert_eq!(model.predict(&s.graph), taped);
        }
    }

    #[test]
    fn predictions_finite_on_unseen_structures() {
        let data = generate_dataset(&GenConfig::seen(), 80, 63);
        let model = FlatMlp::fit(&data, 3);
        let unseen = generate_dataset(&GenConfig::unseen_structures(), 30, 64);
        for s in &unseen.samples {
            let (lat, tpt) = model.predict(&s.graph);
            assert!(lat > 0.0 && lat.is_finite());
            assert!(tpt > 0.0 && tpt.is_finite());
        }
    }
}
