//! Greedy autopipelining-style heuristic tuner (Tang & Gedik \[20\]).
//!
//! The heuristic provisions parallelism bottom-up using a *uniform*
//! per-instance capacity estimate: starting from `P = 1` everywhere, it
//! repeatedly increments the parallelism of the operator with the highest
//! estimated per-instance load until every operator's estimated load falls
//! below the target or the cluster's slots are exhausted.
//!
//! Its documented weaknesses — the reason ZeroTune's optimizer beats it in
//! Fig. 10a — are baked in faithfully:
//!
//! * one capacity constant for *all* operator types (a windowed join and a
//!   cheap filter are treated alike),
//! * no knowledge of operator chaining, serialization or network costs,
//! * no hardware awareness (a 2.0 GHz core and a 2.8 GHz core count the
//!   same),
//! * latency is never considered, only keeping up with the rate.

use zt_dspsim::cluster::Cluster;
use zt_query::LogicalPlan;

use zt_core::optisample::estimate_input_rates;

/// Configuration of the greedy heuristic.
#[derive(Clone, Copy, Debug)]
pub struct GreedyConfig {
    /// Assumed tuples/s one instance of *any* operator sustains.
    pub capacity_per_instance: f64,
    /// Target load fraction per instance.
    pub target_load: f64,
    /// Hard cap per operator.
    pub max_parallelism: u32,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            capacity_per_instance: 100_000.0,
            target_load: 0.8,
            max_parallelism: 128,
        }
    }
}

/// Greedily assign parallelism degrees.
pub fn greedy_tune(plan: &LogicalPlan, cluster: &Cluster, cfg: &GreedyConfig) -> Vec<u32> {
    let n = plan.num_ops();
    // The heuristic trusts exact rate estimates (it has no notion of
    // estimation error).
    let mut dummy_rng = rand::rngs::mock::StepRng::new(0, 0);
    let rates = estimate_input_rates(plan, 0.0, &mut dummy_rng);

    let cap = cfg.max_parallelism.min(cluster.total_cores()).max(1);
    let slots = cluster.total_cores() as i64;
    let mut p = vec![1u32; n];
    let mut used = n as i64;

    let load = |rate: f64, p: u32| rate / (p as f64 * cfg.capacity_per_instance);

    loop {
        // operator with the highest estimated per-instance load
        let (worst, worst_load) = (0..n)
            .map(|i| (i, load(rates[i], p[i])))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite load"))
            .expect("non-empty plan");
        if worst_load <= cfg.target_load || used >= slots || p[worst] >= cap {
            break;
        }
        p[worst] += 1;
        used += 1;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_dspsim::cluster::ClusterType;
    use zt_query::operators::*;
    use zt_query::{DataType, OperatorKind, QueryGenerator, QueryStructure, TupleSchema};

    fn cluster() -> Cluster {
        Cluster::homogeneous(ClusterType::M510, 4, 10.0)
    }

    fn rate_plan(rate: f64) -> LogicalPlan {
        let mut plan = LogicalPlan::new("t");
        let s = plan.add(OperatorKind::Source(SourceOp {
            event_rate: rate,
            schema: TupleSchema::uniform(DataType::Int, 3),
            key_cardinality: None,
        }));
        let f = plan.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Int,
            selectivity: 0.5,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s, f);
        plan.connect(f, k);
        plan
    }

    #[test]
    fn low_rate_keeps_parallelism_one() {
        let p = greedy_tune(&rate_plan(1_000.0), &cluster(), &GreedyConfig::default());
        assert_eq!(p, vec![1, 1, 1]);
    }

    #[test]
    fn high_rate_scales_the_source_most() {
        let p = greedy_tune(&rate_plan(800_000.0), &cluster(), &GreedyConfig::default());
        // source sees 800k, filter 800k, sink 400k
        assert!(p[0] >= 8, "source parallelism {p:?}");
        assert!(p[2] <= p[0], "sink should not exceed source: {p:?}");
    }

    #[test]
    fn respects_slot_budget() {
        let small = Cluster::homogeneous(ClusterType::M510, 1, 10.0); // 8 slots
        let p = greedy_tune(&rate_plan(10_000_000.0), &small, &GreedyConfig::default());
        assert!(p.iter().map(|&x| x as i64).sum::<i64>() <= 8 + 1);
    }

    #[test]
    fn all_degrees_within_constraints() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = QueryGenerator::seen();
        for s in [QueryStructure::Linear, QueryStructure::ThreeWayJoin] {
            for _ in 0..10 {
                let plan = gen.generate(s, &mut rng);
                let p = greedy_tune(&plan, &cluster(), &GreedyConfig::default());
                assert_eq!(p.len(), plan.num_ops());
                assert!(p.iter().all(|&x| (1..=128).contains(&x)));
            }
        }
    }
}
