//! Flat-vector featurization of a parallel query plan (baseline \[4\]).
//!
//! The baseline of Ganapathi et al. represents a plan as a fixed-length
//! vector of *aggregate* statistics — counts of operator types, their
//! average selectivities and (our addition, as in the paper) parallelism
//! degrees — deliberately discarding the plan structure. Two different
//! plans with the same aggregates map to the same vector, which is the
//! representational limit the paper's Fig. 5 exposes.
//!
//! The vector is derived from the same [`GraphEncoding`] ZeroTune
//! consumes, so every model sees identical information content per node;
//! only the *representation* differs.

use zt_core::graph::{GraphEncoding, NodeKind};

/// Index of the selectivity entry in the operator common block
/// (see `zt_core::features`).
const F_PARALLELISM: usize = 0;
const F_GROUPING: usize = 4;
const F_WIDTH_IN: usize = 5;
const F_SELECTIVITY: usize = 10;
/// Source extra: event rate.
const F_SOURCE_RATE: usize = 11;
/// Aggregate/join extra: window length (common block + window offset 4).
const F_WINDOW_LENGTH: usize = 11 + 4;

/// Dimensionality of the flat vector.
pub const FLAT_DIM: usize = 21;

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Flatten an encoded plan into the fixed-length baseline vector.
pub fn flatten(graph: &GraphEncoding) -> [f64; FLAT_DIM] {
    let mut counts = [0f64; 5]; // source, filter, agg, join, sink
    let mut parallelism = Vec::new();
    let mut grouping = Vec::new();
    let mut widths = Vec::new();
    let mut sel_filter = Vec::new();
    let mut sel_agg = Vec::new();
    let mut sel_join = Vec::new();
    let mut window_len = Vec::new();
    let mut raw_rate = 0f64;
    let mut res_cores = Vec::new();
    let mut res_ghz = Vec::new();
    let mut res_mem = Vec::new();
    let mut res_link = Vec::new();

    for node in &graph.nodes {
        let f = &node.features;
        match node.kind {
            NodeKind::Resource => {
                res_cores.push(f[0] as f64);
                res_ghz.push(f[1] as f64);
                res_mem.push(f[2] as f64);
                res_link.push(f[3] as f64);
                continue;
            }
            NodeKind::Source => {
                counts[0] += 1.0;
                // invert the log normalization to the raw ev/s rate
                raw_rate += ((f[F_SOURCE_RATE] as f64) * 15.2).exp_m1();
            }
            NodeKind::Filter => {
                counts[1] += 1.0;
                sel_filter.push(f[F_SELECTIVITY] as f64);
            }
            NodeKind::Aggregate => {
                counts[2] += 1.0;
                sel_agg.push(f[F_SELECTIVITY] as f64);
                window_len.push(f[F_WINDOW_LENGTH] as f64);
            }
            NodeKind::Join => {
                counts[3] += 1.0;
                sel_join.push(f[F_SELECTIVITY] as f64);
                window_len.push(f[F_WINDOW_LENGTH] as f64);
            }
            NodeKind::Sink => counts[4] += 1.0,
        }
        parallelism.push(f[F_PARALLELISM] as f64);
        grouping.push(f[F_GROUPING] as f64);
        widths.push(f[F_WIDTH_IN] as f64);
    }

    // Undo the graph encoding's log/range normalizations: the cited flat
    // baseline [4] consumes raw-scale statistics (operator counts, average
    // selectivities and parallelism degrees), which is precisely why it
    // extrapolates poorly outside the training range.
    let unlog = |v: f64, norm: f64| (v * norm).exp_m1();
    let raw_p: Vec<f64> = parallelism.iter().map(|&v| unlog(v, 4.86)).collect();
    let raw_wlen: Vec<f64> = window_len.iter().map(|&v| unlog(v, 9.22)).collect();
    let max_parallelism = raw_p.iter().copied().fold(0.0, f64::max);
    [
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        counts[4],
        mean(&raw_p),
        max_parallelism,
        mean(&grouping) * 4.0,
        mean(&widths) * 15.0,
        mean(&sel_filter),
        mean(&sel_agg),
        mean(&sel_join),
        mean(&raw_wlen),
        raw_rate,
        res_cores.len() as f64,
        mean(&res_cores) * 64.0,
        mean(&res_ghz) * 3.0,
        res_mem.iter().map(|&v| unlog(v, 6.0)).sum::<f64>() / res_mem.len().max(1) as f64,
        mean(&res_link) * 10.0,
        // totals the heuristic literature uses
        res_cores.iter().map(|&c| c * 64.0).sum::<f64>(),
        raw_p.iter().sum::<f64>(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_core::features::FeatureMask;
    use zt_core::graph::encode;
    use zt_dspsim::cluster::{Cluster, ClusterType};
    use zt_dspsim::ChainingMode;
    use zt_query::{ParallelQueryPlan, QueryGenerator, QueryStructure};

    fn graph(structure: QueryStructure, p: u32, seed: u64) -> GraphEncoding {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = QueryGenerator::seen().generate(structure, &mut rng);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
        encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all())
    }

    #[test]
    fn vector_has_fixed_length() {
        for s in [
            QueryStructure::Linear,
            QueryStructure::ThreeWayJoin,
            QueryStructure::NWayJoin(6),
        ] {
            let v = flatten(&graph(s, 2, 1));
            assert_eq!(v.len(), FLAT_DIM);
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn counts_reflect_structure() {
        let v = flatten(&graph(QueryStructure::ThreeWayJoin, 2, 2));
        assert_eq!(v[0], 3.0); // 3 sources
        assert_eq!(v[3], 2.0); // 2 joins
        assert_eq!(v[4], 1.0); // 1 sink
    }

    #[test]
    fn parallelism_changes_vector() {
        let v1 = flatten(&graph(QueryStructure::Linear, 1, 3));
        let v64 = flatten(&graph(QueryStructure::Linear, 64, 3));
        assert!(v64[5] > v1[5]);
        assert!(v64[6] > v1[6]);
    }

    #[test]
    fn structure_is_lost_by_design() {
        // Two structurally different plans built from the same operator
        // multiset would collapse to near-identical vectors: verify the
        // vector contains only aggregates by checking that reordering
        // parallelism degrees (same multiset) yields the same mean/max.
        let mut rng = StdRng::seed_from_u64(5);
        let plan = QueryGenerator::seen().generate(QueryStructure::TwoWayJoin, &mut rng);
        let n = plan.num_ops();
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
        let mut p1 = vec![1u32; n];
        p1[0] = 8;
        let mut p2 = vec![1u32; n];
        p2[1] = 8;
        let g1 = encode(
            &ParallelQueryPlan::with_parallelism(plan.clone(), p1),
            &cluster,
            ChainingMode::Never,
            &FeatureMask::all(),
        );
        let g2 = encode(
            &ParallelQueryPlan::with_parallelism(plan, p2),
            &cluster,
            ChainingMode::Never,
            &FeatureMask::all(),
        );
        let v1 = flatten(&g1);
        let v2 = flatten(&g2);
        assert!((v1[5] - v2[5]).abs() < 1e-9, "mean parallelism differs");
        assert!((v1[6] - v2[6]).abs() < 1e-9, "max parallelism differs");
    }
}
