//! Linear-regression baseline on the flat vector (closed-form ridge).
//!
//! Fits two independent ridge regressions (log latency, log throughput)
//! over the flat vector plus a bias term, via the normal equations solved
//! with Cholesky (`zt_nn::linalg`).

use zt_core::dataset::Dataset;
use zt_core::graph::GraphEncoding;
use zt_nn::linalg::ridge_fit;

use crate::flat::{flatten, FLAT_DIM};

/// Ridge regression over the flat plan vector.
#[derive(Clone, Debug)]
pub struct LinearRegression {
    /// Weights for ln(latency), including trailing bias.
    w_latency: Vec<f64>,
    /// Weights for ln(throughput), including trailing bias.
    w_throughput: Vec<f64>,
}

fn design_row(graph: &GraphEncoding) -> [f64; FLAT_DIM + 1] {
    let flat = flatten(graph);
    let mut row = [1.0; FLAT_DIM + 1];
    row[..FLAT_DIM].copy_from_slice(&flat);
    row
}

impl LinearRegression {
    /// Fit on a labeled dataset with ridge strength `lambda`.
    pub fn fit(data: &Dataset, lambda: f64) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let rows = data.len();
        let cols = FLAT_DIM + 1;
        let mut x = Vec::with_capacity(rows * cols);
        let mut y_lat = Vec::with_capacity(rows);
        let mut y_tpt = Vec::with_capacity(rows);
        for s in &data.samples {
            x.extend_from_slice(&design_row(&s.graph));
            y_lat.push(s.latency_ms.max(1e-9).ln());
            y_tpt.push(s.throughput.max(1e-9).ln());
        }
        let w_latency = ridge_fit(&x, &y_lat, rows, cols, lambda).expect("ridge solvable");
        let w_throughput = ridge_fit(&x, &y_tpt, rows, cols, lambda).expect("ridge solvable");
        LinearRegression {
            w_latency,
            w_throughput,
        }
    }

    /// Predict `(latency_ms, throughput)`.
    pub fn predict(&self, graph: &GraphEncoding) -> (f64, f64) {
        let row = design_row(graph);
        let dot = |w: &[f64]| -> f64 { row.iter().zip(w.iter()).map(|(a, b)| a * b).sum() };
        (
            dot(&self.w_latency).clamp(-30.0, 30.0).exp(),
            dot(&self.w_throughput).clamp(-30.0, 30.0).exp(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zt_core::dataset::{generate_dataset, GenConfig};
    use zt_core::qerror::QErrorStats;

    #[test]
    fn fit_reduces_error_vs_constant_predictor() {
        // Throughput is strongly (log-)linear in the raw event-rate
        // feature, so the regression must clearly beat a constant
        // predictor there; latency is weakly linear in the raw features
        // (that is the baseline's documented limitation), so it only has
        // to be competitive.
        let data = generate_dataset(&GenConfig::seen(), 200, 51);
        let (train, test, _) = data.split(0.8, 0.2, 0);
        let model = LinearRegression::fit(&train, 1e-3);

        // geometric-mean constant predictors
        let n = train.len() as f64;
        let const_tpt = (train.samples.iter().map(|s| s.throughput.ln()).sum::<f64>() / n).exp();
        let const_lat = (train.samples.iter().map(|s| s.latency_ms.ln()).sum::<f64>() / n).exp();

        let model_tpt = QErrorStats::from_pairs(
            test.samples
                .iter()
                .map(|s| (model.predict(&s.graph).1, s.throughput)),
        );
        let const_tpt_q =
            QErrorStats::from_pairs(test.samples.iter().map(|s| (const_tpt, s.throughput)));
        assert!(
            model_tpt.median < const_tpt_q.median * 0.8,
            "linreg tpt {} vs constant {}",
            model_tpt.median,
            const_tpt_q.median
        );

        let model_lat = QErrorStats::from_pairs(
            test.samples
                .iter()
                .map(|s| (model.predict(&s.graph).0, s.latency_ms)),
        );
        let const_lat_q =
            QErrorStats::from_pairs(test.samples.iter().map(|s| (const_lat, s.latency_ms)));
        assert!(
            model_lat.median < const_lat_q.median * 1.25,
            "linreg lat {} not competitive with constant {}",
            model_lat.median,
            const_lat_q.median
        );
    }

    #[test]
    fn predictions_are_positive_finite() {
        let data = generate_dataset(&GenConfig::seen(), 60, 52);
        let model = LinearRegression::fit(&data, 1e-2);
        for s in &data.samples {
            let (lat, tpt) = model.predict(&s.graph);
            assert!(lat > 0.0 && lat.is_finite());
            assert!(tpt > 0.0 && tpt.is_finite());
        }
    }

    #[test]
    fn extrapolation_is_clamped() {
        // Even on wildly out-of-distribution inputs the exp() is clamped,
        // so predictions stay finite.
        let data = generate_dataset(&GenConfig::seen(), 40, 53);
        let model = LinearRegression::fit(&data, 1e-3);
        let unseen = generate_dataset(&GenConfig::unseen_structures(), 20, 54);
        for s in &unseen.samples {
            let (lat, tpt) = model.predict(&s.graph);
            assert!(lat.is_finite() && tpt.is_finite());
        }
    }
}
