//! Training ("seen") and testing ("unseen") parameter ranges.
//!
//! This module transcribes Table III of the paper: the value grids used to
//! generate the training workload and the inter-/extrapolation grids used to
//! probe generalization, plus the XS–XL parallelism-degree categories used
//! in Exp. 2.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::types::DataType;

/// Event rates (ev/sec) in the training range.
pub const TRAIN_EVENT_RATES: &[f64] = &[
    100.0,
    200.0,
    400.0,
    500.0,
    700.0,
    1_000.0,
    2_000.0,
    3_000.0,
    5_000.0,
    10_000.0,
    20_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
];

/// Event rates (ev/sec) in the unseen testing range (inter- and
/// extrapolation).
pub const TEST_EVENT_RATES: &[f64] = &[
    50.0,
    75.0,
    150.0,
    300.0,
    450.0,
    600.0,
    850.0,
    1_500.0,
    4_000.0,
    7_500.0,
    15_000.0,
    35_000.0,
    175_000.0,
    375_000.0,
    750_000.0,
    1_500_000.0,
    2_000_000.0,
    3_000_000.0,
    4_000_000.0,
];

/// Tuple widths (fields per tuple) in the training range.
pub const TRAIN_TUPLE_WIDTHS: &[usize] = &[1, 2, 3, 4, 5];

/// Tuple widths in the unseen testing range (extrapolation).
pub const TEST_TUPLE_WIDTHS: &[usize] = &[6, 7, 8, 9, 10, 11, 12, 13, 14, 15];

/// Count-window lengths (tuples) in the training range.
pub const TRAIN_WINDOW_LENGTHS: &[f64] = &[5.0, 10.0, 25.0, 50.0, 75.0, 100.0];

/// Count-window lengths in the unseen testing range.
pub const TEST_WINDOW_LENGTHS: &[f64] = &[
    2.0, 3.0, 4.0, 7.0, 17.0, 37.0, 62.0, 82.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0,
];

/// Time-window durations (ms) in the training range.
pub const TRAIN_WINDOW_DURATIONS: &[f64] = &[250.0, 500.0, 1_000.0, 2_000.0, 3_000.0];

/// Time-window durations (ms) in the unseen testing range.
pub const TEST_WINDOW_DURATIONS: &[f64] = &[
    50.0, 100.0, 150.0, 200.0, 325.0, 750.0, 1_500.0, 2_500.0, 4_000.0, 5_000.0, 6_000.0, 7_000.0,
    8_000.0, 9_000.0, 10_000.0,
];

/// Sliding-length ratios (fraction of window length); shared between seen
/// and unseen ranges in the paper.
pub const SLIDING_RATIOS: &[f64] = &[0.3, 0.4, 0.5, 0.6, 0.7];

/// Numbers of workers in the training range.
pub const TRAIN_NUM_WORKERS: &[usize] = &[2, 4, 6];

/// Numbers of workers in the unseen testing range.
pub const TEST_NUM_WORKERS: &[usize] = &[3, 8, 10];

/// Network link speeds (Gbps); shared between ranges.
pub const NETWORK_LINK_SPEEDS_GBPS: &[f64] = &[1.0, 10.0];

/// The paper's parallelism-degree categories (Exp. 2, Table III):
/// `1 ≤ XS < 8, 8 ≤ S < 16, 16 ≤ M < 32, 32 ≤ L < 64, 64 ≤ XL < 128`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, PartialOrd, Ord)]
pub enum ParallelismCategory {
    XS,
    S,
    M,
    L,
    XL,
}

impl ParallelismCategory {
    pub const ALL: [ParallelismCategory; 5] = [
        ParallelismCategory::XS,
        ParallelismCategory::S,
        ParallelismCategory::M,
        ParallelismCategory::L,
        ParallelismCategory::XL,
    ];

    /// Classify an average per-operator parallelism degree.
    pub fn from_avg(avg: f64) -> Self {
        if avg < 8.0 {
            ParallelismCategory::XS
        } else if avg < 16.0 {
            ParallelismCategory::S
        } else if avg < 32.0 {
            ParallelismCategory::M
        } else if avg < 64.0 {
            ParallelismCategory::L
        } else {
            ParallelismCategory::XL
        }
    }

    /// Inclusive lower bound of the category.
    pub fn lower_bound(self) -> f64 {
        match self {
            ParallelismCategory::XS => 1.0,
            ParallelismCategory::S => 8.0,
            ParallelismCategory::M => 16.0,
            ParallelismCategory::L => 32.0,
            ParallelismCategory::XL => 64.0,
        }
    }

    /// Exclusive upper bound of the category.
    pub fn upper_bound(self) -> f64 {
        match self {
            ParallelismCategory::XS => 8.0,
            ParallelismCategory::S => 16.0,
            ParallelismCategory::M => 32.0,
            ParallelismCategory::L => 64.0,
            ParallelismCategory::XL => 128.0,
        }
    }
}

impl std::fmt::Display for ParallelismCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParallelismCategory::XS => "XS",
            ParallelismCategory::S => "S",
            ParallelismCategory::M => "M",
            ParallelismCategory::L => "L",
            ParallelismCategory::XL => "XL",
        };
        f.write_str(s)
    }
}

/// A concrete set of sampling grids for the workload generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParamRanges {
    pub event_rates: Vec<f64>,
    pub tuple_widths: Vec<usize>,
    pub window_lengths: Vec<f64>,
    pub window_durations_ms: Vec<f64>,
    pub sliding_ratios: Vec<f64>,
    pub num_workers: Vec<usize>,
    pub link_speeds_gbps: Vec<f64>,
}

impl ParamRanges {
    /// The training ("seen") ranges of Table III.
    pub fn seen() -> Self {
        ParamRanges {
            event_rates: TRAIN_EVENT_RATES.to_vec(),
            tuple_widths: TRAIN_TUPLE_WIDTHS.to_vec(),
            window_lengths: TRAIN_WINDOW_LENGTHS.to_vec(),
            window_durations_ms: TRAIN_WINDOW_DURATIONS.to_vec(),
            sliding_ratios: SLIDING_RATIOS.to_vec(),
            num_workers: TRAIN_NUM_WORKERS.to_vec(),
            link_speeds_gbps: NETWORK_LINK_SPEEDS_GBPS.to_vec(),
        }
    }

    /// The testing ("unseen") ranges of Table III.
    pub fn unseen() -> Self {
        ParamRanges {
            event_rates: TEST_EVENT_RATES.to_vec(),
            tuple_widths: TEST_TUPLE_WIDTHS.to_vec(),
            window_lengths: TEST_WINDOW_LENGTHS.to_vec(),
            window_durations_ms: TEST_WINDOW_DURATIONS.to_vec(),
            sliding_ratios: SLIDING_RATIOS.to_vec(),
            num_workers: TEST_NUM_WORKERS.to_vec(),
            link_speeds_gbps: NETWORK_LINK_SPEEDS_GBPS.to_vec(),
        }
    }

    pub fn sample_event_rate<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        *self.event_rates.choose(rng).expect("non-empty grid")
    }

    pub fn sample_tuple_width<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        *self.tuple_widths.choose(rng).expect("non-empty grid")
    }

    pub fn sample_window_length<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        *self.window_lengths.choose(rng).expect("non-empty grid")
    }

    pub fn sample_window_duration<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        *self
            .window_durations_ms
            .choose(rng)
            .expect("non-empty grid")
    }

    pub fn sample_sliding_ratio<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        *self.sliding_ratios.choose(rng).expect("non-empty grid")
    }

    pub fn sample_num_workers<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        *self.num_workers.choose(rng).expect("non-empty grid")
    }

    pub fn sample_link_speed<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        *self.link_speeds_gbps.choose(rng).expect("non-empty grid")
    }

    pub fn sample_data_type<R: Rng + ?Sized>(&self, rng: &mut R) -> DataType {
        *DataType::ALL.choose(rng).expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn category_bounds_match_table_iii() {
        assert_eq!(ParallelismCategory::from_avg(1.0), ParallelismCategory::XS);
        assert_eq!(ParallelismCategory::from_avg(7.99), ParallelismCategory::XS);
        assert_eq!(ParallelismCategory::from_avg(8.0), ParallelismCategory::S);
        assert_eq!(ParallelismCategory::from_avg(16.0), ParallelismCategory::M);
        assert_eq!(ParallelismCategory::from_avg(32.0), ParallelismCategory::L);
        assert_eq!(ParallelismCategory::from_avg(64.0), ParallelismCategory::XL);
        assert_eq!(
            ParallelismCategory::from_avg(127.0),
            ParallelismCategory::XL
        );
    }

    #[test]
    fn categories_tile_the_range() {
        for pair in ParallelismCategory::ALL.windows(2) {
            assert_eq!(pair[0].upper_bound(), pair[1].lower_bound());
        }
    }

    #[test]
    fn seen_and_unseen_ranges_disjoint_for_extrapolated_params() {
        // Tuple widths are an extrapolation parameter — fully disjoint.
        for w in TEST_TUPLE_WIDTHS {
            assert!(!TRAIN_TUPLE_WIDTHS.contains(w));
        }
        for r in TEST_EVENT_RATES {
            assert!(!TRAIN_EVENT_RATES.contains(r));
        }
        for w in TEST_WINDOW_LENGTHS {
            assert!(!TRAIN_WINDOW_LENGTHS.contains(w));
        }
        for d in TEST_WINDOW_DURATIONS {
            assert!(!TRAIN_WINDOW_DURATIONS.contains(d));
        }
        for n in TEST_NUM_WORKERS {
            assert!(!TRAIN_NUM_WORKERS.contains(n));
        }
    }

    #[test]
    fn sampling_stays_in_grid() {
        let ranges = ParamRanges::seen();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(ranges
                .event_rates
                .contains(&ranges.sample_event_rate(&mut rng)));
            assert!(ranges
                .tuple_widths
                .contains(&ranges.sample_tuple_width(&mut rng)));
            assert!(ranges
                .window_lengths
                .contains(&ranges.sample_window_length(&mut rng)));
            assert!(ranges
                .num_workers
                .contains(&ranges.sample_num_workers(&mut rng)));
        }
    }

    #[test]
    fn grids_are_sorted_ascending() {
        let sorted = |xs: &[f64]| xs.windows(2).all(|w| w[0] < w[1]);
        assert!(sorted(TRAIN_EVENT_RATES));
        assert!(sorted(TEST_EVENT_RATES));
        assert!(sorted(TRAIN_WINDOW_LENGTHS));
        assert!(sorted(TEST_WINDOW_LENGTHS));
        assert!(sorted(TRAIN_WINDOW_DURATIONS));
        assert!(sorted(TEST_WINDOW_DURATIONS));
    }
}
