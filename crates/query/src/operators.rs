//! The streaming operator algebra.
//!
//! ZeroTune supports the operator types evaluated in the paper: `Source`,
//! `Filter`, `Window-Aggregation`, `Window-Join` and `Sink` (Table III,
//! "Operator type"). Each operator carries exactly the *transferable*
//! parameters of Table I — the pieces of information that keep their
//! semantic meaning across data streams (e.g. the filter *function* `≤`
//! rather than the concrete literal `27`).

use serde::{Deserialize, Serialize};

use crate::types::{DataType, TupleSchema};

/// Comparison function of a filter predicate ("Filter function" feature).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FilterFunction {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl FilterFunction {
    pub const ALL: [FilterFunction; 6] = [
        FilterFunction::Lt,
        FilterFunction::Le,
        FilterFunction::Gt,
        FilterFunction::Ge,
        FilterFunction::Eq,
        FilterFunction::Ne,
    ];

    #[inline]
    pub fn one_hot_index(self) -> usize {
        match self {
            FilterFunction::Lt => 0,
            FilterFunction::Le => 1,
            FilterFunction::Gt => 2,
            FilterFunction::Ge => 3,
            FilterFunction::Eq => 4,
            FilterFunction::Ne => 5,
        }
    }

    /// Evaluate the comparison on an f64 ordering key. Used by the
    /// discrete-event engine.
    #[inline]
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            FilterFunction::Lt => lhs < rhs,
            FilterFunction::Le => lhs <= rhs,
            FilterFunction::Gt => lhs > rhs,
            FilterFunction::Ge => lhs >= rhs,
            FilterFunction::Eq => (lhs - rhs).abs() < f64::EPSILON,
            FilterFunction::Ne => (lhs - rhs).abs() >= f64::EPSILON,
        }
    }
}

impl std::fmt::Display for FilterFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FilterFunction::Lt => "<",
            FilterFunction::Le => "<=",
            FilterFunction::Gt => ">",
            FilterFunction::Ge => ">=",
            FilterFunction::Eq => "==",
            FilterFunction::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// Aggregation function ("Agg. function" feature).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AggFunction {
    Min,
    Max,
    Avg,
    Sum,
}

impl AggFunction {
    pub const ALL: [AggFunction; 4] = [
        AggFunction::Min,
        AggFunction::Max,
        AggFunction::Avg,
        AggFunction::Sum,
    ];

    #[inline]
    pub fn one_hot_index(self) -> usize {
        match self {
            AggFunction::Min => 0,
            AggFunction::Max => 1,
            AggFunction::Avg => 2,
            AggFunction::Sum => 3,
        }
    }
}

impl std::fmt::Display for AggFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggFunction::Min => "min",
            AggFunction::Max => "max",
            AggFunction::Avg => "avg",
            AggFunction::Sum => "sum",
        };
        f.write_str(s)
    }
}

/// Window shifting strategy ("Window type" feature).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum WindowType {
    Tumbling,
    Sliding,
}

/// Windowing strategy ("Window policy" feature): count- or time-based.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum WindowPolicy {
    /// `length`/`slide` are measured in tuples.
    Count,
    /// `length`/`slide` are measured in milliseconds.
    Time,
}

/// A window specification shared by aggregations and joins.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct WindowSpec {
    pub policy: WindowPolicy,
    /// Window length: tuples for [`WindowPolicy::Count`], milliseconds for
    /// [`WindowPolicy::Time`] ("Window length" / "Window duration").
    pub length: f64,
    /// Sliding interval in the same unit; `None` makes the window tumbling
    /// ("Sliding length" feature).
    pub slide: Option<f64>,
}

impl WindowSpec {
    pub fn tumbling(policy: WindowPolicy, length: f64) -> Self {
        WindowSpec {
            policy,
            length,
            slide: None,
        }
    }

    pub fn sliding(policy: WindowPolicy, length: f64, slide: f64) -> Self {
        debug_assert!(
            slide > 0.0 && slide <= length,
            "sliding window needs 0 < slide <= length, got slide {slide} for length {length}"
        );
        WindowSpec {
            policy,
            length,
            slide: Some(slide),
        }
    }

    #[inline]
    pub fn window_type(&self) -> WindowType {
        if self.slide.is_some() {
            WindowType::Sliding
        } else {
            WindowType::Tumbling
        }
    }

    /// How often the window fires, in its own unit (slide for sliding
    /// windows, length for tumbling ones).
    #[inline]
    pub fn emission_period(&self) -> f64 {
        self.slide.unwrap_or(self.length)
    }

    /// Average number of windows each tuple participates in.
    #[inline]
    pub fn overlap_factor(&self) -> f64 {
        (self.length / self.emission_period()).max(1.0)
    }

    /// The emission period in seconds given the upstream arrival rate
    /// (tuples/s). For count windows the period is `slide_tuples / rate`;
    /// for time windows it is independent of the rate.
    pub fn emission_period_secs(&self, input_rate: f64) -> f64 {
        match self.policy {
            WindowPolicy::Count => {
                if input_rate <= 0.0 {
                    f64::INFINITY
                } else {
                    self.emission_period() / input_rate
                }
            }
            WindowPolicy::Time => self.emission_period() / 1000.0,
        }
    }

    /// Expected number of tuples held in one window instance given the
    /// arrival rate (tuples/s).
    pub fn tuples_per_window(&self, input_rate: f64) -> f64 {
        match self.policy {
            WindowPolicy::Count => self.length,
            WindowPolicy::Time => (input_rate * self.length / 1000.0).max(1.0),
        }
    }
}

/// Data source: emits tuples of `schema` at `event_rate` tuples/second.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SourceOp {
    /// "Event rate" feature (ev/sec).
    pub event_rate: f64,
    pub schema: TupleSchema,
    /// Upper bound on the number of distinct entities the stream describes
    /// (e.g. 54 sensors in the Intel-lab trace); `None` when unknown.
    /// Excluded from the wire format so existing fixtures stay byte-stable.
    #[serde(skip)]
    pub key_cardinality: Option<f64>,
}

/// Comparison filter.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FilterOp {
    pub function: FilterFunction,
    /// "Filter literal class": data type of the comparison literal.
    pub literal_class: DataType,
    /// Average selectivity over all parallel instances (Definition 4).
    pub selectivity: f64,
}

/// Windowed group-by aggregation.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AggregateOp {
    pub window: WindowSpec,
    pub function: AggFunction,
    /// "Agg. class": data type of the aggregated expression.
    pub agg_class: DataType,
    /// "Agg. key class": data type of the group-by key; `None` for a global
    /// (un-keyed) aggregate.
    pub key_class: Option<DataType>,
    /// Fraction of distinct group-by keys per window (Definition 6).
    pub selectivity: f64,
    /// Upper bound on the number of distinct group-by key values over the
    /// stream's lifetime; `None` when unknown. Excluded from the wire
    /// format so existing fixtures stay byte-stable.
    #[serde(skip)]
    pub key_cardinality: Option<f64>,
}

/// Windowed two-input equi-join.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct JoinOp {
    pub window: WindowSpec,
    /// "Join key class": data type of the join key.
    pub key_class: DataType,
    /// Match fraction on the cartesian product of the two windows
    /// (Definition 5).
    pub selectivity: f64,
    /// Upper bound on the join-key domain size (an equi-join over `K`
    /// distinct keys matches ≈ `1/K` of the cartesian product); `None`
    /// when unknown. Excluded from the wire format so existing fixtures
    /// stay byte-stable.
    #[serde(skip)]
    pub key_cardinality: Option<f64>,
}

/// Data sink: delivers results to an external system.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct SinkOp;

/// Sum type of all supported operators.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum OperatorKind {
    Source(SourceOp),
    Filter(FilterOp),
    Aggregate(AggregateOp),
    Join(JoinOp),
    Sink(SinkOp),
}

impl OperatorKind {
    /// Short label for plan printing.
    pub fn label(&self) -> &'static str {
        match self {
            OperatorKind::Source(_) => "source",
            OperatorKind::Filter(_) => "filter",
            OperatorKind::Aggregate(_) => "window-agg",
            OperatorKind::Join(_) => "window-join",
            OperatorKind::Sink(_) => "sink",
        }
    }

    /// Index in the canonical operator-type one-hot encoding.
    pub fn type_index(&self) -> usize {
        match self {
            OperatorKind::Source(_) => 0,
            OperatorKind::Filter(_) => 1,
            OperatorKind::Aggregate(_) => 2,
            OperatorKind::Join(_) => 3,
            OperatorKind::Sink(_) => 4,
        }
    }

    /// Number of distinct operator types.
    pub const NUM_TYPES: usize = 5;

    pub fn is_source(&self) -> bool {
        matches!(self, OperatorKind::Source(_))
    }

    pub fn is_sink(&self) -> bool {
        matches!(self, OperatorKind::Sink(_))
    }

    /// Expected number of input edges.
    pub fn expected_inputs(&self) -> usize {
        match self {
            OperatorKind::Source(_) => 0,
            OperatorKind::Join(_) => 2,
            _ => 1,
        }
    }

    /// Whether this operator requires hash partitioning of its input
    /// (keyed state, like Flink's `keyBy`).
    pub fn requires_hash_input(&self) -> bool {
        match self {
            OperatorKind::Join(_) => true,
            OperatorKind::Aggregate(a) => a.key_class.is_some(),
            _ => false,
        }
    }

    /// Average output/input rate ratio (selectivity in the paper's
    /// Definitions 4–6; sources and sinks pass everything through).
    pub fn selectivity(&self) -> f64 {
        match self {
            OperatorKind::Source(_) | OperatorKind::Sink(_) => 1.0,
            OperatorKind::Filter(f) => f.selectivity,
            OperatorKind::Aggregate(a) => a.selectivity,
            OperatorKind::Join(j) => j.selectivity,
        }
    }

    /// Window specification for windowed operators.
    pub fn window(&self) -> Option<&WindowSpec> {
        match self {
            OperatorKind::Aggregate(a) => Some(&a.window),
            OperatorKind::Join(j) => Some(&j.window),
            _ => None,
        }
    }

    /// Declared upper bound on the operator's distinct-key cardinality
    /// (entity domain for sources, group-by key domain for aggregates,
    /// join-key domain for joins); `None` when unknown.
    pub fn key_cardinality(&self) -> Option<f64> {
        match self {
            OperatorKind::Source(s) => s.key_cardinality,
            OperatorKind::Aggregate(a) => a.key_cardinality,
            OperatorKind::Join(j) => j.key_cardinality,
            _ => None,
        }
    }

    /// Hash key class a hash-partitioned input must be routed on: the
    /// join key for joins, the group-by key for keyed aggregates.
    pub fn hash_key_class(&self) -> Option<DataType> {
        match self {
            OperatorKind::Join(j) => Some(j.key_class),
            OperatorKind::Aggregate(a) => a.key_class,
            _ => None,
        }
    }

    /// Largest parallelism degree that can do useful work: with at most
    /// `K` distinct key values, a hash partitioner routes tuples to at
    /// most `ceil(K)` instances. `None` when the operator does not
    /// hash-partition its input or its cardinality is unknown.
    pub fn parallelism_cap(&self) -> Option<u32> {
        if !self.requires_hash_input() {
            return None;
        }
        match self.key_cardinality() {
            Some(k) if k.is_finite() && k >= 1.0 => Some(k.ceil() as u32),
            Some(k) if k.is_finite() && k > 0.0 => Some(1),
            _ => None,
        }
    }

    /// Effective parallelism under hash partitioning: `p` clamped to
    /// [`Self::parallelism_cap`] — instances beyond the cap are provably
    /// idle. Operators without a cap use all `p` instances.
    pub fn effective_parallelism(&self, p: u32) -> u32 {
        match self.parallelism_cap() {
            Some(cap) => p.min(cap),
            None => p,
        }
    }
}

impl std::fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_function_eval() {
        assert!(FilterFunction::Lt.eval(1.0, 2.0));
        assert!(!FilterFunction::Lt.eval(2.0, 1.0));
        assert!(FilterFunction::Le.eval(2.0, 2.0));
        assert!(FilterFunction::Ge.eval(2.0, 2.0));
        assert!(FilterFunction::Eq.eval(3.0, 3.0));
        assert!(FilterFunction::Ne.eval(3.0, 4.0));
    }

    #[test]
    fn window_type_derivation() {
        let t = WindowSpec::tumbling(WindowPolicy::Count, 10.0);
        assert_eq!(t.window_type(), WindowType::Tumbling);
        assert_eq!(t.emission_period(), 10.0);
        assert_eq!(t.overlap_factor(), 1.0);

        let s = WindowSpec::sliding(WindowPolicy::Time, 1000.0, 300.0);
        assert_eq!(s.window_type(), WindowType::Sliding);
        assert_eq!(s.emission_period(), 300.0);
        assert!((s.overlap_factor() - 1000.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn count_window_emission_depends_on_rate() {
        let w = WindowSpec::tumbling(WindowPolicy::Count, 100.0);
        assert!((w.emission_period_secs(1000.0) - 0.1).abs() < 1e-12);
        // Zero input rate never fires.
        assert!(w.emission_period_secs(0.0).is_infinite());
    }

    #[test]
    fn time_window_emission_independent_of_rate() {
        let w = WindowSpec::tumbling(WindowPolicy::Time, 2000.0);
        assert_eq!(w.emission_period_secs(10.0), 2.0);
        assert_eq!(w.emission_period_secs(100_000.0), 2.0);
    }

    #[test]
    fn tuples_per_window() {
        let c = WindowSpec::tumbling(WindowPolicy::Count, 50.0);
        assert_eq!(c.tuples_per_window(12_345.0), 50.0);
        let t = WindowSpec::tumbling(WindowPolicy::Time, 500.0);
        assert_eq!(t.tuples_per_window(1000.0), 500.0);
        // Degenerate low rates still hold at least one tuple.
        assert_eq!(t.tuples_per_window(0.1), 1.0);
    }

    #[test]
    fn operator_kind_queries() {
        let src = OperatorKind::Source(SourceOp {
            event_rate: 100.0,
            schema: TupleSchema::uniform(DataType::Int, 3),
            key_cardinality: None,
        });
        assert!(src.is_source());
        assert_eq!(src.expected_inputs(), 0);
        assert_eq!(src.selectivity(), 1.0);

        let join = OperatorKind::Join(JoinOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 10.0),
            key_class: DataType::Int,
            selectivity: 0.01,
            key_cardinality: None,
        });
        assert!(join.requires_hash_input());
        assert_eq!(join.expected_inputs(), 2);
        assert!(join.window().is_some());

        let global_agg = OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Time, 1000.0),
            function: AggFunction::Avg,
            agg_class: DataType::Double,
            key_class: None,
            selectivity: 0.001,
            key_cardinality: None,
        });
        assert!(!global_agg.requires_hash_input());

        let keyed_agg = OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Time, 1000.0),
            function: AggFunction::Avg,
            agg_class: DataType::Double,
            key_class: Some(DataType::Int),
            selectivity: 0.1,
            key_cardinality: None,
        });
        assert!(keyed_agg.requires_hash_input());
    }

    #[test]
    fn one_hot_indices_are_dense_and_unique() {
        let mut seen = [false; 6];
        for f in FilterFunction::ALL {
            let i = f.one_hot_index();
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));

        let mut seen = [false; 4];
        for f in AggFunction::ALL {
            let i = f.one_hot_index();
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
