//! Synthetic query generator.
//!
//! Builds the parallel query workloads of Table III: *linear* queries,
//! *2-/3-way joins* (seen during training) and *chained filters* and
//! *4-/5-/6-way joins* (unseen structures used to probe generalization),
//! plus the public benchmark topologies.
//!
//! All parameters (event rates, tuple widths, window configurations,
//! selectivities, data types) are sampled from a [`ParamRanges`] grid so
//! the same generator serves both the seen and the unseen range.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::benchmarks;
use crate::operators::*;
use crate::params::ParamRanges;
use crate::plan::LogicalPlan;
use crate::types::{DataType, OpId, TupleSchema};

/// The query-plan structures evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum QueryStructure {
    /// source → filter → window-aggregate → sink.
    Linear,
    /// Join of 2 streams (seen).
    TwoWayJoin,
    /// Join of 3 streams (seen).
    ThreeWayJoin,
    /// source → n filters → sink, `n ∈ 2..=4` (unseen).
    ChainedFilters(u8),
    /// Join of `n` streams, `n ∈ 4..=6` (unseen).
    NWayJoin(u8),
    /// Public benchmark: Intel-lab spike detection (unseen).
    SpikeDetection,
    /// Public benchmark: smart-grid local load (unseen).
    SmartGridLocal,
    /// Public benchmark: smart-grid global load (unseen).
    SmartGridGlobal,
}

impl QueryStructure {
    /// The structures seen during training.
    pub fn seen() -> Vec<QueryStructure> {
        vec![
            QueryStructure::Linear,
            QueryStructure::TwoWayJoin,
            QueryStructure::ThreeWayJoin,
        ]
    }

    /// The unseen synthetic structures (Table IV ②).
    pub fn unseen_synthetic() -> Vec<QueryStructure> {
        vec![
            QueryStructure::ChainedFilters(2),
            QueryStructure::ChainedFilters(3),
            QueryStructure::ChainedFilters(4),
            QueryStructure::NWayJoin(4),
            QueryStructure::NWayJoin(5),
            QueryStructure::NWayJoin(6),
        ]
    }

    /// The unseen public benchmarks (Table IV ③).
    pub fn benchmarks() -> Vec<QueryStructure> {
        vec![
            QueryStructure::SpikeDetection,
            QueryStructure::SmartGridLocal,
            QueryStructure::SmartGridGlobal,
        ]
    }

    pub fn is_seen(self) -> bool {
        matches!(
            self,
            QueryStructure::Linear | QueryStructure::TwoWayJoin | QueryStructure::ThreeWayJoin
        )
    }

    /// Number of source streams involved.
    pub fn num_streams(self) -> usize {
        match self {
            QueryStructure::TwoWayJoin => 2,
            QueryStructure::ThreeWayJoin => 3,
            QueryStructure::NWayJoin(n) => n as usize,
            _ => 1,
        }
    }

    pub fn name(self) -> String {
        match self {
            QueryStructure::Linear => "linear".into(),
            QueryStructure::TwoWayJoin => "2-way-join".into(),
            QueryStructure::ThreeWayJoin => "3-way-join".into(),
            QueryStructure::ChainedFilters(n) => format!("{n}-filter-chained"),
            QueryStructure::NWayJoin(n) => format!("{n}-way-join"),
            QueryStructure::SpikeDetection => "spike-detection".into(),
            QueryStructure::SmartGridLocal => "smart-grid-local".into(),
            QueryStructure::SmartGridGlobal => "smart-grid-global".into(),
        }
    }
}

impl std::fmt::Display for QueryStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Randomized generator of logical plans over a parameter grid.
pub struct QueryGenerator {
    pub ranges: ParamRanges,
    /// When `true`, derive `key_cardinality` metadata from the parameters
    /// the generator already samples (no extra RNG draws, so the plan
    /// stream is unchanged apart from the metadata). Defaults to `false`
    /// so seeded datasets and their labels stay byte-identical.
    pub key_cardinality: bool,
}

impl QueryGenerator {
    pub fn new(ranges: ParamRanges) -> Self {
        QueryGenerator {
            ranges,
            key_cardinality: false,
        }
    }

    /// Generator over the training ranges.
    pub fn seen() -> Self {
        QueryGenerator::new(ParamRanges::seen())
    }

    /// Generator over the unseen testing ranges.
    pub fn unseen() -> Self {
        QueryGenerator::new(ParamRanges::unseen())
    }

    /// Enable (or disable) derived `key_cardinality` metadata on generated
    /// operators. Derivation uses only already-sampled parameters, so two
    /// generators differing only in this flag emit structurally identical
    /// plans from the same seed.
    pub fn with_key_cardinality(mut self, on: bool) -> Self {
        self.key_cardinality = on;
        self
    }

    /// Generate a validated logical plan of the requested structure.
    pub fn generate<R: Rng + ?Sized>(&self, structure: QueryStructure, rng: &mut R) -> LogicalPlan {
        let plan = match structure {
            QueryStructure::Linear => self.linear(rng),
            QueryStructure::TwoWayJoin => self.n_way_join(2, rng),
            QueryStructure::ThreeWayJoin => self.n_way_join(3, rng),
            QueryStructure::ChainedFilters(n) => self.chained_filters(n as usize, rng),
            QueryStructure::NWayJoin(n) => self.n_way_join(n as usize, rng),
            QueryStructure::SpikeDetection => {
                benchmarks::spike_detection(self.ranges.sample_event_rate(rng))
            }
            QueryStructure::SmartGridLocal => {
                benchmarks::smart_grid_local(self.ranges.sample_event_rate(rng))
            }
            QueryStructure::SmartGridGlobal => {
                benchmarks::smart_grid_global(self.ranges.sample_event_rate(rng))
            }
        };
        debug_assert!(plan.validate().is_ok(), "generated invalid plan: {plan}");
        plan
    }

    fn sample_schema<R: Rng + ?Sized>(&self, rng: &mut R) -> TupleSchema {
        let width = self.ranges.sample_tuple_width(rng);
        let fields = (0..width)
            .map(|_| self.ranges.sample_data_type(rng))
            .collect();
        TupleSchema::new(fields)
    }

    fn sample_source<R: Rng + ?Sized>(&self, rng: &mut R) -> OperatorKind {
        OperatorKind::Source(SourceOp {
            event_rate: self.ranges.sample_event_rate(rng),
            schema: self.sample_schema(rng),
            key_cardinality: None,
        })
    }

    fn sample_filter<R: Rng + ?Sized>(&self, rng: &mut R) -> OperatorKind {
        let function = FilterFunction::ALL[rng.gen_range(0..FilterFunction::ALL.len())];
        // Equality filters are much more selective than range filters.
        let selectivity = match function {
            FilterFunction::Eq => rng.gen_range(0.01..0.2),
            FilterFunction::Ne => rng.gen_range(0.8..0.99),
            _ => rng.gen_range(0.05..0.95),
        };
        OperatorKind::Filter(FilterOp {
            function,
            literal_class: self.ranges.sample_data_type(rng),
            selectivity,
        })
    }

    fn sample_window<R: Rng + ?Sized>(&self, rng: &mut R) -> WindowSpec {
        let policy = if rng.gen_bool(0.5) {
            WindowPolicy::Count
        } else {
            WindowPolicy::Time
        };
        let length = match policy {
            WindowPolicy::Count => self.ranges.sample_window_length(rng),
            WindowPolicy::Time => self.ranges.sample_window_duration(rng),
        };
        let slide = if rng.gen_bool(0.5) {
            Some((self.ranges.sample_sliding_ratio(rng) * length).max(1.0))
        } else {
            None
        };
        WindowSpec {
            policy,
            length,
            slide,
        }
    }

    fn sample_aggregate<R: Rng + ?Sized>(&self, rng: &mut R) -> OperatorKind {
        let keyed = rng.gen_bool(0.8);
        let window = self.sample_window(rng);
        let function = AggFunction::ALL[rng.gen_range(0..AggFunction::ALL.len())];
        let agg_class = if rng.gen_bool(0.5) {
            DataType::Double
        } else {
            DataType::Int
        };
        let key_class = keyed.then(|| self.ranges.sample_data_type(rng));
        let selectivity = if keyed {
            rng.gen_range(0.02..0.5)
        } else {
            // a global aggregate emits one tuple per window
            rng.gen_range(0.001..0.05)
        };
        // Selectivity is the fraction of distinct group-by keys per window
        // (Definition 6), so for count windows `selectivity × length`
        // bounds the key-domain size. Time windows hold a rate-dependent
        // tuple count, so no static bound exists for them.
        let key_cardinality =
            (self.key_cardinality && keyed && window.policy == WindowPolicy::Count)
                .then(|| (selectivity * window.length).max(1.0));
        OperatorKind::Aggregate(AggregateOp {
            window,
            function,
            agg_class,
            key_class,
            selectivity,
            key_cardinality,
        })
    }

    fn sample_join<R: Rng + ?Sized>(&self, rng: &mut R) -> OperatorKind {
        // Equi-joins over K distinct keys match ≈ 1/K of the cartesian
        // product (Definition 5), so we sample the key-domain size
        // log-uniformly: K ∈ [10², 10⁴] → selectivity ∈ [1e-4, 1e-2].
        let exponent = rng.gen_range(2.0..4.0f64);
        OperatorKind::Join(JoinOp {
            window: self.sample_window(rng),
            key_class: self.ranges.sample_data_type(rng),
            selectivity: 10f64.powf(-exponent),
            // The sampled key-domain size, when cardinality derivation is on.
            key_cardinality: self.key_cardinality.then(|| 10f64.powf(exponent)),
        })
    }

    /// A linear chain: source → (filter and/or window-aggregate) → sink.
    ///
    /// The paper's "linear" structure is a pipeline of unary operators;
    /// we sample the common filter→window-aggregate chain most of the
    /// time but also pure filter and pure aggregation pipelines, so the
    /// training data covers windowless chains too (the unseen
    /// "n-chained-filters" structures then differ only in chain length).
    fn linear<R: Rng + ?Sized>(&self, rng: &mut R) -> LogicalPlan {
        let mut p = LogicalPlan::new("linear");
        let s = p.add(self.sample_source(rng));
        let variant = rng.gen_range(0..10);
        let mut prev = s;
        if variant < 8 {
            // filter → … (80%)
            let f = p.add(self.sample_filter(rng));
            p.connect(prev, f);
            prev = f;
        }
        if variant >= 2 {
            // … → window-aggregate (80%)
            let a = p.add(self.sample_aggregate(rng));
            p.connect(prev, a);
            prev = a;
        }
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(prev, k);
        p
    }

    /// source → f1 → … → fn → sink.
    fn chained_filters<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> LogicalPlan {
        assert!(n >= 1);
        let mut p = LogicalPlan::new(format!("{n}-filter-chained"));
        let mut prev = p.add(self.sample_source(rng));
        for _ in 0..n {
            let f = p.add(self.sample_filter(rng));
            p.connect(prev, f);
            prev = f;
        }
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(prev, k);
        p
    }

    /// `n` sources, each with a filter, joined left-deep, then aggregated:
    /// `((s1 ⋈ s2) ⋈ s3) ⋈ …  → window-agg → sink`.
    fn n_way_join<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> LogicalPlan {
        assert!(n >= 2);
        let mut p = LogicalPlan::new(format!("{n}-way-join"));
        let mut branches: Vec<OpId> = Vec::with_capacity(n);
        for _ in 0..n {
            let s = p.add(self.sample_source(rng));
            let f = p.add(self.sample_filter(rng));
            p.connect(s, f);
            branches.push(f);
        }
        let mut left = branches[0];
        for &right in &branches[1..] {
            let j = p.add(self.sample_join(rng));
            p.connect(left, j);
            p.connect(right, j);
            left = j;
        }
        let a = p.add(self.sample_aggregate(rng));
        p.connect(left, a);
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(a, k);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_structures_generate_valid_plans() {
        let mut rng = StdRng::seed_from_u64(42);
        let all: Vec<QueryStructure> = QueryStructure::seen()
            .into_iter()
            .chain(QueryStructure::unseen_synthetic())
            .chain(QueryStructure::benchmarks())
            .collect();
        let gen = QueryGenerator::seen();
        for s in all {
            for _ in 0..20 {
                let plan = gen.generate(s, &mut rng);
                assert!(plan.validate().is_ok(), "invalid {s}: {plan}");
            }
        }
    }

    #[test]
    fn structure_operator_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = QueryGenerator::seen();
        let linear_ops = gen.generate(QueryStructure::Linear, &mut rng).num_ops();
        assert!((3..=4).contains(&linear_ops), "linear has {linear_ops} ops");
        // n-way join: n sources + n filters + (n-1) joins + agg + sink
        assert_eq!(
            gen.generate(QueryStructure::TwoWayJoin, &mut rng).num_ops(),
            2 + 2 + 1 + 1 + 1
        );
        assert_eq!(
            gen.generate(QueryStructure::NWayJoin(6), &mut rng)
                .num_ops(),
            6 + 6 + 5 + 1 + 1
        );
        assert_eq!(
            gen.generate(QueryStructure::ChainedFilters(3), &mut rng)
                .num_ops(),
            1 + 3 + 1
        );
    }

    #[test]
    fn seen_generator_samples_seen_widths() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen = QueryGenerator::seen();
        for _ in 0..50 {
            let plan = gen.generate(QueryStructure::Linear, &mut rng);
            for op in plan.ops() {
                if let OperatorKind::Source(s) = &op.kind {
                    assert!(crate::params::TRAIN_TUPLE_WIDTHS.contains(&s.schema.width()));
                    assert!(crate::params::TRAIN_EVENT_RATES.contains(&s.event_rate));
                }
            }
        }
    }

    #[test]
    fn unseen_generator_samples_unseen_widths() {
        let mut rng = StdRng::seed_from_u64(3);
        let gen = QueryGenerator::unseen();
        for _ in 0..50 {
            let plan = gen.generate(QueryStructure::Linear, &mut rng);
            for op in plan.ops() {
                if let OperatorKind::Source(s) = &op.kind {
                    assert!(crate::params::TEST_TUPLE_WIDTHS.contains(&s.schema.width()));
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = QueryGenerator::seen();
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        let p1 = gen.generate(QueryStructure::ThreeWayJoin, &mut r1);
        let p2 = gen.generate(QueryStructure::ThreeWayJoin, &mut r2);
        assert_eq!(format!("{p1}"), format!("{p2}"));
    }

    #[test]
    fn join_depth_grows_with_n() {
        let mut rng = StdRng::seed_from_u64(4);
        let gen = QueryGenerator::seen();
        let d2 = gen.generate(QueryStructure::TwoWayJoin, &mut rng).depth();
        let d6 = gen.generate(QueryStructure::NWayJoin(6), &mut rng).depth();
        assert!(d6 > d2);
    }

    #[test]
    fn structure_names() {
        assert_eq!(QueryStructure::Linear.name(), "linear");
        assert_eq!(QueryStructure::NWayJoin(5).name(), "5-way-join");
        assert_eq!(QueryStructure::ChainedFilters(2).name(), "2-filter-chained");
        assert!(QueryStructure::Linear.is_seen());
        assert!(!QueryStructure::SpikeDetection.is_seen());
    }
}
