//! Parallel query plans (PQPs).
//!
//! A [`ParallelQueryPlan`] augments a [`LogicalPlan`] with the runtime
//! knobs the paper tunes: a per-operator *parallelism degree* and a
//! per-edge *partitioning strategy* (forward / rebalance / hash, as in
//! Flink). This is the object the cost model predicts on and the optimizer
//! searches over.

use serde::{Deserialize, Serialize};

use crate::params::ParallelismCategory;
use crate::plan::{LogicalPlan, PlanError};
use crate::types::OpId;

/// Strategy for distributing tuples from an upstream instance to the
/// downstream operator's parallel instances ("Partitioning strategy"
/// feature; Flink's forward / rebalance / hash schemes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Partitioning {
    /// One-to-one local forwarding; requires equal parallelism and enables
    /// operator chaining.
    Forward,
    /// Round-robin redistribution across all downstream instances.
    Rebalance,
    /// Key-hash redistribution; required by keyed (stateful) operators.
    Hash,
}

impl Partitioning {
    pub const ALL: [Partitioning; 3] = [
        Partitioning::Forward,
        Partitioning::Rebalance,
        Partitioning::Hash,
    ];

    #[inline]
    pub fn one_hot_index(self) -> usize {
        match self {
            Partitioning::Forward => 0,
            Partitioning::Rebalance => 1,
            Partitioning::Hash => 2,
        }
    }
}

impl std::fmt::Display for Partitioning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Partitioning::Forward => "forward",
            Partitioning::Rebalance => "rebalance",
            Partitioning::Hash => "hash",
        };
        f.write_str(s)
    }
}

/// Errors specific to parallel plans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PqpError {
    Plan(PlanError),
    /// Parallelism must be ≥ 1 (constraint of Eq. 1 in the paper).
    ZeroParallelism(OpId),
    /// A forward edge requires equal parallelism on both ends.
    ForwardMismatch(OpId, OpId),
    /// A keyed operator's input must be hash partitioned.
    MissingHash(OpId),
}

impl std::fmt::Display for PqpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PqpError::Plan(e) => write!(f, "{e}"),
            PqpError::ZeroParallelism(id) => write!(f, "{id} has parallelism 0"),
            PqpError::ForwardMismatch(a, b) => write!(
                f,
                "forward edge {a} -> {b} requires equal parallelism degrees"
            ),
            PqpError::MissingHash(id) => {
                write!(f, "keyed operator {id} requires hash-partitioned input")
            }
        }
    }
}

impl std::error::Error for PqpError {}

impl From<PlanError> for PqpError {
    fn from(e: PlanError) -> Self {
        PqpError::Plan(e)
    }
}

/// A logical plan together with its parallel deployment configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParallelQueryPlan {
    pub plan: LogicalPlan,
    /// Parallelism degree per operator, indexed by [`OpId`].
    pub parallelism: Vec<u32>,
    /// Partitioning strategy per edge, parallel to `plan.edges()`.
    pub partitioning: Vec<Partitioning>,
}

impl ParallelQueryPlan {
    /// Wrap a logical plan with parallelism 1 everywhere and default
    /// partitioning.
    pub fn new(plan: LogicalPlan) -> Self {
        let n = plan.num_ops();
        let mut pqp = ParallelQueryPlan {
            parallelism: vec![1; n],
            partitioning: Vec::new(),
            plan,
        };
        pqp.reset_partitioning();
        pqp
    }

    /// Wrap a plan with explicit per-operator parallelism degrees.
    pub fn with_parallelism(plan: LogicalPlan, parallelism: Vec<u32>) -> Self {
        assert_eq!(plan.num_ops(), parallelism.len());
        let mut pqp = ParallelQueryPlan {
            parallelism,
            partitioning: Vec::new(),
            plan,
        };
        pqp.reset_partitioning();
        pqp
    }

    #[inline]
    pub fn parallelism_of(&self, id: OpId) -> u32 {
        self.parallelism[id.idx()]
    }

    /// Effective (non-idle) parallelism of `id`: the deployed degree capped
    /// at the operator's declared key cardinality when its input is hash
    /// partitioned (see [`OperatorKind::effective_parallelism`]). Equals
    /// the deployed degree whenever no cardinality metadata is declared.
    ///
    /// [`OperatorKind::effective_parallelism`]: crate::operators::OperatorKind::effective_parallelism
    #[inline]
    pub fn effective_parallelism_of(&self, id: OpId) -> u32 {
        self.plan
            .op(id)
            .kind
            .effective_parallelism(self.parallelism[id.idx()])
    }

    /// Set one operator's parallelism and recompute default partitioning
    /// (forward edges may turn into rebalance and vice versa).
    pub fn set_parallelism(&mut self, id: OpId, p: u32) {
        self.parallelism[id.idx()] = p;
        self.reset_partitioning();
    }

    /// Recompute the default (Flink-like) partitioning for every edge:
    /// hash into keyed operators, forward between equal-parallelism
    /// operators, rebalance otherwise.
    ///
    /// Equality is checked on *effective* parallelism (the physically
    /// active instance counts): forwarding is one-to-one between active
    /// instances, so a cardinality-capped operator forwards from its
    /// active instances only. Identical to raw-degree equality whenever no
    /// cardinality metadata is declared.
    pub fn reset_partitioning(&mut self) {
        self.partitioning = self
            .plan
            .edges()
            .iter()
            .map(|&(u, d)| {
                if self.plan.op(d).kind.requires_hash_input() {
                    Partitioning::Hash
                } else if self.effective_parallelism_of(u) == self.effective_parallelism_of(d) {
                    Partitioning::Forward
                } else {
                    Partitioning::Rebalance
                }
            })
            .collect();
    }

    /// Partitioning of the edge `upstream -> downstream`, if it exists.
    pub fn edge_partitioning(&self, upstream: OpId, downstream: OpId) -> Option<Partitioning> {
        self.plan
            .edges()
            .iter()
            .position(|&(u, d)| u == upstream && d == downstream)
            .map(|i| self.partitioning[i])
    }

    /// Partitioning of the (first) input edge of `id`; sources report
    /// `Forward`.
    pub fn input_partitioning(&self, id: OpId) -> Partitioning {
        self.plan
            .edges()
            .iter()
            .position(|&(_, d)| d == id)
            .map_or(Partitioning::Forward, |i| self.partitioning[i])
    }

    /// Total number of parallel operator instances (the deployment's task
    /// count).
    pub fn total_instances(&self) -> u64 {
        self.parallelism.iter().map(|&p| p as u64).sum()
    }

    /// Average parallelism degree per operator; the paper buckets queries
    /// into XS..XL categories on this value (Exp. 2).
    pub fn avg_parallelism(&self) -> f64 {
        if self.parallelism.is_empty() {
            return 0.0;
        }
        self.total_instances() as f64 / self.parallelism.len() as f64
    }

    /// Maximum parallelism degree of any operator.
    pub fn max_parallelism(&self) -> u32 {
        self.parallelism.iter().copied().max().unwrap_or(0)
    }

    /// The paper's parallelism category (XS, S, M, L, XL) of this plan.
    pub fn parallelism_category(&self) -> ParallelismCategory {
        ParallelismCategory::from_avg(self.avg_parallelism())
    }

    /// Validate the underlying plan plus the parallel configuration.
    pub fn validate(&self) -> Result<(), PqpError> {
        self.plan.validate()?;
        for op in self.plan.ops() {
            if self.parallelism[op.id.idx()] == 0 {
                return Err(PqpError::ZeroParallelism(op.id));
            }
        }
        for (i, &(u, d)) in self.plan.edges().iter().enumerate() {
            match self.partitioning[i] {
                Partitioning::Forward => {
                    // One-to-one forwarding pairs *active* instances, so the
                    // constraint (like `reset_partitioning`) is on effective
                    // parallelism.
                    if self.effective_parallelism_of(u) != self.effective_parallelism_of(d) {
                        return Err(PqpError::ForwardMismatch(u, d));
                    }
                }
                Partitioning::Rebalance | Partitioning::Hash => {}
            }
            if self.plan.op(d).kind.requires_hash_input()
                && self.partitioning[i] != Partitioning::Hash
            {
                return Err(PqpError::MissingHash(d));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for ParallelQueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "parallel plan `{}`:", self.plan.name)?;
        for op in self.plan.ops() {
            writeln!(
                f,
                "  {} [{} x{}]",
                op.id,
                op.kind.label(),
                self.parallelism[op.id.idx()]
            )?;
        }
        for (i, &(u, d)) in self.plan.edges().iter().enumerate() {
            writeln!(f, "  {} -> {} ({})", u, d, self.partitioning[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::*;
    use crate::types::{DataType, TupleSchema};

    fn linear_plan() -> LogicalPlan {
        let mut p = LogicalPlan::new("linear");
        let s = p.add(OperatorKind::Source(SourceOp {
            event_rate: 1000.0,
            schema: TupleSchema::uniform(DataType::Double, 3),
            key_cardinality: None,
        }));
        let f = p.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Double,
            selectivity: 0.4,
        }));
        let a = p.add(OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 10.0),
            function: AggFunction::Avg,
            agg_class: DataType::Double,
            key_class: Some(DataType::Int),
            selectivity: 0.2,
            key_cardinality: None,
        }));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, f);
        p.connect(f, a);
        p.connect(a, k);
        p
    }

    #[test]
    fn default_partitioning() {
        let pqp = ParallelQueryPlan::new(linear_plan());
        assert!(pqp.validate().is_ok());
        // equal parallelism everywhere -> forward, except hash into the
        // keyed aggregate
        assert_eq!(
            pqp.edge_partitioning(OpId(0), OpId(1)),
            Some(Partitioning::Forward)
        );
        assert_eq!(
            pqp.edge_partitioning(OpId(1), OpId(2)),
            Some(Partitioning::Hash)
        );
        assert_eq!(
            pqp.edge_partitioning(OpId(2), OpId(3)),
            Some(Partitioning::Forward)
        );
    }

    #[test]
    fn parallelism_change_updates_partitioning() {
        let mut pqp = ParallelQueryPlan::new(linear_plan());
        pqp.set_parallelism(OpId(1), 4);
        assert!(pqp.validate().is_ok());
        assert_eq!(
            pqp.edge_partitioning(OpId(0), OpId(1)),
            Some(Partitioning::Rebalance)
        );
        assert_eq!(pqp.total_instances(), 1 + 4 + 1 + 1);
        assert!((pqp.avg_parallelism() - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_parallelism_rejected() {
        let mut pqp = ParallelQueryPlan::new(linear_plan());
        pqp.parallelism[1] = 0;
        assert_eq!(pqp.validate(), Err(PqpError::ZeroParallelism(OpId(1))));
    }

    #[test]
    fn forward_mismatch_rejected() {
        let mut pqp = ParallelQueryPlan::new(linear_plan());
        pqp.parallelism[1] = 3; // edge 0->1 is still Forward in the stale vector
        assert_eq!(
            pqp.validate(),
            Err(PqpError::ForwardMismatch(OpId(0), OpId(1)))
        );
    }

    #[test]
    fn hash_requirement_enforced() {
        let mut pqp = ParallelQueryPlan::new(linear_plan());
        pqp.partitioning[1] = Partitioning::Rebalance; // into keyed agg
        assert_eq!(pqp.validate(), Err(PqpError::MissingHash(OpId(2))));
    }

    #[test]
    fn category_from_avg() {
        let mut pqp = ParallelQueryPlan::new(linear_plan());
        assert_eq!(pqp.parallelism_category(), ParallelismCategory::XS);
        for i in 0..4 {
            pqp.parallelism[i] = 40;
        }
        assert_eq!(pqp.parallelism_category(), ParallelismCategory::L);
    }

    #[test]
    fn input_partitioning_for_sources_is_forward() {
        let pqp = ParallelQueryPlan::new(linear_plan());
        assert_eq!(pqp.input_partitioning(OpId(0)), Partitioning::Forward);
        assert_eq!(pqp.input_partitioning(OpId(2)), Partitioning::Hash);
    }
}
