//! Public benchmark queries used in Exp. 1 (Table IV ③).
//!
//! The paper evaluates ZeroTune on two public streaming benchmarks that
//! were never part of the training workload:
//!
//! * **Spike detection** (Intel-lab sensor data, DSPBench): detect sensor
//!   readings that exceed a 2 s moving average.
//! * **Smart grid** (DEBS'14 smart-plug data): predict energy consumption
//!   load at the *local* (per plug) and *global* level over a 10 s sliding
//!   window with a 3 s slide.
//!
//! We reproduce the *query topologies and stream statistics*; the raw data
//! traces are proprietary to the original competitions, and ZeroTune by
//! design only consumes transferable stream statistics (event rate, tuple
//! width, selectivity), so synthetic statistics preserve the relevant
//! behaviour (see DESIGN.md, substitutions).

use crate::operators::*;
use crate::plan::LogicalPlan;
use crate::types::{DataType, TupleSchema};

/// Intel-lab spike detection: sensor stream → 2 s moving average per device
/// → filter readings deviating from the average → sink.
pub fn spike_detection(event_rate: f64) -> LogicalPlan {
    let mut p = LogicalPlan::new("spike-detection");
    // Intel-lab tuples: device id, timestamp, temperature, humidity.
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate,
        schema: TupleSchema::new(vec![
            DataType::Int,
            DataType::Int,
            DataType::Double,
            DataType::Double,
        ]),
        key_cardinality: None,
    }));
    // 2 s moving average per device, refreshed every 500 ms.
    let avg = p.add(OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::sliding(WindowPolicy::Time, 2_000.0, 500.0),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: Some(DataType::Int),
        // ~54 intel-lab devices over thousands of readings per window.
        selectivity: 0.03,
        key_cardinality: None,
    }));
    // Spikes: reading exceeds 1.15 × moving average (rare).
    let spike = p.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Double,
        selectivity: 0.05,
    }));
    let k = p.add(OperatorKind::Sink(SinkOp));
    p.connect(s, avg);
    p.connect(avg, spike);
    p.connect(spike, k);
    p
}

/// Smart-grid *local* load: per-plug average over a 10 s window sliding by
/// 3 s, followed by a load-threshold filter.
pub fn smart_grid_local(event_rate: f64) -> LogicalPlan {
    let mut p = LogicalPlan::new("smart-grid-local");
    // Smart-plug tuples: id, timestamp, value, property, plug, household, house.
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate,
        schema: TupleSchema::new(vec![
            DataType::Int,
            DataType::Int,
            DataType::Double,
            DataType::Int,
            DataType::Int,
            DataType::Int,
            DataType::Int,
        ]),
        key_cardinality: None,
    }));
    let avg = p.add(OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::sliding(WindowPolicy::Time, 10_000.0, 3_000.0),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: Some(DataType::Int),
        // many distinct plugs
        selectivity: 0.12,
        key_cardinality: None,
    }));
    let load = p.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Ge,
        literal_class: DataType::Double,
        selectivity: 0.3,
    }));
    let k = p.add(OperatorKind::Sink(SinkOp));
    p.connect(s, avg);
    p.connect(avg, load);
    p.connect(load, k);
    p
}

/// Smart-grid *global* load: one global average over the same 10 s / 3 s
/// sliding window (un-keyed aggregate → single output per slide).
pub fn smart_grid_global(event_rate: f64) -> LogicalPlan {
    let mut p = LogicalPlan::new("smart-grid-global");
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate,
        schema: TupleSchema::new(vec![
            DataType::Int,
            DataType::Int,
            DataType::Double,
            DataType::Int,
            DataType::Int,
            DataType::Int,
            DataType::Int,
        ]),
        key_cardinality: None,
    }));
    let avg = p.add(OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::sliding(WindowPolicy::Time, 10_000.0, 3_000.0),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: None,
        selectivity: 0.002,
        key_cardinality: None,
    }));
    let k = p.add(OperatorKind::Sink(SinkOp));
    p.connect(s, avg);
    p.connect(avg, k);
    p
}

/// Smart-grid *combined* load: both DEBS'14 queries fused into one
/// multi-sink plan over a shared pre-filter subplan.
///
/// A plausibility filter drops malformed plug readings once; its output
/// fans out into the per-plug (keyed) branch and the global (un-keyed)
/// branch, each terminating in its own sink. This is the repo's
/// multi-sink shared-subplan benchmark: one source, one shared filter,
/// two aggregate branches, two sinks.
pub fn smart_grid_combined(event_rate: f64) -> LogicalPlan {
    let mut p = LogicalPlan::new("smart-grid-combined");
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate,
        schema: TupleSchema::new(vec![
            DataType::Int,
            DataType::Int,
            DataType::Double,
            DataType::Int,
            DataType::Int,
            DataType::Int,
            DataType::Int,
        ]),
        key_cardinality: None,
    }));
    // shared plausibility filter: drop out-of-range load readings
    let valid = p.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Ge,
        literal_class: DataType::Double,
        selectivity: 0.9,
    }));
    // local branch: per-plug average, as in `smart_grid_local`
    let local_avg = p.add(OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::sliding(WindowPolicy::Time, 10_000.0, 3_000.0),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: Some(DataType::Int),
        selectivity: 0.12,
        key_cardinality: None,
    }));
    let local_sink = p.add(OperatorKind::Sink(SinkOp));
    // global branch: one un-keyed average, as in `smart_grid_global`
    let global_avg = p.add(OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::sliding(WindowPolicy::Time, 10_000.0, 3_000.0),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: None,
        selectivity: 0.002,
        key_cardinality: None,
    }));
    let global_sink = p.add(OperatorKind::Sink(SinkOp));
    p.connect(s, valid);
    p.connect(valid, local_avg);
    p.connect(local_avg, local_sink);
    p.connect(valid, global_avg);
    p.connect(global_avg, global_sink);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_detection_is_valid() {
        let p = spike_detection(1_000.0);
        assert!(p.validate().is_ok());
        assert_eq!(p.num_ops(), 4);
        // window: 2 s sliding every 500 ms
        let agg = p
            .ops()
            .iter()
            .find_map(|o| match &o.kind {
                OperatorKind::Aggregate(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert_eq!(agg.window.length, 2_000.0);
        assert_eq!(agg.window.window_type(), WindowType::Sliding);
        assert!(agg.key_class.is_some());
    }

    #[test]
    fn smart_grid_local_is_valid_and_keyed() {
        let p = smart_grid_local(5_000.0);
        assert!(p.validate().is_ok());
        let agg = p
            .ops()
            .iter()
            .find_map(|o| match &o.kind {
                OperatorKind::Aggregate(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert_eq!(agg.window.length, 10_000.0);
        assert_eq!(agg.window.slide, Some(3_000.0));
        assert!(agg.key_class.is_some());
    }

    #[test]
    fn smart_grid_global_is_unkeyed() {
        let p = smart_grid_global(5_000.0);
        assert!(p.validate().is_ok());
        let agg = p
            .ops()
            .iter()
            .find_map(|o| match &o.kind {
                OperatorKind::Aggregate(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert!(agg.key_class.is_none());
        // Global aggregate does not require hash partitioning.
        assert!(!OperatorKind::Aggregate(agg.clone()).requires_hash_input());
    }

    #[test]
    fn smart_grid_combined_is_multi_sink_with_shared_filter() {
        let p = smart_grid_combined(5_000.0);
        let ir = p.validate().expect("combined smart-grid plan is valid");
        assert_eq!(ir.sinks().len(), 2);
        assert_eq!(ir.sources().len(), 1);
        // the shared filter fans out into both aggregate branches
        let filter = p
            .ops()
            .iter()
            .find(|o| matches!(o.kind, OperatorKind::Filter(_)))
            .unwrap()
            .id;
        assert_eq!(ir.downstream(filter).len(), 2);
        // every operator is on a source → sink path
        assert!(p.ops().iter().all(|o| ir.reaches_sink(o.id)));
    }

    #[test]
    fn benchmark_tuple_widths_match_published_schemas() {
        let spike = spike_detection(100.0);
        let schemas = spike.output_schemas();
        assert_eq!(schemas[0].width(), 4); // intel-lab readings
        let grid = smart_grid_local(100.0);
        assert_eq!(grid.output_schemas()[0].width(), 7); // DEBS'14 plugs
    }
}
