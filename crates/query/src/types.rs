//! Fundamental identifier and schema types shared across the workspace.

use serde::{Deserialize, Serialize};

/// Identifier of an operator inside a [`crate::plan::LogicalPlan`].
///
/// Ids are dense indices assigned in insertion order, which lets downstream
/// crates use plain `Vec`s keyed by `OpId` instead of hash maps.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize, Default,
)]
pub struct OpId(pub u32);

impl OpId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ω{}", self.0)
    }
}

/// Data type of a single tuple field.
///
/// The paper treats the *class* of a literal or key (int / double / string)
/// as a transferable feature ("filter literal class", "join key class",
/// "agg. class"), because evaluation and hashing costs depend on the class
/// but not on concrete values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Double,
    Text,
}

impl DataType {
    /// All supported data types, in canonical (one-hot) order.
    pub const ALL: [DataType; 3] = [DataType::Int, DataType::Double, DataType::Text];

    /// Wire size of one field of this type in bytes.
    ///
    /// Strings are modeled with the average payload size used by the
    /// workload generator.
    #[inline]
    pub fn byte_size(self) -> usize {
        match self {
            DataType::Int => 8,
            DataType::Double => 8,
            DataType::Text => 24,
        }
    }

    /// Position in the canonical one-hot encoding.
    #[inline]
    pub fn one_hot_index(self) -> usize {
        match self {
            DataType::Int => 0,
            DataType::Double => 1,
            DataType::Text => 2,
        }
    }

    /// Relative CPU cost factor of comparing/hashing a value of this type
    /// (ints are cheapest, strings most expensive).
    #[inline]
    pub fn cost_factor(self) -> f64 {
        match self {
            DataType::Int => 1.0,
            DataType::Double => 1.15,
            DataType::Text => 2.2,
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Double => "double",
            DataType::Text => "string",
        };
        f.write_str(s)
    }
}

/// Schema of a stream's tuples: an ordered list of field types.
///
/// Exposes the two data-related transferable features from Table I:
/// *tuple width* (number of fields) and *tuple data type* (type mix).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TupleSchema {
    pub fields: Vec<DataType>,
}

impl TupleSchema {
    pub fn new(fields: Vec<DataType>) -> Self {
        TupleSchema { fields }
    }

    /// Schema with `width` fields, all of the same type.
    pub fn uniform(ty: DataType, width: usize) -> Self {
        TupleSchema {
            fields: vec![ty; width],
        }
    }

    /// Number of fields ("tuple width" feature).
    #[inline]
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// Serialized size of one tuple in bytes (including a fixed 16-byte
    /// envelope for timestamp + framing, as in typical DSP wire formats).
    pub fn bytes(&self) -> usize {
        16 + self.fields.iter().map(|f| f.byte_size()).sum::<usize>()
    }

    /// Fraction of fields of each data type, in [`DataType::ALL`] order.
    pub fn type_fractions(&self) -> [f64; 3] {
        let mut counts = [0usize; 3];
        for f in &self.fields {
            counts[f.one_hot_index()] += 1;
        }
        let n = self.width().max(1) as f64;
        [
            counts[0] as f64 / n,
            counts[1] as f64 / n,
            counts[2] as f64 / n,
        ]
    }

    /// Average per-field CPU cost factor; used by the simulator's service
    /// cost model.
    pub fn avg_cost_factor(&self) -> f64 {
        if self.fields.is_empty() {
            return 1.0;
        }
        self.fields.iter().map(|f| f.cost_factor()).sum::<f64>() / self.fields.len() as f64
    }

    /// Concatenation of two schemas (output of a join).
    pub fn concat(&self, other: &TupleSchema) -> TupleSchema {
        let mut fields = self.fields.clone();
        fields.extend_from_slice(&other.fields);
        TupleSchema { fields }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_width_and_bytes() {
        let s = TupleSchema::new(vec![DataType::Int, DataType::Double, DataType::Text]);
        assert_eq!(s.width(), 3);
        assert_eq!(s.bytes(), 16 + 8 + 8 + 24);
    }

    #[test]
    fn uniform_schema() {
        let s = TupleSchema::uniform(DataType::Double, 5);
        assert_eq!(s.width(), 5);
        assert_eq!(s.type_fractions(), [0.0, 1.0, 0.0]);
    }

    #[test]
    fn type_fractions_sum_to_one() {
        let s = TupleSchema::new(vec![
            DataType::Int,
            DataType::Int,
            DataType::Double,
            DataType::Text,
        ]);
        let f = s.type_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concat_joins_schemas() {
        let a = TupleSchema::uniform(DataType::Int, 2);
        let b = TupleSchema::uniform(DataType::Text, 3);
        let c = a.concat(&b);
        assert_eq!(c.width(), 5);
        assert_eq!(c.fields[0], DataType::Int);
        assert_eq!(c.fields[4], DataType::Text);
    }

    #[test]
    fn cost_factors_ordered() {
        assert!(DataType::Int.cost_factor() < DataType::Double.cost_factor());
        assert!(DataType::Double.cost_factor() < DataType::Text.cost_factor());
    }

    #[test]
    fn empty_schema_is_safe() {
        let s = TupleSchema::new(vec![]);
        assert_eq!(s.width(), 0);
        assert_eq!(s.avg_cost_factor(), 1.0);
        assert_eq!(s.type_fractions(), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn opid_display_and_index() {
        assert_eq!(OpId(3).idx(), 3);
        assert_eq!(format!("{}", OpId(3)), "ω3");
    }
}
