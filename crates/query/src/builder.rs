//! Fluent builder for streaming query plans.
//!
//! [`LogicalPlan`] is deliberately low-level (explicit ids and edges); the
//! [`StreamBuilder`] gives downstream users a Flink-DataStream-like API:
//!
//! ```
//! use zt_query::builder::StreamBuilder;
//! use zt_query::{AggFunction, DataType, FilterFunction, WindowPolicy, WindowSpec};
//!
//! let plan = StreamBuilder::source(10_000.0, DataType::Double, 3)
//!     .filter(FilterFunction::Gt, DataType::Double, 0.4)
//!     .window_aggregate(
//!         WindowSpec::tumbling(WindowPolicy::Count, 50.0),
//!         AggFunction::Avg,
//!         DataType::Double,
//!         Some(DataType::Int),
//!         0.2,
//!     )
//!     .sink("my-query");
//! assert!(plan.validate().is_ok());
//! ```

use crate::operators::{
    AggFunction, AggregateOp, FilterFunction, FilterOp, JoinOp, OperatorKind, SinkOp, SourceOp,
    WindowSpec,
};
use crate::plan::LogicalPlan;
use crate::types::{DataType, OpId, TupleSchema};

/// A partially built plan with one open (un-consumed) stream head.
#[derive(Debug)]
pub struct StreamBuilder {
    plan: LogicalPlan,
    head: OpId,
}

impl StreamBuilder {
    /// Start a new plan from a source emitting `width` fields of `ty` at
    /// `event_rate` tuples/s.
    pub fn source(event_rate: f64, ty: DataType, width: usize) -> Self {
        Self::source_with_schema(event_rate, TupleSchema::uniform(ty, width))
    }

    /// Start a new plan from a source with an explicit schema.
    pub fn source_with_schema(event_rate: f64, schema: TupleSchema) -> Self {
        let mut plan = LogicalPlan::new("built");
        let head = plan.add(OperatorKind::Source(SourceOp {
            event_rate,
            schema,
            key_cardinality: None,
        }));
        StreamBuilder { plan, head }
    }

    /// Append a comparison filter.
    pub fn filter(mut self, function: FilterFunction, literal: DataType, selectivity: f64) -> Self {
        debug_assert!(
            selectivity.is_finite(),
            "filter selectivity must be finite, got {selectivity}"
        );
        // Selectivity is a pass-through probability: clamp into (0, 1] so
        // a mis-measured value cannot statically kill or multiply the
        // stream (the diagnostics ZT104 lint flags anything outside).
        let selectivity = selectivity.clamp(f64::MIN_POSITIVE, 1.0);
        let f = self.plan.add(OperatorKind::Filter(FilterOp {
            function,
            literal_class: literal,
            selectivity,
        }));
        self.plan.connect(self.head, f);
        self.head = f;
        self
    }

    /// Append a windowed aggregation (`key_class: None` for a global
    /// aggregate).
    pub fn window_aggregate(
        mut self,
        window: WindowSpec,
        function: AggFunction,
        agg_class: DataType,
        key_class: Option<DataType>,
        selectivity: f64,
    ) -> Self {
        let a = self.plan.add(OperatorKind::Aggregate(AggregateOp {
            window,
            function,
            agg_class,
            key_class,
            selectivity,
            key_cardinality: None,
        }));
        self.plan.connect(self.head, a);
        self.head = a;
        self
    }

    /// Join this stream with `other` on a windowed equi-join. All of
    /// `other`'s operators are merged into this plan.
    pub fn join(
        mut self,
        other: StreamBuilder,
        window: WindowSpec,
        key_class: DataType,
        selectivity: f64,
    ) -> Self {
        // merge `other`'s operators, remapping its ids
        let offset = self.plan.num_ops() as u32;
        for op in other.plan.ops() {
            self.plan.add(op.kind.clone());
        }
        for &(u, d) in other.plan.edges() {
            self.plan.connect(OpId(u.0 + offset), OpId(d.0 + offset));
        }
        let other_head = OpId(other.head.0 + offset);

        let j = self.plan.add(OperatorKind::Join(JoinOp {
            window,
            key_class,
            selectivity,
            key_cardinality: None,
        }));
        self.plan.connect(self.head, j);
        self.plan.connect(other_head, j);
        self.head = j;
        self
    }

    /// Terminate with a sink and name the plan; returns the finished
    /// (validated) logical plan.
    pub fn sink(mut self, name: impl Into<String>) -> LogicalPlan {
        let k = self.plan.add(OperatorKind::Sink(SinkOp));
        self.plan.connect(self.head, k);
        self.plan.name = name.into();
        debug_assert!(
            self.plan.validate().is_ok(),
            "builder produced invalid plan"
        );
        self.plan
    }

    /// Terminate the *current branch* with a sink and rewind the head to
    /// `fork` — an operator id captured earlier via
    /// [`StreamBuilder::head`] — so another branch can be grown from the
    /// same shared subplan. Finish the last branch with
    /// [`StreamBuilder::sink`] as usual; the resulting plan has one sink
    /// per branch.
    pub fn tee_sink(mut self, fork: OpId) -> Self {
        let k = self.plan.add(OperatorKind::Sink(SinkOp));
        self.plan.connect(self.head, k);
        self.head = fork;
        self
    }

    /// Current head operator id (for advanced wiring).
    pub fn head(&self) -> OpId {
        self.head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::WindowPolicy;

    #[test]
    fn linear_pipeline_builds() {
        let plan = StreamBuilder::source(1_000.0, DataType::Double, 3)
            .filter(FilterFunction::Le, DataType::Double, 0.5)
            .window_aggregate(
                WindowSpec::tumbling(WindowPolicy::Count, 10.0),
                AggFunction::Max,
                DataType::Double,
                Some(DataType::Int),
                0.2,
            )
            .sink("linear");
        assert!(plan.validate().is_ok());
        assert_eq!(plan.num_ops(), 4);
        assert_eq!(plan.name, "linear");
    }

    #[test]
    fn join_merges_two_streams() {
        let right = StreamBuilder::source(500.0, DataType::Int, 2).filter(
            FilterFunction::Eq,
            DataType::Int,
            0.1,
        );
        let plan = StreamBuilder::source(1_000.0, DataType::Int, 2)
            .join(
                right,
                WindowSpec::tumbling(WindowPolicy::Time, 1_000.0),
                DataType::Int,
                0.01,
            )
            .sink("joined");
        assert!(plan.validate().is_ok());
        // 2 sources + 1 filter + 1 join + 1 sink
        assert_eq!(plan.num_ops(), 5);
        assert_eq!(plan.sources().len(), 2);
        assert_eq!(plan.depth(), 4);
    }

    #[test]
    fn nested_joins_build() {
        let a = StreamBuilder::source(100.0, DataType::Int, 1);
        let b = StreamBuilder::source(100.0, DataType::Int, 1);
        let c = StreamBuilder::source(100.0, DataType::Int, 1);
        let w = || WindowSpec::tumbling(WindowPolicy::Count, 10.0);
        let plan = a
            .join(b, w(), DataType::Int, 0.01)
            .join(c, w(), DataType::Int, 0.01)
            .sink("three-way");
        assert!(plan.validate().is_ok());
        assert_eq!(plan.sources().len(), 3);
    }

    #[test]
    fn filter_clamps_selectivity_into_unit_interval() {
        let plan = StreamBuilder::source(100.0, DataType::Int, 2)
            .filter(FilterFunction::Gt, DataType::Double, 0.0)
            .filter(FilterFunction::Lt, DataType::Double, 1.7)
            .sink("clamped");
        let sels: Vec<f64> = plan
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, crate::OperatorKind::Filter(_)))
            .map(|o| o.kind.selectivity())
            .collect();
        assert!(sels[0] > 0.0, "zero selectivity must be clamped positive");
        assert_eq!(sels[1], 1.0, "selectivity above 1 must be clamped to 1");
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn tee_sink_builds_multi_sink_plan_with_shared_subplan() {
        let shared = StreamBuilder::source(1_000.0, DataType::Double, 3).filter(
            FilterFunction::Gt,
            DataType::Double,
            0.5,
        );
        let fork = shared.head();
        let plan = shared
            .filter(FilterFunction::Le, DataType::Double, 0.4)
            .tee_sink(fork)
            .window_aggregate(
                WindowSpec::tumbling(WindowPolicy::Count, 10.0),
                AggFunction::Avg,
                DataType::Double,
                Some(DataType::Int),
                0.2,
            )
            .sink("teed");
        let ir = plan.validate().expect("teed plan is valid");
        assert_eq!(ir.sinks().len(), 2);
        // the shared filter fans out into both branches
        assert_eq!(ir.downstream(fork).len(), 2);
    }

    #[test]
    fn filter_chain_builds_windowless_plan() {
        let plan = StreamBuilder::source(100.0, DataType::Text, 4)
            .filter(FilterFunction::Ne, DataType::Text, 0.9)
            .filter(FilterFunction::Lt, DataType::Int, 0.3)
            .sink("chain");
        assert!(plan.validate().is_ok());
        assert_eq!(plan.num_ops(), 4);
        assert!(plan.ops().iter().all(|o| o.kind.window().is_none()));
    }
}
