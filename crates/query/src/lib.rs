//! # zt-query
//!
//! Streaming query algebra and workload generation for the ZeroTune
//! reproduction.
//!
//! This crate models everything the cost model needs to know about a
//! streaming query *before* it runs:
//!
//! * [`types`] — tuple schemas and data types (the paper's "tuple width" and
//!   "tuple data type" features).
//! * [`operators`] — the operator algebra: sources, comparison filters,
//!   windowed aggregations, windowed joins and sinks, together with their
//!   transferable parameters (window type/policy/length, aggregation
//!   function, filter function, key classes, selectivities, …).
//! * [`plan`] — logical query plans as validated DAGs.
//! * [`pqp`] — *parallel* query plans: a logical plan plus per-operator
//!   parallelism degrees and per-edge partitioning strategies (forward /
//!   rebalance / hash), mirroring Flink's runtime knobs.
//! * [`params`] — the training ("seen") and testing ("unseen") parameter
//!   ranges of Table III in the paper.
//! * [`generator`] — the synthetic query generator used to produce training
//!   and evaluation workloads (linear queries, chained filters, n-way joins).
//! * [`benchmarks`] — the public benchmark queries used in the paper's
//!   Exp. 1 (spike detection, smart-grid local/global).

#![deny(unsafe_code)]

pub mod benchmarks;
pub mod builder;
pub mod generator;
pub mod operators;
pub mod params;
pub mod plan;
pub mod pqp;
pub mod types;

pub use generator::{QueryGenerator, QueryStructure};
pub use operators::{
    AggFunction, AggregateOp, FilterFunction, FilterOp, JoinOp, OperatorKind, SourceOp,
    WindowPolicy, WindowSpec, WindowType,
};
pub use params::{ParallelismCategory, ParamRanges};
pub use plan::{LogicalOperator, LogicalPlan, PlanError, PlanIr, WireError};
pub use pqp::{ParallelQueryPlan, Partitioning};
pub use types::{DataType, OpId, TupleSchema};
