//! Logical query plans: validated operator DAGs.
//!
//! A [`LogicalPlan`] is a directed acyclic graph whose nodes are
//! [`LogicalOperator`]s and whose edges point *downstream*, i.e. in the
//! direction of the data flow from sources to the single sink. This is the
//! structure the paper encodes as a graph for the GNN (Section III-C).

use serde::{Deserialize, Serialize};

use crate::operators::OperatorKind;
use crate::types::{OpId, TupleSchema};

/// An operator instance inside a plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogicalOperator {
    pub id: OpId,
    pub kind: OperatorKind,
}

/// Errors produced by [`LogicalPlan::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The plan has no operators at all.
    Empty,
    /// An edge references an operator id that does not exist.
    UnknownOperator(OpId),
    /// A self-loop or duplicate edge.
    InvalidEdge(OpId, OpId),
    /// The graph contains a cycle.
    Cyclic,
    /// `op` has `actual` inputs but its kind expects `expected`.
    WrongInputCount {
        op: OpId,
        expected: usize,
        actual: usize,
    },
    /// The plan must contain exactly one sink; this many were found.
    SinkCount(usize),
    /// A non-sink operator has no downstream consumer.
    DeadEnd(OpId),
    /// There is no source operator.
    NoSource,
    /// An operator parameter is out of its valid domain (e.g. selectivity
    /// outside `[0, 1]` or a non-positive rate/window).
    InvalidParameter(OpId, &'static str),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Empty => write!(f, "plan has no operators"),
            PlanError::UnknownOperator(id) => write!(f, "edge references unknown operator {id}"),
            PlanError::InvalidEdge(a, b) => write!(f, "invalid edge {a} -> {b}"),
            PlanError::Cyclic => write!(f, "plan graph contains a cycle"),
            PlanError::WrongInputCount {
                op,
                expected,
                actual,
            } => write!(f, "{op} expects {expected} input(s) but has {actual}"),
            PlanError::SinkCount(n) => write!(f, "plan must have exactly one sink, found {n}"),
            PlanError::DeadEnd(id) => write!(f, "operator {id} has no downstream consumer"),
            PlanError::NoSource => write!(f, "plan has no source operator"),
            PlanError::InvalidParameter(id, what) => {
                write!(f, "operator {id} has invalid parameter: {what}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A logical streaming query plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogicalPlan {
    pub name: String,
    ops: Vec<LogicalOperator>,
    /// Edges in data-flow direction `(upstream, downstream)`.
    edges: Vec<(OpId, OpId)>,
}

impl LogicalPlan {
    pub fn new(name: impl Into<String>) -> Self {
        LogicalPlan {
            name: name.into(),
            ops: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add an operator and return its id.
    pub fn add(&mut self, kind: OperatorKind) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(LogicalOperator { id, kind });
        id
    }

    /// Connect `upstream -> downstream`.
    pub fn connect(&mut self, upstream: OpId, downstream: OpId) {
        self.edges.push((upstream, downstream));
    }

    #[inline]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    #[inline]
    pub fn ops(&self) -> &[LogicalOperator] {
        &self.ops
    }

    #[inline]
    pub fn edges(&self) -> &[(OpId, OpId)] {
        &self.edges
    }

    #[inline]
    pub fn op(&self, id: OpId) -> &LogicalOperator {
        &self.ops[id.idx()]
    }

    /// Ids of the operators feeding `id`, in edge insertion order.
    pub fn upstream(&self, id: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|(_, d)| *d == id)
            .map(|(u, _)| *u)
            .collect()
    }

    /// Ids of the operators consuming `id`'s output.
    pub fn downstream(&self, id: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|(u, _)| *u == id)
            .map(|(_, d)| *d)
            .collect()
    }

    /// All source operators.
    pub fn sources(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| o.kind.is_source())
            .map(|o| o.id)
            .collect()
    }

    /// The single sink (panics if the plan was not validated).
    pub fn sink(&self) -> OpId {
        self.ops
            .iter()
            .find(|o| o.kind.is_sink())
            .map(|o| o.id)
            .expect("validated plan has a sink")
    }

    /// Kahn topological order (sources first). Returns `None` on a cycle.
    pub fn topo_order(&self) -> Option<Vec<OpId>> {
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        for &(_, d) in &self.edges {
            if d.idx() >= n {
                return None;
            }
            indeg[d.idx()] += 1;
        }
        let mut queue: Vec<OpId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| OpId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for &(a, b) in &self.edges {
                if a == u {
                    indeg[b.idx()] -= 1;
                    if indeg[b.idx()] == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Compute the output schema of every operator, in id order.
    ///
    /// * source: its declared schema
    /// * filter / sink: pass-through
    /// * aggregate: `[key?, aggregate, window-timestamp]`
    /// * join: concatenation of both input schemas
    pub fn output_schemas(&self) -> Vec<TupleSchema> {
        use crate::types::DataType;
        let order = self.topo_order().expect("acyclic plan");
        let mut schemas: Vec<TupleSchema> = vec![TupleSchema::new(vec![]); self.ops.len()];
        for id in order {
            let up = self.upstream(id);
            let schema = match &self.op(id).kind {
                OperatorKind::Source(s) => s.schema.clone(),
                OperatorKind::Filter(_) | OperatorKind::Sink(_) => up
                    .first()
                    .map_or_else(|| TupleSchema::new(vec![]), |u| schemas[u.idx()].clone()),
                OperatorKind::Aggregate(a) => {
                    let mut fields = Vec::with_capacity(3);
                    if let Some(k) = a.key_class {
                        fields.push(k);
                    }
                    fields.push(a.agg_class);
                    fields.push(DataType::Int); // window timestamp
                    TupleSchema::new(fields)
                }
                OperatorKind::Join(_) => {
                    let left = up
                        .first()
                        .map_or_else(|| TupleSchema::new(vec![]), |u| schemas[u.idx()].clone());
                    let right = up
                        .get(1)
                        .map_or_else(|| TupleSchema::new(vec![]), |u| schemas[u.idx()].clone());
                    left.concat(&right)
                }
            };
            schemas[id.idx()] = schema;
        }
        schemas
    }

    /// Input schema (first input's output schema) per operator.
    pub fn input_schemas(&self) -> Vec<TupleSchema> {
        let out = self.output_schemas();
        self.ops
            .iter()
            .map(|o| {
                let up = self.upstream(o.id);
                match &o.kind {
                    OperatorKind::Source(s) => s.schema.clone(),
                    _ => up
                        .first()
                        .map_or_else(|| TupleSchema::new(vec![]), |u| out[u.idx()].clone()),
                }
            })
            .collect()
    }

    /// Full structural and parameter validation.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.ops.is_empty() {
            return Err(PlanError::Empty);
        }
        let n = self.ops.len();
        for &(a, b) in &self.edges {
            if a.idx() >= n {
                return Err(PlanError::UnknownOperator(a));
            }
            if b.idx() >= n {
                return Err(PlanError::UnknownOperator(b));
            }
            if a == b {
                return Err(PlanError::InvalidEdge(a, b));
            }
        }
        // duplicate edges
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &self.edges {
            if !seen.insert((a, b)) {
                return Err(PlanError::InvalidEdge(a, b));
            }
        }
        if self.topo_order().is_none() {
            return Err(PlanError::Cyclic);
        }
        let sinks = self.ops.iter().filter(|o| o.kind.is_sink()).count();
        if sinks != 1 {
            return Err(PlanError::SinkCount(sinks));
        }
        if self.sources().is_empty() {
            return Err(PlanError::NoSource);
        }
        for op in &self.ops {
            let inputs = self.upstream(op.id).len();
            let expected = op.kind.expected_inputs();
            if inputs != expected {
                return Err(PlanError::WrongInputCount {
                    op: op.id,
                    expected,
                    actual: inputs,
                });
            }
            if !op.kind.is_sink() && self.downstream(op.id).is_empty() {
                return Err(PlanError::DeadEnd(op.id));
            }
            self.validate_params(op)?;
        }
        Ok(())
    }

    fn validate_params(&self, op: &LogicalOperator) -> Result<(), PlanError> {
        let id = op.id;
        let sel_ok = |s: f64| (0.0..=1.0).contains(&s) && s.is_finite();
        match &op.kind {
            OperatorKind::Source(s) => {
                if !(s.event_rate > 0.0 && s.event_rate.is_finite()) {
                    return Err(PlanError::InvalidParameter(id, "event rate must be > 0"));
                }
                if s.schema.width() == 0 {
                    return Err(PlanError::InvalidParameter(id, "empty source schema"));
                }
            }
            OperatorKind::Filter(f) => {
                if !sel_ok(f.selectivity) {
                    return Err(PlanError::InvalidParameter(id, "selectivity not in [0,1]"));
                }
            }
            OperatorKind::Aggregate(a) => {
                if !sel_ok(a.selectivity) {
                    return Err(PlanError::InvalidParameter(id, "selectivity not in [0,1]"));
                }
                Self::validate_window(id, &a.window)?;
            }
            OperatorKind::Join(j) => {
                if !sel_ok(j.selectivity) {
                    return Err(PlanError::InvalidParameter(id, "selectivity not in [0,1]"));
                }
                Self::validate_window(id, &j.window)?;
            }
            OperatorKind::Sink(_) => {}
        }
        Ok(())
    }

    fn validate_window(id: OpId, w: &crate::operators::WindowSpec) -> Result<(), PlanError> {
        if !(w.length > 0.0 && w.length.is_finite()) {
            return Err(PlanError::InvalidParameter(id, "window length must be > 0"));
        }
        if let Some(s) = w.slide {
            if !(s > 0.0 && s.is_finite()) {
                return Err(PlanError::InvalidParameter(id, "slide must be > 0"));
            }
            if s > w.length {
                return Err(PlanError::InvalidParameter(
                    id,
                    "slide must not exceed window length",
                ));
            }
        }
        Ok(())
    }

    /// Longest path length (in operators) from any source to the sink.
    pub fn depth(&self) -> usize {
        let order = self.topo_order().expect("acyclic plan");
        let mut depth = vec![1usize; self.ops.len()];
        for id in order {
            for d in self.downstream(id) {
                depth[d.idx()] = depth[d.idx()].max(depth[id.idx()] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

impl std::fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "plan `{}`:", self.name)?;
        for op in &self.ops {
            let down: Vec<String> = self
                .downstream(op.id)
                .iter()
                .map(ToString::to_string)
                .collect();
            writeln!(
                f,
                "  {} [{}] -> {}",
                op.id,
                op.kind.label(),
                if down.is_empty() {
                    "∅".to_string()
                } else {
                    down.join(", ")
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::*;
    use crate::types::{DataType, TupleSchema};

    fn source(rate: f64) -> OperatorKind {
        OperatorKind::Source(SourceOp {
            event_rate: rate,
            schema: TupleSchema::uniform(DataType::Double, 3),
        })
    }

    fn filter(sel: f64) -> OperatorKind {
        OperatorKind::Filter(FilterOp {
            function: FilterFunction::Le,
            literal_class: DataType::Double,
            selectivity: sel,
        })
    }

    fn agg() -> OperatorKind {
        OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 10.0),
            function: AggFunction::Avg,
            agg_class: DataType::Double,
            key_class: Some(DataType::Int),
            selectivity: 0.2,
        })
    }

    fn linear_plan() -> LogicalPlan {
        let mut p = LogicalPlan::new("linear");
        let s = p.add(source(1000.0));
        let f = p.add(filter(0.5));
        let a = p.add(agg());
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, f);
        p.connect(f, a);
        p.connect(a, k);
        p
    }

    #[test]
    fn linear_plan_validates() {
        let p = linear_plan();
        assert!(p.validate().is_ok());
        assert_eq!(p.num_ops(), 4);
        assert_eq!(p.sources(), vec![OpId(0)]);
        assert_eq!(p.sink(), OpId(3));
        assert_eq!(p.depth(), 4);
    }

    #[test]
    fn topo_order_is_consistent() {
        let p = linear_plan();
        let order = p.topo_order().unwrap();
        assert_eq!(order.len(), 4);
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|&o| o == OpId(i)).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2] && pos[2] < pos[3]);
    }

    #[test]
    fn cycle_detected() {
        let mut p = linear_plan();
        p.connect(OpId(3), OpId(0));
        assert_eq!(p.validate(), Err(PlanError::Cyclic));
    }

    #[test]
    fn join_needs_two_inputs() {
        let mut p = LogicalPlan::new("bad-join");
        let s = p.add(source(100.0));
        let j = p.add(OperatorKind::Join(JoinOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 5.0),
            key_class: DataType::Int,
            selectivity: 0.1,
        }));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, j);
        p.connect(j, k);
        assert_eq!(
            p.validate(),
            Err(PlanError::WrongInputCount {
                op: j,
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn exactly_one_sink_required() {
        let mut p = LogicalPlan::new("no-sink");
        let s = p.add(source(100.0));
        let f = p.add(filter(0.1));
        p.connect(s, f);
        assert_eq!(p.validate(), Err(PlanError::SinkCount(0)));
    }

    #[test]
    fn dead_end_detected() {
        let mut p = linear_plan();
        // add a filter that consumes the source output but feeds nothing
        let dead = p.add(filter(0.3));
        p.connect(OpId(0), dead);
        assert_eq!(p.validate(), Err(PlanError::DeadEnd(dead)));
    }

    #[test]
    fn invalid_selectivity_rejected() {
        let mut p = LogicalPlan::new("bad-sel");
        let s = p.add(source(100.0));
        let f = p.add(filter(1.5));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, f);
        p.connect(f, k);
        assert!(matches!(
            p.validate(),
            Err(PlanError::InvalidParameter(_, _))
        ));
    }

    #[test]
    fn slide_larger_than_window_rejected() {
        let mut p = LogicalPlan::new("bad-window");
        let s = p.add(source(100.0));
        let a = p.add(OperatorKind::Aggregate(AggregateOp {
            // Struct literal: `WindowSpec::sliding` debug-asserts
            // `slide <= length`, and this test needs the invalid spec.
            window: WindowSpec {
                policy: WindowPolicy::Time,
                length: 100.0,
                slide: Some(200.0),
            },
            function: AggFunction::Sum,
            agg_class: DataType::Double,
            key_class: None,
            selectivity: 0.1,
        }));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, a);
        p.connect(a, k);
        assert!(matches!(
            p.validate(),
            Err(PlanError::InvalidParameter(
                _,
                "slide must not exceed window length"
            ))
        ));
    }

    #[test]
    fn output_schemas_propagate() {
        let p = linear_plan();
        let schemas = p.output_schemas();
        assert_eq!(schemas[0].width(), 3); // source
        assert_eq!(schemas[1].width(), 3); // filter passes through
        assert_eq!(schemas[2].width(), 3); // keyed agg: key + agg + ts
        assert_eq!(schemas[3].width(), 3); // sink passes through
    }

    #[test]
    fn join_output_schema_concatenates() {
        let mut p = LogicalPlan::new("join");
        let s1 = p.add(source(100.0));
        let s2 = p.add(source(100.0));
        let j = p.add(OperatorKind::Join(JoinOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 5.0),
            key_class: DataType::Int,
            selectivity: 0.1,
        }));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s1, j);
        p.connect(s2, j);
        p.connect(j, k);
        assert!(p.validate().is_ok());
        let schemas = p.output_schemas();
        assert_eq!(schemas[j.idx()].width(), 6);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut p = linear_plan();
        p.connect(OpId(0), OpId(1));
        assert!(matches!(p.validate(), Err(PlanError::InvalidEdge(_, _))));
    }

    #[test]
    fn serde_round_trip() {
        let p = linear_plan();
        let json = serde_json::to_string(&p).unwrap();
        let back: LogicalPlan = serde_json::from_str(&json).unwrap();
        assert!(back.validate().is_ok());
        assert_eq!(back.num_ops(), p.num_ops());
        assert_eq!(back.edges(), p.edges());
    }
}
