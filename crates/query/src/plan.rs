//! Logical query plans: validated operator DAGs.
//!
//! A [`LogicalPlan`] is a directed acyclic graph whose nodes are
//! [`LogicalOperator`]s and whose edges point *downstream*, i.e. in the
//! direction of the data flow from sources to the sinks. This is the
//! structure the paper encodes as a graph for the GNN (Section III-C).
//!
//! Plans are *mutable while being built* and *sealed on validation*:
//! [`LogicalPlan::validate`] returns a [`PlanIr`], an immutable arena
//! snapshot of the topology (CSR adjacency, cached topological order,
//! per-operator depth, schemas, sink reachability, and a structural
//! fingerprint). Hot paths — the analytical solver, the bounds
//! interpreter, the optimizer — traverse the `PlanIr` with O(degree)
//! slice lookups instead of re-scanning the raw edge list.
//!
//! # Determinism contract
//!
//! * Per-operator neighbor order (`PlanIr::upstream` / `downstream`) is
//!   **edge-insertion order**, identical to what the edge-scanning
//!   `LogicalPlan::upstream`/`downstream` return.
//! * The cached topological order is the Kahn order with the ready queue
//!   seeded in operator-id order and successors discovered in
//!   edge-insertion order — byte-for-byte the order `topo_order()`
//!   produced before sealing existed.
//! * Join inputs are ordered: the **left** input is the first-connected
//!   edge, the **right** input the second. `output_schemas` concatenates
//!   left-then-right.
//! * The structural [fingerprint](PlanIr::fingerprint) depends only on
//!   the operator kinds (in id order) and the edge *set* — it is
//!   invariant under edge-insertion reordering.

use serde::{Deserialize, Serialize};

use crate::operators::OperatorKind;
use crate::types::{OpId, TupleSchema};

/// An operator instance inside a plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogicalOperator {
    pub id: OpId,
    pub kind: OperatorKind,
}

/// Errors produced by [`LogicalPlan::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The plan has no operators at all.
    Empty,
    /// An edge references an operator id that does not exist.
    UnknownOperator(OpId),
    /// A self-loop or duplicate edge.
    InvalidEdge(OpId, OpId),
    /// The graph contains a cycle.
    Cyclic,
    /// `op` has `actual` inputs but its kind expects `expected`.
    WrongInputCount {
        op: OpId,
        expected: usize,
        actual: usize,
    },
    /// The plan has no sink operator.
    NoSink,
    /// A sink operator has a downstream consumer (sinks are terminal).
    SinkWithOutput(OpId),
    /// A non-sink operator has no downstream consumer.
    DeadEnd(OpId),
    /// There is no source operator.
    NoSource,
    /// An operator parameter is out of its valid domain (e.g. selectivity
    /// outside `[0, 1]` or a non-positive rate/window).
    InvalidParameter(OpId, &'static str),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Empty => write!(f, "plan has no operators"),
            PlanError::UnknownOperator(id) => write!(f, "edge references unknown operator {id}"),
            PlanError::InvalidEdge(a, b) => write!(f, "invalid edge {a} -> {b}"),
            PlanError::Cyclic => write!(f, "plan graph contains a cycle"),
            PlanError::WrongInputCount {
                op,
                expected,
                actual,
            } => write!(f, "{op} expects {expected} input(s) but has {actual}"),
            PlanError::NoSink => write!(f, "plan has no sink operator"),
            PlanError::SinkWithOutput(id) => {
                write!(f, "sink {id} must not have downstream consumers")
            }
            PlanError::DeadEnd(id) => write!(f, "operator {id} has no downstream consumer"),
            PlanError::NoSource => write!(f, "plan has no source operator"),
            PlanError::InvalidParameter(id, what) => {
                write!(f, "operator {id} has invalid parameter: {what}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A logical streaming query plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogicalPlan {
    pub name: String,
    ops: Vec<LogicalOperator>,
    /// Edges in data-flow direction `(upstream, downstream)`.
    edges: Vec<(OpId, OpId)>,
}

impl LogicalPlan {
    pub fn new(name: impl Into<String>) -> Self {
        LogicalPlan {
            name: name.into(),
            ops: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add an operator and return its id.
    pub fn add(&mut self, kind: OperatorKind) -> OpId {
        let id = OpId(self.ops.len() as u32);
        self.ops.push(LogicalOperator { id, kind });
        id
    }

    /// Connect `upstream -> downstream`, rejecting malformed edges at
    /// insertion time: self-loops and duplicate edges return
    /// [`PlanError::InvalidEdge`] instead of poisoning the plan until
    /// `validate()`.
    pub fn try_connect(&mut self, upstream: OpId, downstream: OpId) -> Result<(), PlanError> {
        if upstream == downstream || self.edges.contains(&(upstream, downstream)) {
            return Err(PlanError::InvalidEdge(upstream, downstream));
        }
        self.edges.push((upstream, downstream));
        Ok(())
    }

    /// Connect `upstream -> downstream`.
    ///
    /// # Panics
    ///
    /// Panics on a self-loop or duplicate edge; use
    /// [`LogicalPlan::try_connect`] to handle the error instead.
    pub fn connect(&mut self, upstream: OpId, downstream: OpId) {
        if let Err(e) = self.try_connect(upstream, downstream) {
            panic!("{e}");
        }
    }

    #[inline]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    #[inline]
    pub fn ops(&self) -> &[LogicalOperator] {
        &self.ops
    }

    #[inline]
    pub fn edges(&self) -> &[(OpId, OpId)] {
        &self.edges
    }

    #[inline]
    pub fn op(&self, id: OpId) -> &LogicalOperator {
        &self.ops[id.idx()]
    }

    /// Ids of the operators feeding `id`, in edge insertion order.
    ///
    /// Allocates on every call; sealed hot paths should use
    /// [`PlanIr::upstream`] instead.
    pub fn upstream(&self, id: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|(_, d)| *d == id)
            .map(|(u, _)| *u)
            .collect()
    }

    /// Ids of the operators consuming `id`'s output.
    ///
    /// Allocates on every call; sealed hot paths should use
    /// [`PlanIr::downstream`] instead.
    pub fn downstream(&self, id: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|(u, _)| *u == id)
            .map(|(_, d)| *d)
            .collect()
    }

    /// All source operators.
    pub fn sources(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| o.kind.is_source())
            .map(|o| o.id)
            .collect()
    }

    /// All sink operators, in id order.
    pub fn sinks(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|o| o.kind.is_sink())
            .map(|o| o.id)
            .collect()
    }

    /// The first sink in id order (panics if the plan has none).
    ///
    /// Multi-sink plans report per-sink metrics elsewhere; the first sink
    /// is the canonical readout operator (e.g. for the GNN latency head).
    pub fn sink(&self) -> OpId {
        self.ops
            .iter()
            .find(|o| o.kind.is_sink())
            .map(|o| o.id)
            .expect("validated plan has a sink")
    }

    /// Kahn topological order (sources first). Returns `None` on a cycle.
    ///
    /// Re-derives the order by scanning the edge list; sealed hot paths
    /// should use the cached [`PlanIr::topo_order`] (same order).
    pub fn topo_order(&self) -> Option<Vec<OpId>> {
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        for &(_, d) in &self.edges {
            if d.idx() >= n {
                return None;
            }
            indeg[d.idx()] += 1;
        }
        let mut queue: Vec<OpId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| OpId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for &(a, b) in &self.edges {
                if a == u {
                    indeg[b.idx()] -= 1;
                    if indeg[b.idx()] == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Compute the output schema of every operator, in id order.
    ///
    /// * source: its declared schema
    /// * filter / sink: pass-through
    /// * aggregate: `[key?, aggregate, window-timestamp]`
    /// * join: concatenation of the left (first-connected) and right
    ///   (second-connected) input schemas, in that order
    pub fn output_schemas(&self) -> Vec<TupleSchema> {
        let order = self.topo_order().expect("acyclic plan");
        let mut schemas: Vec<TupleSchema> = vec![TupleSchema::new(vec![]); self.ops.len()];
        for id in order {
            let up = self.upstream(id);
            schemas[id.idx()] = output_schema_of(&self.op(id).kind, &up, &schemas);
        }
        schemas
    }

    /// Input schema (first input's output schema) per operator.
    pub fn input_schemas(&self) -> Vec<TupleSchema> {
        let out = self.output_schemas();
        self.ops
            .iter()
            .map(|o| {
                let up = self.upstream(o.id);
                match &o.kind {
                    OperatorKind::Source(s) => s.schema.clone(),
                    _ => up
                        .first()
                        .map_or_else(|| TupleSchema::new(vec![]), |u| out[u.idx()].clone()),
                }
            })
            .collect()
    }

    /// Full structural and parameter validation; on success returns the
    /// sealed [`PlanIr`] topology snapshot.
    ///
    /// Checks, in order: non-empty, edge endpoints in bounds, no
    /// self-loops, no duplicate edges, acyclicity, at least one sink, at
    /// least one source, per-operator input arity, terminal sinks, no
    /// dead ends, and parameter domains.
    pub fn validate(&self) -> Result<PlanIr, PlanError> {
        if self.ops.is_empty() {
            return Err(PlanError::Empty);
        }
        let n = self.ops.len();
        for &(a, b) in &self.edges {
            if a.idx() >= n {
                return Err(PlanError::UnknownOperator(a));
            }
            if b.idx() >= n {
                return Err(PlanError::UnknownOperator(b));
            }
            if a == b {
                return Err(PlanError::InvalidEdge(a, b));
            }
        }
        // duplicate edges (plans built via `connect` can't contain them,
        // but deserialized plans bypass the insertion-time check)
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &self.edges {
            if !seen.insert((a, b)) {
                return Err(PlanError::InvalidEdge(a, b));
            }
        }
        let csr = Csr::build(n, &self.edges);
        let Some(topo) = csr.kahn_topo() else {
            return Err(PlanError::Cyclic);
        };
        let sinks = self.sinks();
        if sinks.is_empty() {
            return Err(PlanError::NoSink);
        }
        let sources = self.sources();
        if sources.is_empty() {
            return Err(PlanError::NoSource);
        }
        for op in &self.ops {
            let inputs = csr.upstream(op.id).len();
            let expected = op.kind.expected_inputs();
            if inputs != expected {
                return Err(PlanError::WrongInputCount {
                    op: op.id,
                    expected,
                    actual: inputs,
                });
            }
            let outputs = csr.downstream(op.id).len();
            if op.kind.is_sink() {
                if outputs != 0 {
                    return Err(PlanError::SinkWithOutput(op.id));
                }
            } else if outputs == 0 {
                return Err(PlanError::DeadEnd(op.id));
            }
            self.validate_params(op)?;
        }
        Ok(PlanIr::seal(self, csr, topo, sources, sinks))
    }

    fn validate_params(&self, op: &LogicalOperator) -> Result<(), PlanError> {
        let id = op.id;
        let sel_ok = |s: f64| (0.0..=1.0).contains(&s) && s.is_finite();
        match &op.kind {
            OperatorKind::Source(s) => {
                if !(s.event_rate > 0.0 && s.event_rate.is_finite()) {
                    return Err(PlanError::InvalidParameter(id, "event rate must be > 0"));
                }
                if s.schema.width() == 0 {
                    return Err(PlanError::InvalidParameter(id, "empty source schema"));
                }
            }
            OperatorKind::Filter(f) => {
                if !sel_ok(f.selectivity) {
                    return Err(PlanError::InvalidParameter(id, "selectivity not in [0,1]"));
                }
            }
            OperatorKind::Aggregate(a) => {
                if !sel_ok(a.selectivity) {
                    return Err(PlanError::InvalidParameter(id, "selectivity not in [0,1]"));
                }
                Self::validate_window(id, &a.window)?;
            }
            OperatorKind::Join(j) => {
                if !sel_ok(j.selectivity) {
                    return Err(PlanError::InvalidParameter(id, "selectivity not in [0,1]"));
                }
                Self::validate_window(id, &j.window)?;
            }
            OperatorKind::Sink(_) => {}
        }
        Ok(())
    }

    fn validate_window(id: OpId, w: &crate::operators::WindowSpec) -> Result<(), PlanError> {
        if !(w.length > 0.0 && w.length.is_finite()) {
            return Err(PlanError::InvalidParameter(id, "window length must be > 0"));
        }
        if let Some(s) = w.slide {
            if !(s > 0.0 && s.is_finite()) {
                return Err(PlanError::InvalidParameter(id, "slide must be > 0"));
            }
            if s > w.length {
                return Err(PlanError::InvalidParameter(
                    id,
                    "slide must not exceed window length",
                ));
            }
        }
        Ok(())
    }

    /// Longest path length (in operators) from any source to a sink.
    pub fn depth(&self) -> usize {
        let order = self.topo_order().expect("acyclic plan");
        let mut depth = vec![1usize; self.ops.len()];
        for id in order {
            for d in self.downstream(id) {
                depth[d.idx()] = depth[d.idx()].max(depth[id.idx()] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

/// Shared schema-derivation rule, used by both the edge-scanning
/// [`LogicalPlan::output_schemas`] and the sealed [`PlanIr`].
fn output_schema_of(kind: &OperatorKind, up: &[OpId], schemas: &[TupleSchema]) -> TupleSchema {
    use crate::types::DataType;
    match kind {
        OperatorKind::Source(s) => s.schema.clone(),
        OperatorKind::Filter(_) | OperatorKind::Sink(_) => up
            .first()
            .map_or_else(|| TupleSchema::new(vec![]), |u| schemas[u.idx()].clone()),
        OperatorKind::Aggregate(a) => {
            let mut fields = Vec::with_capacity(3);
            if let Some(k) = a.key_class {
                fields.push(k);
            }
            fields.push(a.agg_class);
            fields.push(DataType::Int); // window timestamp
            TupleSchema::new(fields)
        }
        OperatorKind::Join(_) => {
            let left = up
                .first()
                .map_or_else(|| TupleSchema::new(vec![]), |u| schemas[u.idx()].clone());
            let right = up
                .get(1)
                .map_or_else(|| TupleSchema::new(vec![]), |u| schemas[u.idx()].clone());
            left.concat(&right)
        }
    }
}

/// Compressed-sparse-row adjacency of a plan DAG.
///
/// Per-operator neighbor slices preserve **edge-insertion order**, and the
/// parallel `*_edge_indices` slices carry the position of each adjacency
/// entry in the original `plan.edges()` list, so per-edge attribute
/// vectors (`pqp.partitioning`, `rates.edge`, `dep.edge_exchange`) can be
/// indexed without scanning.
#[derive(Clone, Debug, PartialEq)]
struct Csr {
    in_offsets: Vec<u32>,
    in_ids: Vec<OpId>,
    in_edge_indices: Vec<u32>,
    out_offsets: Vec<u32>,
    out_ids: Vec<OpId>,
    out_edge_indices: Vec<u32>,
}

impl Csr {
    fn build(n: usize, edges: &[(OpId, OpId)]) -> Csr {
        let m = edges.len();
        let mut in_offsets = vec![0u32; n + 1];
        let mut out_offsets = vec![0u32; n + 1];
        for &(u, d) in edges {
            out_offsets[u.idx() + 1] += 1;
            in_offsets[d.idx() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut in_ids = vec![OpId(0); m];
        let mut in_edge_indices = vec![0u32; m];
        let mut out_ids = vec![OpId(0); m];
        let mut out_edge_indices = vec![0u32; m];
        let mut in_next = in_offsets.clone();
        let mut out_next = out_offsets.clone();
        for (e, &(u, d)) in edges.iter().enumerate() {
            let oi = out_next[u.idx()] as usize;
            out_ids[oi] = d;
            out_edge_indices[oi] = e as u32;
            out_next[u.idx()] += 1;
            let ii = in_next[d.idx()] as usize;
            in_ids[ii] = u;
            in_edge_indices[ii] = e as u32;
            in_next[d.idx()] += 1;
        }
        Csr {
            in_offsets,
            in_ids,
            in_edge_indices,
            out_offsets,
            out_ids,
            out_edge_indices,
        }
    }

    #[inline]
    fn upstream(&self, id: OpId) -> &[OpId] {
        &self.in_ids[self.in_offsets[id.idx()] as usize..self.in_offsets[id.idx() + 1] as usize]
    }

    #[inline]
    fn downstream(&self, id: OpId) -> &[OpId] {
        &self.out_ids[self.out_offsets[id.idx()] as usize..self.out_offsets[id.idx() + 1] as usize]
    }

    #[inline]
    fn upstream_edges(&self, id: OpId) -> &[u32] {
        &self.in_edge_indices
            [self.in_offsets[id.idx()] as usize..self.in_offsets[id.idx() + 1] as usize]
    }

    #[inline]
    fn downstream_edges(&self, id: OpId) -> &[u32] {
        &self.out_edge_indices
            [self.out_offsets[id.idx()] as usize..self.out_offsets[id.idx() + 1] as usize]
    }

    /// Kahn order with the ready queue seeded in id order and successors
    /// discovered in edge-insertion order — identical to the sequence
    /// [`LogicalPlan::topo_order`] produces.
    fn kahn_topo(&self) -> Option<Vec<OpId>> {
        let n = self.in_offsets.len() - 1;
        let mut indeg: Vec<u32> = (0..n)
            .map(|i| self.in_offsets[i + 1] - self.in_offsets[i])
            .collect();
        let mut order: Vec<OpId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| OpId(i as u32))
            .collect();
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &b in self.downstream(u) {
                indeg[b.idx()] -= 1;
                if indeg[b.idx()] == 0 {
                    order.push(b);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

/// Sealed, immutable topology snapshot of a validated [`LogicalPlan`].
///
/// Produced by [`LogicalPlan::validate`]. Everything the downstream
/// layers repeatedly need — adjacency, topological order, depths,
/// schemas, sink reachability — is computed once at sealing time;
/// every accessor is an O(degree) or O(1) slice lookup with **zero
/// per-call allocation**.
///
/// The snapshot is decoupled from the plan it was sealed from: mutating
/// the plan afterwards does not invalidate an existing `PlanIr`, it
/// simply describes the plan as it was at `validate()` time (re-validate
/// to re-seal).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanIr {
    num_ops: usize,
    num_edges: usize,
    csr: Csr,
    topo: Vec<OpId>,
    /// Longest-path depth per operator (sources are 1), in id order.
    depths: Vec<u32>,
    max_depth: usize,
    sources: Vec<OpId>,
    sinks: Vec<OpId>,
    /// `true` iff the operator can reach at least one sink.
    reaches_sink: Vec<bool>,
    input_schemas: Vec<TupleSchema>,
    output_schemas: Vec<TupleSchema>,
    fingerprint: u64,
}

impl PlanIr {
    fn seal(
        plan: &LogicalPlan,
        csr: Csr,
        topo: Vec<OpId>,
        sources: Vec<OpId>,
        sinks: Vec<OpId>,
    ) -> PlanIr {
        let n = plan.num_ops();
        // per-op depth (longest path from any source, 1-based)
        let mut depths = vec![1u32; n];
        for &id in &topo {
            for &d in csr.downstream(id) {
                depths[d.idx()] = depths[d.idx()].max(depths[id.idx()] + 1);
            }
        }
        let max_depth = depths.iter().copied().max().unwrap_or(0) as usize;
        // reverse reachability: BFS from every sink over in-edges
        let mut reaches_sink = vec![false; n];
        let mut stack: Vec<OpId> = sinks.clone();
        for &s in &sinks {
            reaches_sink[s.idx()] = true;
        }
        while let Some(d) = stack.pop() {
            for &u in csr.upstream(d) {
                if !reaches_sink[u.idx()] {
                    reaches_sink[u.idx()] = true;
                    stack.push(u);
                }
            }
        }
        // schemas, computed once in topo order
        let mut output_schemas: Vec<TupleSchema> = vec![TupleSchema::new(vec![]); n];
        for &id in &topo {
            output_schemas[id.idx()] =
                output_schema_of(&plan.op(id).kind, csr.upstream(id), &output_schemas);
        }
        let input_schemas: Vec<TupleSchema> = plan
            .ops()
            .iter()
            .map(|o| match &o.kind {
                OperatorKind::Source(s) => s.schema.clone(),
                _ => csr.upstream(o.id).first().map_or_else(
                    || TupleSchema::new(vec![]),
                    |u| output_schemas[u.idx()].clone(),
                ),
            })
            .collect();
        let fingerprint = structural_fingerprint(plan);
        PlanIr {
            num_ops: n,
            num_edges: plan.edges().len(),
            csr,
            topo,
            depths,
            max_depth,
            sources,
            sinks,
            reaches_sink,
            input_schemas,
            output_schemas,
            fingerprint,
        }
    }

    #[inline]
    pub fn num_ops(&self) -> usize {
        self.num_ops
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Operators feeding `id`, in edge-insertion order. O(1), no allocation.
    #[inline]
    pub fn upstream(&self, id: OpId) -> &[OpId] {
        self.csr.upstream(id)
    }

    /// Operators consuming `id`'s output, in edge-insertion order.
    /// O(1), no allocation.
    #[inline]
    pub fn downstream(&self, id: OpId) -> &[OpId] {
        self.csr.downstream(id)
    }

    /// Positions in `plan.edges()` of `id`'s input edges, parallel to
    /// [`PlanIr::upstream`]. Use to index per-edge attribute vectors
    /// (`pqp.partitioning`, `rates.edge`, `dep.edge_exchange`).
    #[inline]
    pub fn upstream_edges(&self, id: OpId) -> &[u32] {
        self.csr.upstream_edges(id)
    }

    /// Positions in `plan.edges()` of `id`'s output edges, parallel to
    /// [`PlanIr::downstream`].
    #[inline]
    pub fn downstream_edges(&self, id: OpId) -> &[u32] {
        self.csr.downstream_edges(id)
    }

    /// Position in `plan.edges()` of `id`'s first input edge, if any.
    #[inline]
    pub fn first_input_edge(&self, id: OpId) -> Option<u32> {
        self.csr.upstream_edges(id).first().copied()
    }

    /// Cached Kahn topological order (sources first). O(1), no allocation.
    #[inline]
    pub fn topo_order(&self) -> &[OpId] {
        &self.topo
    }

    /// All source operators, in id order.
    #[inline]
    pub fn sources(&self) -> &[OpId] {
        &self.sources
    }

    /// All sink operators, in id order.
    #[inline]
    pub fn sinks(&self) -> &[OpId] {
        &self.sinks
    }

    /// The first sink in id order — the canonical readout operator for
    /// single-headline metrics and the GNN latency head.
    #[inline]
    pub fn sink(&self) -> OpId {
        self.sinks[0]
    }

    /// Longest-path depth of `id` from any source (sources are 1).
    #[inline]
    pub fn op_depth(&self, id: OpId) -> usize {
        self.depths[id.idx()] as usize
    }

    /// Longest path length (in operators) from any source to a sink.
    #[inline]
    pub fn depth(&self) -> usize {
        self.max_depth
    }

    /// `true` iff `id` can reach at least one sink.
    #[inline]
    pub fn reaches_sink(&self, id: OpId) -> bool {
        self.reaches_sink[id.idx()]
    }

    /// Output schema per operator, in id order (computed at sealing).
    #[inline]
    pub fn output_schemas(&self) -> &[TupleSchema] {
        &self.output_schemas
    }

    /// Input schema (first input's output schema) per operator, in id
    /// order (computed at sealing).
    #[inline]
    pub fn input_schemas(&self) -> &[TupleSchema] {
        &self.input_schemas
    }

    /// Stable structural fingerprint of the sealed topology.
    ///
    /// Hashes the operator kinds (in id order) and the canonically
    /// *sorted* edge set, so it is invariant under edge-insertion
    /// reordering but distinguishes different shapes. Parameters that
    /// don't change the structure (rates, selectivities) are excluded.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// FNV-1a over the plan's structural skeleton: operator count, operator
/// kind labels in id order, and the sorted edge set.
fn structural_fingerprint(plan: &LogicalPlan) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&(plan.num_ops() as u64).to_le_bytes());
    for op in plan.ops() {
        eat(op.kind.label().as_bytes());
        eat(&[0xff]);
    }
    let mut edges: Vec<(OpId, OpId)> = plan.edges().to_vec();
    edges.sort_unstable();
    for (u, d) in edges {
        eat(&u.0.to_le_bytes());
        eat(&d.0.to_le_bytes());
    }
    h
}

/// Errors produced by the sealed-plan wire format
/// ([`PlanIr::to_json`] / [`PlanIr::from_json`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The envelope (or the plan inside it) did not parse as JSON.
    Json(String),
    /// The embedded plan failed [`LogicalPlan::validate`] on re-sealing —
    /// wire plans are *never* trusted: structure **and** parameter ranges
    /// are fully revalidated on receipt.
    Plan(PlanError),
    /// The envelope's `fingerprint` field is not a 16-digit hex string.
    BadFingerprint(String),
    /// The plan re-sealed fine but its structural fingerprint differs
    /// from the one the sender claimed (tampered or desynced envelope).
    FingerprintMismatch {
        /// Fingerprint claimed by the envelope.
        claimed: u64,
        /// Fingerprint actually computed from the embedded plan.
        actual: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Json(msg) => write!(f, "wire plan is not valid JSON: {msg}"),
            WireError::Plan(e) => write!(f, "wire plan failed revalidation: {e}"),
            WireError::BadFingerprint(s) => {
                write!(f, "wire plan fingerprint `{s}` is not 16 hex digits")
            }
            WireError::FingerprintMismatch { claimed, actual } => write!(
                f,
                "wire plan fingerprint mismatch: envelope claims {claimed:016x}, \
                 embedded plan seals to {actual:016x}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// The wire envelope: the raw plan plus the structural fingerprint it is
/// *claimed* to seal to. The fingerprint travels as a 16-digit hex string
/// because the vendored `serde_json` routes every number through `f64`,
/// which truncates `u64` values above 2^53.
#[derive(Serialize, Deserialize)]
struct WireEnvelope {
    fingerprint: String,
    plan: LogicalPlan,
}

impl PlanIr {
    /// Serialize `plan` together with this IR's structural fingerprint
    /// into the wire envelope consumed by [`PlanIr::from_json`].
    ///
    /// `plan` must be the plan this IR was sealed from (or a structural
    /// twin): its fingerprint is recomputed and cross-checked so a caller
    /// can never ship an envelope whose fingerprint does not describe the
    /// embedded plan.
    pub fn to_json(&self, plan: &LogicalPlan) -> Result<String, WireError> {
        let actual = structural_fingerprint(plan);
        if actual != self.fingerprint {
            return Err(WireError::FingerprintMismatch {
                claimed: self.fingerprint,
                actual,
            });
        }
        let env = WireEnvelope {
            fingerprint: format!("{:016x}", self.fingerprint),
            plan: plan.clone(),
        };
        serde_json::to_string(&env).map_err(|e| WireError::Json(e.to_string()))
    }

    /// Parse a wire envelope back into a plan and a freshly sealed IR.
    ///
    /// The embedded plan is treated as untrusted input: it goes through
    /// the full [`LogicalPlan::validate`] pass (structure, input arities,
    /// acyclicity *and* parameter domains — wire plans never bypass the
    /// range checks), and the re-sealed fingerprint must equal the one
    /// the envelope claims. A mismatch means the envelope was tampered
    /// with or assembled against a different plan and is rejected
    /// (surfaced as diagnostic `ZT109` by the lint layer).
    pub fn from_json(json: &str) -> Result<(LogicalPlan, PlanIr), WireError> {
        let env: WireEnvelope =
            serde_json::from_str(json).map_err(|e| WireError::Json(e.to_string()))?;
        let claimed = u64::from_str_radix(&env.fingerprint, 16)
            .map_err(|_| WireError::BadFingerprint(env.fingerprint.clone()))?;
        if env.fingerprint.len() != 16 {
            return Err(WireError::BadFingerprint(env.fingerprint));
        }
        let ir = env.plan.validate().map_err(WireError::Plan)?;
        if ir.fingerprint != claimed {
            return Err(WireError::FingerprintMismatch {
                claimed,
                actual: ir.fingerprint,
            });
        }
        Ok((env.plan, ir))
    }
}

impl std::fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "plan `{}`:", self.name)?;
        for op in &self.ops {
            let down: Vec<String> = self
                .downstream(op.id)
                .iter()
                .map(ToString::to_string)
                .collect();
            writeln!(
                f,
                "  {} [{}] -> {}",
                op.id,
                op.kind.label(),
                if down.is_empty() {
                    "∅".to_string()
                } else {
                    down.join(", ")
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::*;
    use crate::types::{DataType, TupleSchema};

    fn source(rate: f64) -> OperatorKind {
        OperatorKind::Source(SourceOp {
            event_rate: rate,
            schema: TupleSchema::uniform(DataType::Double, 3),
            key_cardinality: None,
        })
    }

    fn filter(sel: f64) -> OperatorKind {
        OperatorKind::Filter(FilterOp {
            function: FilterFunction::Le,
            literal_class: DataType::Double,
            selectivity: sel,
        })
    }

    fn agg() -> OperatorKind {
        OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 10.0),
            function: AggFunction::Avg,
            agg_class: DataType::Double,
            key_class: Some(DataType::Int),
            selectivity: 0.2,
            key_cardinality: None,
        })
    }

    fn linear_plan() -> LogicalPlan {
        let mut p = LogicalPlan::new("linear");
        let s = p.add(source(1000.0));
        let f = p.add(filter(0.5));
        let a = p.add(agg());
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, f);
        p.connect(f, a);
        p.connect(a, k);
        p
    }

    /// Source feeding a shared filter that fans out to two sinks.
    fn two_sink_plan() -> LogicalPlan {
        let mut p = LogicalPlan::new("two-sink");
        let s = p.add(source(1000.0));
        let f = p.add(filter(0.5));
        let k1 = p.add(OperatorKind::Sink(SinkOp));
        let k2 = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, f);
        p.connect(f, k1);
        p.connect(f, k2);
        p
    }

    #[test]
    fn linear_plan_validates() {
        let p = linear_plan();
        assert!(p.validate().is_ok());
        assert_eq!(p.num_ops(), 4);
        assert_eq!(p.sources(), vec![OpId(0)]);
        assert_eq!(p.sink(), OpId(3));
        assert_eq!(p.depth(), 4);
    }

    #[test]
    fn topo_order_is_consistent() {
        let p = linear_plan();
        let order = p.topo_order().unwrap();
        assert_eq!(order.len(), 4);
        let pos: Vec<usize> = (0..4)
            .map(|i| order.iter().position(|&o| o == OpId(i)).unwrap())
            .collect();
        assert!(pos[0] < pos[1] && pos[1] < pos[2] && pos[2] < pos[3]);
    }

    #[test]
    fn cycle_detected() {
        let mut p = linear_plan();
        p.connect(OpId(3), OpId(0));
        assert_eq!(p.validate(), Err(PlanError::Cyclic));
    }

    #[test]
    fn join_needs_two_inputs() {
        let mut p = LogicalPlan::new("bad-join");
        let s = p.add(source(100.0));
        let j = p.add(OperatorKind::Join(JoinOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 5.0),
            key_class: DataType::Int,
            selectivity: 0.1,
            key_cardinality: None,
        }));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, j);
        p.connect(j, k);
        assert_eq!(
            p.validate(),
            Err(PlanError::WrongInputCount {
                op: j,
                expected: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn a_sink_is_required() {
        let mut p = LogicalPlan::new("no-sink");
        let s = p.add(source(100.0));
        let f = p.add(filter(0.1));
        p.connect(s, f);
        assert_eq!(p.validate(), Err(PlanError::NoSink));
    }

    #[test]
    fn multi_sink_plan_validates() {
        let p = two_sink_plan();
        let ir = p.validate().expect("two-sink plan is valid");
        assert_eq!(p.sinks(), vec![OpId(2), OpId(3)]);
        assert_eq!(p.sink(), OpId(2)); // first sink is the readout
        assert_eq!(ir.sinks(), &[OpId(2), OpId(3)]);
        assert_eq!(ir.downstream(OpId(1)), &[OpId(2), OpId(3)]);
    }

    #[test]
    fn sink_with_output_rejected() {
        let mut p = LogicalPlan::new("sink-out");
        let s = p.add(source(100.0));
        let k = p.add(OperatorKind::Sink(SinkOp));
        let f = p.add(filter(0.1));
        let k2 = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, k);
        p.connect(k, f);
        p.connect(f, k2);
        assert_eq!(p.validate(), Err(PlanError::SinkWithOutput(k)));
    }

    #[test]
    fn dead_end_detected() {
        let mut p = linear_plan();
        // add a filter that consumes the source output but feeds nothing
        let dead = p.add(filter(0.3));
        p.connect(OpId(0), dead);
        assert_eq!(p.validate(), Err(PlanError::DeadEnd(dead)));
    }

    #[test]
    fn invalid_selectivity_rejected() {
        let mut p = LogicalPlan::new("bad-sel");
        let s = p.add(source(100.0));
        let f = p.add(filter(1.5));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, f);
        p.connect(f, k);
        assert!(matches!(
            p.validate(),
            Err(PlanError::InvalidParameter(_, _))
        ));
    }

    #[test]
    fn slide_larger_than_window_rejected() {
        let mut p = LogicalPlan::new("bad-window");
        let s = p.add(source(100.0));
        let a = p.add(OperatorKind::Aggregate(AggregateOp {
            // Struct literal: `WindowSpec::sliding` debug-asserts
            // `slide <= length`, and this test needs the invalid spec.
            window: WindowSpec {
                policy: WindowPolicy::Time,
                length: 100.0,
                slide: Some(200.0),
            },
            function: AggFunction::Sum,
            agg_class: DataType::Double,
            key_class: None,
            selectivity: 0.1,
            key_cardinality: None,
        }));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, a);
        p.connect(a, k);
        assert!(matches!(
            p.validate(),
            Err(PlanError::InvalidParameter(
                _,
                "slide must not exceed window length"
            ))
        ));
    }

    #[test]
    fn output_schemas_propagate() {
        let p = linear_plan();
        let schemas = p.output_schemas();
        assert_eq!(schemas[0].width(), 3); // source
        assert_eq!(schemas[1].width(), 3); // filter passes through
        assert_eq!(schemas[2].width(), 3); // keyed agg: key + agg + ts
        assert_eq!(schemas[3].width(), 3); // sink passes through
    }

    fn asymmetric_join_plan() -> (LogicalPlan, OpId) {
        let mut p = LogicalPlan::new("join");
        let s1 = p.add(source(100.0));
        let s2 = p.add(OperatorKind::Source(SourceOp {
            event_rate: 100.0,
            schema: TupleSchema::uniform(DataType::Text, 2),
            key_cardinality: None,
        }));
        let j = p.add(OperatorKind::Join(JoinOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 5.0),
            key_class: DataType::Int,
            selectivity: 0.1,
            key_cardinality: None,
        }));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s1, j); // left
        p.connect(s2, j); // right
        p.connect(j, k);
        (p, j)
    }

    #[test]
    fn join_output_schema_concatenates() {
        let mut p = LogicalPlan::new("join");
        let s1 = p.add(source(100.0));
        let s2 = p.add(source(100.0));
        let j = p.add(OperatorKind::Join(JoinOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 5.0),
            key_class: DataType::Int,
            selectivity: 0.1,
            key_cardinality: None,
        }));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s1, j);
        p.connect(s2, j);
        p.connect(j, k);
        assert!(p.validate().is_ok());
        let schemas = p.output_schemas();
        assert_eq!(schemas[j.idx()].width(), 6);
    }

    #[test]
    fn join_input_order_is_edge_insertion_order() {
        // Left input = first-connected edge: the 3 Double fields must
        // precede the 2 Text fields in the concatenated join schema.
        let (p, j) = asymmetric_join_plan();
        let ir = p.validate().expect("valid join plan");
        assert_eq!(ir.upstream(j), &[OpId(0), OpId(1)]);
        let schema = &ir.output_schemas()[j.idx()];
        assert_eq!(schema.width(), 5);
        assert_eq!(schema.fields[..3], [DataType::Double; 3]);
        assert_eq!(schema.fields[3..], [DataType::Text; 2]);
        // the slow path agrees
        assert_eq!(p.output_schemas()[j.idx()], *schema);
    }

    #[test]
    fn self_loop_rejected_at_insertion() {
        let mut p = linear_plan();
        assert_eq!(
            p.try_connect(OpId(1), OpId(1)),
            Err(PlanError::InvalidEdge(OpId(1), OpId(1)))
        );
    }

    #[test]
    fn duplicate_edge_rejected_at_insertion() {
        let mut p = linear_plan();
        assert_eq!(
            p.try_connect(OpId(0), OpId(1)),
            Err(PlanError::InvalidEdge(OpId(0), OpId(1)))
        );
        // the failed insertion leaves the plan intact
        assert!(p.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn connect_panics_on_duplicate_edge() {
        let mut p = linear_plan();
        p.connect(OpId(0), OpId(1));
    }

    #[test]
    fn duplicate_edge_rejected_by_validate() {
        // Deserialized plans bypass `try_connect`; validate() still
        // catches the malformed edge list.
        let p = linear_plan();
        let mut json = serde_json::to_string(&p).unwrap();
        // splice a duplicate of the first edge into the serialized form
        let needle = "\"edges\":[";
        let at = json.find(needle).unwrap() + needle.len();
        json.insert_str(at, "[0,1],");
        let back: LogicalPlan = serde_json::from_str(&json).unwrap();
        assert!(matches!(back.validate(), Err(PlanError::InvalidEdge(_, _))));
    }

    #[test]
    fn ir_matches_slow_paths() {
        let p = linear_plan();
        let ir = p.validate().expect("valid");
        assert_eq!(ir.topo_order(), p.topo_order().unwrap().as_slice());
        assert_eq!(ir.depth(), p.depth());
        assert_eq!(ir.sources(), p.sources().as_slice());
        assert_eq!(ir.sinks(), p.sinks().as_slice());
        assert_eq!(ir.sink(), p.sink());
        assert_eq!(ir.output_schemas(), p.output_schemas().as_slice());
        assert_eq!(ir.input_schemas(), p.input_schemas().as_slice());
        for op in p.ops() {
            assert_eq!(ir.upstream(op.id), p.upstream(op.id).as_slice());
            assert_eq!(ir.downstream(op.id), p.downstream(op.id).as_slice());
            assert!(ir.reaches_sink(op.id));
        }
    }

    #[test]
    fn ir_edge_indices_point_into_edge_list() {
        let p = two_sink_plan();
        let ir = p.validate().expect("valid");
        for op in p.ops() {
            for (&u, &e) in ir.upstream(op.id).iter().zip(ir.upstream_edges(op.id)) {
                assert_eq!(p.edges()[e as usize], (u, op.id));
            }
            for (&d, &e) in ir.downstream(op.id).iter().zip(ir.downstream_edges(op.id)) {
                assert_eq!(p.edges()[e as usize], (op.id, d));
            }
        }
        assert_eq!(ir.first_input_edge(OpId(0)), None);
        assert_eq!(ir.first_input_edge(OpId(1)), Some(0));
    }

    #[test]
    fn fingerprint_invariant_under_edge_reordering() {
        let a = linear_plan();
        // same plan, edges inserted in a different order
        let mut b = LogicalPlan::new("linear");
        let s = b.add(source(1000.0));
        let f = b.add(filter(0.5));
        let g = b.add(agg());
        let k = b.add(OperatorKind::Sink(SinkOp));
        b.connect(g, k);
        b.connect(s, f);
        b.connect(f, g);
        let fa = a.validate().unwrap().fingerprint();
        let fb = b.validate().unwrap().fingerprint();
        assert_eq!(fa, fb);
        // a structurally different plan hashes differently
        let fc = two_sink_plan().validate().unwrap().fingerprint();
        assert_ne!(fa, fc);
    }

    #[test]
    fn serde_round_trip() {
        let p = linear_plan();
        let json = serde_json::to_string(&p).unwrap();
        let back: LogicalPlan = serde_json::from_str(&json).unwrap();
        assert!(back.validate().is_ok());
        assert_eq!(back.num_ops(), p.num_ops());
        assert_eq!(back.edges(), p.edges());
    }

    #[test]
    fn wire_round_trip_preserves_fingerprint_and_structure() {
        for plan in [linear_plan(), two_sink_plan()] {
            let ir = plan.validate().unwrap();
            let json = ir.to_json(&plan).unwrap();
            let (back, back_ir) = PlanIr::from_json(&json).unwrap();
            assert_eq!(back_ir.fingerprint(), ir.fingerprint());
            assert_eq!(back.num_ops(), plan.num_ops());
            assert_eq!(back.edges(), plan.edges());
            // second hop is byte-identical: the envelope is deterministic
            assert_eq!(back_ir.to_json(&back).unwrap(), json);
        }
    }

    #[test]
    fn wire_rejects_tampered_fingerprint() {
        let plan = linear_plan();
        let ir = plan.validate().unwrap();
        let json = ir.to_json(&plan).unwrap();
        let real = format!("{:016x}", ir.fingerprint());
        let fake = format!("{:016x}", ir.fingerprint() ^ 1);
        let tampered = json.replace(&real, &fake);
        match PlanIr::from_json(&tampered) {
            Err(WireError::FingerprintMismatch { claimed, actual }) => {
                assert_eq!(claimed, ir.fingerprint() ^ 1);
                assert_eq!(actual, ir.fingerprint());
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn wire_rejects_mismatched_plan() {
        // envelope sealed from one plan cannot ship a different plan
        let plan = linear_plan();
        let ir = plan.validate().unwrap();
        let other = two_sink_plan();
        assert!(matches!(
            ir.to_json(&other),
            Err(WireError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn wire_revalidates_parameter_ranges() {
        // A plan whose structure is fine but whose params are out of
        // domain must be rejected on receipt even with a correct
        // fingerprint — deserialization bypasses `try_connect`, so the
        // wire path re-runs the full validate() pass.
        let mut p = LogicalPlan::new("bad-sel");
        let s = p.add(source(1000.0));
        let f = p.add(filter(2.0)); // selectivity outside (0, 1]
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, f);
        p.connect(f, k);
        let env = format!(
            "{{\"fingerprint\":\"{:016x}\",\"plan\":{}}}",
            structural_fingerprint(&p),
            serde_json::to_string(&p).unwrap()
        );
        assert!(matches!(
            PlanIr::from_json(&env),
            Err(WireError::Plan(PlanError::InvalidParameter(_, _)))
        ));
    }

    #[test]
    fn wire_rejects_bad_envelopes() {
        assert!(matches!(
            PlanIr::from_json("not json"),
            Err(WireError::Json(_))
        ));
        let plan = linear_plan();
        let env = format!(
            "{{\"fingerprint\":\"xyz\",\"plan\":{}}}",
            serde_json::to_string(&plan).unwrap()
        );
        assert!(matches!(
            PlanIr::from_json(&env),
            Err(WireError::BadFingerprint(_))
        ));
    }
}
