//! Few-shot fine-tuning (Fig. 6 / Fig. 7d of the paper).
//!
//! For very complex unseen structures (4/5/6-way joins) the zero-shot
//! prediction quality drops, especially for throughput. The paper shows
//! that fine-tuning with as few as 500 examples of the complex structures
//! recovers most of the accuracy. We fine-tune only the message-combine
//! and read-out MLPs (the per-type encoders keep their transferable
//! knowledge) at a reduced learning rate, and keep the original target
//! normalization so predictions stay on the original scale.

use crate::dataset::Dataset;
use crate::model::ZeroTuneModel;
use crate::train::{train, TrainConfig, TrainReport};

/// Few-shot fine-tuning configuration.
#[derive(Clone, Debug)]
pub struct FewShotConfig {
    pub epochs: usize,
    pub lr: f32,
    /// Fine-tune only the head (combine + read-out MLPs); encoders stay
    /// frozen.
    pub head_only: bool,
    pub seed: u64,
}

impl Default for FewShotConfig {
    fn default() -> Self {
        FewShotConfig {
            epochs: 15,
            lr: 5e-4,
            head_only: true,
            seed: 0xF0CA,
        }
    }
}

/// Fine-tune a trained model on a small dataset of complex structures.
pub fn fine_tune(model: &mut ZeroTuneModel, shots: &Dataset, cfg: &FewShotConfig) -> TrainReport {
    let mask = cfg.head_only.then(|| model.head_param_ids());
    let train_cfg = TrainConfig {
        epochs: cfg.epochs,
        lr: cfg.lr,
        // Keep the zero-shot normalization: the few shots are not
        // representative of the global label distribution.
        refit_norm: false,
        param_mask: mask,
        val_fraction: 0.15,
        patience: 5,
        seed: cfg.seed,
        ..TrainConfig::default()
    };
    train(model, shots, &train_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, GenConfig};
    use crate::model::{ModelConfig, ZeroTuneModel};
    use crate::train::{evaluate, train, TrainConfig};
    use zt_query::QueryStructure;

    #[test]
    fn few_shot_improves_complex_join_throughput() {
        // Zero-shot training on seen structures…
        let train_data = generate_dataset(&GenConfig::seen(), 200, 21);
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 24,
            seed: 6,
        });
        train(
            &mut model,
            &train_data,
            &TrainConfig {
                epochs: 15,
                patience: 0,
                ..TrainConfig::default()
            },
        );

        // …then evaluate on 6-way joins before and after fine-tuning.
        let complex_cfg =
            GenConfig::unseen_structures().with_structures(vec![QueryStructure::NWayJoin(6)]);
        let shots = generate_dataset(&complex_cfg, 80, 22);
        let test = generate_dataset(&complex_cfg, 50, 23);

        let (_, tpt_before) = evaluate(&model, &test.samples);
        fine_tune(&mut model, &shots, &FewShotConfig::default());
        let (_, tpt_after) = evaluate(&model, &test.samples);

        assert!(
            tpt_after.median <= tpt_before.median * 1.05,
            "few-shot made throughput q-error worse: {} -> {}",
            tpt_before.median,
            tpt_after.median
        );
    }

    #[test]
    fn head_only_fine_tune_keeps_encoders_frozen() {
        let data = generate_dataset(&GenConfig::seen(), 40, 24);
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 16,
            seed: 7,
        });
        model.norm = crate::model::TargetNorm::fit(data.labels());
        let head = model.head_param_ids();
        let frozen: Vec<_> = model.store.ids().filter(|id| !head.contains(id)).collect();
        let before: Vec<_> = frozen
            .iter()
            .map(|&id| model.store.value(id).clone())
            .collect();
        fine_tune(
            &mut model,
            &data,
            &FewShotConfig {
                epochs: 3,
                ..FewShotConfig::default()
            },
        );
        for (id, b) in frozen.iter().zip(before.iter()) {
            assert_eq!(model.store.value(*id), b, "encoder weights moved");
        }
    }

    #[test]
    fn fine_tune_preserves_normalization() {
        let data = generate_dataset(&GenConfig::seen(), 30, 25);
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 16,
            seed: 8,
        });
        model.norm = crate::model::TargetNorm::fit(data.labels());
        let norm_before = model.norm;
        fine_tune(
            &mut model,
            &data,
            &FewShotConfig {
                epochs: 2,
                ..FewShotConfig::default()
            },
        );
        assert_eq!(norm_before.mean, model.norm.mean);
        assert_eq!(norm_before.std, model.norm.std);
    }
}
