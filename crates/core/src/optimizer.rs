//! Parallelism tuning with what-if cost predictions (Section III-C3).
//!
//! The optimizer enumerates candidate parallelism configurations, asks the
//! cost model for what-if latency/throughput of each, normalizes both
//! costs to `[0, 1]` over the candidate set (throughput negated, because
//! it is maximized) and picks the configuration minimizing the weighted
//! objective of Eq. 1:
//!
//! ```text
//! C = argmin [ wt · C_L + (1 − wt) · C_T ]
//! s.t. P_i ∈ ℤ, P_i ≥ 1, max P ≤ n_core
//! ```
//!
//! Candidates combine (a) OptiSample-derived configurations over a grid of
//! scaling factors (rate-proportional provisioning at different
//! aggressiveness), (b) uniform degrees, and (c) random perturbations for
//! exploration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use zt_dspsim::cluster::Cluster;
use zt_dspsim::ChainingMode;
use zt_query::{LogicalPlan, ParallelQueryPlan};

use zt_query::{PlanError, PlanIr};

use crate::estimator::CostEstimator;
use crate::features::FeatureMask;
use crate::graph::EncodeContext;
use crate::lattice::ParallelismLattice;
use crate::optisample::estimate_input_rates;

/// How `tune` explores the configuration space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchSpace {
    /// The historical flat list from [`enumerate_candidates`] — scoring
    /// cost is linear in the list length. The default.
    #[default]
    Flat,
    /// The product lattice of per-operator degree sets (derived from the
    /// flat candidates), explored by bounds-guided branch-and-bound
    /// ([`crate::lattice::branch_and_bound`]) when pruning is on, or
    /// scored exhaustively under `--no-prune`/small spaces. Outcome-
    /// equivalent to exhaustive scoring of the same lattice by
    /// construction.
    Lattice {
        /// Cap on the per-operator degree-set size (log-thinned, keeping
        /// the extremes). The lattice has up to `cap^num_ops` points.
        max_degrees_per_op: usize,
        /// Cap on fully-analyzed leaves before the search aborts with
        /// [`TuneError::SearchBudgetExceeded`].
        visit_budget: usize,
    },
}

impl SearchSpace {
    /// Lattice search with the default knobs (4 degrees per op, 100k-leaf
    /// analysis budget).
    pub fn lattice() -> Self {
        SearchSpace::Lattice {
            max_degrees_per_op: 4,
            visit_budget: 100_000,
        }
    }
}

/// Lattices at or below this size are scored exhaustively even with
/// pruning on: the search bookkeeping costs more than it saves.
const SMALL_LATTICE_CUTOFF: u64 = 32;

/// Structured failures of [`tune`] (degenerate inputs are results, not
/// panics — a serving daemon must be able to surface them).
#[derive(Clone, Debug, PartialEq)]
pub enum TuneError {
    /// The logical plan failed validation — tuning needs a sealed IR.
    InvalidPlan(PlanError),
    /// Candidate enumeration produced nothing to score.
    NoCandidates {
        /// Operators in the plan the enumerator saw.
        ops: usize,
    },
    /// The lattice search hit its analysis budget before covering the
    /// space; the partial result would not be outcome-equivalent, so it
    /// is refused. Shrink `max_degrees_per_op` or raise `visit_budget`.
    SearchBudgetExceeded {
        /// Leaves analyzed before the abort.
        analyzed: u64,
        /// Total lattice size.
        space: u64,
        /// The configured budget.
        budget: usize,
    },
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::InvalidPlan(e) => write!(f, "tune requires a valid plan: {e}"),
            TuneError::NoCandidates { ops } => {
                write!(f, "no parallelism candidates for a {ops}-operator plan")
            }
            TuneError::SearchBudgetExceeded {
                analyzed,
                space,
                budget,
            } => write!(
                f,
                "lattice search budget exhausted: {analyzed} leaves analyzed of {space} \
                 (budget {budget}); shrink max_degrees_per_op or raise visit_budget"
            ),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::InvalidPlan(e) => Some(e),
            _ => None,
        }
    }
}

/// Optimizer configuration.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Weight of the latency cost in Eq. 1 (`1 − wt` weights throughput).
    pub wt: f64,
    /// Number of OptiSample scaling factors to probe (log-spaced).
    pub sf_grid: usize,
    /// Number of random perturbation candidates.
    pub random_candidates: usize,
    /// Hard cap on any parallelism degree.
    pub max_parallelism: u32,
    pub chaining: ChainingMode,
    pub mask: FeatureMask,
    pub seed: u64,
    /// Run the diagnostics pre-flight (plan + cluster lints) and abort on
    /// `Error`-severity findings. Defaults to the `ZT_STRICT` environment
    /// variable. Also enables the post-tune bounds cross-check (ZT5xx).
    pub strict: bool,
    /// Drop provably-useless candidates before scoring: the bounds
    /// pre-pass marks candidates that are provably infeasible
    /// (utilization lower bound ≥ 1) or provably dominated (some other
    /// candidate is better on both metrics with non-overlapping
    /// intervals). Marked candidates never win the argmin and never feed
    /// Eq. 1's normalization envelope either way, so the chosen plan is
    /// identical with pruning on or off; the knob only decides whether
    /// their model inference is skipped (on, the default) or still run
    /// (`ZT_NO_PRUNE=1`, the `--no-prune` flag on the experiment
    /// binaries).
    pub prune: bool,
    /// Cap each operator's lattice degree axis at its key-cardinality
    /// bound (the ZT704 condition): degrees beyond the cap deploy
    /// physically identical plans — the surplus instances are provably
    /// idle — so only the smallest such degree is kept as the canonical
    /// representative. Outcome-neutral (removed points are
    /// prediction-identical duplicates of their representative) but
    /// shrinks the searched lattice. On unless `ZT_NO_DATAFLOW_CAP` is
    /// set (`--no-dataflow-cap` on the experiment binaries). Only affects
    /// [`SearchSpace::Lattice`].
    pub dataflow_cap: bool,
    /// Shape of the explored configuration space (flat candidate list or
    /// branch-and-bound over the parallelism lattice).
    pub search: SearchSpace,
}

/// Whether the bounds pruning pre-pass is enabled: on unless `ZT_NO_PRUNE`
/// is set to `1`, `true` or `yes`. The experiment binaries map
/// `--no-prune` onto this variable.
pub fn prune_from_env() -> bool {
    !matches!(
        std::env::var("ZT_NO_PRUNE").as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    )
}

/// Whether the key-cardinality lattice cap is enabled: on unless
/// `ZT_NO_DATAFLOW_CAP` is set to `1`, `true` or `yes`. The experiment
/// binaries map `--no-dataflow-cap` onto this variable.
pub fn dataflow_cap_from_env() -> bool {
    !matches!(
        std::env::var("ZT_NO_DATAFLOW_CAP").as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    )
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            wt: 0.5,
            sf_grid: 14,
            random_candidates: 12,
            max_parallelism: 128,
            chaining: ChainingMode::Auto,
            mask: FeatureMask::all(),
            seed: 0x0471,
            strict: crate::diagnostics::strict_from_env(),
            prune: prune_from_env(),
            dataflow_cap: dataflow_cap_from_env(),
            search: SearchSpace::Flat,
        }
    }
}

/// Result of a tuning run.
#[must_use = "a tuning outcome carries the chosen parallelism — dropping it wastes the tuning run"]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// Chosen parallelism degree per operator.
    pub parallelism: Vec<u32>,
    pub predicted_latency_ms: f64,
    pub predicted_throughput: f64,
    /// Weighted cost (Eq. 1) of the chosen candidate.
    pub weighted_cost: f64,
    /// Candidates actually scored by the model (post-pruning).
    pub candidates_evaluated: usize,
    /// Candidates discarded by the bounds pruning pre-pass before any
    /// model inference ran (0 when pruning is off).
    pub candidates_pruned: usize,
    /// Total size of the explored configuration space: the flat candidate
    /// list length, or the full parallelism-lattice size for
    /// [`SearchSpace::Lattice`].
    #[serde(default)]
    pub search_space: u64,
    /// Configurations whose interval analysis actually ran (lattice
    /// leaves visited by the branch-and-bound walk, or flat candidates
    /// covered by the bounds pre-pass).
    #[serde(default)]
    pub search_visited: u64,
    /// Lattice subtrees cut by the branch-and-bound certificates before
    /// their leaves were ever analyzed (0 for the flat search).
    #[serde(default)]
    pub search_subtrees_pruned: u64,
    /// Operators whose lattice degree axis was capped at their
    /// key-cardinality bound (0 when the cap is off, the search is flat,
    /// or no operator declares a cardinality).
    #[serde(skip)]
    pub dataflow_capped_ops: usize,
    /// Lattice points removed by the key-cardinality cap before the
    /// search ran.
    #[serde(skip)]
    pub dataflow_points_removed: u64,
}

/// Enumerate candidate parallelism vectors for `plan` on `cluster`.
pub fn enumerate_candidates(
    plan: &LogicalPlan,
    cluster: &Cluster,
    cfg: &OptimizerConfig,
    rng: &mut StdRng,
) -> Vec<Vec<u32>> {
    let cap = cfg.max_parallelism.min(cluster.total_cores()).max(1);
    let n = plan.num_ops();
    let mut candidates: Vec<Vec<u32>> = Vec::new();

    // (a) rate-proportional candidates over a scaling-factor grid.
    let rates = estimate_input_rates(plan, 0.0, rng);
    let max_rate = rates.iter().copied().fold(1.0f64, f64::max);
    // sf range chosen so the hottest operator sweeps 1..=cap instances.
    let sf_lo = 1.0 / max_rate;
    let sf_hi = cap as f64 / max_rate;
    for k in 0..cfg.sf_grid.max(2) {
        let t = k as f64 / (cfg.sf_grid.max(2) - 1) as f64;
        let sf = sf_lo * (sf_hi / sf_lo).powf(t);
        candidates.push(
            (0..n)
                .map(|i| ((sf * rates[i]).ceil() as i64).clamp(1, cap as i64) as u32)
                .collect(),
        );
    }

    // (b) uniform candidates.
    let mut p = 1u32;
    while p <= cap {
        candidates.push(vec![p; n]);
        p *= 2;
    }

    // (c) random perturbations of the rate-proportional shape.
    for _ in 0..cfg.random_candidates {
        let jitter: Vec<u32> = (0..n)
            .map(|i| {
                let base = (sf_hi * rates[i] * rng.gen_range(0.05..1.0)).ceil() as i64;
                base.clamp(1, cap as i64) as u32
            })
            .collect();
        candidates.push(jitter);
    }

    candidates.sort();
    candidates.dedup();
    candidates
}

/// Normalized weighted cost of Eq. 1 for a candidate given the min/max
/// envelope over all candidates.
fn weighted_cost(wt: f64, lat: f64, tpt: f64, lat_range: (f64, f64), tpt_range: (f64, f64)) -> f64 {
    // Normalization happens on the log scale (costs span decades) and a
    // metric only participates when it varies *meaningfully* over the
    // candidate set: throughput of a never-backpressured query is flat up
    // to prediction noise, and min-max normalization would blow that
    // noise up to the full [0, 1] range and let it dominate Eq. 1.
    const INDIFFERENCE_RATIO: f64 = 1.25;
    let log_norm = |v: f64, (lo, hi): (f64, f64)| -> f64 {
        let lo = lo.max(1e-12);
        let hi = hi.max(1e-12);
        if hi / lo <= INDIFFERENCE_RATIO {
            return 0.0;
        }
        ((v.max(1e-12) / lo).ln() / (hi / lo).ln()).clamp(0.0, 1.0)
    };
    let c_l = log_norm(lat, lat_range);
    // Throughput is negated: higher throughput → lower cost. An
    // indifferent throughput contributes 0 (not 1).
    let c_t = {
        let lo = tpt_range.0.max(1e-12);
        let hi = tpt_range.1.max(1e-12);
        if hi / lo <= INDIFFERENCE_RATIO {
            0.0
        } else {
            1.0 - log_norm(tpt, tpt_range)
        }
    };
    wt * c_l + (1.0 - wt) * c_t
}

/// Search-space accounting threaded into the final [`TuningOutcome`].
#[derive(Clone, Copy, Debug, Default)]
struct SearchCounters {
    candidates_pruned: usize,
    search_space: u64,
    search_visited: u64,
    search_subtrees_pruned: u64,
}

/// Tune the parallelism of `plan` on `cluster` using the estimator's
/// what-if predictions.
///
/// Works with any [`CostEstimator`] — the trained GNN, a flat-vector
/// baseline, or a trait object. Parallelism-independent encoding state
/// (schemas, topology, resource features) is computed once via
/// [`EncodeContext`]; per candidate only the parallelism-dependent
/// features and edges are re-derived, and the whole candidate set is
/// scored through one [`CostEstimator::predict_batch`] call.
///
/// With [`SearchSpace::Lattice`] the candidate set is the product lattice
/// of per-operator degree choices, explored by bounds-guided
/// branch-and-bound; the chosen configuration is provably the same one
/// exhaustive scoring of that lattice would pick (see [`crate::lattice`]).
///
/// Degenerate inputs (invalid plan, empty candidate set, exhausted search
/// budget) return a structured [`TuneError`] instead of panicking.
pub fn tune<E: CostEstimator + ?Sized>(
    est: &E,
    plan: &LogicalPlan,
    cluster: &Cluster,
    cfg: &OptimizerConfig,
) -> Result<TuningOutcome, TuneError> {
    if cfg.strict {
        crate::diagnostics::preflight_tune(plan, cluster).enforce("tune");
    }
    let _span = zt_telemetry::span("tune");
    // Seal the logical plan once; every candidate below shares its
    // topology, so the bounds pre-pass, encoding and cross-check all run
    // on the same IR without re-validating per candidate.
    let ir = plan.validate().map_err(TuneError::InvalidPlan)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let candidates = {
        let _s = zt_telemetry::span("tune.enumerate");
        enumerate_candidates(plan, cluster, cfg, &mut rng)
    };
    if candidates.is_empty() {
        return Err(TuneError::NoCandidates {
            ops: plan.num_ops(),
        });
    }
    zt_telemetry::counter_add("tune.candidates", candidates.len() as u64);

    match cfg.search {
        SearchSpace::Flat => {
            let space = candidates.len() as u64;
            Ok(tune_over(
                est, plan, &ir, cluster, cfg, candidates, space, 0,
            ))
        }
        SearchSpace::Lattice {
            max_degrees_per_op,
            visit_budget,
        } => tune_lattice(
            est,
            plan,
            &ir,
            cluster,
            cfg,
            &candidates,
            max_degrees_per_op,
            visit_budget,
        ),
    }
}

/// [`SearchSpace::Lattice`] driver: derive the lattice from the flat
/// candidates, then either score it exhaustively (pruning off, tiny
/// spaces, or a plan-level infeasibility certificate that forces the
/// all-infeasible keep-everything rule) or run the branch-and-bound walk.
#[allow(clippy::too_many_arguments)]
fn tune_lattice<E: CostEstimator + ?Sized>(
    est: &E,
    plan: &LogicalPlan,
    ir: &PlanIr,
    cluster: &Cluster,
    cfg: &OptimizerConfig,
    flat_candidates: &[Vec<u32>],
    max_degrees_per_op: usize,
    visit_budget: usize,
) -> Result<TuningOutcome, TuneError> {
    let mut lattice = ParallelismLattice::from_candidates(flat_candidates, max_degrees_per_op);
    // Key-cardinality capping (the ZT704 condition): along an operator's
    // degree axis, every degree at or beyond `parallelism_cap()` deploys
    // the *same* physical plan — partitioning, chaining, placement and
    // bounds all act on effective parallelism — so the candidates differ
    // only in provably idle instances. Keep the smallest such degree as
    // the canonical representative and drop the rest; the argmin is
    // unchanged because the removed points are prediction-identical to
    // their representative and the scorer's strict `<` picks the first
    // (lexicographically smallest) of any tied set either way.
    let mut dataflow_capped_ops = 0usize;
    let mut dataflow_points_removed = 0u64;
    if cfg.dataflow_cap {
        let before = lattice.size();
        for (i, op) in plan.ops().iter().enumerate() {
            let Some(cap) = op.kind.parallelism_cap() else {
                continue;
            };
            let degrees = &mut lattice.degrees[i];
            let Some(&rep) = degrees.iter().find(|&&d| d >= cap) else {
                continue;
            };
            if degrees.iter().any(|&d| d > rep) {
                degrees.retain(|&d| d < cap || d == rep);
                dataflow_capped_ops += 1;
            }
        }
        dataflow_points_removed = before.saturating_sub(lattice.size());
        if dataflow_capped_ops > 0 {
            zt_telemetry::counter_add("tune.dataflow.capped_ops", dataflow_capped_ops as u64);
            zt_telemetry::counter_add("tune.dataflow.points_removed", dataflow_points_removed);
        }
    }
    let space = lattice.size();
    let bcfg = crate::bounds::BoundsConfig {
        chaining: cfg.chaining,
        ..crate::bounds::BoundsConfig::default()
    };
    let exhaust = |err_analyzed: u64| -> Result<Vec<Vec<u32>>, TuneError> {
        if space > visit_budget as u64 {
            return Err(TuneError::SearchBudgetExceeded {
                analyzed: err_analyzed,
                space,
                budget: visit_budget,
            });
        }
        Ok(lattice.enumerate())
    };

    // Whole-lattice infeasibility certificate: when even the
    // parallelism-independent work floor exceeds the cluster's aggregate
    // capacity, every lattice point is infeasible, prune_mask keeps all of
    // them, and a search could not skip anything — score exhaustively.
    let probe = ParallelQueryPlan::new(plan.clone());
    let all_infeasible =
        crate::bounds::work_floors(&probe, ir, cluster, &bcfg).plan_util_floor() >= 1.0;

    let stamp = |mut out: TuningOutcome| {
        out.dataflow_capped_ops = dataflow_capped_ops;
        out.dataflow_points_removed = dataflow_points_removed;
        out
    };

    if !cfg.prune || space <= SMALL_LATTICE_CUTOFF || all_infeasible {
        let cands = exhaust(0)?;
        return Ok(stamp(tune_over(
            est, plan, ir, cluster, cfg, cands, space, 0,
        )));
    }

    let search = crate::lattice::branch_and_bound(plan, ir, cluster, &bcfg, &lattice, visit_budget);
    if search.budget_exhausted {
        return Err(TuneError::SearchBudgetExceeded {
            analyzed: search.stats.leaves_analyzed,
            space,
            budget: visit_budget,
        });
    }
    if !search.feasible_found {
        // Certificate-pruned leaves are infeasible too, so the whole
        // lattice is: replicate prune_mask's keep-everything rule.
        let cands = exhaust(search.stats.leaves_analyzed)?;
        return Ok(stamp(tune_over(
            est, plan, ir, cluster, cfg, cands, space, 0,
        )));
    }

    // Final exact keep decision over the analyzed set — provably the same
    // survivors exhaustive scoring would keep (see `crate::lattice`).
    let (cands, reports): (Vec<Vec<u32>>, Vec<crate::bounds::BoundsReport>) =
        search.analyzed.into_iter().unzip();
    let keep = crate::bounds::prune_mask(&reports);
    let survivors: Vec<Vec<u32>> = cands
        .into_iter()
        .zip(&keep)
        .filter_map(|(c, &k)| k.then_some(c))
        .collect();
    let candidates_pruned =
        usize::try_from(space.saturating_sub(survivors.len() as u64)).unwrap_or(usize::MAX);
    zt_telemetry::counter_add("tune.pruned", candidates_pruned as u64);
    let n_survivors = survivors.len();
    let counters = SearchCounters {
        candidates_pruned,
        search_space: space,
        search_visited: search.stats.leaves_analyzed,
        search_subtrees_pruned: search.stats.subtrees_pruned + search.stats.incumbent_cuts,
    };
    Ok(stamp(score_and_pick(
        est,
        plan,
        ir,
        cluster,
        cfg,
        survivors,
        vec![true; n_survivors],
        counters,
    )))
}

/// Run the bounds pre-pass over an explicit candidate list, then score it.
/// This is the historical flat-search body; the lattice paths reuse it for
/// exhaustive scoring.
#[allow(clippy::too_many_arguments)]
fn tune_over<E: CostEstimator + ?Sized>(
    est: &E,
    plan: &LogicalPlan,
    ir: &PlanIr,
    cluster: &Cluster,
    cfg: &OptimizerConfig,
    mut candidates: Vec<Vec<u32>>,
    search_space: u64,
    search_subtrees_pruned: u64,
) -> TuningOutcome {
    // Bounds pre-pass: the interval analysis marks candidates that are
    // provably infeasible or dominated. Marked candidates never win the
    // argmin and never contribute to Eq. 1's normalization envelope —
    // regardless of `cfg.prune` — so the verdict below is *identical*
    // with pruning on or off, for any estimator. The knob only decides
    // whether marked candidates are dropped before encoding/inference
    // (the default, saving the model evaluations) or still scored
    // (useful when inspecting predictions for the full candidate set).
    let mut candidates_pruned = 0usize;
    let mut search_visited = 0u64;
    let keep: Vec<bool> = if candidates.len() > 1 {
        let _s = zt_telemetry::span("tune.bounds");
        let bound_start = std::time::Instant::now();
        let bcfg = crate::bounds::BoundsConfig {
            chaining: cfg.chaining,
            ..crate::bounds::BoundsConfig::default()
        };
        let mut probe = ParallelQueryPlan::new(plan.clone());
        let reports: Vec<_> = candidates
            .iter()
            .map(|cand| {
                probe.parallelism.clone_from(cand);
                probe.reset_partitioning();
                crate::bounds::analyze_with(&probe, ir, cluster, &bcfg)
            })
            .collect();
        search_visited = reports.len() as u64;
        let keep = crate::bounds::prune_mask(&reports);
        if cfg.prune {
            let mut it = keep.iter();
            candidates.retain(|_| *it.next().expect("mask aligned with candidates"));
            candidates_pruned = keep.iter().filter(|&&k| !k).count();
            zt_telemetry::counter_add("tune.pruned", candidates_pruned as u64);
        }
        zt_telemetry::counter_add(
            "tune.bound_ms",
            u64::try_from(bound_start.elapsed().as_millis()).unwrap_or(u64::MAX),
        );
        if cfg.prune {
            vec![true; candidates.len()]
        } else {
            keep
        }
    } else {
        vec![true; candidates.len()]
    };
    let counters = SearchCounters {
        candidates_pruned,
        search_space,
        search_visited,
        search_subtrees_pruned,
    };
    score_and_pick(est, plan, ir, cluster, cfg, candidates, keep, counters)
}

/// Encode, batch-predict and argmin over a candidate set whose keep mask
/// is already decided; runs the strict cross-check on the winner.
#[allow(clippy::too_many_arguments)]
fn score_and_pick<E: CostEstimator + ?Sized>(
    est: &E,
    plan: &LogicalPlan,
    ir: &PlanIr,
    cluster: &Cluster,
    cfg: &OptimizerConfig,
    candidates: Vec<Vec<u32>>,
    keep: Vec<bool>,
    counters: SearchCounters,
) -> TuningOutcome {
    // Encode every candidate against the shared context, reusing one
    // mutable PQP (partitioning depends on the parallelism vector, so it
    // must be re-derived after each mutation).
    let ctx = EncodeContext::with_ir(plan, ir, cluster, &cfg.mask);
    let mut pqp = ParallelQueryPlan::new(plan.clone());
    let graphs: Vec<_> = {
        let _s = zt_telemetry::span("tune.encode");
        candidates
            .iter()
            .map(|cand| {
                pqp.parallelism.clone_from(cand);
                pqp.reset_partitioning();
                ctx.encode_sealed(&pqp, ir, cluster, cfg.chaining)
            })
            .collect()
    };

    let predictions = {
        let _s = zt_telemetry::span("tune.score");
        est.predict_batch(&graphs)
    };
    debug_assert_eq!(predictions.len(), candidates.len());

    let argmin_span = zt_telemetry::span("tune.argmin");
    // Eq. 1's min-max envelope spans the *selectable* candidates only:
    // a provably-degenerate plan must not stretch the normalization and
    // thereby reshuffle the cost ordering of the real contenders.
    let selectable = || {
        predictions
            .iter()
            .zip(&keep)
            .filter_map(|(p, &k)| k.then_some(p))
    };
    let lat_range = selectable().fold((f64::INFINITY, f64::NEG_INFINITY), |acc, p| {
        (acc.0.min(p.latency_ms), acc.1.max(p.latency_ms))
    });
    let tpt_range = selectable().fold((f64::INFINITY, f64::NEG_INFINITY), |acc, p| {
        (acc.0.min(p.throughput), acc.1.max(p.throughput))
    });

    let mut best = usize::MAX;
    let mut best_cost = f64::INFINITY;
    for (i, p) in predictions.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let c = weighted_cost(cfg.wt, p.latency_ms, p.throughput, lat_range, tpt_range);
        if best == usize::MAX || c < best_cost {
            best_cost = c;
            best = i;
        }
    }
    drop(argmin_span);

    // Strict mode: cross-check the chosen candidate's prediction against
    // its provable brackets (ZT501/ZT502/ZT504). ZT503 (the query is
    // infeasible at its offered rate even for the best deployment) is a
    // property of the workload, not a tuner bug, so it is downgraded to a
    // warning here — with pruning on, the chosen candidate can only be
    // infeasible when *every* candidate is.
    if cfg.strict {
        let _s = zt_telemetry::span("tune.crosscheck");
        let bcfg = crate::bounds::BoundsConfig {
            chaining: cfg.chaining,
            ..crate::bounds::BoundsConfig::default()
        };
        let chosen = ParallelQueryPlan::with_parallelism(plan.clone(), candidates[best].clone());
        let report = crate::bounds::analyze_with(&chosen, ir, cluster, &bcfg);
        let mut diags = crate::diagnostics::lint_bounds_report(&report);
        for d in &mut diags {
            if d.code == "ZT503" {
                d.severity = crate::diagnostics::Severity::Warning;
            }
        }
        diags.extend(crate::diagnostics::lint_prediction_bounds(
            &report,
            &predictions[best],
        ));
        // Model-certificate cross-check (ZT605): the winning prediction
        // must sit inside the estimator's certified bracket for the
        // chosen plan's data-flow depth, and that certified range must
        // intersect the plan's provable physics bracket.
        if let Some(cert) = est.certificate() {
            let depth = crate::certify::dataflow_depth(&graphs[best]);
            diags.extend(cert.check_prediction_denorm(depth, &predictions[best]));
            diags.extend(cert.lint_certificate_bounds(depth, &report));
        }
        crate::diagnostics::Report::new(diags).enforce("tune bounds cross-check");
    }

    TuningOutcome {
        parallelism: candidates[best].clone(),
        predicted_latency_ms: predictions[best].latency_ms,
        predicted_throughput: predictions[best].throughput,
        weighted_cost: best_cost,
        candidates_evaluated: candidates.len(),
        candidates_pruned: counters.candidates_pruned,
        search_space: counters.search_space,
        search_visited: counters.search_visited,
        search_subtrees_pruned: counters.search_subtrees_pruned,
        dataflow_capped_ops: 0,
        dataflow_points_removed: 0,
    }
}

/// Weighted cost of *measured* metrics against reference envelopes —
/// used by the experiments to compare tuners on equal footing (Fig. 10b).
pub fn measured_weighted_cost(
    wt: f64,
    latency_ms: f64,
    throughput: f64,
    lat_range: (f64, f64),
    tpt_range: (f64, f64),
) -> f64 {
    weighted_cost(wt, latency_ms, throughput, lat_range, tpt_range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, GenConfig};
    use crate::model::{ModelConfig, ZeroTuneModel};
    use crate::train::{train, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_dspsim::cluster::ClusterType;
    use zt_query::{QueryGenerator, QueryStructure};

    fn cluster() -> Cluster {
        Cluster::homogeneous(ClusterType::M510, 4, 10.0)
    }

    #[test]
    fn candidates_respect_constraints() {
        let mut rng = StdRng::seed_from_u64(1);
        let plan = QueryGenerator::seen().generate(QueryStructure::TwoWayJoin, &mut rng);
        let cfg = OptimizerConfig::default();
        let cluster = cluster();
        let mut rng2 = StdRng::seed_from_u64(2);
        let cands = enumerate_candidates(&plan, &cluster, &cfg, &mut rng2);
        assert!(cands.len() >= 10);
        for c in &cands {
            assert_eq!(c.len(), plan.num_ops());
            assert!(c.iter().all(|&p| p >= 1 && p <= cluster.total_cores()));
        }
        // dedup really happened
        let mut sorted = cands.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), cands.len());
    }

    #[test]
    fn weighted_cost_prefers_low_latency_high_throughput() {
        let lat_range = (10.0, 100.0);
        let tpt_range = (1_000.0, 10_000.0);
        let good = weighted_cost(0.5, 10.0, 10_000.0, lat_range, tpt_range);
        let bad = weighted_cost(0.5, 100.0, 1_000.0, lat_range, tpt_range);
        assert!(good < bad);
        assert_eq!(good, 0.0);
        assert_eq!(bad, 1.0);
    }

    #[test]
    fn wt_extremes_favor_the_right_metric() {
        let lat_range = (10.0, 100.0);
        let tpt_range = (1_000.0, 10_000.0);
        // candidate A: lowest latency but lowest throughput
        let a = |wt: f64| weighted_cost(wt, 10.0, 1_000.0, lat_range, tpt_range);
        // candidate B: highest latency but highest throughput
        let b = |wt: f64| weighted_cost(wt, 100.0, 10_000.0, lat_range, tpt_range);
        assert!(a(1.0) < b(1.0), "wt=1 must pick the low-latency plan");
        assert!(b(0.0) < a(0.0), "wt=0 must pick the high-throughput plan");
    }

    #[test]
    fn pruning_drops_infeasible_candidates_and_reports_counts() {
        // A very high-rate benchmark query: the low-parallelism candidates
        // are provably infeasible, so the bounds pre-pass must discard
        // some of them before scoring.
        let model = ZeroTuneModel::new(ModelConfig { hidden: 8, seed: 7 });
        let plan = zt_query::benchmarks::spike_detection(2_000_000.0);
        let cluster = cluster();
        let pruned_on = tune(
            &model,
            &plan,
            &cluster,
            &OptimizerConfig {
                prune: true,
                ..OptimizerConfig::default()
            },
        )
        .expect("valid plan");
        let pruned_off = tune(
            &model,
            &plan,
            &cluster,
            &OptimizerConfig {
                prune: false,
                ..OptimizerConfig::default()
            },
        )
        .expect("valid plan");
        assert!(pruned_on.candidates_pruned > 0, "nothing was pruned");
        assert_eq!(pruned_off.candidates_pruned, 0);
        assert_eq!(
            pruned_on.candidates_evaluated + pruned_on.candidates_pruned,
            pruned_off.candidates_evaluated,
            "pruning must partition the exhaustive candidate set"
        );
        assert!(pruned_on.candidates_evaluated < pruned_off.candidates_evaluated);
    }

    #[test]
    fn prune_env_knob_parses() {
        // Read-only check of the default: the test harness does not set
        // ZT_NO_PRUNE, so pruning defaults on.
        assert!(prune_from_env());
        assert!(OptimizerConfig::default().prune);
    }

    #[test]
    fn tuned_plan_beats_minimal_parallelism_on_simulator() {
        // Train a small model, tune a query, and verify the chosen
        // configuration really is better than the trivial P=1 deployment
        // when executed on the simulator.
        let data = generate_dataset(&GenConfig::seen(), 250, 31);
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 24,
            seed: 9,
        });
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 20,
                patience: 0,
                ..TrainConfig::default()
            },
        );

        let mut rng = StdRng::seed_from_u64(33);
        // a high-rate linear query that needs parallelism
        let ranges = zt_query::ParamRanges::seen();
        let mut plan = None;
        for _ in 0..50 {
            let p = QueryGenerator::new(ranges.clone()).generate(QueryStructure::Linear, &mut rng);
            let rate = p
                .ops()
                .iter()
                .find_map(|o| match &o.kind {
                    zt_query::OperatorKind::Source(s) => Some(s.event_rate),
                    _ => None,
                })
                .unwrap();
            if rate >= 250_000.0 {
                plan = Some(p);
                break;
            }
        }
        let plan = plan.expect("found a high-rate query");
        let cluster = cluster();

        let outcome =
            tune(&model, &plan, &cluster, &OptimizerConfig::default()).expect("valid plan");
        assert!(outcome.candidates_evaluated > 10);

        let sim_cfg = zt_dspsim::analytical::SimConfig::noiseless();
        let mut sim_rng = StdRng::seed_from_u64(1);
        let tuned = zt_dspsim::simulate(
            &ParallelQueryPlan::with_parallelism(plan.clone(), outcome.parallelism.clone()),
            &cluster,
            &sim_cfg,
            &mut sim_rng,
        );
        let trivial = zt_dspsim::simulate(
            &ParallelQueryPlan::with_parallelism(plan.clone(), vec![1; plan.num_ops()]),
            &cluster,
            &sim_cfg,
            &mut sim_rng,
        );
        assert!(
            tuned.throughput >= trivial.throughput,
            "tuned {} < trivial {}",
            tuned.throughput,
            trivial.throughput
        );
    }

    #[test]
    fn invalid_plan_returns_structured_error() {
        // A sink-less plan used to trip `tune()`'s internal expect; it must
        // now come back as a typed error the caller can match on.
        let mut plan = LogicalPlan::new("no-sink");
        let src = plan.add(zt_query::OperatorKind::Source(zt_query::SourceOp {
            event_rate: 1_000.0,
            schema: zt_query::TupleSchema::uniform(zt_query::DataType::Int, 3),
            key_cardinality: None,
        }));
        let f = plan.add(zt_query::OperatorKind::Filter(zt_query::FilterOp {
            function: zt_query::FilterFunction::Gt,
            literal_class: zt_query::DataType::Int,
            selectivity: 0.5,
        }));
        plan.connect(src, f);
        let model = ZeroTuneModel::new(ModelConfig { hidden: 8, seed: 1 });
        let err = tune(&model, &plan, &cluster(), &OptimizerConfig::default())
            .expect_err("sink-less plan must be rejected");
        assert!(matches!(err, TuneError::InvalidPlan(_)));
        let msg = err.to_string();
        assert!(msg.contains("valid plan"), "unexpected message: {msg}");
        assert!(msg.contains("no sink"), "unexpected message: {msg}");
        // The error chain must expose the underlying PlanError.
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn lattice_search_matches_exhaustive_lattice_scoring() {
        // The branch-and-bound walk must pick exactly the configuration
        // exhaustive scoring of the same lattice picks — same argmin, same
        // predicted numbers — on a workload hot enough that pruning fires.
        let model = ZeroTuneModel::new(ModelConfig { hidden: 8, seed: 3 });
        let plan = zt_query::benchmarks::spike_detection(2_000_000.0);
        let cluster = cluster();
        let lattice = |prune: bool| OptimizerConfig {
            prune,
            search: SearchSpace::lattice(),
            ..OptimizerConfig::default()
        };
        let bnb = tune(&model, &plan, &cluster, &lattice(true)).expect("valid plan");
        let exhaustive = tune(&model, &plan, &cluster, &lattice(false)).expect("valid plan");
        assert_eq!(bnb.parallelism, exhaustive.parallelism);
        assert_eq!(bnb.predicted_latency_ms, exhaustive.predicted_latency_ms);
        assert_eq!(bnb.predicted_throughput, exhaustive.predicted_throughput);
        assert_eq!(bnb.search_space, exhaustive.search_space);
        assert!(
            bnb.search_visited < exhaustive.search_space,
            "branch-and-bound analyzed the whole lattice ({} of {})",
            bnb.search_visited,
            bnb.search_space
        );
        assert!(bnb.search_subtrees_pruned > 0, "no subtree was ever cut");
    }

    #[test]
    fn lattice_budget_exhaustion_is_a_typed_error() {
        let model = ZeroTuneModel::new(ModelConfig { hidden: 8, seed: 3 });
        let plan = zt_query::benchmarks::spike_detection(2_000_000.0);
        let err = tune(
            &model,
            &plan,
            &cluster(),
            &OptimizerConfig {
                search: SearchSpace::Lattice {
                    max_degrees_per_op: 4,
                    visit_budget: 2,
                },
                ..OptimizerConfig::default()
            },
        )
        .expect_err("a 2-leaf budget cannot cover the lattice");
        match err {
            TuneError::SearchBudgetExceeded { space, budget, .. } => {
                assert_eq!(budget, 2);
                assert!(space > 2);
            }
            other => panic!("expected SearchBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn all_infeasible_lattice_falls_back_to_exhaustive_scoring() {
        // At a rate no deployment can sustain, prune_mask keeps everything,
        // so the lattice path must score the full lattice and still return
        // a (best-effort) winner rather than erroring out.
        let model = ZeroTuneModel::new(ModelConfig { hidden: 8, seed: 5 });
        let plan = zt_query::benchmarks::spike_detection(80_000_000.0);
        let out = tune(
            &model,
            &plan,
            &cluster(),
            &OptimizerConfig {
                search: SearchSpace::lattice(),
                ..OptimizerConfig::default()
            },
        )
        .expect("valid plan");
        assert!(!out.parallelism.is_empty());
        assert_eq!(
            out.search_subtrees_pruned, 0,
            "nothing can be cut when every leaf is kept"
        );
        assert_eq!(out.search_visited, out.search_space);
    }
}
