//! Static diagnostics: lint plans, features, datasets and models before
//! anything runs.
//!
//! ZeroTune predicts costs *before deployment*, which means every consumer
//! — data generation, training, the optimizer — trusts that plans, feature
//! encodings and model weights are well-formed at the moment they are
//! handed over. Zero-shot cost models are acutely sensitive to silent
//! corruption: a NaN label poisons the target normalization, an
//! out-of-range feature silently degrades predictions without any runtime
//! error, and a sliding window with `slide > length` is a plan the paper's
//! feature space cannot even express. This module is the correctness layer
//! that catches such problems *statically*.
//!
//! Every finding is a [`Diagnostic`] with a stable code, a
//! [`Severity`], a human-readable message and an optional anchor (operator
//! id, graph node, sample index or parameter name). The code registry:
//!
//! | Family | Codes | Subject |
//! |---|---|---|
//! | ZT1xx | ZT101–ZT109 | [`LogicalPlan`] / [`ParallelQueryPlan`] |
//! | ZT2xx | ZT201–ZT205 | [`GraphEncoding`] feature vectors |
//! | ZT3xx | ZT301–ZT305 | [`Dataset`] labels and structure |
//! | ZT4xx | ZT401–ZT407 | [`ZeroTuneModel`] weights and normalization |
//! | ZT5xx | ZT501–ZT504 | [`BoundsReport`](crate::bounds::BoundsReport) interval cross-checks |
//! | ZT6xx | ZT601–ZT605 | [`ModelCert`](crate::certify::ModelCert) interval certification of trained weights |
//! | ZT7xx | ZT701–ZT705 | [`DataflowReport`](crate::dataflow::DataflowReport) monotone dataflow facts |
//!
//! The passes run **without executing anything** — no simulation, no
//! forward pass (the one exception is
//! [`ZeroTuneModel::predict_checked`](crate::model::ZeroTuneModel::predict_checked),
//! which surfaces ZT406 from an actual inference). They are wired into
//! `train` / `tune` / `generate_sample` as pre-flight checks behind the
//! `strict` flag (`--strict` on the experiment binaries, or `ZT_STRICT=1`
//! in the environment): in strict mode an `Error`-severity finding aborts
//! the run with the rendered report, warnings go to stderr. The `zt-lint`
//! binary runs all passes over serialized artifacts and prints a
//! rustc-style report.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use zt_dspsim::cluster::Cluster;
use zt_query::plan::PlanError;
use zt_query::{LogicalPlan, OpId, OperatorKind, ParallelQueryPlan, Partitioning, WindowSpec};

use crate::dataset::{Dataset, Sample};
use crate::features::{
    AGG_EXTRA_DIM, FEATURE_MAX, FEATURE_MIN, FILTER_EXTRA_DIM, JOIN_EXTRA_DIM, OP_COMMON_DIM,
    RESOURCE_DIM, SINK_EXTRA_DIM, SOURCE_EXTRA_DIM,
};
use crate::graph::{GraphEncoding, NodeKind};
use crate::model::{TargetNorm, ZeroTuneModel};

// --- Core types ----------------------------------------------------------

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// What a diagnostic points at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Anchor {
    /// An operator of the linted plan.
    Op(OpId),
    /// A node index of a [`GraphEncoding`].
    Node(usize),
    /// A sample index of a [`Dataset`].
    Sample(usize),
    /// A named model parameter or module.
    Param(String),
}

impl std::fmt::Display for Anchor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Anchor::Op(id) => write!(f, "{id}"),
            Anchor::Node(i) => write!(f, "node {i}"),
            Anchor::Sample(i) => write!(f, "sample {i}"),
            Anchor::Param(name) => write!(f, "param {name}"),
        }
    }
}

/// One finding of a diagnostics pass.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Stable registry code, e.g. `"ZT101"`.
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    pub anchor: Option<Anchor>,
}

impl Diagnostic {
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            anchor: None,
        }
    }

    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            anchor: None,
        }
    }

    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Info,
            message: message.into(),
            anchor: None,
        }
    }

    pub fn at(mut self, anchor: Anchor) -> Self {
        self.anchor = Some(anchor);
        self
    }

    pub fn at_op(self, id: OpId) -> Self {
        self.at(Anchor::Op(id))
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.label(),
            self.code,
            self.message
        )?;
        if let Some(a) = &self.anchor {
            write!(f, "\n  --> {a}")?;
        }
        Ok(())
    }
}

/// A collected set of diagnostics with rustc-style rendering.
#[must_use = "a diagnostics report is inert until rendered, inspected or enforce()d"]
#[derive(Clone, Default, Debug)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        Report { diagnostics }
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Distinct codes present, sorted.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut codes: Vec<&'static str> = self.diagnostics.iter().map(|d| d.code).collect();
        codes.sort_unstable();
        codes.dedup();
        codes
    }

    pub fn extend(&mut self, more: Vec<Diagnostic>) {
        self.diagnostics.extend(more);
    }

    /// One-line `N errors, M warnings` summary.
    pub fn summary(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }

    /// Abort (panic) with the rendered report when it contains errors;
    /// print warnings to stderr otherwise. This is the strict-mode
    /// enforcement entry used by `train`, `tune` and `generate_sample`.
    pub fn enforce(&self, stage: &str) {
        if self.has_errors() {
            panic!("strict {stage} pre-flight failed:\n{self}");
        }
        for d in &self.diagnostics {
            eprintln!("{stage}: {d}");
        }
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(f, "{}", self.summary())
    }
}

// --- Code registry -------------------------------------------------------

/// A registry entry: code, default severity, one-line summary.
pub struct CodeInfo {
    pub code: &'static str,
    pub severity: Severity,
    pub summary: &'static str,
}

/// The full lint-code registry (ZT1xx plan, ZT2xx features, ZT3xx dataset,
/// ZT4xx model).
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: "ZT101",
        severity: Severity::Error,
        summary: "plan fails structural validation",
    },
    CodeInfo {
        code: "ZT102",
        severity: Severity::Warning,
        summary: "operator unreachable between sources and sink",
    },
    CodeInfo {
        code: "ZT103",
        severity: Severity::Error,
        summary: "invalid window geometry (length/slide)",
    },
    CodeInfo {
        code: "ZT104",
        severity: Severity::Error,
        summary: "selectivity outside (0, 1]",
    },
    CodeInfo {
        code: "ZT105",
        severity: Severity::Error,
        summary: "parallelism exceeds total cluster slots",
    },
    CodeInfo {
        code: "ZT106",
        severity: Severity::Warning,
        summary: "hash partitioning into a parallelism-1 operator",
    },
    CodeInfo {
        code: "ZT107",
        severity: Severity::Warning,
        summary: "cluster oversubscribed (instances > slots)",
    },
    CodeInfo {
        code: "ZT108",
        severity: Severity::Warning,
        summary: "dangling branch: operator reaches no sink in a multi-sink plan",
    },
    CodeInfo {
        code: "ZT109",
        severity: Severity::Error,
        summary: "wire plan fingerprint mismatch at deserialization",
    },
    CodeInfo {
        code: "ZT201",
        severity: Severity::Error,
        summary: "non-finite feature value",
    },
    CodeInfo {
        code: "ZT202",
        severity: Severity::Warning,
        summary: "feature outside its normalization range",
    },
    CodeInfo {
        code: "ZT203",
        severity: Severity::Warning,
        summary: "constant feature columns across a batch",
    },
    CodeInfo {
        code: "ZT204",
        severity: Severity::Error,
        summary: "malformed graph encoding structure",
    },
    CodeInfo {
        code: "ZT205",
        severity: Severity::Error,
        summary: "feature dimension mismatch for node kind",
    },
    CodeInfo {
        code: "ZT301",
        severity: Severity::Error,
        summary: "non-finite or non-positive label",
    },
    CodeInfo {
        code: "ZT302",
        severity: Severity::Warning,
        summary: "duplicate samples",
    },
    CodeInfo {
        code: "ZT303",
        severity: Severity::Warning,
        summary: "train/test structure leakage",
    },
    CodeInfo {
        code: "ZT304",
        severity: Severity::Warning,
        summary: "label-distribution outlier",
    },
    CodeInfo {
        code: "ZT305",
        severity: Severity::Warning,
        summary: "degenerate (constant) label distribution",
    },
    CodeInfo {
        code: "ZT401",
        severity: Severity::Error,
        summary: "non-finite model weight",
    },
    CodeInfo {
        code: "ZT402",
        severity: Severity::Warning,
        summary: "dead ReLU unit (all-nonpositive incoming row)",
    },
    CodeInfo {
        code: "ZT403",
        severity: Severity::Warning,
        summary: "target normalization drifts from dataset labels",
    },
    CodeInfo {
        code: "ZT404",
        severity: Severity::Info,
        summary: "target normalization is the default (model unfitted)",
    },
    CodeInfo {
        code: "ZT405",
        severity: Severity::Warning,
        summary: "exploding weight magnitude",
    },
    CodeInfo {
        code: "ZT406",
        severity: Severity::Error,
        summary: "model produced a non-finite prediction",
    },
    CodeInfo {
        code: "ZT407",
        severity: Severity::Error,
        summary: "layer shape metadata inconsistent with stored weights",
    },
    CodeInfo {
        code: "ZT501",
        severity: Severity::Warning,
        summary: "prediction below the provable latency lower bound",
    },
    CodeInfo {
        code: "ZT502",
        severity: Severity::Warning,
        summary: "prediction above the provable throughput upper bound",
    },
    CodeInfo {
        code: "ZT503",
        severity: Severity::Error,
        summary: "deployed plan is provably infeasible (utilization lower bound >= 1)",
    },
    CodeInfo {
        code: "ZT504",
        severity: Severity::Error,
        summary: "vacuous or inverted bounds interval",
    },
    CodeInfo {
        code: "ZT601",
        severity: Severity::Error,
        summary: "certified output range is non-finite or exploded",
    },
    CodeInfo {
        code: "ZT602",
        severity: Severity::Error,
        summary: "certified output range excludes the training-label range",
    },
    CodeInfo {
        code: "ZT603",
        severity: Severity::Warning,
        summary: "certified-dead hidden unit (provably zero over the feature domain)",
    },
    CodeInfo {
        code: "ZT604",
        severity: Severity::Warning,
        summary: "input feature with certified-zero sensitivity (model provably ignores it)",
    },
    CodeInfo {
        code: "ZT605",
        severity: Severity::Error,
        summary: "prediction escapes the model's certified output bracket",
    },
    CodeInfo {
        code: "ZT701",
        severity: Severity::Warning,
        summary: "statically dead edge (propagated rate bracket is exactly zero)",
    },
    CodeInfo {
        code: "ZT702",
        severity: Severity::Warning,
        summary: "edge's minimum traffic exceeds the cluster's usable network bandwidth",
    },
    CodeInfo {
        code: "ZT703",
        severity: Severity::Warning,
        summary: "redundant hash re-partition of an already-correctly-partitioned stream",
    },
    CodeInfo {
        code: "ZT704",
        severity: Severity::Warning,
        summary: "parallelism exceeds upstream key cardinality (provably idle instances)",
    },
    CodeInfo {
        code: "ZT705",
        severity: Severity::Warning,
        summary: "keyed operator's input stream cannot carry its key class",
    },
];

/// Look up a registry entry by code.
pub fn describe(code: &str) -> Option<&'static CodeInfo> {
    REGISTRY.iter().find(|c| c.code == code)
}

// --- Strict mode ---------------------------------------------------------

/// Whether strict pre-flight mode is enabled via `ZT_STRICT` (`1`, `true`,
/// `yes`; anything else — including unset — is off). The experiment
/// binaries map `--strict` onto this variable.
pub fn strict_from_env() -> bool {
    matches!(
        std::env::var("ZT_STRICT").as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    )
}

// --- Plan lints (ZT1xx) --------------------------------------------------

fn lint_window(id: OpId, w: &WindowSpec, out: &mut Vec<Diagnostic>) {
    if !(w.length > 0.0 && w.length.is_finite()) {
        out.push(
            Diagnostic::error(
                "ZT103",
                format!("window length {} must be positive and finite", w.length),
            )
            .at_op(id),
        );
    }
    if let Some(s) = w.slide {
        if !(s > 0.0 && s.is_finite()) {
            out.push(
                Diagnostic::error(
                    "ZT103",
                    format!("window slide {s} must be positive and finite"),
                )
                .at_op(id),
            );
        } else if s > w.length {
            out.push(
                Diagnostic::error(
                    "ZT103",
                    format!(
                        "sliding window slide {s} exceeds window length {} (tuples would be dropped)",
                        w.length
                    ),
                )
                .at_op(id),
            );
        }
    }
}

/// Lint a logical plan: structural validity (ZT101), reachability
/// (ZT102/ZT108), window geometry (ZT103), selectivity domains (ZT104)
/// and — when the plan seals — dataflow facts (ZT701, ZT705).
///
/// Unlike [`LogicalPlan::validate`] this does not stop at the first
/// problem, works on arbitrary (even invalid) plans, and is stricter
/// about selectivity — `validate` accepts `0.0`, but a zero-selectivity
/// operator statically kills the stream, so the lint flags it.
pub fn lint_plan(plan: &LogicalPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Per-operator parameter lints over *all* operators (validate() stops
    // at the first offender).
    for op in plan.ops() {
        if let Some(w) = op.kind.window() {
            lint_window(op.id, w, &mut out);
        }
        match &op.kind {
            OperatorKind::Source(_) | OperatorKind::Sink(_) => {}
            kind => {
                let s = kind.selectivity();
                if !(s.is_finite() && s > 0.0 && s <= 1.0) {
                    out.push(
                        Diagnostic::error(
                            "ZT104",
                            format!("selectivity {s} outside (0, 1] — the operator statically drops or multiplies the stream"),
                        )
                        .at_op(op.id),
                    );
                }
            }
        }
    }

    // Structural validation, mapped onto ZT101 unless a dedicated code
    // above already covers the same operator parameter. Keep the sealed IR
    // around: the dataflow lints below need its cached topo order.
    let mut sealed = None;
    match plan.validate() {
        Ok(ir) => sealed = Some(ir),
        Err(PlanError::InvalidParameter(id, what)) => {
            let covered = out.iter().any(|d| {
                d.anchor == Some(Anchor::Op(id)) && (d.code == "ZT103" || d.code == "ZT104")
            });
            if !covered {
                out.push(
                    Diagnostic::error("ZT101", format!("invalid parameter: {what}")).at_op(id),
                );
            }
        }
        Err(e) => out.push(Diagnostic::error("ZT101", e.to_string())),
    }

    // Reachability: every operator must lie on some source → sink path.
    // Needs an acyclic graph with in-bounds edges; ZT101 covers the rest.
    let n = plan.num_ops();
    let edges_ok = plan
        .edges()
        .iter()
        .all(|&(u, d)| u.idx() < n && d.idx() < n);
    if n > 0 && edges_ok && plan.topo_order().is_some() {
        let mut from_source = vec![false; n];
        let mut stack: Vec<OpId> = plan.sources();
        for s in &stack {
            from_source[s.idx()] = true;
        }
        while let Some(u) = stack.pop() {
            for d in plan.downstream(u) {
                if !from_source[d.idx()] {
                    from_source[d.idx()] = true;
                    stack.push(d);
                }
            }
        }
        let sinks: Vec<OpId> = plan
            .ops()
            .iter()
            .filter(|o| o.kind.is_sink())
            .map(|o| o.id)
            .collect();
        let mut to_sink = vec![false; n];
        let mut stack = sinks;
        for s in &stack {
            to_sink[s.idx()] = true;
        }
        while let Some(d) = stack.pop() {
            for u in plan.upstream(d) {
                if !to_sink[u.idx()] {
                    to_sink[u.idx()] = true;
                    stack.push(u);
                }
            }
        }
        let num_sinks = plan.ops().iter().filter(|o| o.kind.is_sink()).count();
        for op in plan.ops() {
            let i = op.id.idx();
            // Exactly one structural-reachability diagnostic per operator:
            // ZT108 when a branch was forked but never terminated in a
            // multi-sink plan (a distinct, easier-to-hit mistake than the
            // generic off-path case), ZT102 for everything else.
            let diag = match (from_source[i], to_sink[i]) {
                (true, true) => None,
                (true, false) if num_sinks >= 2 => {
                    let msg = if op.kind.is_source() {
                        format!(
                            "source feeds a branch that reaches none of the plan's {num_sinks} sinks (dangling branch)"
                        )
                    } else {
                        format!(
                            "{} operator is fed by a source but reaches none of the plan's {num_sinks} sinks (dangling branch)",
                            op.kind.label()
                        )
                    };
                    Some(Diagnostic::warning("ZT108", msg))
                }
                _ => Some(Diagnostic::warning(
                    "ZT102",
                    format!(
                        "{} operator is not on any source → sink path (unreachable work)",
                        op.kind.label()
                    ),
                )),
            };
            if let Some(d) = diag {
                out.push(d.at_op(op.id));
            }
        }
    }

    // Dataflow facts only exist on sealed plans: rate propagation walks the
    // IR's cached topological order.
    if let Some(ir) = &sealed {
        out.extend(crate::dataflow::lint_dataflow_plan(plan, ir));
    }

    out
}

/// Lint a wire-format sealed plan ([`zt_query::PlanIr::to_json`]
/// envelope): parse, fully re-seal (structure *and* parameter ranges —
/// wire plans are untrusted input and never bypass `validate()`), and
/// cross-check the embedded structural fingerprint.
///
/// On success returns the revalidated plan + IR together with the
/// ordinary [`lint_plan`] findings. On failure the plan is withheld and
/// the report carries exactly one error: **ZT109** for a fingerprint
/// mismatch (or a malformed fingerprint field), **ZT101** when the
/// envelope does not parse or the embedded plan fails revalidation.
pub fn lint_wire_plan(json: &str) -> (Option<(LogicalPlan, zt_query::PlanIr)>, Report) {
    match zt_query::PlanIr::from_json(json) {
        Ok((plan, ir)) => {
            let report = Report::new(lint_plan(&plan));
            (Some((plan, ir)), report)
        }
        Err(e) => {
            let code = match &e {
                zt_query::WireError::FingerprintMismatch { .. }
                | zt_query::WireError::BadFingerprint(_) => "ZT109",
                zt_query::WireError::Json(_) | zt_query::WireError::Plan(_) => "ZT101",
            };
            (
                None,
                Report::new(vec![Diagnostic::error(code, e.to_string())]),
            )
        }
    }
}

/// Lint a parallel query plan (includes [`lint_plan`] on the underlying
/// logical plan): parallel-configuration validity (ZT101), wasted hash
/// shuffles (ZT106), slot-capacity checks when a cluster is given (ZT105
/// error per operator, ZT107 oversubscription warning), and
/// deployment-level dataflow facts (ZT702 with a cluster, ZT703, ZT704).
pub fn lint_pqp(pqp: &ParallelQueryPlan, cluster: Option<&Cluster>) -> Vec<Diagnostic> {
    let mut out = lint_plan(&pqp.plan);
    let n = pqp.plan.num_ops();

    if pqp.parallelism.len() != n {
        out.push(Diagnostic::error(
            "ZT101",
            format!(
                "parallelism vector has {} entries for {n} operators",
                pqp.parallelism.len()
            ),
        ));
        return out; // everything below indexes parallelism per operator
    }

    for op in pqp.plan.ops() {
        if pqp.parallelism_of(op.id) == 0 {
            out.push(
                Diagnostic::error("ZT101", "operator has parallelism 0 (Eq. 1 requires P ≥ 1)")
                    .at_op(op.id),
            );
        }
    }

    // Parallel-configuration errors beyond the logical plan (forward
    // mismatch, missing hash). Only when the logical plan itself is sound
    // — pqp.validate() would just repeat the plan error otherwise.
    if pqp.plan.validate().is_ok() && pqp.partitioning.len() == pqp.plan.edges().len() {
        if let Err(e) = pqp.validate() {
            out.push(Diagnostic::error("ZT101", e.to_string()));
        }
    }

    // ZT106: hash partitioning into a parallelism-1 operator. The shuffle
    // pays serialization + network for a downstream that has exactly one
    // instance anyway.
    for (i, &(u, d)) in pqp.plan.edges().iter().enumerate() {
        if d.idx() >= n || u.idx() >= n {
            continue;
        }
        if pqp.partitioning.get(i) == Some(&Partitioning::Hash) && pqp.parallelism[d.idx()] == 1 {
            out.push(
                Diagnostic::warning(
                    "ZT106",
                    format!("hash partitioning {u} -> {d} into a parallelism-1 operator wastes a shuffle"),
                )
                .at_op(d),
            );
        }
    }

    if let Some(cluster) = cluster {
        let slots = cluster.total_cores() as u64;
        if slots == 0 {
            out.push(Diagnostic::error("ZT105", "cluster has no task slots"));
        } else {
            for op in pqp.plan.ops() {
                let p = pqp.parallelism_of(op.id) as u64;
                if p > slots {
                    out.push(
                        Diagnostic::error(
                            "ZT105",
                            format!("parallelism {p} exceeds the cluster's {slots} task slots"),
                        )
                        .at_op(op.id),
                    );
                }
            }
            let total = pqp.total_instances();
            if total > slots {
                out.push(Diagnostic::warning(
                    "ZT107",
                    format!(
                        "{total} parallel instances oversubscribe the cluster's {slots} task slots"
                    ),
                ));
            }
        }
    }

    // Deployment-level dataflow lints need a sealed IR and a coherent
    // parallel configuration; their codes are disjoint from the plan-level
    // ZT701/ZT705 already emitted by `lint_plan` above.
    if pqp.parallelism.iter().all(|&p| p >= 1) {
        if let Ok(ir) = pqp.plan.validate() {
            out.extend(crate::dataflow::lint_dataflow_pqp(pqp, &ir, cluster));
        }
    }

    out
}

// --- Feature lints (ZT2xx) -----------------------------------------------

fn node_feature_dim(kind: NodeKind) -> usize {
    match kind {
        NodeKind::Source => OP_COMMON_DIM + SOURCE_EXTRA_DIM,
        NodeKind::Filter => OP_COMMON_DIM + FILTER_EXTRA_DIM,
        NodeKind::Aggregate => OP_COMMON_DIM + AGG_EXTRA_DIM,
        NodeKind::Join => OP_COMMON_DIM + JOIN_EXTRA_DIM,
        NodeKind::Sink => OP_COMMON_DIM + SINK_EXTRA_DIM,
        NodeKind::Resource => RESOURCE_DIM,
    }
}

/// Lint one graph encoding: non-finite features (ZT201), features outside
/// the normalization ranges implied by `features.rs` (ZT202), structural
/// encoding defects (ZT204) and per-kind dimension mismatches (ZT205).
pub fn lint_graph(graph: &GraphEncoding) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = graph.nodes.len();
    let n_ops = graph.num_operator_nodes();

    for (i, node) in graph.nodes.iter().enumerate() {
        if node.features.len() != node_feature_dim(node.kind) {
            out.push(
                Diagnostic::error(
                    "ZT205",
                    format!(
                        "{:?} node has {} features, its encoder expects {}",
                        node.kind,
                        node.features.len(),
                        node_feature_dim(node.kind)
                    ),
                )
                .at(Anchor::Node(i)),
            );
        }
        for (j, &v) in node.features.iter().enumerate() {
            if !v.is_finite() {
                out.push(
                    Diagnostic::error(
                        "ZT201",
                        format!("{:?} feature {j} is non-finite ({v})", node.kind),
                    )
                    .at(Anchor::Node(i)),
                );
            } else if !(FEATURE_MIN..=FEATURE_MAX).contains(&v) {
                out.push(
                    Diagnostic::warning(
                        "ZT202",
                        format!(
                            "{:?} feature {j} = {v} outside the normalized range [{FEATURE_MIN}, {FEATURE_MAX}]",
                            node.kind
                        ),
                    )
                    .at(Anchor::Node(i)),
                );
            }
        }
    }

    // Structural checks mirroring (and exceeding) the encoder's
    // debug-asserts: out-of-bounds indices, sink not an operator node,
    // mapping weights outside [0, 1] or not summing to ~1 per operator.
    if graph.sink >= n_ops {
        out.push(Diagnostic::error(
            "ZT204",
            format!(
                "sink index {} is not an operator node (have {n_ops})",
                graph.sink
            ),
        ));
    }
    for &(u, d) in &graph.data_flow {
        if u >= n_ops || d >= n_ops {
            out.push(Diagnostic::error(
                "ZT204",
                format!("data-flow edge ({u}, {d}) references a non-operator node"),
            ));
        }
    }
    let mut op_weight = vec![0.0f64; n_ops];
    let mut mapping_ok = true;
    for &(r, o, w) in &graph.mapping {
        if r < n_ops || r >= n || o >= n_ops {
            out.push(Diagnostic::error(
                "ZT204",
                format!("mapping edge ({r}, {o}) must go resource -> operator"),
            ));
            mapping_ok = false;
            continue;
        }
        if !w.is_finite() || !(0.0..=1.0001).contains(&w) {
            out.push(
                Diagnostic::error("ZT204", format!("mapping weight {w} outside [0, 1]"))
                    .at(Anchor::Node(o)),
            );
            mapping_ok = false;
        }
        op_weight[o] += f64::from(w);
    }
    if mapping_ok && !graph.mapping.is_empty() {
        for (o, &total) in op_weight.iter().enumerate() {
            if total > 0.0 && (total - 1.0).abs() > 1e-3 {
                out.push(
                    Diagnostic::error(
                        "ZT204",
                        format!("operator's mapping weights sum to {total:.4}, expected 1"),
                    )
                    .at(Anchor::Node(o)),
                );
            }
        }
    }

    out
}

/// Batch-level feature lint (ZT203): a node kind whose *entire* feature
/// matrix is constant across the batch gives the encoder nothing to learn
/// from — the classic symptom of a featurization wired to the wrong
/// input. Needs at least [`ZT203_MIN_ROWS`] nodes of the kind to fire.
pub fn lint_graph_batch<'a, I>(graphs: I) -> Vec<Diagnostic>
where
    I: IntoIterator<Item = &'a GraphEncoding>,
{
    let mut rows: HashMap<NodeKind, Vec<&[f32]>> = HashMap::new();
    for g in graphs {
        for node in &g.nodes {
            rows.entry(node.kind).or_default().push(&node.features);
        }
    }
    let mut out = Vec::new();
    let mut kinds: Vec<NodeKind> = rows.keys().copied().collect();
    kinds.sort_by_key(|k| format!("{k:?}"));
    for kind in kinds {
        let rs = &rows[&kind];
        if rs.len() < ZT203_MIN_ROWS || rs[0].is_empty() {
            continue;
        }
        let dim = rs[0].len();
        if rs.iter().any(|r| r.len() != dim) {
            continue; // ZT205 territory, reported per graph
        }
        let all_constant =
            (0..dim).all(|c| rs.iter().all(|r| r[c].to_bits() == rs[0][c].to_bits()));
        if all_constant {
            out.push(Diagnostic::warning(
                "ZT203",
                format!(
                    "all {dim} features of {kind:?} nodes are constant across {} batch rows — the encoder cannot learn from them",
                    rs.len()
                ),
            ));
        }
    }
    out
}

/// Minimum per-kind node count before ZT203 (constant batch columns) can
/// fire.
pub const ZT203_MIN_ROWS: usize = 8;

// --- Dataset lints (ZT3xx) -----------------------------------------------

/// Z-score threshold (in log space) for the ZT304 label-outlier lint.
pub const ZT304_Z_THRESHOLD: f64 = 4.5;
/// Minimum sample count before ZT304 can fire.
pub const ZT304_MIN_SAMPLES: usize = 16;

fn sample_key(s: &Sample) -> u64 {
    let mut h = DefaultHasher::new();
    s.latency_ms.to_bits().hash(&mut h);
    s.throughput.to_bits().hash(&mut h);
    s.graph.data_flow.hash(&mut h);
    s.graph.sink.hash(&mut h);
    for node in &s.graph.nodes {
        std::mem::discriminant(&node.kind).hash(&mut h);
        for v in &node.features {
            v.to_bits().hash(&mut h);
        }
    }
    h.finish()
}

/// Lint a dataset: label validity (ZT301), duplicates (ZT302), label
/// outliers (ZT304), degenerate label distributions (ZT305), plus the
/// per-graph feature lints (ZT201/202/204/205) and the batch-level
/// constant-column lint (ZT203) over all sample encodings.
pub fn lint_dataset(data: &Dataset) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    for (i, s) in data.samples.iter().enumerate() {
        for (label, value) in [("latency", s.latency_ms), ("throughput", s.throughput)] {
            if !value.is_finite() || value <= 0.0 {
                out.push(
                    Diagnostic::error(
                        "ZT301",
                        format!("{label} label {value} must be positive and finite"),
                    )
                    .at(Anchor::Sample(i)),
                );
            }
        }
        for d in lint_graph(&s.graph) {
            // re-anchor graph findings to the offending sample
            out.push(Diagnostic {
                message: match &d.anchor {
                    Some(a) => format!("{} ({a})", d.message),
                    None => d.message.clone(),
                },
                anchor: Some(Anchor::Sample(i)),
                ..d
            });
        }
    }

    // ZT302: duplicates (identical encoding and labels).
    let mut seen: HashMap<u64, usize> = HashMap::new();
    for (i, s) in data.samples.iter().enumerate() {
        match seen.entry(sample_key(s)) {
            std::collections::hash_map::Entry::Occupied(first) => {
                out.push(
                    Diagnostic::warning(
                        "ZT302",
                        format!(
                            "duplicate of sample {} (identical encoding and labels)",
                            first.get()
                        ),
                    )
                    .at(Anchor::Sample(i)),
                );
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(i);
            }
        }
    }

    // Label-distribution lints on the finite positive labels only.
    let finite: Vec<(usize, f64, f64)> = data
        .samples
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.latency_ms.is_finite()
                && s.latency_ms > 0.0
                && s.throughput.is_finite()
                && s.throughput > 0.0
        })
        .map(|(i, s)| (i, s.latency_ms.ln(), s.throughput.ln()))
        .collect();

    for (name, pick) in [("latency", 1usize), ("throughput", 2usize)] {
        let values: Vec<f64> = finite
            .iter()
            .map(|t| if pick == 1 { t.1 } else { t.2 })
            .collect();
        if values.len() >= 2 {
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            let std = var.sqrt();
            if std == 0.0 {
                out.push(Diagnostic::warning(
                    "ZT305",
                    format!(
                        "all {} {name} labels are identical ({:.4}) — nothing to learn",
                        values.len(),
                        values[0].exp()
                    ),
                ));
            } else if values.len() >= ZT304_MIN_SAMPLES {
                for (k, v) in values.iter().enumerate() {
                    let z = (v - mean) / std;
                    if z.abs() > ZT304_Z_THRESHOLD {
                        out.push(
                            Diagnostic::warning(
                                "ZT304",
                                format!(
                                    "{name} label {:.4} is a log-space outlier (z = {z:.1})",
                                    v.exp()
                                ),
                            )
                            .at(Anchor::Sample(finite[k].0)),
                        );
                    }
                }
            }
        }
    }

    out.extend(lint_graph_batch(data.samples.iter().map(|s| &s.graph)));
    out
}

/// Lint a train/test split for zero-shot structure leakage (ZT303): a
/// test sample marked `seen_structure == false` whose
/// [`SampleMeta::structure`](crate::dataset::SampleMeta) also appears in
/// the training set is not an unseen structure at all — the headline
/// zero-shot numbers would be inflated.
pub fn lint_split(train: &Dataset, test: &Dataset) -> Vec<Diagnostic> {
    let train_structures: HashSet<&str> = train
        .samples
        .iter()
        .map(|s| s.meta.structure.as_str())
        .collect();
    let mut reported: HashSet<&str> = HashSet::new();
    let mut out = Vec::new();
    for s in &test.samples {
        if !s.meta.seen_structure
            && train_structures.contains(s.meta.structure.as_str())
            && reported.insert(s.meta.structure.as_str())
        {
            let n = train
                .samples
                .iter()
                .filter(|t| t.meta.structure == s.meta.structure)
                .count();
            out.push(Diagnostic::warning(
                "ZT303",
                format!(
                    "test structure `{}` is marked unseen but appears {n} time(s) in the training set (zero-shot evaluation is leaked)",
                    s.meta.structure
                ),
            ));
        }
    }
    out
}

// --- Model lints (ZT4xx) -------------------------------------------------

/// Absolute-weight threshold for the ZT405 exploding-weight lint.
pub const ZT405_MAX_ABS_WEIGHT: f32 = 100.0;

/// Structural lint (ZT407): every module's layer shape metadata must
/// agree with the matrices actually stored for it — weight shape
/// `(in_dim, out_dim)`, bias shape `(1, out_dim)`, and a consistent
/// layer-to-layer width chain. A deserialized model that violates this
/// would misalign (or panic) inside the matmul kernel, so the checked
/// inference paths and the certifier both refuse to touch such a model.
/// Shape metadata only — no weight data is scanned.
pub fn lint_model_structure(model: &ZeroTuneModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (name, mlp) in model.modules() {
        if mlp.layers.is_empty() {
            out.push(
                Diagnostic::error("ZT407", "module has no layers").at(Anchor::Param(name.clone())),
            );
            continue;
        }
        let mut width: Option<usize> = None;
        for (i, layer) in mlp.layers.iter().enumerate() {
            let w = model.store.value(layer.w);
            let b = model.store.value(layer.b);
            if w.shape() != (layer.in_dim, layer.out_dim) {
                out.push(
                    Diagnostic::error(
                        "ZT407",
                        format!(
                            "layer {i} declares {}x{} but stores a {}x{} weight matrix",
                            layer.in_dim, layer.out_dim, w.rows, w.cols
                        ),
                    )
                    .at(Anchor::Param(name.clone())),
                );
            }
            if b.shape() != (1, w.cols) {
                out.push(
                    Diagnostic::error(
                        "ZT407",
                        format!(
                            "layer {i} bias is {}x{}, expected 1x{}",
                            b.rows, b.cols, w.cols
                        ),
                    )
                    .at(Anchor::Param(name.clone())),
                );
            }
            if let Some(prev) = width {
                if prev != w.rows {
                    out.push(
                        Diagnostic::error(
                            "ZT407",
                            format!(
                                "layer {i} expects width {} but layer {} produces {prev}",
                                w.rows,
                                i - 1
                            ),
                        )
                        .at(Anchor::Param(name.clone())),
                    );
                }
            }
            width = Some(w.cols);
        }
    }
    out
}

/// Lint a model's weights and normalization: shape consistency (ZT407),
/// non-finite weights (ZT401), dead ReLU units (ZT402), default
/// normalization (ZT404) and exploding weights (ZT405).
pub fn lint_model(model: &ZeroTuneModel) -> Vec<Diagnostic> {
    let mut out = lint_model_structure(model);
    if !out.is_empty() {
        // The per-layer weight lints below index matrices through the
        // very metadata ZT407 just proved wrong; stop here.
        return out;
    }

    for id in model.store.ids() {
        let m = model.store.value(id);
        let non_finite = m.data.iter().filter(|v| !v.is_finite()).count();
        if non_finite > 0 {
            out.push(
                Diagnostic::error(
                    "ZT401",
                    format!("{non_finite} of {} weights are non-finite", m.data.len()),
                )
                .at(Anchor::Param(model.store.name(id).to_string())),
            );
            continue;
        }
        let max_abs = m.data.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        if max_abs > ZT405_MAX_ABS_WEIGHT {
            out.push(
                Diagnostic::warning(
                    "ZT405",
                    format!("max |weight| = {max_abs:.1} exceeds {ZT405_MAX_ABS_WEIGHT} (exploding weights)"),
                )
                .at(Anchor::Param(model.store.name(id).to_string())),
            );
        }
    }

    // ZT402: dead ReLU units. For every hidden layer (ReLU follows), a
    // unit whose incoming column is all-nonpositive with a nonpositive
    // bias can only output 0 on the nonnegative activations that feed it.
    for (name, mlp) in model.modules() {
        let last = mlp.layers.len().saturating_sub(1);
        let mut dead = 0usize;
        let mut total = 0usize;
        for layer in &mlp.layers[..last] {
            let w = model.store.value(layer.w);
            let b = model.store.value(layer.b);
            if w.data.iter().any(|v| !v.is_finite()) {
                continue; // ZT401 already fired
            }
            total += layer.out_dim;
            for j in 0..layer.out_dim {
                let col_dead = (0..layer.in_dim).all(|r| w.data[r * layer.out_dim + j] <= 0.0);
                if col_dead && b.data[j] <= 0.0 {
                    dead += 1;
                }
            }
        }
        if dead > 0 {
            out.push(
                Diagnostic::warning(
                    "ZT402",
                    format!("{dead} of {total} hidden units have all-nonpositive incoming weights and bias (dead ReLU)"),
                )
                .at(Anchor::Param(name)),
            );
        }
    }

    let default = TargetNorm::default();
    if model.norm.mean == default.mean && model.norm.std == default.std {
        out.push(Diagnostic::info(
            "ZT404",
            "target normalization is the default identity — the model looks unfitted",
        ));
    }

    out
}

/// Ratio bound on fitted-vs-model std for the ZT403 drift lint.
pub const ZT403_STD_RATIO: f32 = 2.0;
/// Mean-shift bound (in label log units) for the ZT403 drift lint.
pub const ZT403_MEAN_SHIFT: f32 = 1.0;

/// Lint a model *against* a dataset: everything [`lint_model`] reports,
/// plus ZT403 when the model's [`TargetNorm`] drifts from the dataset's
/// label statistics (predictions would be denormalized into the wrong
/// decade).
pub fn lint_model_against(model: &ZeroTuneModel, data: &Dataset) -> Vec<Diagnostic> {
    let mut out = lint_model(model);
    if data.is_empty() {
        return out;
    }
    let fitted = TargetNorm::fit(data.labels());
    for (k, name) in [(0usize, "latency"), (1usize, "throughput")] {
        let mean_shift = (model.norm.mean[k] - fitted.mean[k]).abs();
        let ratio = {
            let a = model.norm.std[k].max(1e-6);
            let b = fitted.std[k].max(1e-6);
            (a / b).max(b / a)
        };
        if mean_shift > ZT403_MEAN_SHIFT || ratio > ZT403_STD_RATIO {
            out.push(Diagnostic::warning(
                "ZT403",
                format!(
                    "{name} normalization (mean {:.2}, std {:.2}) drifts from this dataset's label statistics (mean {:.2}, std {:.2})",
                    model.norm.mean[k], model.norm.std[k], fitted.mean[k], fitted.std[k]
                ),
            ));
        }
    }
    out
}

// --- Bounds lints (ZT5xx) ------------------------------------------------

/// Multiplicative slack applied before flagging a prediction against a
/// provable bound (ZT501/ZT502). The simulator labels carry lognormal
/// measurement noise (σ ≈ 0.08–0.11 in log space), so a prediction can
/// legitimately sit a little outside the *noiseless* bracket; 1.5× is
/// ≈ 4σ — anything beyond it contradicts queueing physics, not noise.
pub const BOUNDS_PREDICTION_SLACK: f64 = 1.5;

/// Lint a [`BoundsReport`](crate::bounds::BoundsReport) on its own:
/// interval well-formedness (ZT504) and provable infeasibility of the
/// analyzed deployment (ZT503).
///
/// ZT503 is an `Error` here — deploying a plan whose utilization *lower*
/// bound is ≥ 1 guarantees backpressure collapse. The optimizer's strict
/// cross-check downgrades it to a warning when every candidate is
/// infeasible (the tuner still has to pick the least-bad deployment).
pub fn lint_bounds_report(report: &crate::bounds::BoundsReport) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut bad_interval = |what: String, iv: crate::bounds::Interval, anchor: Option<Anchor>| {
        if !iv.is_wellformed() {
            let mut d = Diagnostic::error(
                "ZT504",
                format!(
                    "{what} interval [{}, {}] is vacuous or inverted",
                    iv.lo, iv.hi
                ),
            );
            if let Some(a) = anchor {
                d = d.at(a);
            }
            out.push(d);
        }
    };
    for (name, iv) in report.headline_intervals() {
        bad_interval(name.to_string(), iv, None);
    }
    for (i, op) in report.per_op.iter().enumerate() {
        let anchor = Anchor::Op(OpId(u32::try_from(i).unwrap_or(u32::MAX)));
        for (name, iv) in [
            ("input_rate", op.input_rate),
            ("output_rate", op.output_rate),
            ("work_us", op.work_us),
            ("utilization", op.utilization),
            ("sojourn_ms", op.sojourn_ms),
            ("residence_ms", op.residence_ms),
        ] {
            bad_interval(format!("per-op {name}"), iv, Some(anchor.clone()));
        }
    }
    if report.infeasible() {
        out.push(Diagnostic::error(
            "ZT503",
            format!(
                "deployed plan is provably infeasible: utilization lower bound {:.3} >= 1 at \
                 offered rate {:.0}/s — guaranteed backpressure collapse",
                report.utilization.lo, report.offered_rate
            ),
        ));
    }
    out
}

/// Cross-check a model prediction against the provable brackets: ZT501
/// when the predicted latency sits below the latency lower bound and
/// ZT502 when the predicted throughput exceeds the throughput upper
/// bound, each beyond [`BOUNDS_PREDICTION_SLACK`].
///
/// Both are warnings: the model is wrong, but the tuner can still rank
/// candidates with it — the findings tell the operator the model is
/// extrapolating outside its trained envelope.
pub fn lint_prediction_bounds(
    report: &crate::bounds::BoundsReport,
    prediction: &crate::estimator::CostPrediction,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if prediction.latency_ms * BOUNDS_PREDICTION_SLACK < report.latency_ms.lo {
        out.push(Diagnostic::warning(
            "ZT501",
            format!(
                "predicted latency {:.3} ms is below the provable lower bound {:.3} ms \
                 (beyond the {BOUNDS_PREDICTION_SLACK}x noise slack) — the model contradicts \
                 queueing physics",
                prediction.latency_ms, report.latency_ms.lo
            ),
        ));
    }
    if prediction.throughput > report.throughput.hi * BOUNDS_PREDICTION_SLACK {
        out.push(Diagnostic::warning(
            "ZT502",
            format!(
                "predicted throughput {:.0}/s exceeds the provable upper bound {:.0}/s \
                 (the offered source rate, beyond the {BOUNDS_PREDICTION_SLACK}x noise slack)",
                prediction.throughput, report.throughput.hi
            ),
        ));
    }
    out
}

// --- Pre-flight bundles --------------------------------------------------

/// Pre-flight for `train`: dataset lints plus model lints (normalization
/// drift is skipped when the trainer is about to refit the norm anyway).
pub fn preflight_train(model: &ZeroTuneModel, data: &Dataset, refit_norm: bool) -> Report {
    let mut diags = lint_dataset(data);
    if refit_norm {
        diags.extend(lint_model(model));
        // ZT404 is expected before a first fit — drop the noise.
        diags.retain(|d| d.code != "ZT404");
    } else {
        diags.extend(lint_model_against(model, data));
    }
    Report::new(diags)
}

/// Pre-flight for `tune`: plan lints plus cluster-capacity sanity on the
/// trivial all-ones deployment (candidate enumeration clamps to the slot
/// count, so only the plan and the cluster itself can be wrong).
pub fn preflight_tune(plan: &LogicalPlan, cluster: &Cluster) -> Report {
    let mut diags = lint_plan(plan);
    if cluster.total_cores() == 0 {
        diags.push(Diagnostic::error("ZT105", "cluster has no task slots"));
    }
    Report::new(diags)
}

/// Pre-flight for one generated sample: the deployed plan against its
/// cluster, the encoding, and the labels it was assigned.
pub fn preflight_sample(pqp: &ParallelQueryPlan, cluster: &Cluster, sample: &Sample) -> Report {
    let mut diags = lint_pqp(pqp, Some(cluster));
    diags.extend(lint_graph(&sample.graph));
    for (label, value) in [
        ("latency", sample.latency_ms),
        ("throughput", sample.throughput),
    ] {
        if !value.is_finite() || value <= 0.0 {
            diags.push(Diagnostic::error(
                "ZT301",
                format!("simulated {label} label {value} must be positive and finite"),
            ));
        }
    }
    Report::new(diags)
}
