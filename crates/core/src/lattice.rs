//! Bounds-guided branch-and-bound over the parallelism lattice.
//!
//! The flat tuner scores a hand-enumerated candidate list. This module
//! searches a *product lattice* instead: each operator gets a sorted set
//! of admissible degrees and every point of the cross product is a
//! candidate. Exhaustive scoring of the lattice is exponential in the
//! operator count, so [`branch_and_bound`] walks it as a DFS tree (one
//! level per operator, children in ascending degree order — lexicographic
//! leaf order overall) and prunes subtrees with two *sound* certificates:
//!
//! 1. **Infeasibility** ([`crate::bounds::WorkFloors::op_util_floor`]) —
//!    assigning degree `d` to operator `i` already forces the skew-free
//!    utilization lower bound of *every* completion to ≥ 1. Those leaves
//!    are provably infeasible, which is exactly the condition
//!    [`prune_mask`] masks them by, so skipping them cannot change the
//!    tuner's verdict.
//! 2. **Incumbent dominance** — once a feasible leaf is known, a subtree
//!    whose best conceivable completion (latency no lower than the static
//!    engine floor, throughput no higher than the offered rate) is still
//!    interval-dominated by the incumbent can only contain candidates
//!    [`prune_mask`] would discard as dominated. For same-plan parallelism
//!    candidates this cut rarely fires — every candidate shares
//!    essentially the same latency floor — and the infeasibility
//!    certificate does the heavy lifting; the incumbent hook matters once
//!    placement/heterogeneous floors widen the per-subtree gap.
//!
//! Every leaf that survives is analyzed exactly
//! ([`crate::bounds::analyze_with`]) and the final keep decision is the
//! very same [`prune_mask`] the flat path runs. Together with the
//! lexicographic visit order this makes the search **outcome-equivalent
//! by construction**: the surviving candidate sequence — and therefore
//! Eq. 1's normalization envelope and the argmin winner — is identical to
//! exhaustively scoring the whole lattice (`tests/optimizer_search.rs`
//! pins this property on fuzzed plans). The one escape hatch: when the
//! search finds *no* feasible leaf, [`prune_mask`] semantics say "keep
//! everything", so the caller must fall back to exhaustive enumeration
//! ([`SearchOutcome::feasible_found`] signals this).

use zt_dspsim::cluster::Cluster;
use zt_query::{LogicalPlan, ParallelQueryPlan, PlanIr};

use crate::bounds::{analyze_with, work_floors, BoundsConfig, BoundsReport, WorkFloors};

/// Per-operator admissible degree sets; the search space is their product.
#[derive(Clone, Debug)]
pub struct ParallelismLattice {
    /// `degrees[i]` — sorted, deduplicated degrees operator `i` may take.
    pub degrees: Vec<Vec<u32>>,
}

impl ParallelismLattice {
    /// Build the lattice from a flat candidate list (the existing
    /// enumerator's output): per operator, the distinct degrees seen
    /// across all candidates, thinned to at most `max_per_op` log-spaced
    /// values (always keeping the smallest and largest).
    pub fn from_candidates(candidates: &[Vec<u32>], max_per_op: usize) -> Self {
        let n = candidates.first().map_or(0, Vec::len);
        let max_per_op = max_per_op.max(2);
        let degrees = (0..n)
            .map(|i| {
                let mut ds: Vec<u32> = candidates.iter().map(|c| c[i]).collect();
                ds.sort_unstable();
                ds.dedup();
                if ds.len() > max_per_op {
                    // log-spaced *index* selection keeps the endpoints and
                    // stays deterministic for any degree distribution.
                    let picked: Vec<u32> = (0..max_per_op)
                        .map(|k| {
                            let t = k as f64 / (max_per_op - 1) as f64;
                            let idx = (((ds.len() - 1) as f64 + 1.0).powf(t) - 1.0).round();
                            ds[(idx as usize).min(ds.len() - 1)]
                        })
                        .collect();
                    let mut picked = picked;
                    picked.sort_unstable();
                    picked.dedup();
                    picked
                } else {
                    ds
                }
            })
            .collect();
        ParallelismLattice { degrees }
    }

    /// Number of operators (tree depth).
    pub fn num_ops(&self) -> usize {
        self.degrees.len()
    }

    /// Total number of lattice points, saturating at `u64::MAX`.
    pub fn size(&self) -> u64 {
        self.degrees
            .iter()
            .map(|d| d.len() as u64)
            .try_fold(1u64, u64::checked_mul)
            .unwrap_or(u64::MAX)
    }

    /// Leaves under one tree node at depth `op_idx` (the subtree a single
    /// degree choice for `op_idx` roots), saturating.
    pub fn leaves_below(&self, op_idx: usize) -> u64 {
        self.degrees[op_idx + 1..]
            .iter()
            .map(|d| d.len() as u64)
            .try_fold(1u64, u64::checked_mul)
            .unwrap_or(u64::MAX)
    }

    /// All lattice points in lexicographic order — the exhaustive baseline
    /// the branch-and-bound search is pinned against. Callers must check
    /// [`ParallelismLattice::size`] first; this allocates the full set.
    pub fn enumerate(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut cur = Vec::with_capacity(self.num_ops());
        self.enumerate_rec(0, &mut cur, &mut out);
        out
    }

    fn enumerate_rec(&self, i: usize, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if i == self.num_ops() {
            out.push(cur.clone());
            return;
        }
        for &d in &self.degrees[i] {
            cur.push(d);
            self.enumerate_rec(i + 1, cur, out);
            cur.pop();
        }
    }
}

/// Counters describing one branch-and-bound run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Interior + leaf tree nodes expanded (degree choices considered).
    pub nodes_visited: u64,
    /// Leaves fully analyzed with the interval machinery.
    pub leaves_analyzed: u64,
    /// Subtrees cut by the per-op infeasibility certificate.
    pub subtrees_pruned: u64,
    /// Subtrees cut by incumbent dominance.
    pub incumbent_cuts: u64,
    /// Lattice points skipped under pruned subtrees (saturating).
    pub leaves_skipped: u64,
}

/// Result of one [`branch_and_bound`] run.
pub struct SearchOutcome {
    /// Analyzed leaves in lexicographic order: the degree vector and its
    /// full interval report.
    pub analyzed: Vec<(Vec<u32>, BoundsReport)>,
    pub stats: SearchStats,
    /// Whether any analyzed leaf is feasible. When `false` the caller
    /// must fall back to exhaustive enumeration: `prune_mask` keeps *all*
    /// candidates of an all-infeasible set, including the ones the
    /// certificates skipped.
    pub feasible_found: bool,
    /// The search stopped early because `visit_budget` leaves were
    /// analyzed; the analyzed set is then incomplete and unusable for an
    /// outcome-equivalent tuning decision.
    pub budget_exhausted: bool,
}

/// Walk the lattice depth-first in lexicographic order, analyze every
/// leaf that no sound certificate rules out, and return the analyzed set.
///
/// `visit_budget` caps the number of *analyzed* leaves (runaway-space
/// protection); exceeding it aborts the search with
/// [`SearchOutcome::budget_exhausted`] set.
pub fn branch_and_bound(
    plan: &LogicalPlan,
    ir: &PlanIr,
    cluster: &Cluster,
    bcfg: &BoundsConfig,
    lattice: &ParallelismLattice,
    visit_budget: usize,
) -> SearchOutcome {
    let _span = zt_telemetry::span("tune.bnb");
    let mut probe = ParallelQueryPlan::new(plan.clone());
    let floors = work_floors(&probe, ir, cluster, bcfg);

    // Optimistic completion bounds shared by every subtree: throughput can
    // never exceed the offered rate, latency never undercuts the external
    // I/O constant (the per-hop engine floors come on top; the constant
    // alone keeps the cut sound and parallelism-independent).
    let offered: f64 = ir
        .sources()
        .iter()
        .map(|&s| match &plan.op(s).kind {
            zt_query::OperatorKind::Source(src) => src.event_rate,
            _ => 0.0,
        })
        .sum();
    let optimistic_latency_lo = bcfg.external_io_ms;

    let mut search = Dfs {
        ir,
        cluster,
        bcfg,
        lattice,
        floors,
        visit_budget,
        offered,
        optimistic_latency_lo,
        probe: &mut probe,
        assignment: Vec::with_capacity(lattice.num_ops()),
        analyzed: Vec::new(),
        stats: SearchStats::default(),
        incumbent: None,
        budget_exhausted: false,
    };
    search.visit(0);

    let stats = search.stats;
    let feasible_found =
        search.incumbent.is_some() || search.analyzed.iter().any(|(_, r)| !r.infeasible());
    let outcome = SearchOutcome {
        analyzed: search.analyzed,
        stats,
        feasible_found,
        budget_exhausted: search.budget_exhausted,
    };
    zt_telemetry::counter_add("tune.bnb.nodes", outcome.stats.nodes_visited);
    zt_telemetry::counter_add("tune.bnb.analyzed", outcome.stats.leaves_analyzed);
    zt_telemetry::counter_add("tune.bnb.subtrees_pruned", outcome.stats.subtrees_pruned);
    zt_telemetry::counter_add("tune.bnb.incumbent_cuts", outcome.stats.incumbent_cuts);
    zt_telemetry::counter_add("tune.bnb.leaves_skipped", outcome.stats.leaves_skipped);
    outcome
}

/// Incumbent: the strongest feasible leaf seen so far, kept as the pair of
/// interval endpoints the dominance test needs.
#[derive(Clone, Copy)]
struct Incumbent {
    latency_hi: f64,
    throughput_lo: f64,
}

struct Dfs<'a> {
    ir: &'a PlanIr,
    cluster: &'a Cluster,
    bcfg: &'a BoundsConfig,
    lattice: &'a ParallelismLattice,
    floors: WorkFloors,
    visit_budget: usize,
    offered: f64,
    optimistic_latency_lo: f64,
    probe: &'a mut ParallelQueryPlan,
    assignment: Vec<u32>,
    analyzed: Vec<(Vec<u32>, BoundsReport)>,
    stats: SearchStats,
    incumbent: Option<Incumbent>,
    budget_exhausted: bool,
}

impl Dfs<'_> {
    fn visit(&mut self, op_idx: usize) {
        if self.budget_exhausted {
            return;
        }
        if op_idx == self.lattice.num_ops() {
            self.analyze_leaf();
            return;
        }
        // Clippy: the index loop is deliberate — `self` is mutably
        // borrowed inside, so we cannot hold an iterator over `lattice`.
        for di in 0..self.lattice.degrees[op_idx].len() {
            let d = self.lattice.degrees[op_idx][di];
            self.stats.nodes_visited += 1;

            // Certificate 1: this degree choice alone proves every
            // completion infeasible — exactly the condition `prune_mask`
            // masks leaves by, so skipping is outcome-neutral. The floor
            // divides by the *effective* degree (instances beyond the
            // key-cardinality cap are idle), matching `analyze_with`.
            let eff = self.probe.plan.ops()[op_idx].kind.effective_parallelism(d);
            if self.floors.op_util_floor(op_idx, eff) >= 1.0 {
                self.stats.subtrees_pruned += 1;
                self.stats.leaves_skipped = self
                    .stats
                    .leaves_skipped
                    .saturating_add(self.lattice.leaves_below(op_idx));
                continue;
            }

            // Certificate 2: the incumbent interval-dominates the best
            // conceivable completion of this subtree.
            if let Some(inc) = self.incumbent {
                if inc.latency_hi < self.optimistic_latency_lo && inc.throughput_lo >= self.offered
                {
                    self.stats.incumbent_cuts += 1;
                    self.stats.leaves_skipped = self
                        .stats
                        .leaves_skipped
                        .saturating_add(self.lattice.leaves_below(op_idx));
                    continue;
                }
            }

            self.assignment.push(d);
            self.visit(op_idx + 1);
            self.assignment.pop();
            if self.budget_exhausted {
                return;
            }
        }
    }

    fn analyze_leaf(&mut self) {
        if self.analyzed.len() >= self.visit_budget {
            self.budget_exhausted = true;
            return;
        }
        self.probe.parallelism.clone_from(&self.assignment);
        self.probe.reset_partitioning();
        let report = analyze_with(self.probe, self.ir, self.cluster, self.bcfg);
        self.stats.leaves_analyzed += 1;
        if !report.infeasible() {
            let cand = Incumbent {
                latency_hi: report.latency_ms.hi,
                throughput_lo: report.throughput.lo,
            };
            let better = self
                .incumbent
                .is_none_or(|inc| cand.latency_hi < inc.latency_hi);
            if better {
                self.incumbent = Some(cand);
            }
        }
        self.analyzed.push((self.assignment.clone(), report));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::prune_mask;
    use zt_dspsim::cluster::ClusterType;
    use zt_query::{QueryGenerator, QueryStructure};

    fn cluster() -> Cluster {
        Cluster::homogeneous(ClusterType::M510, 4, 10.0)
    }

    fn lattice_of(sets: &[&[u32]]) -> ParallelismLattice {
        ParallelismLattice {
            degrees: sets.iter().map(|s| s.to_vec()).collect(),
        }
    }

    #[test]
    fn lattice_from_candidates_dedupes_and_sorts() {
        let cands = vec![vec![4, 1, 2], vec![2, 1, 2], vec![4, 8, 2]];
        let lat = ParallelismLattice::from_candidates(&cands, 8);
        assert_eq!(lat.degrees, vec![vec![2, 4], vec![1, 8], vec![2]]);
        assert_eq!(lat.size(), 4);
        assert_eq!(lat.leaves_below(0), 2);
        assert_eq!(lat.leaves_below(2), 1);
    }

    #[test]
    fn lattice_thinning_keeps_endpoints() {
        let cands: Vec<Vec<u32>> = (1..=32u32).map(|d| vec![d]).collect();
        let lat = ParallelismLattice::from_candidates(&cands, 4);
        assert!(lat.degrees[0].len() <= 4);
        assert_eq!(*lat.degrees[0].first().unwrap(), 1);
        assert_eq!(*lat.degrees[0].last().unwrap(), 32);
    }

    #[test]
    fn enumerate_is_lexicographic() {
        let lat = lattice_of(&[&[1, 2], &[3, 4]]);
        assert_eq!(
            lat.enumerate(),
            vec![vec![1, 3], vec![1, 4], vec![2, 3], vec![2, 4]]
        );
    }

    #[test]
    fn search_analyzes_exactly_the_unpruned_leaves() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        let plan = QueryGenerator::seen().generate(QueryStructure::Linear, &mut rng);
        let ir = plan.validate().unwrap();
        let n = plan.num_ops();
        let lat = lattice_of(&vec![&[1u32, 2, 4][..]; n]);
        let bcfg = BoundsConfig::default();
        let out = branch_and_bound(&plan, &ir, &cluster(), &bcfg, &lat, 10_000);
        assert!(!out.budget_exhausted);
        // analyzed + skipped partitions the lattice
        assert_eq!(
            out.stats.leaves_analyzed + out.stats.leaves_skipped,
            lat.size()
        );
        // analyzed leaves come out in lexicographic order
        let keys: Vec<_> = out.analyzed.iter().map(|(c, _)| c.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn pruned_leaves_are_provably_infeasible() {
        // High-rate plan: low-degree subtrees must be cut, and every cut
        // leaf must be one the exhaustive prune_mask would mask anyway.
        let plan = zt_query::benchmarks::spike_detection(5_000_000.0);
        let ir = plan.validate().unwrap();
        let n = plan.num_ops();
        let lat = lattice_of(&vec![&[1u32, 16][..]; n]);
        let bcfg = BoundsConfig::default();
        let out = branch_and_bound(&plan, &ir, &cluster(), &bcfg, &lat, 10_000);
        assert!(out.stats.subtrees_pruned > 0, "nothing was pruned");
        assert!(out.feasible_found);

        // exhaustive ground truth
        let all = lat.enumerate();
        let mut probe = ParallelQueryPlan::new(plan.clone());
        let reports: Vec<_> = all
            .iter()
            .map(|cand| {
                probe.parallelism.clone_from(cand);
                probe.reset_partitioning();
                analyze_with(&probe, &ir, &cluster(), &bcfg)
            })
            .collect();
        let keep = prune_mask(&reports);
        let analyzed: std::collections::HashSet<_> =
            out.analyzed.iter().map(|(c, _)| c.clone()).collect();
        for (cand, (&k, report)) in all.iter().zip(keep.iter().zip(&reports)) {
            if !analyzed.contains(cand) {
                assert!(
                    report.infeasible(),
                    "skipped leaf {cand:?} is not provably infeasible"
                );
                assert!(!k, "skipped leaf {cand:?} survives the exhaustive mask");
            }
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let plan = QueryGenerator::seen().generate(QueryStructure::Linear, &mut rng);
        let ir = plan.validate().unwrap();
        let n = plan.num_ops();
        let lat = lattice_of(&vec![&[1u32, 2, 4, 8][..]; n]);
        let out = branch_and_bound(&plan, &ir, &cluster(), &BoundsConfig::default(), &lat, 3);
        assert!(out.budget_exhausted);
        assert!(out.analyzed.len() <= 3);
    }
}
