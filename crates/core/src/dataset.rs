//! Labeled training-data generation.
//!
//! Reproduces the paper's data-collection pipeline: for every sample a
//! query plan is generated (structure + Table III parameters), a cluster
//! is sampled from the allowed hardware families, parallelism degrees are
//! enumerated by the configured strategy (OptiSample or random), the
//! deployment is executed on the simulator, and the `(graph encoding,
//! latency, throughput)` triple is recorded together with metadata used by
//! the experiment harness for slicing (structure, parallelism category,
//! unseen-parameter values, …).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use zt_dspsim::analytical::{simulate, SimConfig};
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_dspsim::simcache::SimCache;
use zt_query::{
    OperatorKind, ParallelQueryPlan, ParallelismCategory, ParamRanges, QueryGenerator,
    QueryStructure, WindowPolicy,
};

use crate::features::FeatureMask;
use crate::graph::{encode_with_deployment, GraphEncoding};
use crate::optisample::EnumerationStrategy;

/// Metadata recorded per sample for experiment slicing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SampleMeta {
    pub structure: String,
    pub seen_structure: bool,
    pub category: ParallelismCategory,
    pub avg_parallelism: f64,
    pub cluster_seen: bool,
    pub cluster_homogeneous: bool,
    pub num_workers: usize,
    /// Maximum source event rate of the query.
    pub event_rate: f64,
    /// Tuple width of the first source.
    pub tuple_width: usize,
    /// First count-window length (tuples), if any.
    pub window_length: Option<f64>,
    /// First time-window duration (ms), if any.
    pub window_duration: Option<f64>,
    pub backpressured: bool,
}

/// One labeled training/evaluation example.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sample {
    pub graph: GraphEncoding,
    /// Measured end-to-end latency, ms.
    pub latency_ms: f64,
    /// Measured sustained throughput, tuples/s.
    pub throughput: f64,
    pub meta: SampleMeta,
}

/// A collection of labeled samples.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dataset {
    pub samples: Vec<Sample>,
}

impl Dataset {
    pub fn new(samples: Vec<Sample>) -> Self {
        Dataset { samples }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Deterministic shuffled split into `(train, test, validation)` with
    /// the paper's 80/10/10 default.
    pub fn split(&self, train_frac: f64, test_frac: f64, seed: u64) -> (Dataset, Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let n = idx.len();
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_test = (n as f64 * test_frac).round() as usize;
        let take = |range: &[usize]| {
            Dataset::new(range.iter().map(|&i| self.samples[i].clone()).collect())
        };
        (
            take(&idx[..n_train.min(n)]),
            take(&idx[n_train.min(n)..(n_train + n_test).min(n)]),
            take(&idx[(n_train + n_test).min(n)..]),
        )
    }

    /// Concatenate two datasets.
    pub fn extend(&mut self, other: Dataset) {
        self.samples.extend(other.samples);
    }

    /// Labels as `(latency, throughput)` pairs.
    pub fn labels(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.samples.iter().map(|s| (s.latency_ms, s.throughput))
    }
}

/// Configuration of the data generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    pub structures: Vec<QueryStructure>,
    pub ranges: ParamRanges,
    pub cluster_types: Vec<ClusterType>,
    pub strategy: EnumerationStrategy,
    pub sim: SimConfig,
    pub mask: FeatureMask,
    /// Measurement timeout: deployments whose simulated latency exceeds
    /// this are discarded and resampled, exactly as timed-out runs are
    /// dropped by a real testbed collection pipeline (5 minutes by
    /// default).
    pub max_latency_ms: f64,
    /// Optional memo table for the deterministic simulator core, shared
    /// across all generation workers. Labels are bitwise identical with
    /// and without the cache (noise is drawn outside it); enable it for
    /// repeat-heavy workloads such as factored candidate enumeration.
    pub cache: Option<Arc<SimCache>>,
    /// Run the diagnostics pre-flight on every generated sample (deployed
    /// plan, encoding, labels) and abort on `Error`-severity findings.
    /// Lints draw no randomness, so the dataset stays bitwise identical
    /// either way. Defaults to the `ZT_STRICT` environment variable.
    pub strict: bool,
}

impl GenConfig {
    /// The paper's training setup: seen structures, seen parameter
    /// ranges, seen hardware, OptiSample enumeration.
    pub fn seen() -> Self {
        GenConfig {
            structures: QueryStructure::seen(),
            ranges: ParamRanges::seen(),
            cluster_types: ClusterType::seen(),
            strategy: EnumerationStrategy::opti_sample(),
            sim: SimConfig::default(),
            mask: FeatureMask::all(),
            max_latency_ms: 300_000.0,
            cache: None,
            strict: crate::diagnostics::strict_from_env(),
        }
    }

    /// Unseen structures on the unseen parameter ranges (still on seen
    /// hardware unless overridden).
    pub fn unseen_structures() -> Self {
        GenConfig {
            structures: QueryStructure::unseen_synthetic(),
            ranges: ParamRanges::unseen(),
            ..GenConfig::seen()
        }
    }

    pub fn with_structures(mut self, structures: Vec<QueryStructure>) -> Self {
        self.structures = structures;
        self
    }

    pub fn with_strategy(mut self, strategy: EnumerationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn with_mask(mut self, mask: FeatureMask) -> Self {
        self.mask = mask;
        self
    }

    pub fn with_cluster_types(mut self, types: Vec<ClusterType>) -> Self {
        self.cluster_types = types;
        self
    }

    pub fn with_cache(mut self, cache: Arc<SimCache>) -> Self {
        self.cache = Some(cache);
        self
    }
}

fn meta_of(
    structure: QueryStructure,
    pqp: &ParallelQueryPlan,
    cluster: &Cluster,
    backpressured: bool,
) -> SampleMeta {
    let mut event_rate = 0f64;
    let mut tuple_width = 0usize;
    let mut window_length = None;
    let mut window_duration = None;
    for op in pqp.plan.ops() {
        match &op.kind {
            OperatorKind::Source(s) => {
                if s.event_rate > event_rate {
                    event_rate = s.event_rate;
                }
                if tuple_width == 0 {
                    tuple_width = s.schema.width();
                }
            }
            kind => {
                if let Some(w) = kind.window() {
                    match w.policy {
                        WindowPolicy::Count => {
                            window_length.get_or_insert(w.length);
                        }
                        WindowPolicy::Time => {
                            window_duration.get_or_insert(w.length);
                        }
                    }
                }
            }
        }
    }
    let cluster_seen = cluster.nodes.iter().all(|n| {
        ClusterType::seen()
            .iter()
            .any(|t| t.name() == n.name.as_str())
    });
    SampleMeta {
        structure: structure.name(),
        seen_structure: structure.is_seen(),
        category: pqp.parallelism_category(),
        avg_parallelism: pqp.avg_parallelism(),
        cluster_seen,
        cluster_homogeneous: cluster.is_homogeneous(),
        num_workers: cluster.num_workers(),
        event_rate,
        tuple_width,
        window_length,
        window_duration,
        backpressured,
    }
}

/// Generate one labeled sample. Deployments exceeding the measurement
/// timeout are resampled (a bounded number of times) like timed-out runs
/// on a real testbed.
pub fn generate_sample<R: Rng + ?Sized>(
    cfg: &GenConfig,
    structure: QueryStructure,
    rng: &mut R,
) -> Sample {
    let generator = QueryGenerator::new(cfg.ranges.clone());
    const MAX_RETRIES: usize = 25;
    let mut last = None;
    for _ in 0..MAX_RETRIES {
        let plan = generator.generate(structure, rng);
        let n_workers = cfg.ranges.sample_num_workers(rng);
        let cluster = Cluster::sample(
            &cfg.cluster_types,
            n_workers,
            &cfg.ranges.link_speeds_gbps,
            rng,
        );
        let parallelism = cfg.strategy.assign(&plan, &cluster, rng);
        let pqp = ParallelQueryPlan::with_parallelism(plan, parallelism);
        // The cached path is bitwise-equivalent: the memo covers only the
        // deterministic solver core, and the noise factors are drawn from
        // `rng` either way.
        let metrics = match &cfg.cache {
            Some(cache) => cache.simulate(&pqp, &cluster, &cfg.sim, rng),
            None => simulate(&pqp, &cluster, &cfg.sim, rng),
        };
        let graph = encode_with_deployment(&pqp, &cluster, &metrics.deployment, &cfg.mask);
        let meta = meta_of(structure, &pqp, &cluster, metrics.backpressured());
        let sample = Sample {
            graph,
            latency_ms: metrics.latency_ms,
            throughput: metrics.throughput,
            meta,
        };
        if sample.latency_ms <= cfg.max_latency_ms {
            if cfg.strict {
                crate::diagnostics::preflight_sample(&pqp, &cluster, &sample)
                    .enforce("generate_sample");
            }
            return sample;
        }
        last = Some(sample);
    }
    last.expect("at least one attempt ran")
}

/// Generate `n` samples, cycling over the configured structures.
/// Deterministic for a given `(cfg, n, seed)` — the request is split into
/// fixed-size shards with counter-derived RNGs, so the output is bitwise
/// identical regardless of how many worker threads label the shards (see
/// [`crate::datagen`] for the seeding, resume and worker-count knobs).
pub fn generate_dataset(cfg: &GenConfig, n: usize, seed: u64) -> Dataset {
    crate::datagen::generate_dataset_with(cfg, n, seed, &crate::datagen::GenPlan::from_env())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_cycling_structures() {
        let cfg = GenConfig::seen();
        let d = generate_dataset(&cfg, 12, 1);
        assert_eq!(d.len(), 12);
        let linear = d
            .samples
            .iter()
            .filter(|s| s.meta.structure == "linear")
            .count();
        assert_eq!(linear, 4);
    }

    #[test]
    fn labels_are_positive_and_finite() {
        let d = generate_dataset(&GenConfig::seen(), 30, 2);
        for s in &d.samples {
            assert!(s.latency_ms > 0.0 && s.latency_ms.is_finite());
            assert!(s.throughput > 0.0 && s.throughput.is_finite());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::seen();
        let a = generate_dataset(&cfg, 10, 7);
        let b = generate_dataset(&cfg, 10, 7);
        for (x, y) in a.samples.iter().zip(b.samples.iter()) {
            assert_eq!(x.latency_ms, y.latency_ms);
            assert_eq!(x.throughput, y.throughput);
        }
    }

    #[test]
    fn split_partitions_dataset() {
        let d = generate_dataset(&GenConfig::seen(), 30, 3);
        let (train, test, val) = d.split(0.8, 0.1, 0);
        assert_eq!(train.len() + test.len() + val.len(), 30);
        assert_eq!(train.len(), 24);
        assert_eq!(test.len(), 3);
    }

    #[test]
    fn meta_reflects_configuration() {
        let cfg = GenConfig::seen();
        let d = generate_dataset(&cfg, 9, 4);
        for s in &d.samples {
            assert!(s.meta.seen_structure);
            assert!(s.meta.cluster_seen);
            assert!(s.meta.event_rate > 0.0);
            assert!(s.meta.tuple_width >= 1);
            assert!(zt_query::params::TRAIN_NUM_WORKERS.contains(&s.meta.num_workers));
        }
        let unseen = GenConfig::unseen_structures();
        let d2 = generate_dataset(&unseen, 6, 4);
        assert!(d2.samples.iter().all(|s| !s.meta.seen_structure));
    }

    #[test]
    fn unseen_hardware_flagged() {
        let cfg = GenConfig::seen().with_cluster_types(vec![ClusterType::C6420]);
        let d = generate_dataset(&cfg, 5, 5);
        assert!(d.samples.iter().all(|s| !s.meta.cluster_seen));
    }

    #[test]
    fn optisample_parallelism_tracks_event_rate_but_random_does_not() {
        // OptiSample provisions parallelism proportionally to the input
        // rate (Definitions 7–8); random assignment has no such
        // correlation. Compare the mean parallelism of the high-rate and
        // low-rate halves of each dataset.
        let n = 120;
        let spread = |d: &Dataset| {
            let mut by_rate: Vec<(f64, f64)> = d
                .samples
                .iter()
                .map(|s| (s.meta.event_rate, s.meta.avg_parallelism))
                .collect();
            by_rate.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let half = by_rate.len() / 2;
            let mean = |xs: &[(f64, f64)]| xs.iter().map(|x| x.1).sum::<f64>() / xs.len() as f64;
            mean(&by_rate[half..]) - mean(&by_rate[..half])
        };
        let opti = generate_dataset(
            &GenConfig::seen().with_strategy(EnumerationStrategy::opti_sample()),
            n,
            6,
        );
        let random = generate_dataset(
            &GenConfig::seen().with_strategy(EnumerationStrategy::random()),
            n,
            6,
        );
        let opti_spread = spread(&opti);
        let random_spread = spread(&random);
        assert!(
            opti_spread > 2.0,
            "OptiSample parallelism should grow with rate (spread {opti_spread})"
        );
        assert!(
            opti_spread > random_spread,
            "OptiSample spread {opti_spread} vs random {random_spread}"
        );
    }
}
