//! Prediction attribution by feature-group occlusion.
//!
//! Complements the training-time ablation of Exp. 6 with an
//! *inference-time* tool: for a single prediction, each transferable
//! feature group (parallelism-, operator- and resource-related) is zeroed
//! in turn and the prediction delta is measured. Large deltas identify
//! which feature group drives a particular cost estimate — useful when
//! debugging surprising what-if predictions.

use crate::estimator::CostEstimator;
use crate::features::{OP_COMMON_DIM, RESOURCE_DIM};
use crate::graph::{GraphEncoding, NodeKind};
use crate::model::ZeroTuneModel;

/// The attribution of one prediction to the three feature groups.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// Baseline prediction `(latency_ms, throughput)`.
    pub prediction: (f64, f64),
    /// |log-ratio| of the latency prediction when each group is occluded:
    /// `[parallelism, operator, resource]`.
    pub latency_impact: [f64; 3],
    /// Same for throughput.
    pub throughput_impact: [f64; 3],
}

impl Attribution {
    /// Index of the group with the largest latency impact
    /// (0 = parallelism, 1 = operator, 2 = resource).
    pub fn dominant_latency_group(&self) -> usize {
        self.latency_impact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite impact"))
            .map(|(i, _)| i)
            .expect("three groups")
    }

    pub fn group_name(i: usize) -> &'static str {
        ["parallelism", "operator", "resource"][i]
    }
}

/// Occlude one feature group in a graph copy.
fn occlude(graph: &GraphEncoding, group: usize) -> GraphEncoding {
    let mut g = graph.clone();
    for node in &mut g.nodes {
        match (node.kind, group) {
            // parallelism block: first 5 entries of the operator common
            // block (degree + partitioning one-hot + grouping)
            (k, 0) if k != NodeKind::Resource => {
                for v in node.features.iter_mut().take(5) {
                    *v = 0.0;
                }
            }
            // operator/data block: the rest of the operator vector
            (k, 1) if k != NodeKind::Resource => {
                for v in node.features.iter_mut().skip(5) {
                    *v = 0.0;
                }
            }
            // resource features
            (NodeKind::Resource, 2) => {
                for v in node.features.iter_mut().take(RESOURCE_DIM) {
                    *v = 0.0;
                }
            }
            _ => {}
        }
    }
    let _ = OP_COMMON_DIM;
    g
}

/// Attribute a prediction to the three transferable-feature groups.
pub fn attribute(model: &ZeroTuneModel, graph: &GraphEncoding) -> Attribution {
    let base = model.predict(graph).pair();
    let mut latency_impact = [0f64; 3];
    let mut throughput_impact = [0f64; 3];
    for group in 0..3 {
        let (lat, tpt) = model.predict(&occlude(graph, group)).pair();
        latency_impact[group] = (lat.max(1e-9) / base.0.max(1e-9)).ln().abs();
        throughput_impact[group] = (tpt.max(1e-9) / base.1.max(1e-9)).ln().abs();
    }
    Attribution {
        prediction: base,
        latency_impact,
        throughput_impact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, GenConfig};
    use crate::model::ModelConfig;
    use crate::train::{train, TrainConfig};

    fn trained_model() -> (ZeroTuneModel, crate::dataset::Dataset) {
        let data = generate_dataset(&GenConfig::seen(), 150, 81);
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 20,
            seed: 81,
        });
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 8,
                patience: 0,
                ..TrainConfig::default()
            },
        );
        (model, data)
    }

    #[test]
    fn occlusion_changes_predictions() {
        let (model, data) = trained_model();
        let a = attribute(&model, &data.samples[0].graph);
        assert!(a.prediction.0 > 0.0);
        // at least one group matters for each metric
        assert!(a.latency_impact.iter().any(|&v| v > 1e-4));
        assert!(a.throughput_impact.iter().any(|&v| v > 1e-4));
        let dom = a.dominant_latency_group();
        assert!(dom < 3);
        assert!(!Attribution::group_name(dom).is_empty());
    }

    #[test]
    fn occlusion_preserves_graph_shape() {
        let (_, data) = trained_model();
        let g = &data.samples[0].graph;
        for group in 0..3 {
            let o = occlude(g, group);
            assert_eq!(o.nodes.len(), g.nodes.len());
            for (a, b) in o.nodes.iter().zip(g.nodes.iter()) {
                assert_eq!(a.features.len(), b.features.len());
            }
        }
    }

    #[test]
    fn impacts_are_finite_and_nonnegative() {
        let (model, data) = trained_model();
        for s in data.samples.iter().take(5) {
            let a = attribute(&model, &s.graph);
            for v in a.latency_impact.iter().chain(a.throughput_impact.iter()) {
                assert!(v.is_finite() && *v >= 0.0);
            }
        }
    }
}
