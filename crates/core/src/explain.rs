//! Prediction attribution by feature-group occlusion, and rendering of
//! provable-bounds reports.
//!
//! Complements the training-time ablation of Exp. 6 with two
//! *inference-time* tools: [`attribute`] occludes each transferable
//! feature group (parallelism-, operator- and resource-related) in turn
//! and measures the prediction delta — large deltas identify which group
//! drives a particular cost estimate; [`explain_bounds`] renders a
//! [`BoundsReport`](crate::bounds::BoundsReport) as a per-operator
//! interval table with the model's prediction placed next to the provable
//! brackets — useful when debugging surprising what-if predictions.

use crate::bounds::{BoundsReport, Interval};
use crate::estimator::{CostEstimator, CostPrediction};
use crate::features::{OP_COMMON_DIM, RESOURCE_DIM};
use crate::graph::{GraphEncoding, NodeKind};
use crate::model::ZeroTuneModel;

/// The attribution of one prediction to the three feature groups.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// Baseline prediction `(latency_ms, throughput)`.
    pub prediction: (f64, f64),
    /// |log-ratio| of the latency prediction when each group is occluded:
    /// `[parallelism, operator, resource]`.
    pub latency_impact: [f64; 3],
    /// Same for throughput.
    pub throughput_impact: [f64; 3],
}

impl Attribution {
    /// Index of the group with the largest latency impact
    /// (0 = parallelism, 1 = operator, 2 = resource).
    pub fn dominant_latency_group(&self) -> usize {
        self.latency_impact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite impact"))
            .map(|(i, _)| i)
            .expect("three groups")
    }

    pub fn group_name(i: usize) -> &'static str {
        ["parallelism", "operator", "resource"][i]
    }
}

/// Occlude one feature group in a graph copy.
fn occlude(graph: &GraphEncoding, group: usize) -> GraphEncoding {
    let mut g = graph.clone();
    for node in &mut g.nodes {
        match (node.kind, group) {
            // parallelism block: first 5 entries of the operator common
            // block (degree + partitioning one-hot + grouping)
            (k, 0) if k != NodeKind::Resource => {
                for v in node.features.iter_mut().take(5) {
                    *v = 0.0;
                }
            }
            // operator/data block: the rest of the operator vector
            (k, 1) if k != NodeKind::Resource => {
                for v in node.features.iter_mut().skip(5) {
                    *v = 0.0;
                }
            }
            // resource features
            (NodeKind::Resource, 2) => {
                for v in node.features.iter_mut().take(RESOURCE_DIM) {
                    *v = 0.0;
                }
            }
            _ => {}
        }
    }
    let _ = OP_COMMON_DIM;
    g
}

/// Attribute a prediction to the three transferable-feature groups.
pub fn attribute(model: &ZeroTuneModel, graph: &GraphEncoding) -> Attribution {
    let base = model.predict(graph).pair();
    let mut latency_impact = [0f64; 3];
    let mut throughput_impact = [0f64; 3];
    for group in 0..3 {
        let (lat, tpt) = model.predict(&occlude(graph, group)).pair();
        latency_impact[group] = (lat.max(1e-9) / base.0.max(1e-9)).ln().abs();
        throughput_impact[group] = (tpt.max(1e-9) / base.1.max(1e-9)).ln().abs();
    }
    Attribution {
        prediction: base,
        latency_impact,
        throughput_impact,
    }
}

// --- Bounds rendering ----------------------------------------------------

/// Format one interval compactly, with engineering-style precision.
fn fmt_interval(iv: Interval) -> String {
    let f = |v: f64| -> String {
        if v.is_infinite() {
            "inf".to_string()
        } else if v == 0.0 {
            "0".to_string()
        } else if v.abs() >= 10_000.0 {
            format!("{v:.3e}")
        } else if v.abs() >= 1.0 {
            format!("{v:.2}")
        } else {
            format!("{v:.4}")
        }
    };
    format!("[{}, {}]", f(iv.lo), f(iv.hi))
}

/// Whether a point prediction sits inside the provable bracket, rendered
/// as a marker column.
fn containment_marker(iv: Interval, v: f64) -> &'static str {
    if iv.contains(v) {
        "ok"
    } else if v < iv.lo {
        "BELOW LOWER BOUND"
    } else {
        "ABOVE UPPER BOUND"
    }
}

/// Render a [`BoundsReport`] for `pqp` as a human-readable table: one row
/// per operator (rates, work, utilization, sojourn, residence intervals)
/// followed by the headline brackets, each compared against the model
/// prediction when one is supplied.
pub fn explain_bounds(
    pqp: &zt_query::ParallelQueryPlan,
    report: &BoundsReport,
    prediction: Option<&CostPrediction>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bounds: offered {:.0}/s · target utilization {:.2} · {}",
        report.offered_rate,
        report.utilization_target,
        if report.infeasible() {
            "PROVABLY INFEASIBLE"
        } else if report.definitely_feasible() {
            "provably feasible"
        } else if report.definitely_backpressured() {
            "backpressured (not collapsing)"
        } else {
            "feasibility depends on skew"
        }
    );
    let _ = writeln!(
        out,
        "{:<4} {:<12} {:>3} {:<22} {:<22} {:<18} {:<18} {:<20}",
        "op", "kind", "p", "input/s", "output/s", "util", "work µs", "sojourn ms"
    );
    for (op, b) in pqp.plan.ops().iter().zip(&report.per_op) {
        let _ = writeln!(
            out,
            "{:<4} {:<12} {:>3} {:<22} {:<22} {:<18} {:<18} {:<20}",
            op.id.idx(),
            op.kind.label(),
            pqp.parallelism_of(op.id),
            fmt_interval(b.input_rate),
            fmt_interval(b.output_rate),
            fmt_interval(b.utilization),
            fmt_interval(b.work_us),
            fmt_interval(b.sojourn_ms),
        );
    }
    let _ = writeln!(
        out,
        "headline: utilization {} · backpressure scale {} · pipeline {} ms",
        fmt_interval(report.utilization),
        fmt_interval(report.backpressure_scale),
        fmt_interval(report.pipeline_ms),
    );
    match prediction {
        Some(p) => {
            let _ = writeln!(
                out,
                "latency    ms: bounds {} · predicted {:.3} ({})",
                fmt_interval(report.latency_ms),
                p.latency_ms,
                containment_marker(report.latency_ms, p.latency_ms),
            );
            let _ = writeln!(
                out,
                "throughput /s: bounds {} · predicted {:.0} ({})",
                fmt_interval(report.throughput),
                p.throughput,
                containment_marker(report.throughput, p.throughput),
            );
        }
        None => {
            let _ = writeln!(
                out,
                "latency    ms: bounds {} · throughput /s: bounds {}",
                fmt_interval(report.latency_ms),
                fmt_interval(report.throughput),
            );
        }
    }
    out
}

// --- Dataflow rendering --------------------------------------------------

/// Render a [`DataflowReport`](crate::dataflow::DataflowReport) for a
/// deployment as a per-edge table: the partitioning strategy, the
/// propagated rate/width brackets (and the implied bytes/s), the
/// key-cardinality bound and distribution property, and the key classes
/// the stream carries. Rates are *unthrottled offered* load — compare
/// against [`explain_bounds`]'s throttled arrival rates to see where
/// backpressure bites.
pub fn explain_dataflow(
    pqp: &zt_query::ParallelQueryPlan,
    ir: &zt_query::PlanIr,
    report: &crate::dataflow::DataflowReport,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataflow: {} ops · {} edges · single fixpoint pass over the sealed topo order",
        ir.num_ops(),
        ir.num_edges()
    );
    let _ = writeln!(
        out,
        "{:<4} {:<26} {:<9} {:<22} {:>7} {:<22} {:<8} {:<16} {:<14}",
        "edge", "route", "part", "rate/s", "width B", "bytes/s", "keys", "distribution", "classes"
    );
    for (e, &(u, d)) in pqp.plan.edges().iter().enumerate() {
        let rf = report.rates.edge(e);
        let kf = report.keys.edge(e);
        let bytes = Interval {
            lo: rf.rate.lo * rf.width.lo,
            hi: rf.rate.hi * rf.width.hi,
        };
        let keys = kf
            .cardinality
            .map_or_else(|| "unbounded".to_string(), |k| format!("≤{k:.0}"));
        let part = match pqp.partitioning[e] {
            zt_query::Partitioning::Forward => "forward",
            zt_query::Partitioning::Rebalance => "rebalance",
            zt_query::Partitioning::Hash => "hash",
        };
        let _ = writeln!(
            out,
            "{:<4} {:<26} {:<9} {:<22} {:>7} {:<22} {:<8} {:<16} {:<14}",
            e,
            format!(
                "{u} {} → {d} {}",
                pqp.plan.op(u).kind.label(),
                pqp.plan.op(d).kind.label()
            ),
            part,
            fmt_interval(rf.rate),
            format!("{:.0}", rf.width.hi),
            fmt_interval(bytes),
            keys,
            report.keys.edge(e).dist.to_string(),
            report.classes.edge(e).to_string(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, GenConfig};
    use crate::model::ModelConfig;
    use crate::train::{train, TrainConfig};

    fn trained_model() -> (ZeroTuneModel, crate::dataset::Dataset) {
        let data = generate_dataset(&GenConfig::seen(), 150, 81);
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 20,
            seed: 81,
        });
        train(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 8,
                patience: 0,
                ..TrainConfig::default()
            },
        );
        (model, data)
    }

    #[test]
    fn occlusion_changes_predictions() {
        let (model, data) = trained_model();
        let a = attribute(&model, &data.samples[0].graph);
        assert!(a.prediction.0 > 0.0);
        // at least one group matters for each metric
        assert!(a.latency_impact.iter().any(|&v| v > 1e-4));
        assert!(a.throughput_impact.iter().any(|&v| v > 1e-4));
        let dom = a.dominant_latency_group();
        assert!(dom < 3);
        assert!(!Attribution::group_name(dom).is_empty());
    }

    #[test]
    fn occlusion_preserves_graph_shape() {
        let (_, data) = trained_model();
        let g = &data.samples[0].graph;
        for group in 0..3 {
            let o = occlude(g, group);
            assert_eq!(o.nodes.len(), g.nodes.len());
            for (a, b) in o.nodes.iter().zip(g.nodes.iter()) {
                assert_eq!(a.features.len(), b.features.len());
            }
        }
    }

    #[test]
    fn bounds_table_renders_every_operator_and_the_prediction() {
        use zt_dspsim::cluster::{Cluster, ClusterType};
        let plan = zt_query::benchmarks::spike_detection(10_000.0);
        let pqp = zt_query::ParallelQueryPlan::new(plan);
        let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
        let report =
            crate::bounds::analyze(&pqp, &cluster, &crate::bounds::BoundsConfig::default());
        let no_pred = explain_bounds(&pqp, &report, None);
        assert!(no_pred.contains("bounds:"));
        for op in pqp.plan.ops() {
            assert!(no_pred.contains(op.kind.label()));
        }
        let inside = CostPrediction {
            latency_ms: (report.latency_ms.lo + report.latency_ms.hi).min(1e12) / 2.0,
            throughput: report.throughput.lo,
        };
        assert!(explain_bounds(&pqp, &report, Some(&inside)).contains("(ok)"));
        let below = CostPrediction {
            latency_ms: report.latency_ms.lo / 10.0,
            throughput: report.throughput.hi * 10.0,
        };
        let rendered = explain_bounds(&pqp, &report, Some(&below));
        assert!(rendered.contains("BELOW LOWER BOUND"));
        assert!(rendered.contains("ABOVE UPPER BOUND"));
    }

    #[test]
    fn impacts_are_finite_and_nonnegative() {
        let (model, data) = trained_model();
        for s in data.samples.iter().take(5) {
            let a = attribute(&model, &s.graph);
            for v in a.latency_impact.iter().chain(a.throughput_impact.iter()) {
                assert!(v.is_finite() && *v >= 0.0);
            }
        }
    }
}
