//! # zt-core — the ZeroTune zero-shot cost model
//!
//! This crate implements the paper's contribution on top of the
//! [`zt_query`] algebra, the [`zt_dspsim`] substrate and the [`zt_nn`]
//! autodiff stack:
//!
//! * [`features`] — the *transferable featurization* of Table I: every
//!   logical operator and physical resource is described by features that
//!   keep their semantic meaning across workloads (parallelism degree,
//!   partitioning strategy, grouping number, tuple width/types,
//!   selectivity, event rate, window/aggregation/join/filter parameters,
//!   CPU cores/frequency, memory, link speed), plus the ablation masks of
//!   Exp. 6.
//! * [`graph`] — the *parallel graph representation* (Section III-C2):
//!   one node per distinct operator (parallel instances are aggregated,
//!   design option (2) of the paper) plus one node per worker, with
//!   data-flow, physical and operator-resource-mapping edges.
//! * [`model`] — the zero-shot GNN: per-node-type MLP encoders, three
//!   message-passing phases, and a read-out MLP on the sink predicting
//!   log-latency and log-throughput. Training runs on the autodiff tape;
//!   prediction uses a tapeless forward pass over a scratch-buffer arena.
//! * [`estimator`] — the [`CostEstimator`] trait unifying the GNN and the
//!   flat-vector baselines behind one (batched) prediction interface.
//! * [`optisample`] — the **OptiSample** enumeration strategy
//!   (Algorithm 1, Definitions 3–8) and the random baseline strategy.
//! * [`dataset`] — labeled training-data generation against the
//!   simulator.
//! * [`train`] — the supervised trainer (Adam, mini-batches, gradient
//!   clipping, early stopping) and evaluation helpers.
//! * [`qerror`] — the q-error metric used throughout the evaluation.
//! * [`optimizer`] — the parallelism-tuning optimizer minimizing the
//!   weighted cost objective of Eq. 1.
//! * [`fewshot`] — few-shot fine-tuning for complex unseen structures
//!   (Fig. 6 / Fig. 7d).
//! * [`diagnostics`] — static lints over plans, feature encodings,
//!   datasets and model weights (stable `ZTxxx` codes, rustc-style
//!   reports, strict-mode pre-flight hooks in `train`/`tune`/datagen).
//! * [`certify`] — interval bound propagation over *trained weights*:
//!   certified output brackets per data-flow depth, certified-dead and
//!   saturated ReLU units, per-feature sensitivity bounds, ZT6xx
//!   diagnostics and the serve-side deploy gate's `CertSummary`.
//! * [`bounds`] — interval abstract interpretation over deployed plans:
//!   sound lower/upper brackets on rates, utilization, latency and
//!   throughput derived without running the simulator; powers the
//!   optimizer's pruning pre-pass and the ZT5xx prediction cross-checks.
//! * [`dataflow`] — monotone dataflow analysis over the sealed plan IR
//!   (rate/width brackets, key-cardinality and partitioning-property
//!   flow, schema key-class flow): one fixpoint pass over the cached
//!   topological order, feeding the ZT7xx lints and the optimizer's
//!   key-cardinality lattice capping.
//! * [`telemetry`] — runtime observability (RAII spans, counters,
//!   histograms; `ZT_TELEMETRY=off|summary|trace`; Chrome-trace and
//!   summary-report exporters), instrumented through datagen, training,
//!   inference, tuning and both simulators.

#![deny(unsafe_code)]

pub mod bounds;
pub mod certify;
pub mod dataflow;
pub mod datagen;
pub mod dataset;
pub mod diagnostics;
pub mod estimator;
pub mod explain;
pub mod features;
pub mod fewshot;
pub mod graph;
pub mod lattice;
pub mod model;
pub mod optimizer;
pub mod optisample;
pub mod qerror;
pub mod train;

/// Runtime telemetry: re-export of the low-level [`zt_telemetry`] crate
/// (which sits below `zt_dspsim` in the dependency order so the
/// simulator's hot paths can report into the same registry).
pub mod telemetry {
    pub use zt_telemetry::*;
}

pub use bounds::{
    analyze, analyze_with, prune_mask, work_floors, BoundsConfig, BoundsReport, Interval, OpBounds,
    WorkFloors,
};
pub use certify::{
    certify_model, certify_report, dataflow_depth, explain_certificate, CertSummary, CertifyConfig,
    HeadBracket, ModelCert, ModuleCert,
};
pub use dataflow::{
    analyze_plan as dataflow_plan, analyze_pqp as dataflow_pqp, is_fixpoint, lint_dataflow_plan,
    lint_dataflow_pqp, solve as dataflow_solve, ClassSet, DataflowReport, KeyDist, KeyFact,
    RateFact,
};
pub use datagen::{generate_dataset_report, generate_dataset_with, shard_seed, GenPlan, GenReport};
pub use dataset::{generate_dataset, Dataset, GenConfig, Sample, SampleMeta};
pub use diagnostics::{
    lint_bounds_report, lint_dataset, lint_graph, lint_graph_batch, lint_model, lint_model_against,
    lint_model_structure, lint_plan, lint_pqp, lint_prediction_bounds, lint_split, lint_wire_plan,
    strict_from_env, Anchor, Diagnostic, Report, Severity,
};
pub use estimator::{evaluate_estimator, CostEstimator, CostPrediction};
pub use features::FeatureMask;
pub use graph::{encode, EncodeContext, GraphEncoding, GraphNode, NodeKind};
pub use lattice::{branch_and_bound, ParallelismLattice, SearchOutcome, SearchStats};
pub use model::{ModelConfig, TargetNorm, ZeroTuneModel};
pub use optimizer::{
    dataflow_cap_from_env, prune_from_env, tune, OptimizerConfig, SearchSpace, TuneError,
    TuningOutcome,
};
pub use optisample::{EnumerationStrategy, OptiSampleConfig, RandomConfig};
pub use qerror::{q_error, QErrorStats};
pub use train::{evaluate, train, TrainConfig, TrainReport};
