//! Interval abstract interpretation over parallel query plans: provable
//! cost bounds without executing the simulator.
//!
//! From a [`ParallelQueryPlan`] + [`Cluster`] + parallelism assignment
//! alone, [`analyze`] derives *sound* lower/upper bounds on per-operator
//! arrival rate, service demand, utilization and end-to-end
//! latency/throughput. The abstract domain is the closed interval
//! `[lo, hi] ⊂ [0, ∞]`; the transfer functions mirror the steady-state
//! solver in `zt_dspsim::analytical` — the same rate propagation, the same
//! work profile, the same latency composition — but evaluate each of them
//! over an interval instead of a point.
//!
//! Where does the interval width come from? The solver's only
//! state-dependent decisions are the hash-partitioning **skew** multiplier
//! (the discrete-event engine models a perfectly balanced partitioner, the
//! analytical solver a skewed one) and the **backpressure throttle** the
//! skewed/unskewed utilization implies. The analysis therefore evaluates
//! the shared transfer functions at the envelope's endpoints:
//!
//! 1. The utilization interval at the offered rate is
//!    `[profile(skew off), profile(skew on)]` — the upper endpoint is
//!    *bitwise* the solver's `bottleneck_utilization` because it calls the
//!    very same [`work_profile`] the solver calls.
//! 2. The solver's throttle loop converges after a single adjustment
//!    (utilization is sub-linear in the throttle: every rate scales at
//!    most linearly and window/service terms are monotone), so the
//!    backpressure-scale interval is `[target/u_hi, target/u_lo]` clamped
//!    to 1 — again exact against the solver at the lower endpoint.
//! 3. All per-operator quantities are then evaluated by interval
//!    arithmetic over the rate intervals `[rates(scale_lo), rates(1)]`
//!    (rates are monotone in the throttle, so endpoint evaluation is
//!    sound; service/window terms that are *not* monotone in the throttle
//!    — e.g. a join's opposite-window average — use per-term min/max
//!    envelopes instead).
//!
//! Two latency intervals are reported:
//!
//! * [`BoundsReport::latency_ms`] — Definition 1 semantics (what
//!   `simulate_core` returns and the model predicts): pipeline path plus
//!   external I/O plus the event-time ingest penalty under backpressure.
//! * [`BoundsReport::pipeline_ms`] — the source→sink pipeline alone, with
//!   an engine-safe lower bound (the discrete-event engine pays neither
//!   the solver's M/M/1 inflation nor its fixed exchange overheads, so the
//!   pipeline floor only counts per-hop costs both executors provably
//!   pay). `tests/bounds_soundness.rs` locks both brackets against both
//!   executors.
//!
//! Consumers: `optimizer::tune` prunes provably-infeasible and
//! interval-dominated candidates before scoring ([`prune_mask`]), the
//! ZT5xx diagnostics cross-check model predictions against the brackets,
//! and `explain::explain_bounds` renders the per-operator table.

use serde::{Deserialize, Serialize};
use zt_dspsim::analytical::{
    propagate_with, work_profile_with, Rates, SimConfig, SkewMode, CHAINED_HOP_MS,
    EXCHANGE_OVERHEAD_MS, INFLIGHT_WAIT_CAP_MS, NET_UTIL_CAP, RHO_CAP,
};
use zt_dspsim::cluster::Cluster;
use zt_dspsim::costmodel::CostModel;
use zt_dspsim::placement::{place_with, ChainingMode, Deployment, EdgeExchange};
use zt_query::{OperatorKind, ParallelQueryPlan, Partitioning, PlanIr};

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Endpoint-wise sum (exact for the monotone latency/work terms).
    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

/// Per-hop hand-off latency the discrete-event engine charges on *every*
/// edge (see `engine.rs`: one scheduler hand-off per routed batch), ms.
/// The solver charges at least [`CHAINED_HOP_MS`] ≥ this on chained edges
/// and [`EXCHANGE_OVERHEAD_MS`] ≥ this on exchanges, so it is a valid
/// pipeline floor for both executors.
const ENGINE_ROUTE_BASE_MS: f64 = 1e-3;

/// A closed non-negative interval `[lo, hi]`, `hi = ∞` allowed.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(
            lo <= hi || lo.is_nan() || hi.is_nan(),
            "inverted interval [{lo}, {hi}]"
        );
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// Smallest interval containing both operands.
    pub fn hull(self, other: Interval) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Multiply by a non-negative scalar.
    pub fn scale(self, k: f64) -> Self {
        debug_assert!(k >= 0.0);
        Interval {
            lo: self.lo * k,
            hi: self.hi * k,
        }
    }

    /// Whether `v` lies inside, up to a relative slack of `1e-9` (the
    /// interval endpoints and the solver compute the same expressions in
    /// slightly different association orders).
    pub fn contains(self, v: f64) -> bool {
        let lo = self.lo - self.lo.abs() * 1e-9 - 1e-12;
        let hi = self.hi + self.hi.abs() * 1e-9 + 1e-12;
        v >= lo && v <= hi
    }

    /// A meaningful (non-vacuous, non-inverted) interval: no NaN
    /// endpoints, `0 ≤ lo ≤ hi`. `hi = ∞` is allowed (count windows at
    /// rate 0 never fire).
    pub fn is_wellformed(self) -> bool {
        !self.lo.is_nan() && !self.hi.is_nan() && self.lo >= 0.0 && self.lo <= self.hi
    }

    pub fn width(self) -> f64 {
        self.hi - self.lo
    }
}

/// Sound brackets for one operator's steady-state metrics — the interval
/// counterpart of [`zt_dspsim::OpMetrics`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpBounds {
    /// Total tuples/s arriving at the operator.
    pub input_rate: Interval,
    /// Total tuples/s emitted.
    pub output_rate: Interval,
    /// Per-tuple work of one instance, µs at 1 GHz.
    pub work_us: Interval,
    /// Utilization of the hottest instance (lower endpoint assumes a
    /// perfectly balanced partitioner, upper applies the skew model).
    pub utilization: Interval,
    /// M/M/1 sojourn contribution, ms.
    pub sojourn_ms: Interval,
    /// Window residence, ms (`[0, full emission period]`; the solver
    /// charges half a period, the engine anywhere from 0 to a period).
    pub residence_ms: Interval,
}

/// Configuration of the bounds analysis — the deterministic subset of
/// [`SimConfig`] (noise has no place in a guaranteed bracket).
#[derive(Clone, Debug)]
pub struct BoundsConfig {
    pub cost: CostModel,
    pub chaining: ChainingMode,
    /// Backpressure utilization target, shared with the solver.
    pub utilization_target: f64,
    /// Constant external input+output latency (`L_in + L_out`), ms.
    pub external_io_ms: f64,
    /// Event-time ingestion penalty under backpressure, ms.
    pub backpressure_ingest_ms: f64,
}

impl From<&SimConfig> for BoundsConfig {
    fn from(cfg: &SimConfig) -> Self {
        BoundsConfig {
            cost: cfg.cost.clone(),
            chaining: cfg.chaining,
            utilization_target: cfg.utilization_target,
            external_io_ms: cfg.external_io_ms,
            backpressure_ingest_ms: cfg.backpressure_ingest_ms,
        }
    }
}

impl Default for BoundsConfig {
    fn default() -> Self {
        BoundsConfig::from(&SimConfig::default())
    }
}

/// Sound lower/upper bounds for one deployment, derived statically.
#[must_use]
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoundsReport {
    /// Total offered source rate, tuples/s (a point — it is read off the
    /// plan).
    pub offered_rate: f64,
    /// The utilization target the scale bracket was derived against.
    pub utilization_target: f64,
    /// Bottleneck utilization at the *offered* rate. The upper endpoint
    /// equals the solver's `bottleneck_utilization` exactly.
    pub utilization: Interval,
    /// Source throttle factor ∈ (0, 1]. The lower endpoint equals the
    /// solver's `backpressure_scale` exactly.
    pub backpressure_scale: Interval,
    /// Sustained throughput, tuples/s. Upper bound is the offered rate —
    /// no executor can ingest more than the sources produce.
    pub throughput: Interval,
    /// End-to-end latency, Definition 1 semantics (pipeline + external
    /// I/O + ingest penalty), ms. For multi-sink plans this is the
    /// endpoint-wise maximum over [`BoundsReport::latency_per_sink_ms`].
    pub latency_ms: Interval,
    /// Per-sink Definition-1 latency brackets, one per plan sink in
    /// sink-id order (a one-element vector equal to `[latency_ms]` for
    /// single-sink plans).
    #[serde(default)]
    pub latency_per_sink_ms: Vec<Interval>,
    /// Source→sink pipeline latency alone (engine-comparable), ms.
    pub pipeline_ms: Interval,
    pub per_op: Vec<OpBounds>,
}

impl BoundsReport {
    /// Provably infeasible: even a perfectly balanced partitioner puts the
    /// bottleneck at ≥ 100% at the offered rate — guaranteed backpressure
    /// collapse on any executor sharing the cost model.
    pub fn infeasible(&self) -> bool {
        self.utilization.lo >= 1.0
    }

    /// Provably feasible: even the skewed upper envelope stays below the
    /// backpressure target, so no executor throttles the sources.
    pub fn definitely_feasible(&self) -> bool {
        self.utilization.hi <= self.utilization_target
    }

    /// Backpressure is certain (though not necessarily collapse): even the
    /// balanced lower envelope exceeds the target.
    pub fn definitely_backpressured(&self) -> bool {
        self.utilization.lo > self.utilization_target
    }

    /// Every interval is non-vacuous and non-inverted (the ZT504 check).
    pub fn is_wellformed(&self) -> bool {
        self.offered_rate.is_finite()
            && self.offered_rate >= 0.0
            && self
                .headline_intervals()
                .iter()
                .all(|(_, iv)| iv.is_wellformed())
            && self.latency_per_sink_ms.iter().all(|iv| iv.is_wellformed())
            && self.per_op.iter().all(|op| {
                op.input_rate.is_wellformed()
                    && op.output_rate.is_wellformed()
                    && op.work_us.is_wellformed()
                    && op.utilization.is_wellformed()
                    && op.sojourn_ms.is_wellformed()
                    && op.residence_ms.is_wellformed()
            })
    }

    /// The named headline intervals, for iteration in lints and rendering.
    pub fn headline_intervals(&self) -> [(&'static str, Interval); 5] {
        [
            ("utilization", self.utilization),
            ("backpressure_scale", self.backpressure_scale),
            ("throughput", self.throughput),
            ("latency_ms", self.latency_ms),
            ("pipeline_ms", self.pipeline_ms),
        ]
    }
}

/// Interval work/utilization profile over the rate envelope.
struct IntervalProfile {
    hottest: Vec<Interval>,
    node_util: Vec<Interval>,
    work_us: Vec<Interval>,
    inst_work_per_s: Vec<Interval>,
}

/// Interval counterpart of the solver's `work_profile`, evaluated over the
/// per-operator rate envelope `[rates_lo, rates_hi]`. The lower endpoints
/// assume a perfectly balanced partitioner (skew 1), the upper apply the
/// cost model's hash-skew multiplier — so the result brackets both the
/// analytical solver and the (skew-free) discrete-event engine.
#[allow(clippy::too_many_lines)]
fn interval_profile(
    pqp: &ParallelQueryPlan,
    ir: &PlanIr,
    cluster: &Cluster,
    dep: &Deployment,
    cm: &CostModel,
    rates_lo: &Rates,
    rates_hi: &Rates,
) -> IntervalProfile {
    let plan = &pqp.plan;
    let n = plan.num_ops();
    let in_schemas = ir.input_schemas();
    let out_schemas = ir.output_schemas();
    let mut hottest = vec![Interval::ZERO; n];
    let mut work_us = vec![Interval::ZERO; n];
    let mut inst_work = vec![Interval::ZERO; n];
    let mut node_util = vec![Interval::ZERO; cluster.num_workers()];

    for op in plan.ops() {
        let id = op.id;
        let i = id.idx();
        let p = pqp.effective_parallelism_of(id).max(1) as f64;
        let nodes = dep.instance_nodes(id);
        let skew = if pqp.input_partitioning(id) == Partitioning::Hash {
            cm.hash_skew
        } else {
            1.0
        };
        let in_iv = Interval::new(rates_lo.input[i], rates_hi.input[i]);

        // Opposite-window envelope for joins: the solver's `other_w` is a
        // rate-weighted average of the two per-side window populations, so
        // it lies between the per-side min and max; each side's window is
        // monotone in its (monotone) input rate.
        let other_w = match &plan.op(id).kind {
            OperatorKind::Join(j) => {
                let up = ir.upstream(id);
                let l = up.first().map_or(0, |u| u.idx());
                let r = up.get(1).map_or(0, |u| u.idx());
                let wl_lo = j.window.tuples_per_window(rates_lo.output[l] / p);
                let wr_lo = j.window.tuples_per_window(rates_lo.output[r] / p);
                let wl_hi = j.window.tuples_per_window(rates_hi.output[l] / p);
                let wr_hi = j.window.tuples_per_window(rates_hi.output[r] / p);
                // The solver divides by max(in_l + in_r, 1e-9): at (near-)
                // zero input the average collapses to ~0, not to a window
                // population, so the lower envelope must drop to 0 there.
                let lo = if rates_lo.output[l] + rates_lo.output[r] <= 1e-9 {
                    0.0
                } else {
                    wl_lo.min(wr_lo)
                };
                Interval::new(lo, wl_hi.max(wr_hi))
            }
            _ => Interval::ZERO,
        };

        // Service demand is monotone in the opposite-window population and
        // independent of everything else that varies over the envelope.
        let srv = Interval::new(
            cm.service_us(
                &op.kind,
                &in_schemas[i],
                &out_schemas[i],
                in_iv.lo / p,
                other_w.lo,
            ),
            cm.service_us(
                &op.kind,
                &in_schemas[i],
                &out_schemas[i],
                in_iv.hi / p,
                other_w.hi,
            ),
        );

        // Exchange work: positive linear combination of edge rates, so the
        // interval sum over per-edge rate envelopes is sound. CSR
        // neighbor lists preserve edge-insertion order, so each interval
        // accumulator sums its edge subset in the same order as the old
        // whole-edge-list scan.
        let mut deser = Interval::ZERO;
        let mut ser = Interval::ZERO;
        for (&u, &e) in ir.upstream(id).iter().zip(ir.upstream_edges(id)) {
            let e = e as usize;
            if dep.edge_exchange[e].is_chained() {
                continue;
            }
            let edge_iv = Interval::new(rates_lo.edge[e], rates_hi.edge[e]);
            deser = deser + edge_iv.scale(cm.serialization_us(&out_schemas[u.idx()]));
        }
        for &e in ir.downstream_edges(id) {
            let e = e as usize;
            if dep.edge_exchange[e].is_chained() {
                continue;
            }
            let edge_iv = Interval::new(rates_lo.edge[e], rates_hi.edge[e]);
            let mut s = cm.serialization_us(&out_schemas[i]);
            if pqp.partitioning[e] == Partitioning::Hash {
                s += cm.hash_route_us;
            }
            ser = ser + edge_iv.scale(s);
        }

        // Work per second of one instance at 1 GHz (µs/s). The product
        // `input × srv` pairs like endpoints — both factors are evaluated
        // at the same end of the throttle envelope.
        let iw = Interval::new(
            (in_iv.lo * srv.lo + deser.lo + ser.lo) / p,
            (in_iv.hi * srv.hi + deser.hi + ser.hi) / p,
        );
        inst_work[i] = iw;

        // Mean per-tuple work: the solver computes `iw × p / input` when
        // input > 0 (its input is exactly `rates_lo.input`, so the branch
        // condition is known precisely), else the bare service demand.
        work_us[i] = if in_iv.lo > 0.0 {
            Interval::new(iw.lo * p / in_iv.hi, iw.hi * p / in_iv.lo)
        } else {
            srv
        };

        let mut max_lo = 0.0f64;
        let mut max_hi = 0.0f64;
        for &node in nodes {
            let ghz = cluster.nodes[node].cpu_ghz;
            let u_lo = iw.lo / ghz * 1e-6;
            let u_hi = iw.hi / ghz * 1e-6;
            node_util[node] = node_util[node] + Interval::new(u_lo, u_hi);
            max_lo = max_lo.max(u_lo);
            max_hi = max_hi.max(u_hi);
        }
        hottest[i] = Interval::new(max_lo, max_hi * skew);
    }

    for (n_idx, spec) in cluster.nodes.iter().enumerate() {
        node_util[n_idx] = node_util[n_idx].scale(1.0 / spec.cores.max(1) as f64);
    }

    IntervalProfile {
        hottest,
        node_util,
        work_us,
        inst_work_per_s: inst_work,
    }
}

/// One-step throttle estimate: the scale that puts `bottleneck` at the
/// target if utilization were linear in the throttle. Utilization is in
/// fact *sub*-linear, so this over-estimates the converged scale — which
/// makes it a sound **upper** endpoint (the exact lower endpoint replays
/// the solver's fixed-point loop instead).
fn scale_for(bottleneck: f64, target: f64) -> f64 {
    if bottleneck > target {
        target / bottleneck
    } else {
        1.0
    }
}

/// Statically derive sound metric brackets for one deployment.
///
/// Purely analytical — no simulator execution, no RNG; cost is a handful
/// of `O(ops × edges)` profile evaluations. Seals the plan into a
/// [`PlanIr`]; hot loops that evaluate many candidates over the same
/// logical plan should seal once and call [`analyze_with`].
pub fn analyze(pqp: &ParallelQueryPlan, cluster: &Cluster, cfg: &BoundsConfig) -> BoundsReport {
    let ir = pqp
        .plan
        .validate()
        .expect("analyze() requires a valid plan");
    analyze_with(pqp, &ir, cluster, cfg)
}

/// [`analyze`] over a pre-sealed [`PlanIr`] (no re-validation, zero-alloc
/// topology lookups in the transfer functions).
#[allow(clippy::too_many_lines)]
pub fn analyze_with(
    pqp: &ParallelQueryPlan,
    ir: &PlanIr,
    cluster: &Cluster,
    cfg: &BoundsConfig,
) -> BoundsReport {
    debug_assert!(pqp.validate().is_ok(), "analyze() requires a valid PQP");
    let _span = zt_telemetry::span("bounds.analyze");
    zt_telemetry::counter_add("bounds.analyses", 1);
    let plan = &pqp.plan;
    let dep = place_with(pqp, ir, cluster, cfg.chaining);
    let in_schemas = ir.input_schemas();
    let out_schemas = ir.output_schemas();
    let cm = &cfg.cost;
    let target = cfg.utilization_target;

    let offered: f64 = ir
        .sources()
        .iter()
        .map(|&s| match &plan.op(s).kind {
            OperatorKind::Source(src) => src.event_rate,
            _ => 0.0,
        })
        .sum();

    // --- Utilization envelope at the offered rate --------------------
    // Point evaluations of the *solver's own* transfer functions, with
    // and without the skew model; the skewed value is bitwise the
    // solver's first-iteration bottleneck.
    let rates_hi = propagate_with(pqp, ir, 1.0);
    let bottleneck = |rates: &Rates, skew: SkewMode| -> f64 {
        let prof = work_profile_with(
            pqp,
            ir,
            cluster,
            &dep,
            cm,
            rates,
            in_schemas,
            out_schemas,
            skew,
        );
        let u_inst = prof.hottest_util.iter().copied().fold(0.0f64, f64::max);
        let u_node = prof.node_util.iter().copied().fold(0.0f64, f64::max);
        u_inst.max(u_node)
    };
    let u_hi = bottleneck(&rates_hi, SkewMode::Model);
    let u_lo = bottleneck(&rates_hi, SkewMode::None);
    let utilization = Interval::new(u_lo.min(u_hi), u_hi);

    // --- Backpressure scale envelope ---------------------------------
    // Lower endpoint: replay the solver's throttle fixed point verbatim
    // (same transfer functions, same iteration budget), so the endpoint —
    // and the rates it induces — are bitwise the solver's. A closed-form
    // `target / u_hi` is only *almost* right: utilization is sub-linear
    // in the throttle, so the solver occasionally takes a second
    // micro-adjustment that lands one ULP below the one-shot value.
    let mut scale_lo = 1.0f64;
    let mut rates_lo = propagate_with(pqp, ir, 1.0);
    for _ in 0..6 {
        let u = bottleneck(&rates_lo, SkewMode::Model);
        if u > target {
            scale_lo *= target / u;
            rates_lo = propagate_with(pqp, ir, scale_lo);
        } else {
            break;
        }
    }
    let scale = Interval::new(scale_lo, scale_for(utilization.lo, target));
    let backpressured = scale.lo < 1.0; // exact: mirrors the solver's branch
    let definitely_bp = scale.hi < 1.0;
    let profile = interval_profile(pqp, ir, cluster, &dep, cm, &rates_lo, &rates_hi);

    // --- Network congestion envelope ----------------------------------
    let agg_link_bytes: f64 = cluster
        .nodes
        .iter()
        .map(|n| n.network_gbps * 1e9 / 8.0)
        .sum();
    let remote_bytes = |rates: &Rates| -> f64 {
        plan.edges()
            .iter()
            .enumerate()
            .map(|(e, &(u, _))| {
                let remote_frac = 1.0 - dep.edge_exchange[e].local_fraction();
                rates.edge[e] * out_schemas[u.idx()].bytes() as f64 * remote_frac
            })
            .sum()
    };
    let congestion_at = |rates: &Rates| -> f64 {
        let net_util = (remote_bytes(rates) / agg_link_bytes.max(1.0)).min(NET_UTIL_CAP);
        1.0 / (1.0 - net_util)
    };
    let cong = Interval::new(congestion_at(&rates_lo), congestion_at(&rates_hi));

    // --- Per-operator brackets ----------------------------------------
    let n = plan.num_ops();
    let mut per_op = Vec::with_capacity(n);
    for op in plan.ops() {
        let i = op.id.idx();
        let p = pqp.effective_parallelism_of(op.id).max(1) as f64;
        let util = profile.hottest[i];
        let rho = Interval::new(util.lo.min(RHO_CAP), util.hi.min(RHO_CAP));
        let stretch = dep
            .instance_nodes(op.id)
            .iter()
            .map(|&nd| profile.node_util[nd])
            .fold(Interval::point(1.0), |acc, nu| {
                Interval::new(acc.lo.max(nu.lo), acc.hi.max(nu.hi))
            });
        let ghz = cluster
            .nodes
            .get(dep.instance_nodes(op.id)[0])
            .map_or(1.0, |nsp| nsp.cpu_ghz);
        let work_ms = Interval::new(
            profile.work_us[i].lo * 1e-3 * stretch.lo / ghz,
            profile.work_us[i].hi * 1e-3 * stretch.hi / ghz,
        );
        let in_iv = Interval::new(rates_lo.input[i], rates_hi.input[i]);
        let batch = Interval::new(
            cm.batch_tuples
                .min(in_iv.lo / p * cm.buffer_timeout_ms * 1e-3 + 1.0),
            cm.batch_tuples
                .min(in_iv.hi / p * cm.buffer_timeout_ms * 1e-3 + 1.0),
        );
        let sojourn = Interval::new(
            work_ms.lo * batch.lo / (1.0 - rho.lo),
            work_ms.hi * batch.hi / (1.0 - rho.hi),
        );
        // Residence: the solver charges half an emission period at its
        // (throttled) per-instance rate; the engine anywhere in
        // [0, one period]. The hull of both is [0, full period at the
        // lowest rate] (count-window periods shrink as rates grow).
        let residence = match op.kind.window() {
            Some(w) => Interval::new(0.0, w.emission_period_secs(in_iv.lo / p) * 1e3),
            None => Interval::ZERO,
        };
        per_op.push(OpBounds {
            input_rate: in_iv,
            output_rate: Interval::new(rates_lo.output[i], rates_hi.output[i]),
            work_us: profile.work_us[i],
            utilization: util,
            sojourn_ms: sojourn,
            residence_ms: residence,
        });
    }
    let _ = &profile.inst_work_per_s;

    // --- Edge brackets -------------------------------------------------
    // `edge_sim` mirrors the solver's exchange formula over the rate and
    // congestion envelopes; `edge_floor` is the per-hop cost *both*
    // executors provably pay (scheduler hand-off + base serde).
    let mut edge_sim = vec![Interval::ZERO; plan.edges().len()];
    let mut edge_floor = vec![0f64; plan.edges().len()];
    let max_ghz = cluster
        .nodes
        .iter()
        .map(|nsp| nsp.cpu_ghz)
        .fold(0.1f64, f64::max);
    for (e, &(u, d)) in plan.edges().iter().enumerate() {
        match dep.edge_exchange[e] {
            EdgeExchange::Chained => {
                edge_sim[e] = Interval::point(CHAINED_HOP_MS);
                edge_floor[e] = ENGINE_ROUTE_BASE_MS.min(CHAINED_HOP_MS);
            }
            EdgeExchange::Exchange { local_fraction } => {
                let schema = &out_schemas[u.idx()];
                let ghz = cluster.mean_ghz().max(0.1);
                let serde_ms = 2.0 * cm.serialization_us(schema) / ghz * 1e-3;
                let remote = 1.0 - local_fraction;
                let link = cluster.nodes[0].network_gbps;
                let per_hop = cm.net_hop_ms + cm.wire_ms(schema, link);
                let pu = pqp.effective_parallelism_of(u).max(1) as f64;
                let pd = pqp.effective_parallelism_of(d).max(1) as f64;
                let channels = match pqp.partitioning[e] {
                    Partitioning::Forward => pu,
                    Partitioning::Rebalance | Partitioning::Hash => pu * pd,
                };
                // Buffer fill time falls as the rate rises: the lowest
                // rate yields the largest fill.
                let fill_lo = cm.batch_tuples / (rates_hi.edge[e] / channels).max(1e-9) * 1e3;
                let fill_hi = cm.batch_tuples / (rates_lo.edge[e] / channels).max(1e-9) * 1e3;
                let mut buf_lo = fill_lo.min(cm.buffer_timeout_ms);
                let mut buf_hi = fill_hi.min(cm.buffer_timeout_ms);
                if backpressured {
                    buf_hi += (cm.inflight_buffers * fill_hi).min(INFLIGHT_WAIT_CAP_MS);
                }
                if definitely_bp {
                    buf_lo += (cm.inflight_buffers * fill_lo).min(INFLIGHT_WAIT_CAP_MS);
                }
                edge_sim[e] = Interval::new(
                    serde_ms + remote * per_hop * cong.lo + buf_lo + EXCHANGE_OVERHEAD_MS,
                    serde_ms + remote * per_hop * cong.hi + buf_hi + EXCHANGE_OVERHEAD_MS,
                );
                // Both executors pay the hand-off plus twice the base
                // serialization cost; the engine charges the latter at the
                // sending node's clock, so the cluster's fastest clock
                // floors it.
                edge_floor[e] = ENGINE_ROUTE_BASE_MS + 2.0 * cm.ser_base_us / max_ghz * 1e-3;
            }
        }
    }

    // --- Longest source→sink path over intervals ----------------------
    // Interval DP: the max over incoming alternatives brackets the max
    // over any point choice inside the brackets.
    let mut path = vec![Interval::ZERO; n];
    let mut floor_path = vec![0f64; n];
    for &id in ir.topo_order() {
        let i = id.idx();
        let own = per_op[i].sojourn_ms + per_op[i].residence_ms;
        let mut best = Interval::ZERO;
        let mut best_floor = 0.0f64;
        for (&up, &e) in ir.upstream(id).iter().zip(ir.upstream_edges(id)) {
            let e = e as usize;
            let via = path[up.idx()] + edge_sim[e];
            best = Interval::new(best.lo.max(via.lo), best.hi.max(via.hi));
            best_floor = best_floor.max(floor_path[up.idx()] + edge_floor[e]);
        }
        path[i] = best + own;
        floor_path[i] = best_floor;
    }
    // Headline brackets take the endpoint-wise maximum over the per-sink
    // intervals — exactly the solver's `max` over per-sink point values,
    // and bitwise the old single-sink expressions when there is one sink.
    let pipeline_ms = ir
        .sinks()
        .iter()
        .map(|s| {
            let si = s.idx();
            Interval::new(floor_path[si].min(path[si].hi), path[si].hi)
        })
        .fold(
            Interval::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
            |acc, iv| Interval::new(acc.lo.max(iv.lo), acc.hi.max(iv.hi)),
        );

    // --- Definition 1 assembly -----------------------------------------
    let ingest = Interval::new(
        if definitely_bp {
            cfg.backpressure_ingest_ms * (1.0 / scale.hi - 1.0)
        } else {
            0.0
        },
        if backpressured {
            cfg.backpressure_ingest_ms * (1.0 / scale.lo - 1.0)
        } else {
            0.0
        },
    );
    let latency_per_sink_ms: Vec<Interval> = ir
        .sinks()
        .iter()
        .map(|s| {
            let si = s.idx();
            Interval::new(
                path[si].lo + cfg.external_io_ms + ingest.lo,
                path[si].hi + cfg.external_io_ms + ingest.hi,
            )
        })
        .collect();
    let latency_ms = latency_per_sink_ms.iter().copied().fold(
        Interval::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        |acc, iv| Interval::new(acc.lo.max(iv.lo), acc.hi.max(iv.hi)),
    );
    let throughput = Interval::new(offered * scale.lo, offered);

    BoundsReport {
        offered_rate: offered,
        utilization_target: target,
        utilization,
        backpressure_scale: scale,
        throughput,
        latency_ms,
        latency_per_sink_ms,
        pipeline_ms,
        per_op,
    }
}

/// Parallelism-independent per-operator work floors, the certificates the
/// branch-and-bound tuner ([`crate::lattice`]) prunes subtrees with.
///
/// For every operator the floor is `input_rate × srv_floor` — the
/// unthrottled input rate (rate propagation depends only on the plan and
/// the throttle, never on parallelism) times a service-demand lower bound
/// (`service_us` with an empty opposite window; service demand is monotone
/// in the opposite-window population and independent of the instance
/// rate). Serde/exchange work is dropped entirely (≥ 0). Both floors are
/// therefore sound against [`analyze_with`]'s *skew-free lower* endpoint
/// for **any** parallelism assignment and **any** placement/chaining the
/// deployment pass may choose:
///
/// * [`WorkFloors::op_util_floor`] — assigning degree `d` to op `i` puts
///   the hottest instance at ≥ `floor_i / (d · ghz_max · 1e6)`, so the
///   candidate's `utilization.lo` (a max over all ops and nodes) is at
///   least that, whatever the other ops get.
/// * [`WorkFloors::plan_util_floor`] — the max node utilization is at
///   least the capacity-weighted average `Σ floor_i / Σ (cores · ghz)`,
///   which no parallelism vector can change (total work is conserved).
#[derive(Clone, Debug)]
pub struct WorkFloors {
    /// Per-op `input_rate × srv_floor`, µs of 1 GHz work per second.
    pub per_op: Vec<f64>,
    /// Fastest clock in the cluster, GHz.
    pub max_ghz: f64,
    /// `Σ cores × ghz` over all nodes — aggregate compute capacity.
    pub capacity_ghz_cores: f64,
}

/// Derive the [`WorkFloors`] certificate state for one sealed plan.
/// Parallelism-independent: compute once per `tune` call, reuse across
/// every lattice subtree.
pub fn work_floors(
    pqp: &ParallelQueryPlan,
    ir: &PlanIr,
    cluster: &Cluster,
    cfg: &BoundsConfig,
) -> WorkFloors {
    let plan = &pqp.plan;
    let in_schemas = ir.input_schemas();
    let out_schemas = ir.output_schemas();
    let rates_hi = propagate_with(pqp, ir, 1.0);
    let per_op = plan
        .ops()
        .iter()
        .map(|op| {
            let i = op.id.idx();
            // srv_floor: empty opposite window (joins), rate argument is
            // unused by the cost model — see `CostModel::service_us`.
            let srv_floor =
                cfg.cost
                    .service_us(&op.kind, &in_schemas[i], &out_schemas[i], 0.0, 0.0);
            rates_hi.input[i] * srv_floor
        })
        .collect();
    let max_ghz = cluster
        .nodes
        .iter()
        .map(|n| n.cpu_ghz)
        .fold(0.1f64, f64::max);
    let capacity_ghz_cores = cluster
        .nodes
        .iter()
        .map(|n| n.cores.max(1) as f64 * n.cpu_ghz)
        .sum::<f64>()
        .max(1e-9);
    WorkFloors {
        per_op,
        max_ghz,
        capacity_ghz_cores,
    }
}

impl WorkFloors {
    /// Lower bound on `utilization.lo` of **every** deployment that runs
    /// operator `i` with `degree` instances. `≥ 1.0` certifies the whole
    /// subtree infeasible ([`BoundsReport::infeasible`]).
    pub fn op_util_floor(&self, i: usize, degree: u32) -> f64 {
        self.per_op[i] / (f64::from(degree.max(1)) * self.max_ghz * 1e6)
    }

    /// Lower bound on `utilization.lo` of every deployment of the plan,
    /// for **any** parallelism vector. `≥ 1.0` certifies the entire
    /// lattice infeasible — pruning is then pointless, because
    /// [`prune_mask`] keeps all candidates when all are infeasible.
    pub fn plan_util_floor(&self) -> f64 {
        self.per_op.iter().sum::<f64>() / (self.capacity_ghz_cores * 1e6)
    }
}

/// Which candidates survive the bounds pruning pre-pass (`true` = keep).
///
/// Two sound rules:
///
/// 1. **Infeasibility** — a candidate whose utilization *lower* bound is
///    ≥ 1 collapses under backpressure on any executor; it can never be
///    the deployment anyone wants.
/// 2. **Interval dominance** — candidate `i` is discarded when some kept
///    candidate `j` is provably better on *both* metrics:
///    `j.latency.hi < i.latency.lo` and `j.throughput.lo ≥
///    i.throughput.hi`. Dominance via a strict latency ordering is
///    acyclic and transitive, so the pre-pruning reference set is safe.
///
/// Never prunes everything: when every candidate is infeasible the full
/// set is kept (the optimizer still has to pick the least-bad one), and
/// the kept candidate with the smallest latency upper bound can never be
/// dominated.
pub fn prune_mask(reports: &[BoundsReport]) -> Vec<bool> {
    let n = reports.len();
    let feasible: Vec<bool> = reports.iter().map(|r| !r.infeasible()).collect();
    if !feasible.iter().any(|&k| k) {
        return vec![true; n];
    }
    let mut keep = feasible.clone();
    for i in 0..n {
        if !keep[i] {
            continue;
        }
        let dominated = (0..n).any(|j| {
            j != i
                && feasible[j]
                && reports[j].latency_ms.hi < reports[i].latency_ms.lo
                && reports[j].throughput.lo >= reports[i].throughput.hi
        });
        if dominated {
            keep[i] = false;
        }
    }
    debug_assert!(keep.iter().any(|&k| k), "pruning must keep a candidate");
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use zt_dspsim::cluster::ClusterType;
    use zt_dspsim::simulate_core;
    use zt_query::operators::SinkOp;
    use zt_query::{
        AggFunction, AggregateOp, DataType, FilterFunction, FilterOp, LogicalPlan, OperatorKind,
        SourceOp, TupleSchema, WindowPolicy, WindowSpec,
    };

    fn linear_plan(rate: f64) -> LogicalPlan {
        let mut plan = LogicalPlan::new("linear");
        let s = plan.add(OperatorKind::Source(SourceOp {
            event_rate: rate,
            schema: TupleSchema::uniform(DataType::Double, 3),
            key_cardinality: None,
        }));
        let f = plan.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Double,
            selectivity: 0.5,
        }));
        let a = plan.add(OperatorKind::Aggregate(AggregateOp {
            window: WindowSpec::tumbling(WindowPolicy::Count, 50.0),
            function: AggFunction::Avg,
            agg_class: DataType::Double,
            key_class: Some(DataType::Int),
            selectivity: 0.2,
            key_cardinality: None,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s, f);
        plan.connect(f, a);
        plan.connect(a, k);
        plan
    }

    fn pqp(rate: f64, p: u32) -> ParallelQueryPlan {
        ParallelQueryPlan::with_parallelism(linear_plan(rate), vec![p, p, p, p])
    }

    fn cluster() -> Cluster {
        Cluster::homogeneous(ClusterType::M510, 4, 10.0)
    }

    fn brackets_sim(pqp: &ParallelQueryPlan) {
        let report = analyze(pqp, &cluster(), &BoundsConfig::default());
        let m = simulate_core(pqp, &cluster(), &SimConfig::noiseless());
        assert!(report.is_wellformed(), "{report:?}");
        assert!(
            report.latency_ms.contains(m.latency_ms),
            "latency {} outside {:?}",
            m.latency_ms,
            report.latency_ms
        );
        assert!(
            report.throughput.contains(m.throughput),
            "throughput {} outside {:?}",
            m.throughput,
            report.throughput
        );
        assert!(report.utilization.contains(m.bottleneck_utilization));
        assert!(report.backpressure_scale.contains(m.backpressure_scale));
        for (op, b) in m.per_op.iter().zip(&report.per_op) {
            assert!(b.input_rate.contains(op.input_rate));
            assert!(b.output_rate.contains(op.output_rate));
            assert!(b.work_us.contains(op.work_us));
            assert!(b.utilization.contains(op.utilization));
            assert!(b.sojourn_ms.contains(op.sojourn_ms));
            assert!(b.residence_ms.contains(op.residence_ms));
        }
    }

    #[test]
    fn brackets_the_solver_across_load_levels() {
        for rate in [100.0, 10_000.0, 1_000_000.0, 50_000_000.0] {
            for p in [1u32, 4, 16] {
                brackets_sim(&pqp(rate, p));
            }
        }
    }

    #[test]
    fn exact_endpoints_against_the_solver() {
        // The skewed utilization endpoint and the derived throttle are
        // bitwise the solver's values (shared transfer functions).
        let q = pqp(5_000_000.0, 2);
        let report = analyze(&q, &cluster(), &BoundsConfig::default());
        let m = simulate_core(&q, &cluster(), &SimConfig::noiseless());
        assert_eq!(report.utilization.hi, m.bottleneck_utilization);
        assert_eq!(report.backpressure_scale.lo, m.backpressure_scale);
        assert_eq!(report.throughput.lo, m.throughput);
    }

    #[test]
    fn feasibility_classification() {
        let low = analyze(&pqp(100.0, 2), &cluster(), &BoundsConfig::default());
        assert!(low.definitely_feasible());
        assert!(!low.infeasible());
        let high = analyze(&pqp(50_000_000.0, 1), &cluster(), &BoundsConfig::default());
        assert!(high.infeasible());
        assert!(high.definitely_backpressured());
    }

    #[test]
    fn prune_mask_drops_infeasible_keeps_feasible() {
        let cfg = BoundsConfig::default();
        let reports = vec![
            analyze(&pqp(50_000_000.0, 1), &cluster(), &cfg), // infeasible
            analyze(&pqp(50_000_000.0, 16), &cluster(), &cfg),
            analyze(&pqp(100.0, 2), &cluster(), &cfg),
        ];
        let keep = prune_mask(&reports);
        assert!(!keep[0]);
        assert!(keep[2]);
    }

    #[test]
    fn prune_mask_never_empties_the_set() {
        let cfg = BoundsConfig::default();
        let reports = vec![
            analyze(&pqp(500_000_000.0, 1), &cluster(), &cfg),
            analyze(&pqp(500_000_000.0, 2), &cluster(), &cfg),
        ];
        assert!(reports.iter().all(BoundsReport::infeasible));
        assert_eq!(prune_mask(&reports), vec![true, true]);
    }

    #[test]
    fn single_sink_per_sink_bracket_equals_headline() {
        let q = pqp(10_000.0, 2);
        let report = analyze(&q, &cluster(), &BoundsConfig::default());
        assert_eq!(report.latency_per_sink_ms, vec![report.latency_ms]);
    }

    #[test]
    fn multi_sink_bounds_bracket_the_solver_per_sink() {
        let plan = zt_query::benchmarks::smart_grid_combined(5_000.0);
        let n = plan.num_ops();
        let q = ParallelQueryPlan::with_parallelism(plan, vec![2; n]);
        let report = analyze(&q, &cluster(), &BoundsConfig::default());
        let m = simulate_core(&q, &cluster(), &SimConfig::noiseless());
        assert!(report.is_wellformed(), "{report:?}");
        assert_eq!(report.latency_per_sink_ms.len(), 2);
        assert!(report.latency_ms.contains(m.latency_ms));
        assert!(report.throughput.contains(m.throughput));
        for (iv, &l) in report
            .latency_per_sink_ms
            .iter()
            .zip(&m.latency_per_sink_ms)
        {
            assert!(iv.contains(l), "per-sink latency {l} outside {iv:?}");
        }
    }

    #[test]
    fn analyze_with_matches_sealing_wrapper() {
        let q = pqp(5_000_000.0, 2);
        let ir = q.plan.validate().unwrap();
        let a = analyze(&q, &cluster(), &BoundsConfig::default());
        let b = analyze_with(&q, &ir, &cluster(), &BoundsConfig::default());
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.backpressure_scale, b.backpressure_scale);
        assert_eq!(a.latency_ms, b.latency_ms);
        assert_eq!(a.pipeline_ms, b.pipeline_ms);
    }

    #[test]
    fn work_floors_are_sound_against_analyze() {
        // For every (rate, parallelism vector) combination, the
        // parallelism-independent floors must sit at or below the skew-free
        // utilization lower endpoint the full interval analysis computes.
        let cfg = BoundsConfig::default();
        let cluster = cluster();
        for rate in [100.0, 50_000.0, 2_000_000.0, 50_000_000.0] {
            let plan = linear_plan(rate);
            let ir = plan.validate().unwrap();
            let probe = ParallelQueryPlan::new(plan.clone());
            let floors = work_floors(&probe, &ir, &cluster, &cfg);
            for parallelism in [vec![1, 1, 1, 1], vec![1, 4, 2, 1], vec![16, 16, 16, 16]] {
                let q = ParallelQueryPlan::with_parallelism(plan.clone(), parallelism.clone());
                let report = analyze_with(&q, &ir, &cluster, &cfg);
                for (i, &d) in parallelism.iter().enumerate() {
                    let floor = floors.op_util_floor(i, d);
                    assert!(
                        floor <= report.utilization.lo * (1.0 + 1e-9) + 1e-12,
                        "op {i} degree {d} rate {rate}: floor {floor} > util.lo {}",
                        report.utilization.lo
                    );
                }
                assert!(
                    floors.plan_util_floor() <= report.utilization.lo * (1.0 + 1e-9) + 1e-12,
                    "plan floor {} > util.lo {}",
                    floors.plan_util_floor(),
                    report.utilization.lo
                );
            }
        }
    }

    #[test]
    fn work_floor_certifies_infeasible_low_parallelism() {
        // At an absurd offered rate the floor alone must already prove a
        // degree-1 bottleneck infeasible (that is the signal the
        // branch-and-bound tuner prunes with).
        let cfg = BoundsConfig::default();
        let plan = linear_plan(50_000_000.0);
        let ir = plan.validate().unwrap();
        let probe = ParallelQueryPlan::new(plan.clone());
        let floors = work_floors(&probe, &ir, &cluster(), &cfg);
        // source op (index 0) at degree 1 is hopeless at 50M events/s
        assert!(floors.op_util_floor(0, 1) >= 1.0);
        // and the certificate agrees with the full analysis
        let q = ParallelQueryPlan::with_parallelism(plan.clone(), vec![1, 1, 1, 1]);
        assert!(analyze_with(&q, &ir, &cluster(), &cfg).infeasible());
    }

    #[test]
    fn interval_basics() {
        let a = Interval::new(1.0, 2.0);
        assert!(a.contains(1.0) && a.contains(2.0) && a.contains(1.5));
        assert!(!a.contains(0.5) && !a.contains(2.5));
        assert!(a.is_wellformed());
        assert!(!Interval { lo: 2.0, hi: 1.0 }.is_wellformed());
        assert!(!Interval {
            lo: f64::NAN,
            hi: 1.0
        }
        .is_wellformed());
        assert!(Interval::new(0.0, f64::INFINITY).is_wellformed());
        assert_eq!(a.hull(Interval::point(3.0)), Interval::new(1.0, 3.0));
        assert_eq!(a + a, Interval::new(2.0, 4.0));
        assert_eq!(a.scale(2.0), Interval::new(2.0, 4.0));
        assert_eq!(a.width(), 1.0);
    }
}
