//! Monotone dataflow analysis over the sealed plan IR.
//!
//! A generic forward/backward analysis framework over [`PlanIr`]'s CSR
//! topology, plus three concrete analyses the linter and optimizer
//! consume:
//!
//! 1. **Rate/width propagation** ([`RateAnalysis`]) — per-edge brackets
//!    `[lo, hi]` on the *unthrottled offered* tuple rate and tuple width,
//!    mirroring the analytical model's `propagate_with` transfer exactly
//!    when a deployment is given (point intervals), and hulling over all
//!    parallelism degrees when only a logical plan is known.
//! 2. **Key-cardinality & partitioning-property flow** ([`KeyAnalysis`])
//!    — an upper bound on distinct keys in flight and a flat lattice of
//!    distribution properties (unreached / hash-on-key / arbitrary).
//! 3. **Schema key-class flow** ([`ClassAnalysis`]) — which key classes a
//!    stream can carry, as a bitmask over [`DataType::ALL`].
//!
//! Plans are sealed DAGs, so a **single pass** over the cached Kahn
//! topological order reaches the least fixpoint: every transfer input is
//! final before it is read. [`is_fixpoint`] re-checks that invariant and
//! backs the determinism property tests.
//!
//! The ZT7xx lint family ([`lint_dataflow_plan`] / [`lint_dataflow_pqp`])
//! and the optimizer's ZT704 lattice capping are derived from these fact
//! maps; `explain_dataflow` renders them per edge.

use zt_dspsim::analytical::NET_UTIL_CAP;
use zt_dspsim::cluster::Cluster;
use zt_query::{
    DataType, LogicalPlan, OpId, OperatorKind, ParallelQueryPlan, Partitioning, PlanIr,
    TupleSchema, WindowPolicy, WindowSpec,
};

use crate::bounds::Interval;
use crate::diagnostics::Diagnostic;

// ---------------------------------------------------------------------------
// Framework
// ---------------------------------------------------------------------------

/// Direction facts flow in: `Forward` from sources toward sinks,
/// `Backward` from sinks toward sources.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    Forward,
    Backward,
}

/// A join-semilattice of analysis facts.
///
/// `join` must be commutative, associative and idempotent; `leq` is the
/// induced partial order (`a.leq(b)` iff `a.join(b) == b`). `bottom()` is
/// the identity of `join` and the initial fact everywhere; `top()` is the
/// absorbing "anything is possible" element.
pub trait Domain: Clone + PartialEq + std::fmt::Debug {
    fn bottom() -> Self;
    fn top() -> Self;
    #[must_use]
    fn join(&self, other: &Self) -> Self;
    fn leq(&self, other: &Self) -> bool;
}

/// One dataflow analysis: a domain plus a per-operator transfer function.
pub trait Analysis {
    type Fact: Domain;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    /// Compute the fact an operator produces on its outgoing (forward) or
    /// incoming (backward) edges. `edges` are positions in
    /// `plan.edges()` for the operator's incoming (forward) or outgoing
    /// (backward) edges — parallel to `inputs`, so transfers can consult
    /// per-edge context such as partitioning strategies.
    fn transfer(
        &self,
        plan: &LogicalPlan,
        ir: &PlanIr,
        id: OpId,
        edges: &[u32],
        inputs: &[Self::Fact],
    ) -> Self::Fact;
}

/// Deterministic fact maps of one solved analysis: one fact per operator
/// (its output fact for forward analyses, input fact for backward) and
/// one per edge (the fact flowing across it).
#[derive(Clone, PartialEq, Debug)]
pub struct Facts<D> {
    pub per_op: Vec<D>,
    pub per_edge: Vec<D>,
}

impl<D> Facts<D> {
    pub fn op(&self, id: OpId) -> &D {
        &self.per_op[id.idx()]
    }

    pub fn edge(&self, e: usize) -> &D {
        &self.per_edge[e]
    }
}

/// Solve an analysis to its least fixpoint.
///
/// Because the sealed IR is a DAG and `ir.topo_order()` is cached at seal
/// time, one sweep in topological order (reversed for backward analyses)
/// suffices: every predecessor fact is final before it is consumed. The
/// result is a pure function of `(plan, ir, analysis)` — no iteration
/// order or worklist nondeterminism.
pub fn solve<A: Analysis>(analysis: &A, plan: &LogicalPlan, ir: &PlanIr) -> Facts<A::Fact> {
    let mut per_op = vec![A::Fact::bottom(); ir.num_ops()];
    let mut per_edge = vec![A::Fact::bottom(); ir.num_edges()];
    let forward = analysis.direction() == Direction::Forward;
    let order: Vec<OpId> = if forward {
        ir.topo_order().to_vec()
    } else {
        ir.topo_order().iter().rev().copied().collect()
    };
    let mut inputs: Vec<A::Fact> = Vec::new();
    for id in order {
        let in_edges = if forward {
            ir.upstream_edges(id)
        } else {
            ir.downstream_edges(id)
        };
        inputs.clear();
        inputs.extend(in_edges.iter().map(|&e| per_edge[e as usize].clone()));
        let fact = analysis.transfer(plan, ir, id, in_edges, &inputs);
        let out_edges = if forward {
            ir.downstream_edges(id)
        } else {
            ir.upstream_edges(id)
        };
        for &e in out_edges {
            per_edge[e as usize] = fact.clone();
        }
        per_op[id.idx()] = fact;
    }
    Facts { per_op, per_edge }
}

/// Check that `facts` is a fixpoint of `analysis`: re-running every
/// transfer against the recorded edge facts reproduces the recorded
/// operator facts, and every edge carries its producer's fact. On a DAG
/// this is exactly what [`solve`]'s single pass guarantees; the property
/// tests assert it on generated plans.
pub fn is_fixpoint<A: Analysis>(
    analysis: &A,
    plan: &LogicalPlan,
    ir: &PlanIr,
    facts: &Facts<A::Fact>,
) -> bool {
    if facts.per_op.len() != ir.num_ops() || facts.per_edge.len() != ir.num_edges() {
        return false;
    }
    let forward = analysis.direction() == Direction::Forward;
    ir.topo_order().iter().all(|&id| {
        let in_edges = if forward {
            ir.upstream_edges(id)
        } else {
            ir.downstream_edges(id)
        };
        let inputs: Vec<A::Fact> = in_edges
            .iter()
            .map(|&e| facts.per_edge[e as usize].clone())
            .collect();
        if analysis.transfer(plan, ir, id, in_edges, &inputs) != facts.per_op[id.idx()] {
            return false;
        }
        let out_edges = if forward {
            ir.downstream_edges(id)
        } else {
            ir.upstream_edges(id)
        };
        out_edges
            .iter()
            .all(|&e| facts.per_edge[e as usize] == facts.per_op[id.idx()])
    })
}

// ---------------------------------------------------------------------------
// Rate/width interval analysis
// ---------------------------------------------------------------------------

/// The empty interval: identity of the hull join.
const EMPTY: Interval = Interval {
    lo: f64::INFINITY,
    hi: f64::NEG_INFINITY,
};

fn iv_is_empty(iv: Interval) -> bool {
    iv.lo > iv.hi
}

fn iv_join(a: Interval, b: Interval) -> Interval {
    Interval {
        lo: a.lo.min(b.lo),
        hi: a.hi.max(b.hi),
    }
}

fn iv_leq(a: Interval, b: Interval) -> bool {
    iv_is_empty(a) || (b.lo <= a.lo && a.hi <= b.hi)
}

/// Bracket on a stream's unthrottled offered tuple rate (tuples/s) and
/// tuple width (bytes). Rates deliberately ignore downstream throttling —
/// they bound the load an operator *offers*, which is what the ZT701/702
/// lints and the bounds cross-check reason about.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RateFact {
    pub rate: Interval,
    pub width: Interval,
}

impl Domain for RateFact {
    fn bottom() -> Self {
        RateFact {
            rate: EMPTY,
            width: EMPTY,
        }
    }

    fn top() -> Self {
        let all = Interval {
            lo: 0.0,
            hi: f64::INFINITY,
        };
        RateFact {
            rate: all,
            width: all,
        }
    }

    fn join(&self, other: &Self) -> Self {
        RateFact {
            rate: iv_join(self.rate, other.rate),
            width: iv_join(self.width, other.width),
        }
    }

    fn leq(&self, other: &Self) -> bool {
        iv_leq(self.rate, other.rate) && iv_leq(self.width, other.width)
    }
}

/// Rate/width propagation. With a deployment (`pqp: Some`), parallelism
/// is pinned to each operator's *effective* degree and the transfer
/// reproduces the analytical model's `propagate_with` output exactly
/// (point intervals). Without one, join window contents are bracketed
/// between the degree-1 maximum and the degree-∞ floor (one tuple per
/// time window, `length` tuples per count window).
pub struct RateAnalysis<'a> {
    pub pqp: Option<&'a ParallelQueryPlan>,
}

/// Smallest possible window contents as parallelism grows without bound.
fn window_floor(w: &WindowSpec) -> f64 {
    match w.policy {
        WindowPolicy::Count => w.length,
        WindowPolicy::Time => 1.0,
    }
}

impl Analysis for RateAnalysis<'_> {
    type Fact = RateFact;

    fn transfer(
        &self,
        plan: &LogicalPlan,
        ir: &PlanIr,
        id: OpId,
        _edges: &[u32],
        inputs: &[RateFact],
    ) -> RateFact {
        let sum_in = inputs
            .iter()
            .filter(|f| !iv_is_empty(f.rate))
            .fold(Interval::ZERO, |acc, f| acc + f.rate);
        let rate = match &plan.op(id).kind {
            OperatorKind::Source(s) => Interval::point(s.event_rate),
            OperatorKind::Filter(f) => sum_in.scale(f.selectivity),
            OperatorKind::Aggregate(a) => sum_in.scale(a.selectivity * a.window.overlap_factor()),
            OperatorKind::Join(j) => {
                let l = inputs.first().map_or(Interval::ZERO, |f| f.rate);
                let r = inputs.get(1).map_or(Interval::ZERO, |f| f.rate);
                let (l, r) = (
                    if iv_is_empty(l) { Interval::ZERO } else { l },
                    if iv_is_empty(r) { Interval::ZERO } else { r },
                );
                match self
                    .pqp
                    .map(|p| f64::from(p.effective_parallelism_of(id).max(1)))
                {
                    Some(p) => {
                        // Exactly the analytical model's transfer: each of
                        // the p instances holds a window over its share of
                        // the other side's stream.
                        let lo = j.selectivity
                            * (l.lo * j.window.tuples_per_window(r.lo / p)
                                + r.lo * j.window.tuples_per_window(l.lo / p));
                        let hi = j.selectivity
                            * (l.hi * j.window.tuples_per_window(r.hi / p)
                                + r.hi * j.window.tuples_per_window(l.hi / p));
                        Interval::new(lo, hi)
                    }
                    None => {
                        // Hull over every degree p ≥ 1: window contents
                        // shrink monotonically in p, so the bracket is
                        // [p → ∞ floor, p = 1 maximum].
                        let lo = j.selectivity
                            * (l.lo * window_floor(&j.window) + r.lo * window_floor(&j.window));
                        let hi = j.selectivity
                            * (l.hi * j.window.tuples_per_window(r.hi)
                                + r.hi * j.window.tuples_per_window(l.hi));
                        Interval::new(lo, hi)
                    }
                }
            }
            OperatorKind::Sink(_) => sum_in,
        };
        #[allow(clippy::cast_precision_loss)]
        let width = Interval::point(ir.output_schemas()[id.idx()].bytes() as f64);
        RateFact { rate, width }
    }
}

// ---------------------------------------------------------------------------
// Key cardinality & partitioning-property analysis
// ---------------------------------------------------------------------------

/// Flat lattice of stream distribution properties.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum KeyDist {
    /// No stream observed yet (join identity).
    Unreached,
    /// Hash-distributed on `class` keys across `degree` instances.
    Hashed { class: DataType, degree: u32 },
    /// No distribution property is known (top).
    Arbitrary,
}

impl std::fmt::Display for KeyDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyDist::Unreached => f.write_str("unreached"),
            KeyDist::Hashed { class, degree } => write!(f, "hash({class})×{degree}"),
            KeyDist::Arbitrary => f.write_str("arbitrary"),
        }
    }
}

/// Key facts: an upper bound on distinct keys in flight (`None` =
/// unbounded, the top) and the stream's distribution property.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct KeyFact {
    pub cardinality: Option<f64>,
    pub dist: KeyDist,
}

fn card_join(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        _ => None,
    }
}

impl Domain for KeyFact {
    fn bottom() -> Self {
        KeyFact {
            cardinality: Some(0.0),
            dist: KeyDist::Unreached,
        }
    }

    fn top() -> Self {
        KeyFact {
            cardinality: None,
            dist: KeyDist::Arbitrary,
        }
    }

    fn join(&self, other: &Self) -> Self {
        let dist = match (self.dist, other.dist) {
            (KeyDist::Unreached, d) | (d, KeyDist::Unreached) => d,
            (a, b) if a == b => a,
            _ => KeyDist::Arbitrary,
        };
        KeyFact {
            cardinality: card_join(self.cardinality, other.cardinality),
            dist,
        }
    }

    fn leq(&self, other: &Self) -> bool {
        let card_ok = match (self.cardinality, other.cardinality) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let dist_ok = matches!(self.dist, KeyDist::Unreached)
            || matches!(other.dist, KeyDist::Arbitrary)
            || self.dist == other.dist;
        card_ok && dist_ok
    }
}

/// Key-cardinality and partitioning-property flow. Distribution facts
/// need concrete degrees, so without a deployment every stream is
/// `Arbitrary`; cardinality flow works on plain logical plans too.
pub struct KeyAnalysis<'a> {
    pub pqp: Option<&'a ParallelQueryPlan>,
}

impl Analysis for KeyAnalysis<'_> {
    type Fact = KeyFact;

    fn transfer(
        &self,
        plan: &LogicalPlan,
        _ir: &PlanIr,
        id: OpId,
        edges: &[u32],
        inputs: &[KeyFact],
    ) -> KeyFact {
        let kind = &plan.op(id).kind;
        // What actually arrives at the operator's instances, after the
        // incoming edges' partitioning strategies are applied.
        let arriving = edges
            .iter()
            .zip(inputs)
            .map(|(&e, f)| {
                let dist = match self.pqp {
                    Some(pqp) => match pqp.partitioning[e as usize] {
                        Partitioning::Forward => f.dist,
                        Partitioning::Rebalance => KeyDist::Arbitrary,
                        Partitioning::Hash => match kind.hash_key_class() {
                            Some(class) => KeyDist::Hashed {
                                class,
                                degree: pqp.effective_parallelism_of(id).max(1),
                            },
                            None => KeyDist::Arbitrary,
                        },
                    },
                    None => KeyDist::Arbitrary,
                };
                KeyFact {
                    cardinality: f.cardinality,
                    dist,
                }
            })
            .fold(KeyFact::bottom(), |a, b| a.join(&b));
        let own_dist = |class: Option<DataType>| match (class, self.pqp) {
            (Some(class), Some(pqp)) => KeyDist::Hashed {
                class,
                degree: pqp.effective_parallelism_of(id).max(1),
            },
            _ => KeyDist::Arbitrary,
        };
        match kind {
            OperatorKind::Source(s) => KeyFact {
                cardinality: s.key_cardinality,
                dist: KeyDist::Arbitrary,
            },
            OperatorKind::Filter(_) | OperatorKind::Sink(_) => arriving,
            OperatorKind::Aggregate(a) => KeyFact {
                // A non-keyed aggregate collapses every window to one
                // global result stream.
                cardinality: if a.key_class.is_some() {
                    a.key_cardinality
                } else {
                    Some(1.0)
                },
                dist: own_dist(a.key_class),
            },
            OperatorKind::Join(j) => KeyFact {
                cardinality: j.key_cardinality,
                dist: own_dist(Some(j.key_class)),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Schema key-class analysis
// ---------------------------------------------------------------------------

/// Set of key classes a stream can carry, as a bitmask over
/// [`DataType::ALL`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClassSet(pub u8);

impl ClassSet {
    pub const EMPTY: ClassSet = ClassSet(0);

    pub fn of(class: DataType) -> Self {
        ClassSet(1 << class.one_hot_index())
    }

    pub fn from_schema(schema: &TupleSchema) -> Self {
        schema.fields.iter().fold(ClassSet::EMPTY, |acc, &f| {
            ClassSet(acc.0 | ClassSet::of(f).0)
        })
    }

    pub fn contains(self, class: DataType) -> bool {
        self.0 & ClassSet::of(class).0 != 0
    }
}

impl std::fmt::Display for ClassSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        f.write_str("{")?;
        for class in DataType::ALL {
            if self.contains(class) {
                if !first {
                    f.write_str(",")?;
                }
                write!(f, "{class}")?;
                first = false;
            }
        }
        f.write_str("}")
    }
}

impl Domain for ClassSet {
    fn bottom() -> Self {
        ClassSet::EMPTY
    }

    fn top() -> Self {
        ClassSet(0b111)
    }

    fn join(&self, other: &Self) -> Self {
        ClassSet(self.0 | other.0)
    }

    fn leq(&self, other: &Self) -> bool {
        self.0 & !other.0 == 0
    }
}

/// Schema key-class flow: schema-defining operators (sources, aggregates,
/// joins) emit exactly their sealed output schema's classes; filters and
/// sinks pass the union of their inputs through.
pub struct ClassAnalysis;

impl Analysis for ClassAnalysis {
    type Fact = ClassSet;

    fn transfer(
        &self,
        plan: &LogicalPlan,
        ir: &PlanIr,
        id: OpId,
        _edges: &[u32],
        inputs: &[ClassSet],
    ) -> ClassSet {
        match &plan.op(id).kind {
            OperatorKind::Source(_) | OperatorKind::Aggregate(_) | OperatorKind::Join(_) => {
                ClassSet::from_schema(&ir.output_schemas()[id.idx()])
            }
            OperatorKind::Filter(_) | OperatorKind::Sink(_) => {
                inputs.iter().fold(ClassSet::EMPTY, |acc, &s| acc.join(&s))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Combined report + lints
// ---------------------------------------------------------------------------

/// The three solved fact maps for one plan.
pub struct DataflowReport {
    pub rates: Facts<RateFact>,
    pub keys: Facts<KeyFact>,
    pub classes: Facts<ClassSet>,
}

/// Solve all three analyses on a logical plan (no deployment: rate
/// brackets hull over parallelism, distributions are `Arbitrary`).
pub fn analyze_plan(plan: &LogicalPlan, ir: &PlanIr) -> DataflowReport {
    DataflowReport {
        rates: solve(&RateAnalysis { pqp: None }, plan, ir),
        keys: solve(&KeyAnalysis { pqp: None }, plan, ir),
        classes: solve(&ClassAnalysis, plan, ir),
    }
}

/// Solve all three analyses on a deployed plan (point rate intervals,
/// concrete distribution degrees).
pub fn analyze_pqp(pqp: &ParallelQueryPlan, ir: &PlanIr) -> DataflowReport {
    DataflowReport {
        rates: solve(&RateAnalysis { pqp: Some(pqp) }, &pqp.plan, ir),
        keys: solve(&KeyAnalysis { pqp: Some(pqp) }, &pqp.plan, ir),
        classes: solve(&ClassAnalysis, &pqp.plan, ir),
    }
}

/// Deployment-independent dataflow lints (ZT701, ZT705) for a sealed
/// logical plan.
pub fn lint_dataflow_plan(plan: &LogicalPlan, ir: &PlanIr) -> Vec<Diagnostic> {
    let df = analyze_plan(plan, ir);
    let mut out = Vec::new();
    for (e, &(u, d)) in plan.edges().iter().enumerate() {
        let rate = df.rates.edge(e).rate;
        if !iv_is_empty(rate) && rate.hi <= 0.0 {
            out.push(
                Diagnostic::warning(
                    "ZT701",
                    format!(
                        "edge {u} \u{2192} {d} is statically dead: the propagated rate bracket \
                         is [0, 0], so no tuple can ever flow across it"
                    ),
                )
                .at_op(d),
            );
        }
    }
    for op in plan.ops() {
        let Some(class) = op.kind.hash_key_class() else {
            continue;
        };
        for (&e, &u) in ir.upstream_edges(op.id).iter().zip(ir.upstream(op.id)) {
            let classes = df.classes.edge(e as usize);
            if !classes.contains(class) {
                out.push(
                    Diagnostic::warning(
                        "ZT705",
                        format!(
                            "{} {} keys on {class} but its input stream from {u} only carries \
                             {classes} fields: every tuple would hash on a missing key class",
                            op.kind.label(),
                            op.id
                        ),
                    )
                    .at_op(op.id),
                );
            }
        }
    }
    out
}

/// Deployment-specific dataflow lints (ZT702 with a cluster, ZT703,
/// ZT704) for a validated parallel query plan. Deliberately disjoint from
/// [`lint_dataflow_plan`] so callers running both never duplicate codes.
pub fn lint_dataflow_pqp(
    pqp: &ParallelQueryPlan,
    ir: &PlanIr,
    cluster: Option<&Cluster>,
) -> Vec<Diagnostic> {
    let df = analyze_pqp(pqp, ir);
    let mut out = Vec::new();

    if let Some(cluster) = cluster {
        let agg_link_bytes: f64 = cluster
            .nodes
            .iter()
            .map(|n| n.network_gbps * 1e9 / 8.0)
            .sum();
        let usable = agg_link_bytes * NET_UTIL_CAP;
        for (e, &(u, d)) in pqp.plan.edges().iter().enumerate() {
            if pqp.partitioning[e] == Partitioning::Forward {
                continue; // local handoff, never crosses the network
            }
            let fact = df.rates.edge(e);
            if iv_is_empty(fact.rate) {
                continue;
            }
            let floor_bytes = fact.rate.lo * fact.width.lo;
            if floor_bytes > usable {
                out.push(
                    Diagnostic::warning(
                        "ZT702",
                        format!(
                            "edge {u} \u{2192} {d} must move at least {:.2} GB/s but the \
                             cluster's usable aggregate network bandwidth is {:.2} GB/s \
                             ({NET_UTIL_CAP} \u{00d7} raw): provably network-throttled at \
                             every parallelism",
                            floor_bytes / 1e9,
                            usable / 1e9
                        ),
                    )
                    .at_op(d),
                );
            }
        }
    }

    for (e, &(u, d)) in pqp.plan.edges().iter().enumerate() {
        if pqp.partitioning[e] != Partitioning::Hash {
            continue;
        }
        let kind = &pqp.plan.op(d).kind;
        let Some(class) = kind.hash_key_class() else {
            continue;
        };
        let degree = pqp.effective_parallelism_of(d).max(1);
        if degree == 1 {
            continue; // degenerate hash into one instance is ZT106's domain
        }
        let upstream = df.keys.edge(e).dist;
        if upstream == (KeyDist::Hashed { class, degree }) {
            out.push(
                Diagnostic::warning(
                    "ZT703",
                    format!(
                        "hash re-partition {u} \u{2192} {d} is redundant: the stream is \
                         already hash-distributed on {class} keys across {degree} instances"
                    ),
                )
                .at_op(d),
            );
        }
    }

    for (i, op) in pqp.plan.ops().iter().enumerate() {
        let Some(cap) = op.kind.parallelism_cap() else {
            continue;
        };
        let raw = pqp.parallelism[i];
        if raw > cap {
            let k = op.kind.key_cardinality().unwrap_or(f64::from(cap));
            out.push(
                Diagnostic::warning(
                    "ZT704",
                    format!(
                        "parallelism {raw} exceeds the upstream key cardinality {k:.0}: a \
                         hash partitioner reaches at most {cap} instances, so {} are \
                         provably idle (effective parallelism {cap})",
                        raw - cap
                    ),
                )
                .at_op(op.id),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zt_query::benchmarks;

    fn spike() -> (ParallelQueryPlan, PlanIr) {
        let plan = benchmarks::spike_detection(10_000.0);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![2; n]);
        let ir = pqp.plan.validate().expect("benchmark plan seals");
        (pqp, ir)
    }

    #[test]
    fn forward_rate_facts_are_a_fixpoint() {
        let (pqp, ir) = spike();
        let a = RateAnalysis { pqp: Some(&pqp) };
        let facts = solve(&a, &pqp.plan, &ir);
        assert!(is_fixpoint(&a, &pqp.plan, &ir, &facts));
        // Sources emit point intervals at their event rate.
        for op in pqp.plan.ops() {
            if let OperatorKind::Source(s) = &op.kind {
                let f = facts.op(op.id);
                assert_eq!(f.rate.lo, s.event_rate);
                assert_eq!(f.rate.hi, s.event_rate);
            }
        }
    }

    #[test]
    fn plan_level_brackets_contain_deployed_points() {
        let (pqp, ir) = spike();
        let hull = solve(&RateAnalysis { pqp: None }, &pqp.plan, &ir);
        let point = solve(&RateAnalysis { pqp: Some(&pqp) }, &pqp.plan, &ir);
        for (h, p) in hull.per_op.iter().zip(&point.per_op) {
            assert!(p.leq(h), "point {p:?} escapes hull {h:?}");
        }
    }

    #[test]
    fn backward_analysis_runs_in_reverse_topo_order() {
        /// Sink-distance: length of the longest path to any sink.
        struct SinkDistance;
        #[derive(Clone, Copy, PartialEq, Debug)]
        struct Dist(u32);
        impl Domain for Dist {
            fn bottom() -> Self {
                Dist(0)
            }
            fn top() -> Self {
                Dist(u32::MAX)
            }
            fn join(&self, other: &Self) -> Self {
                Dist(self.0.max(other.0))
            }
            fn leq(&self, other: &Self) -> bool {
                self.0 <= other.0
            }
        }
        impl Analysis for SinkDistance {
            type Fact = Dist;
            fn direction(&self) -> Direction {
                Direction::Backward
            }
            fn transfer(
                &self,
                _plan: &LogicalPlan,
                _ir: &PlanIr,
                _id: OpId,
                _edges: &[u32],
                inputs: &[Dist],
            ) -> Dist {
                inputs.iter().fold(Dist(0), |a, b| Dist(a.0.max(b.0 + 1)))
            }
        }
        let (pqp, ir) = spike();
        let facts = solve(&SinkDistance, &pqp.plan, &ir);
        assert!(is_fixpoint(&SinkDistance, &pqp.plan, &ir, &facts));
        // The sink itself is at distance 0; sources are the farthest away.
        assert_eq!(facts.op(ir.sink()).0, 0);
        let max = facts.per_op.iter().map(|d| d.0).max().unwrap_or(0);
        for &s in ir.sources() {
            assert_eq!(facts.op(s).0, max, "chain source must be farthest");
        }
    }

    #[test]
    fn class_flow_matches_sealed_schemas() {
        let (pqp, ir) = spike();
        let facts = solve(&ClassAnalysis, &pqp.plan, &ir);
        for op in pqp.plan.ops() {
            let expect = ClassSet::from_schema(&ir.output_schemas()[op.id.idx()]);
            assert_eq!(*facts.op(op.id), expect);
        }
    }

    #[test]
    fn benchmark_deployments_are_dataflow_clean() {
        for plan in [
            benchmarks::spike_detection(10_000.0),
            benchmarks::smart_grid_global(10_000.0),
            benchmarks::smart_grid_combined(10_000.0),
        ] {
            let n = plan.num_ops();
            let pqp = ParallelQueryPlan::with_parallelism(plan, vec![2; n]);
            let ir = pqp.plan.validate().expect("benchmark plan seals");
            assert!(lint_dataflow_plan(&pqp.plan, &ir).is_empty());
            assert!(lint_dataflow_pqp(&pqp, &ir, None).is_empty());
        }
    }
}
