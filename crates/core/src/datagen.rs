//! Parallel, sharded, resumable training-data generation.
//!
//! The paper's data-collection loop (Sec. IV) labels thousands of PQPs on
//! the simulator; this module is the producer side of the whole training
//! stack: **enumeration → sharding → labeling → merge**.
//!
//! ## Determinism contract
//!
//! A request for `n` samples is split into fixed-size shards of
//! [`GenPlan::shard_size`] consecutive samples. Shard `t` owns a
//! counter-derived RNG seeded with
//!
//! ```text
//! shard_seed(base, t) = base ^ (0x9E3779B97F4A7C15 · (t + 1))
//! ```
//!
//! (a splitmix-style golden-ratio multiply, so nearby shard indices get
//! decorrelated streams). Shard boundaries depend only on `(n,
//! shard_size)` — never on the worker count or the machine — so the merged
//! dataset is **bitwise identical at 1, 2 or 8 workers**. Workers pull
//! whole shards from a queue; results are merged in shard order.
//!
//! ## Resume
//!
//! With [`GenPlan::shard_dir`] set, every finished shard is serialized to
//! `<dir>/shard-<fingerprint>-<index>.json` (written to a temp file, then
//! renamed). A later run with the same `(config, n, seed, shard_size)`
//! loads completed shards instead of regenerating them; shard files whose
//! fingerprint, seed, index or sample count disagree are ignored and
//! regenerated. Since JSON floats round-trip exactly (shortest
//! representation) the resumed dataset is byte-for-byte the dataset a
//! fresh run would produce.
//!
//! ## Environment knobs
//!
//! * `ZT_DATAGEN_WORKERS` — worker-thread count (default: available
//!   parallelism, clamped to 8);
//! * `ZT_DATAGEN_SHARD_SIZE` — samples per shard (default 256);
//! * `ZT_DATAGEN_RESUME` — shard directory enabling resumable generation.
//!
//! The experiment binaries map `--workers N` / `--resume[=DIR]` onto these
//! variables, so nested generation calls inside an experiment inherit
//! them.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::{generate_sample, Dataset, GenConfig, Sample};

/// Default shard size. Fixture note: requests of at most one shard
/// (n ≤ 256) reproduce the pre-sharding single-chunk RNG stream, so the
/// workspace's seed-sensitive test fixtures stay valid.
pub const DEFAULT_SHARD_SIZE: usize = 256;

/// Execution plan for [`generate_dataset_with`]: how many workers label
/// shards, how big a shard is, and where (if anywhere) shards persist.
///
/// None of these fields affect the generated samples — only wall-clock
/// and resumability. That is the module's core contract.
#[derive(Clone, Debug)]
pub struct GenPlan {
    /// Worker threads labeling shards concurrently (≥ 1).
    pub workers: usize,
    /// Samples per shard (≥ 1). Part of the determinism fingerprint:
    /// changing it changes shard seeding and therefore the dataset.
    pub shard_size: usize,
    /// Directory for shard files; `None` disables persistence/resume.
    pub shard_dir: Option<PathBuf>,
}

impl Default for GenPlan {
    fn default() -> Self {
        GenPlan::from_env()
    }
}

impl GenPlan {
    /// Single worker, default shard size, no persistence.
    pub fn serial() -> Self {
        GenPlan {
            workers: 1,
            shard_size: DEFAULT_SHARD_SIZE,
            shard_dir: None,
        }
    }

    /// Plan configured from `ZT_DATAGEN_WORKERS`, `ZT_DATAGEN_SHARD_SIZE`
    /// and `ZT_DATAGEN_RESUME` (see module docs), with hardware defaults
    /// for anything unset.
    pub fn from_env() -> Self {
        let workers = std::env::var("ZT_DATAGEN_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map_or(1, std::num::NonZero::get)
                    .clamp(1, 8)
            });
        let shard_size = std::env::var("ZT_DATAGEN_SHARD_SIZE")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&s| s >= 1)
            .unwrap_or(DEFAULT_SHARD_SIZE);
        let shard_dir = std::env::var("ZT_DATAGEN_RESUME")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(PathBuf::from);
        GenPlan {
            workers,
            shard_size,
            shard_dir,
        }
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size.max(1);
        self
    }

    pub fn with_shard_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.shard_dir = Some(dir.into());
        self
    }
}

/// What a generation run actually did (for logs, benches and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GenReport {
    /// Total shards the request was split into.
    pub shards: usize,
    /// Shards loaded from `shard_dir` instead of being regenerated.
    pub shards_resumed: usize,
    /// Shards labeled in this run.
    pub shards_generated: usize,
    /// Worker threads actually spawned.
    pub workers_used: usize,
}

/// Counter-derived per-shard seed (see module docs). Shard index — not
/// thread id — keys the stream, so any worker can own any shard.
pub fn shard_seed(base_seed: u64, shard_index: usize) -> u64 {
    base_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard_index as u64 + 1)
}

/// FNV-1a over everything that determines the dataset's content. Shard
/// files carry this fingerprint so a resume never mixes shards from a
/// different configuration, sample count, seed or shard layout.
pub fn config_fingerprint(cfg: &GenConfig, n: usize, seed: u64, shard_size: usize) -> u64 {
    let descr = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}",
        cfg.structures,
        cfg.ranges,
        cfg.cluster_types,
        cfg.strategy,
        cfg.sim,
        cfg.mask,
        cfg.max_latency_ms,
        n,
        seed,
        shard_size,
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in descr.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// On-disk shard format. The header makes every file self-validating.
/// The 64-bit fields are stored as hex strings: JSON numbers round-trip
/// through f64, which silently truncates integers above 2^53.
#[derive(Serialize, Deserialize)]
struct ShardFile {
    fingerprint: String,
    base_seed: String,
    shard_index: usize,
    samples: Vec<Sample>,
}

fn shard_path(dir: &Path, fingerprint: u64, index: usize) -> PathBuf {
    dir.join(format!("shard-{fingerprint:016x}-{index:05}.json"))
}

/// Load one shard file if it exists and its header matches.
fn load_shard(
    dir: &Path,
    fingerprint: u64,
    base_seed: u64,
    index: usize,
    expected_count: usize,
) -> Option<Vec<Sample>> {
    let text = std::fs::read_to_string(shard_path(dir, fingerprint, index)).ok()?;
    let file: ShardFile = serde_json::from_str(&text).ok()?;
    (file.fingerprint == format!("{fingerprint:016x}")
        && file.base_seed == format!("{base_seed:016x}")
        && file.shard_index == index
        && file.samples.len() == expected_count)
        .then_some(file.samples)
}

/// Persist one shard (temp file + rename, so a crash never leaves a
/// half-written shard that a resume would trust).
fn store_shard(dir: &Path, fingerprint: u64, base_seed: u64, index: usize, samples: &[Sample]) {
    let file = ShardFile {
        fingerprint: format!("{fingerprint:016x}"),
        base_seed: format!("{base_seed:016x}"),
        shard_index: index,
        samples: samples.to_vec(),
    };
    let Ok(json) = serde_json::to_string(&file) else {
        return;
    };
    let final_path = shard_path(dir, fingerprint, index);
    let tmp_path = final_path.with_extension("json.tmp");
    if std::fs::write(&tmp_path, json).is_ok() {
        let _ = std::fs::rename(&tmp_path, &final_path);
    }
}

/// Label the samples of shard `index`: consecutive global sample indices
/// `[index·shard_size, …)`, structures cycling by global index, RNG
/// derived from the shard counter.
fn generate_shard(
    cfg: &GenConfig,
    n: usize,
    base_seed: u64,
    shard_size: usize,
    index: usize,
) -> Vec<Sample> {
    let start = index * shard_size;
    let count = shard_size.min(n - start);
    let mut rng = StdRng::seed_from_u64(shard_seed(base_seed, index));
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let structure = cfg.structures[(start + i) % cfg.structures.len()];
        out.push(generate_sample(cfg, structure, &mut rng));
    }
    out
}

/// Generate `n` samples under an explicit execution plan. See the module
/// docs for the determinism and resume contracts.
pub fn generate_dataset_with(cfg: &GenConfig, n: usize, seed: u64, plan: &GenPlan) -> Dataset {
    generate_dataset_report(cfg, n, seed, plan).0
}

/// [`generate_dataset_with`] plus a [`GenReport`] describing the run.
pub fn generate_dataset_report(
    cfg: &GenConfig,
    n: usize,
    seed: u64,
    plan: &GenPlan,
) -> (Dataset, GenReport) {
    assert!(!cfg.structures.is_empty(), "no structures configured");
    let _span = zt_telemetry::span("datagen");
    let shard_size = plan.shard_size.max(1);
    let num_shards = n.div_ceil(shard_size);
    let fingerprint = config_fingerprint(cfg, n, seed, shard_size);
    let count_of = |i: usize| shard_size.min(n - i * shard_size);

    let mut slots: Vec<Option<Vec<Sample>>> = (0..num_shards).map(|_| None).collect();
    let mut report = GenReport {
        shards: num_shards,
        ..GenReport::default()
    };

    // Resume pass: adopt any shard file whose header checks out.
    if let Some(dir) = &plan.shard_dir {
        let _ = std::fs::create_dir_all(dir);
        for (i, slot) in slots.iter_mut().enumerate() {
            if let Some(samples) = load_shard(dir, fingerprint, seed, i, count_of(i)) {
                *slot = Some(samples);
                report.shards_resumed += 1;
            }
        }
    }

    // Labeling pass: workers pull pending shards from a shared counter.
    let pending: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();
    report.shards_generated = pending.len();
    let workers = plan.workers.max(1).min(pending.len().max(1));
    report.workers_used = if pending.is_empty() { 0 } else { workers };
    if !pending.is_empty() {
        let next = AtomicUsize::new(0);
        let produced: Vec<(usize, Vec<Sample>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let pending = &pending;
                    let dir = plan.shard_dir.as_deref();
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&index) = pending.get(k) else {
                                break;
                            };
                            let samples = {
                                let _shard_span =
                                    zt_telemetry::span_arg("datagen.shard", || index.to_string());
                                generate_shard(cfg, n, seed, shard_size, index)
                            };
                            if let Some(dir) = dir {
                                store_shard(dir, fingerprint, seed, index, &samples);
                            }
                            mine.push((index, samples));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("datagen worker panicked"))
                .collect()
        });
        for (index, samples) in produced {
            slots[index] = Some(samples);
        }
    }

    // Merge in shard order — the layout, not the completion order,
    // defines the dataset.
    let samples: Vec<Sample> = slots
        .into_iter()
        .flat_map(|s| s.expect("every shard resolved"))
        .collect();
    zt_telemetry::counter_add("datagen.samples", samples.len() as u64);
    zt_telemetry::counter_add("datagen.shards_generated", report.shards_generated as u64);
    zt_telemetry::counter_add("datagen.shards_resumed", report.shards_resumed as u64);
    (Dataset::new(samples), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seed_is_counter_derived_and_distinct() {
        let seeds: Vec<u64> = (0..16).map(|i| shard_seed(7, i)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in seeds.iter().skip(i + 1) {
                assert_ne!(a, b, "shard seeds collide");
            }
        }
        // pure function of (base, index)
        assert_eq!(shard_seed(7, 3), shard_seed(7, 3));
        assert_ne!(shard_seed(7, 3), shard_seed(8, 3));
    }

    #[test]
    fn fingerprint_tracks_every_generation_input() {
        let cfg = GenConfig::seen();
        let base = config_fingerprint(&cfg, 100, 1, 256);
        assert_eq!(base, config_fingerprint(&GenConfig::seen(), 100, 1, 256));
        assert_ne!(base, config_fingerprint(&cfg, 101, 1, 256));
        assert_ne!(base, config_fingerprint(&cfg, 100, 2, 256));
        assert_ne!(base, config_fingerprint(&cfg, 100, 1, 128));
        assert_ne!(
            base,
            config_fingerprint(&GenConfig::unseen_structures(), 100, 1, 256)
        );
    }

    #[test]
    fn worker_count_does_not_change_the_dataset() {
        let cfg = GenConfig::seen();
        let plan = |w: usize| GenPlan::serial().with_workers(w).with_shard_size(4);
        let a = generate_dataset_with(&cfg, 18, 5, &plan(1));
        let b = generate_dataset_with(&cfg, 18, 5, &plan(3));
        assert_eq!(a.len(), 18);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "worker count changed the dataset");
    }

    #[test]
    fn single_shard_matches_legacy_stream() {
        // n ≤ shard_size must reproduce the pre-sharding single-chunk
        // stream: one shard seeded with shard_seed(seed, 0).
        let cfg = GenConfig::seen();
        let sharded = generate_dataset_with(&cfg, 6, 9, &GenPlan::serial());
        let mut rng = StdRng::seed_from_u64(shard_seed(9, 0));
        for (i, s) in sharded.samples.iter().enumerate() {
            let structure = cfg.structures[i % cfg.structures.len()];
            let direct = generate_sample(&cfg, structure, &mut rng);
            assert_eq!(s.latency_ms, direct.latency_ms);
            assert_eq!(s.throughput, direct.throughput);
        }
    }

    #[test]
    fn report_counts_shards() {
        let cfg = GenConfig::seen();
        let plan = GenPlan::serial().with_workers(2).with_shard_size(5);
        let (d, r) = generate_dataset_report(&cfg, 12, 3, &plan);
        assert_eq!(d.len(), 12);
        assert_eq!(r.shards, 3);
        assert_eq!(r.shards_generated, 3);
        assert_eq!(r.shards_resumed, 0);
        assert_eq!(r.workers_used, 2);
    }

    #[test]
    fn empty_request_yields_empty_dataset() {
        let (d, r) = generate_dataset_report(&GenConfig::seen(), 0, 1, &GenPlan::serial());
        assert!(d.is_empty());
        assert_eq!(r.shards, 0);
        assert_eq!(r.workers_used, 0);
    }
}
