//! The parallel graph representation (Section III-C2 of the paper).
//!
//! A [`GraphEncoding`] has one node per *distinct operator* — parallel
//! instances are aggregated into a single node (the paper's design option
//! (2): per-instance nodes would add thousands of near-duplicate nodes and
//! edges without new information) — plus one node per worker machine.
//! Three edge sets drive the three message-passing phases:
//!
//! 1. **physical** edges between resource nodes (the cluster
//!    interconnect),
//! 2. **operator-resource mapping** edges from each resource to every
//!    operator with instances on it, weighted by the instance fraction
//!    (preserving the per-instance mapping information the paper keeps on
//!    the edges), and
//! 3. **data-flow** edges following the plan topology to the sink, where
//!    the prediction is read out.
//!
//! Note on phase order: the paper passes messages data-flow → physical →
//! mapping; we apply physical → mapping → data-flow so that resource
//! information reaches the *sink* through the data-flow pass (with the
//! paper's order, resource state entering upstream operators after the
//! data-flow pass could never influence the read-out in a single sweep).

use serde::{Deserialize, Serialize};
use zt_dspsim::cluster::Cluster;
use zt_dspsim::placement::{place, place_with, ChainingMode, Deployment};
use zt_query::{LogicalPlan, OperatorKind, ParallelQueryPlan, PlanIr, TupleSchema};

use crate::features::{operator_features, resource_features, FeatureMask};

/// Node type: selects which encoder MLP embeds the node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NodeKind {
    Source,
    Filter,
    Aggregate,
    Join,
    Sink,
    Resource,
}

impl NodeKind {
    pub const ALL: [NodeKind; 6] = [
        NodeKind::Source,
        NodeKind::Filter,
        NodeKind::Aggregate,
        NodeKind::Join,
        NodeKind::Sink,
        NodeKind::Resource,
    ];

    fn of(kind: &OperatorKind) -> NodeKind {
        match kind {
            OperatorKind::Source(_) => NodeKind::Source,
            OperatorKind::Filter(_) => NodeKind::Filter,
            OperatorKind::Aggregate(_) => NodeKind::Aggregate,
            OperatorKind::Join(_) => NodeKind::Join,
            OperatorKind::Sink(_) => NodeKind::Sink,
        }
    }
}

/// One node of the encoded graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphNode {
    pub kind: NodeKind,
    pub features: Vec<f32>,
}

/// A parallel query plan encoded for the GNN.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphEncoding {
    pub nodes: Vec<GraphNode>,
    /// Data-flow edges `(upstream, downstream)` between operator nodes.
    pub data_flow: Vec<(usize, usize)>,
    /// Physical edges between resource nodes.
    pub physical: Vec<(usize, usize)>,
    /// Mapping edges `(resource, operator, weight)`; weight = fraction of
    /// the operator's instances hosted by the resource.
    pub mapping: Vec<(usize, usize, f32)>,
    /// Operator-node indices in topological order.
    pub topo: Vec<usize>,
    /// Index of the sink node (prediction read-out).
    pub sink: usize,
}

impl GraphEncoding {
    /// Number of operator nodes.
    pub fn num_operator_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind != NodeKind::Resource)
            .count()
    }

    /// Number of resource nodes.
    pub fn num_resource_nodes(&self) -> usize {
        self.nodes.len() - self.num_operator_nodes()
    }
}

/// Encode a deployed parallel query plan.
///
/// The deployment (chaining decisions, instance placement) is computed
/// here so the *grouping number* and mapping-edge weights reflect what the
/// scheduler will actually do.
pub fn encode(
    pqp: &ParallelQueryPlan,
    cluster: &Cluster,
    chaining: ChainingMode,
    mask: &FeatureMask,
) -> GraphEncoding {
    let dep = place(pqp, cluster, chaining);
    encode_with_deployment(pqp, cluster, &dep, mask)
}

/// Encode with an already-computed deployment.
pub fn encode_with_deployment(
    pqp: &ParallelQueryPlan,
    cluster: &Cluster,
    dep: &Deployment,
    mask: &FeatureMask,
) -> GraphEncoding {
    EncodeContext::new(&pqp.plan, cluster, mask).encode_with_deployment(pqp, cluster, dep)
}

/// Parallelism-independent encoding state, computed once per
/// (plan, cluster, mask) and reused across what-if candidates.
///
/// The optimizer evaluates dozens of parallelism vectors for the *same*
/// logical plan on the *same* cluster; schemas, topological order,
/// data-flow edges and per-worker resource feature vectors never change
/// between candidates, so only the parallelism-dependent operator features
/// and the deployment-dependent edges are recomputed per candidate.
pub struct EncodeContext {
    in_schemas: Vec<TupleSchema>,
    out_schemas: Vec<TupleSchema>,
    data_flow: Vec<(usize, usize)>,
    topo: Vec<usize>,
    sink: usize,
    /// Feature vector of every cluster worker (used or not).
    resource_feats: Vec<Vec<f32>>,
    mask: FeatureMask,
}

impl EncodeContext {
    /// Seal `plan` into a [`PlanIr`] and build the context. Callers that
    /// already hold a sealed IR should use [`EncodeContext::with_ir`].
    pub fn new(plan: &LogicalPlan, cluster: &Cluster, mask: &FeatureMask) -> Self {
        let ir = plan.validate().expect("validated plan");
        Self::with_ir(plan, &ir, cluster, mask)
    }

    /// Build the context from a pre-sealed [`PlanIr`] (schemas, topo order
    /// and sink are copied out of the IR instead of being recomputed).
    pub fn with_ir(plan: &LogicalPlan, ir: &PlanIr, cluster: &Cluster, mask: &FeatureMask) -> Self {
        EncodeContext {
            in_schemas: ir.input_schemas().to_vec(),
            out_schemas: ir.output_schemas().to_vec(),
            data_flow: plan
                .edges()
                .iter()
                .map(|&(u, d)| (u.idx(), d.idx()))
                .collect(),
            topo: ir.topo_order().iter().map(|id| id.idx()).collect(),
            sink: ir.sink().idx(),
            resource_feats: cluster
                .nodes
                .iter()
                .enumerate()
                .map(|(i, spec)| resource_features(spec, i, mask))
                .collect(),
            mask: *mask,
        }
    }

    /// Encode one candidate: places the plan, then re-derives only the
    /// parallelism-dependent parts of the encoding.
    pub fn encode(
        &self,
        pqp: &ParallelQueryPlan,
        cluster: &Cluster,
        chaining: ChainingMode,
    ) -> GraphEncoding {
        let dep = place(pqp, cluster, chaining);
        self.encode_with_deployment(pqp, cluster, &dep)
    }

    /// [`EncodeContext::encode`] over a pre-sealed [`PlanIr`]: placement
    /// skips re-validating the plan for every candidate.
    pub fn encode_sealed(
        &self,
        pqp: &ParallelQueryPlan,
        ir: &PlanIr,
        cluster: &Cluster,
        chaining: ChainingMode,
    ) -> GraphEncoding {
        let dep = place_with(pqp, ir, cluster, chaining);
        self.encode_with_deployment(pqp, cluster, &dep)
    }

    /// Encode one candidate with an already-computed deployment.
    pub fn encode_with_deployment(
        &self,
        pqp: &ParallelQueryPlan,
        cluster: &Cluster,
        dep: &Deployment,
    ) -> GraphEncoding {
        let plan = &pqp.plan;
        let mut nodes: Vec<GraphNode> = plan
            .ops()
            .iter()
            .map(|op| GraphNode {
                kind: NodeKind::of(&op.kind),
                features: operator_features(
                    op,
                    pqp,
                    dep,
                    &self.in_schemas[op.id.idx()],
                    &self.out_schemas[op.id.idx()],
                    &self.mask,
                ),
            })
            .collect();

        let n_ops = nodes.len();
        // Only materialize resource nodes that actually host instances.
        let mut used = vec![false; cluster.num_workers()];
        for op in plan.ops() {
            for &(node, _) in &dep.instance_counts(op.id) {
                used[node] = true;
            }
        }
        let mut resource_node_of = vec![usize::MAX; cluster.num_workers()];
        for (i, feats) in self.resource_feats.iter().enumerate() {
            if used[i] {
                resource_node_of[i] = nodes.len();
                nodes.push(GraphNode {
                    kind: NodeKind::Resource,
                    features: feats.clone(),
                });
            }
        }

        // Physical edges: a ring over the used resources (the cluster
        // interconnect); a single resource has no physical edges.
        let used_resources: Vec<usize> = resource_node_of
            .iter()
            .copied()
            .filter(|&r| r != usize::MAX)
            .collect();
        let mut physical = Vec::new();
        if used_resources.len() > 1 {
            for w in used_resources.windows(2) {
                physical.push((w[0], w[1]));
                physical.push((w[1], w[0]));
            }
        }

        // Mapping edges: resource -> operator, weighted by instance share.
        // The deployment schedules effective instances, so the share is
        // normalized by the same effective degree.
        let mut mapping = Vec::new();
        for op in plan.ops() {
            let p = pqp.effective_parallelism_of(op.id).max(1) as f32;
            for (node, count) in dep.instance_counts(op.id) {
                mapping.push((resource_node_of[node], op.id.idx(), count as f32 / p));
            }
        }

        GraphEncoding {
            nodes,
            data_flow: self.data_flow.clone(),
            physical,
            mapping,
            topo: self.topo.clone(),
            sink: self.sink,
        }
        .tap_check(n_ops)
    }
}

impl GraphEncoding {
    fn tap_check(self, n_ops: usize) -> Self {
        debug_assert!(self.sink < n_ops);
        debug_assert!(self.data_flow.iter().all(|&(u, d)| u < n_ops && d < n_ops));
        debug_assert!(self
            .mapping
            .iter()
            .all(|&(r, o, w)| r >= n_ops && o < n_ops && (0.0..=1.0001).contains(&w)));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_dspsim::cluster::ClusterType;
    use zt_query::{QueryGenerator, QueryStructure};

    fn make(structure: QueryStructure, p: u32, workers: usize) -> GraphEncoding {
        let mut rng = StdRng::seed_from_u64(3);
        let plan = QueryGenerator::seen().generate(structure, &mut rng);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
        let cluster = Cluster::homogeneous(ClusterType::M510, workers, 10.0);
        encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all())
    }

    #[test]
    fn linear_graph_shape() {
        let g = make(QueryStructure::Linear, 2, 2);
        // linear chains have 3 or 4 operators depending on the sampled
        // variant (filter-only / agg-only / filter+agg)
        let n = g.num_operator_nodes();
        assert!((3..=4).contains(&n), "linear has {n} operator nodes");
        assert!(g.num_resource_nodes() >= 1);
        assert_eq!(g.data_flow.len(), n - 1);
        assert_eq!(g.topo.len(), n);
        assert_eq!(g.sink, n - 1);
    }

    #[test]
    fn join_graph_has_more_nodes() {
        let g2 = make(QueryStructure::TwoWayJoin, 2, 2);
        let g6 = make(QueryStructure::NWayJoin(6), 2, 2);
        assert!(g6.num_operator_nodes() > g2.num_operator_nodes());
        assert_eq!(g6.num_operator_nodes(), 6 + 6 + 5 + 1 + 1);
    }

    #[test]
    fn mapping_weights_sum_to_one_per_operator() {
        let g = make(QueryStructure::ThreeWayJoin, 4, 3);
        let n_ops = g.num_operator_nodes();
        for op in 0..n_ops {
            let total: f32 = g
                .mapping
                .iter()
                .filter(|&&(_, o, _)| o == op)
                .map(|&(_, _, w)| w)
                .sum();
            assert!((total - 1.0).abs() < 1e-5, "op {op} weights sum {total}");
        }
    }

    #[test]
    fn physical_edges_form_connected_ring() {
        let g = make(QueryStructure::Linear, 8, 4);
        // with several used workers there must be physical edges in both
        // directions
        if g.num_resource_nodes() > 1 {
            assert!(!g.physical.is_empty());
            assert_eq!(g.physical.len() % 2, 0);
        }
    }

    #[test]
    fn single_worker_has_no_physical_edges() {
        let g = make(QueryStructure::Linear, 2, 1);
        assert_eq!(g.num_resource_nodes(), 1);
        assert!(g.physical.is_empty());
    }

    #[test]
    fn node_count_independent_of_parallelism() {
        // This is the point of design option (2): parallel instances are
        // aggregated, so the graph does not grow with the parallelism.
        let g1 = make(QueryStructure::Linear, 1, 2);
        let g64 = make(QueryStructure::Linear, 64, 2);
        assert_eq!(g1.num_operator_nodes(), g64.num_operator_nodes());
    }

    #[test]
    fn parallelism_changes_features_not_structure() {
        let g1 = make(QueryStructure::Linear, 1, 2);
        let g64 = make(QueryStructure::Linear, 64, 2);
        assert_eq!(g1.data_flow, g64.data_flow);
        // but the parallelism feature differs
        assert!(g1.nodes[1].features[0] < g64.nodes[1].features[0]);
    }

    #[test]
    fn context_encoding_matches_direct_encoding() {
        let mut rng = StdRng::seed_from_u64(9);
        let plan = QueryGenerator::seen().generate(QueryStructure::ThreeWayJoin, &mut rng);
        let n = plan.num_ops();
        let cluster = Cluster::homogeneous(ClusterType::M510, 3, 10.0);
        let mask = FeatureMask::all();
        let ctx = EncodeContext::new(&plan, &cluster, &mask);
        let mut pqp = ParallelQueryPlan::new(plan.clone());
        for p in [1u32, 2, 7, 16] {
            pqp.parallelism = vec![p; n];
            pqp.reset_partitioning();
            let cached = ctx.encode(&pqp, &cluster, ChainingMode::Auto);
            let direct = encode(&pqp, &cluster, ChainingMode::Auto, &mask);
            assert_eq!(cached.data_flow, direct.data_flow);
            assert_eq!(cached.physical, direct.physical);
            assert_eq!(cached.mapping, direct.mapping);
            assert_eq!(cached.topo, direct.topo);
            assert_eq!(cached.sink, direct.sink);
            assert_eq!(cached.nodes.len(), direct.nodes.len());
            for (a, b) in cached.nodes.iter().zip(direct.nodes.iter()) {
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.features, b.features);
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let g = make(QueryStructure::TwoWayJoin, 2, 2);
        let s = serde_json::to_string(&g).unwrap();
        let back: GraphEncoding = serde_json::from_str(&s).unwrap();
        assert_eq!(back.nodes.len(), g.nodes.len());
        assert_eq!(back.sink, g.sink);
    }
}
