//! Transferable featurization (Table I of the paper).
//!
//! Every graph node carries a fixed-size feature vector. Operator nodes
//! share a *common block* (parallelism-, partitioning-, grouping- and
//! data-related features) followed by an operator-type-specific block
//! (filter function and literal class, window type/policy/length/slide,
//! aggregation function and classes, join key class). Resource nodes carry
//! the hardware features. Continuous features are log- or range-normalized
//! to keep them in a comparable scale; categorical features are one-hot.
//!
//! [`FeatureMask`] implements the ablation of Exp. 6 by zeroing feature
//! groups while keeping vector dimensions stable.

use zt_dspsim::cluster::NodeSpec;
use zt_dspsim::Deployment;
use zt_query::plan::LogicalOperator;
use zt_query::{DataType, OperatorKind, ParallelQueryPlan, TupleSchema, WindowSpec};

/// Which transferable-feature groups are active (Exp. 6 feature ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FeatureMask {
    /// Operator- and data-related features: operator-specific parameters,
    /// selectivity, tuple widths/types, event rate.
    pub operator: bool,
    /// Parallelism-related features: parallelism degree, partitioning
    /// strategy, grouping number.
    pub parallelism: bool,
    /// Resource-related features on physical nodes.
    pub resource: bool,
}

impl FeatureMask {
    /// All features active (the full ZeroTune model).
    pub fn all() -> Self {
        FeatureMask {
            operator: true,
            parallelism: true,
            resource: true,
        }
    }

    /// Only operator-related features (ablation variant 1).
    pub fn operator_only() -> Self {
        FeatureMask {
            operator: true,
            parallelism: false,
            resource: false,
        }
    }

    /// Only parallelism- and resource-related features (ablation
    /// variant 2).
    pub fn parallelism_resource_only() -> Self {
        FeatureMask {
            operator: false,
            parallelism: true,
            resource: true,
        }
    }

    pub fn label(&self) -> &'static str {
        match (self.operator, self.parallelism, self.resource) {
            (true, true, true) => "all",
            (true, false, false) => "operator-only",
            (false, true, true) => "parallelism+resource",
            _ => "custom",
        }
    }
}

impl Default for FeatureMask {
    fn default() -> Self {
        FeatureMask::all()
    }
}

// --- Normalization constants --------------------------------------------

/// Parallelism degrees go up to 128 (Table III categories).
const LOG_P_NORM: f32 = 4.86; // ln(129)
/// Event rates go up to 4 M ev/s in the unseen range.
const LOG_RATE_NORM: f32 = 15.2; // ln(4e6)
/// Window lengths/durations up to 10 000 (ms or tuples).
const LOG_WINDOW_NORM: f32 = 9.22; // ln(10001)
const WIDTH_NORM: f32 = 15.0;
const GROUPING_NORM: f32 = 4.0;

/// Bounds every well-formed feature value falls into: one-hots and
/// fractions live in `[0, 1]`, `log_norm` caps at 2.0, and resource
/// features stay below ~2.5. The diagnostics ZT202 lint flags anything
/// outside this envelope.
pub const FEATURE_MIN: f32 = -1e-3;
pub const FEATURE_MAX: f32 = 2.5;

/// Dimensions of the per-kind feature vectors.
pub const OP_COMMON_DIM: usize = 11;
pub const SOURCE_EXTRA_DIM: usize = 1;
pub const FILTER_EXTRA_DIM: usize = 9;
pub const AGG_EXTRA_DIM: usize = 16;
pub const JOIN_EXTRA_DIM: usize = 9;
pub const SINK_EXTRA_DIM: usize = 0;
pub const RESOURCE_DIM: usize = 5;

#[inline]
fn log_norm(v: f64, norm: f32) -> f32 {
    ((v.max(0.0) + 1.0).ln() as f32 / norm).min(2.0)
}

fn window_block(out: &mut Vec<f32>, w: &WindowSpec) {
    use zt_query::{WindowPolicy, WindowType};
    // window type one-hot
    out.push((w.window_type() == WindowType::Tumbling) as u8 as f32);
    out.push((w.window_type() == WindowType::Sliding) as u8 as f32);
    // window policy one-hot
    out.push((w.policy == WindowPolicy::Count) as u8 as f32);
    out.push((w.policy == WindowPolicy::Time) as u8 as f32);
    out.push(log_norm(w.length, LOG_WINDOW_NORM));
    out.push(log_norm(w.slide.unwrap_or(0.0), LOG_WINDOW_NORM));
}

fn one_hot(out: &mut Vec<f32>, idx: usize, n: usize) {
    for i in 0..n {
        out.push((i == idx) as u8 as f32);
    }
}

fn data_type_one_hot(out: &mut Vec<f32>, dt: Option<DataType>) {
    match dt {
        Some(dt) => one_hot(out, dt.one_hot_index(), 3),
        None => out.extend([0.0, 0.0, 0.0]),
    }
}

/// Feature vector of one *logical* (operator) node.
///
/// Layout: `[common(11) | type-specific extra]` — see module docs.
pub fn operator_features(
    op: &LogicalOperator,
    pqp: &ParallelQueryPlan,
    dep: &Deployment,
    in_schema: &TupleSchema,
    out_schema: &TupleSchema,
    mask: &FeatureMask,
) -> Vec<f32> {
    let mut f = Vec::with_capacity(OP_COMMON_DIM + AGG_EXTRA_DIM);

    // -- parallelism-related (Table I, "operator-parallelism") ---------
    if mask.parallelism {
        // Effective degree: instances beyond the operator's key
        // cardinality never receive tuples, so they carry no cost signal.
        f.push(log_norm(
            pqp.effective_parallelism_of(op.id) as f64,
            LOG_P_NORM,
        ));
        one_hot(&mut f, pqp.input_partitioning(op.id).one_hot_index(), 3);
        f.push(dep.grouping_number(op.id) as f32 / GROUPING_NORM);
    } else {
        f.extend([0.0; 5]);
    }

    // -- data-related (Table I, "data") ---------------------------------
    if mask.operator {
        f.push(in_schema.width() as f32 / WIDTH_NORM);
        f.push(out_schema.width() as f32 / WIDTH_NORM);
        let fr = in_schema.type_fractions();
        f.extend([fr[0] as f32, fr[1] as f32, fr[2] as f32]);
        f.push(op.kind.selectivity() as f32);
    } else {
        f.extend([0.0; 6]);
    }
    debug_assert_eq!(f.len(), OP_COMMON_DIM);

    // -- operator-specific block ----------------------------------------
    let extra_start = f.len();
    match &op.kind {
        OperatorKind::Source(s) => {
            f.push(log_norm(s.event_rate, LOG_RATE_NORM));
        }
        OperatorKind::Filter(flt) => {
            one_hot(&mut f, flt.function.one_hot_index(), 6);
            data_type_one_hot(&mut f, Some(flt.literal_class));
        }
        OperatorKind::Aggregate(a) => {
            window_block(&mut f, &a.window);
            one_hot(&mut f, a.function.one_hot_index(), 4);
            data_type_one_hot(&mut f, Some(a.agg_class));
            data_type_one_hot(&mut f, a.key_class);
        }
        OperatorKind::Join(j) => {
            window_block(&mut f, &j.window);
            data_type_one_hot(&mut f, Some(j.key_class));
        }
        OperatorKind::Sink(_) => {}
    }
    if !mask.operator {
        for v in &mut f[extra_start..] {
            *v = 0.0;
        }
    }
    f
}

/// Feature vector of one *physical* (resource) node.
pub fn resource_features(node: &NodeSpec, node_index: usize, mask: &FeatureMask) -> Vec<f32> {
    if !mask.resource {
        return vec![0.0; RESOURCE_DIM];
    }
    vec![
        node.cores as f32 / 64.0,
        node.cpu_ghz as f32 / 3.0,
        log_norm(node.memory_gb, 6.0), // ln(385) ≈ 5.95
        node.network_gbps as f32 / 10.0,
        node_index as f32 / 16.0,
    ]
}

/// Expected feature dimension per operator kind (common + extra).
pub fn operator_feature_dim(kind: &OperatorKind) -> usize {
    OP_COMMON_DIM
        + match kind {
            OperatorKind::Source(_) => SOURCE_EXTRA_DIM,
            OperatorKind::Filter(_) => FILTER_EXTRA_DIM,
            OperatorKind::Aggregate(_) => AGG_EXTRA_DIM,
            OperatorKind::Join(_) => JOIN_EXTRA_DIM,
            OperatorKind::Sink(_) => SINK_EXTRA_DIM,
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_dspsim::cluster::{Cluster, ClusterType};
    use zt_dspsim::placement::{place, ChainingMode};
    use zt_query::{QueryGenerator, QueryStructure};

    fn sample_pqp() -> (ParallelQueryPlan, Cluster, Deployment) {
        let mut rng = StdRng::seed_from_u64(1);
        let plan = QueryGenerator::seen().generate(QueryStructure::Linear, &mut rng);
        // Mixed degrees, sized to however many operators the generator drew.
        let par = (0..plan.num_ops())
            .map(|i| if i % 2 == 0 { 2 } else { 4 })
            .collect();
        let pqp = ParallelQueryPlan::with_parallelism(plan, par);
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
        let dep = place(&pqp, &cluster, ChainingMode::Auto);
        (pqp, cluster, dep)
    }

    #[test]
    fn feature_dims_match_declared() {
        let (pqp, _cluster, dep) = sample_pqp();
        let ins = pqp.plan.input_schemas();
        let outs = pqp.plan.output_schemas();
        for op in pqp.plan.ops() {
            let f = operator_features(
                op,
                &pqp,
                &dep,
                &ins[op.id.idx()],
                &outs[op.id.idx()],
                &FeatureMask::all(),
            );
            assert_eq!(
                f.len(),
                operator_feature_dim(&op.kind),
                "dim mismatch for {}",
                op.kind.label()
            );
        }
    }

    #[test]
    fn features_are_bounded() {
        let (pqp, cluster, dep) = sample_pqp();
        let ins = pqp.plan.input_schemas();
        let outs = pqp.plan.output_schemas();
        for op in pqp.plan.ops() {
            let f = operator_features(
                op,
                &pqp,
                &dep,
                &ins[op.id.idx()],
                &outs[op.id.idx()],
                &FeatureMask::all(),
            );
            for (i, v) in f.iter().enumerate() {
                assert!(
                    (FEATURE_MIN..=FEATURE_MAX).contains(v),
                    "{} feature {i} out of range: {v}",
                    op.kind.label()
                );
            }
        }
        for (i, node) in cluster.nodes.iter().enumerate() {
            let f = resource_features(node, i, &FeatureMask::all());
            assert_eq!(f.len(), RESOURCE_DIM);
            assert!(f.iter().all(|v| (0.0..=2.5).contains(v)));
        }
    }

    #[test]
    fn parallelism_mask_zeroes_parallelism_block() {
        let (pqp, _c, dep) = sample_pqp();
        let ins = pqp.plan.input_schemas();
        let outs = pqp.plan.output_schemas();
        let op = &pqp.plan.ops()[1]; // filter with parallelism 4
        let masked = operator_features(
            op,
            &pqp,
            &dep,
            &ins[1],
            &outs[1],
            &FeatureMask::operator_only(),
        );
        assert!(masked[..5].iter().all(|&v| v == 0.0));
        // data block still populated
        assert!(masked[5] > 0.0);
        let full = operator_features(op, &pqp, &dep, &ins[1], &outs[1], &FeatureMask::all());
        assert!(full[0] > 0.0, "parallelism feature missing in full mask");
        assert_eq!(masked.len(), full.len());
    }

    #[test]
    fn operator_mask_zeroes_operator_block() {
        let (pqp, _c, dep) = sample_pqp();
        let ins = pqp.plan.input_schemas();
        let outs = pqp.plan.output_schemas();
        let op = &pqp.plan.ops()[1];
        let masked = operator_features(
            op,
            &pqp,
            &dep,
            &ins[1],
            &outs[1],
            &FeatureMask::parallelism_resource_only(),
        );
        assert!(masked[5..].iter().all(|&v| v == 0.0));
        assert!(masked[0] > 0.0);
    }

    #[test]
    fn resource_mask_zeroes_resource_features() {
        let node = ClusterType::C6420.node(0, 10.0);
        let masked = resource_features(&node, 0, &FeatureMask::operator_only());
        assert!(masked.iter().all(|&v| v == 0.0));
        let full = resource_features(&node, 0, &FeatureMask::all());
        assert!(full.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn parallelism_feature_monotone() {
        let (mut pqp, cluster, _dep) = sample_pqp();
        let ins = pqp.plan.input_schemas();
        let outs = pqp.plan.output_schemas();
        let mut last = -1.0f32;
        for p in [1u32, 4, 16, 64, 128] {
            pqp.set_parallelism(zt_query::OpId(1), p);
            let dep = place(&pqp, &cluster, ChainingMode::Auto);
            let f = operator_features(
                &pqp.plan.ops()[1].clone(),
                &pqp,
                &dep,
                &ins[1],
                &outs[1],
                &FeatureMask::all(),
            );
            assert!(f[0] > last, "parallelism feature not monotone at p={p}");
            last = f[0];
        }
    }

    #[test]
    fn mask_labels() {
        assert_eq!(FeatureMask::all().label(), "all");
        assert_eq!(FeatureMask::operator_only().label(), "operator-only");
        assert_eq!(
            FeatureMask::parallelism_resource_only().label(),
            "parallelism+resource"
        );
    }
}
