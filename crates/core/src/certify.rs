//! Domain-wide model certification: interval bound propagation through
//! the whole ZeroTune GNN.
//!
//! PR 5's [`crate::bounds`] applied abstract interpretation to *plans*;
//! this module applies the same discipline to the *trained network*. The
//! input abstraction is the feature box `[FEATURE_MIN, FEATURE_MAX]^d` —
//! by construction of [`crate::features`], every encoded node the model
//! will ever see at serving time lies inside it — and the analysis pushes
//! that box through the encoders, the three message-passing phases and
//! both read-out heads using the interval kernels of [`zt_nn::certify`].
//! No data, no forward pass: the result is a certificate over *every*
//! graph the model can encounter, not the sampled handful a test set
//! covers.
//!
//! ## Abstraction of the message-passing phases
//!
//! Let `E_k` be the certified post-ReLU output box of kind `k`'s encoder
//! and `H0` the hull over all kinds — an enclosure of every hidden state
//! after step ②. Each phase applies a residual update
//! `h ← h + U(h ‖ msg)` to *some* nodes and leaves the rest untouched, so
//! a sound post-phase enclosure is `hull(H, H + U(H ‖ MSG))` where `MSG`
//! encloses the phase's messages:
//!
//! * **physical**: the message is a mean of states in `H0`, which stays
//!   in `H0` (plus `f32` rounding, absorbed by an explicit widening);
//! * **mapping**: the message is a weighted sum with instance-share
//!   weights in `[0, 1]` summing to ≤ [`CertifyConfig::mapping_sum_cap`]
//!   per operator, enclosed by the scaled zero-hull of `H1`;
//! * **dataflow**: the pass walks nodes in topological order, so a node
//!   at data-flow depth `d` (longest path from a source) sees messages
//!   from finals of depth < `d`. Iterating
//!   `I_d = hull(I_{d-1}, H2 + U(H2 ‖ mean(I_{d-1})))` with `I_0 = H2`
//!   yields a per-depth enclosure chain; the read-out brackets are
//!   evaluated at every depth up to [`CertifyConfig::max_depth`].
//!
//! The per-depth head brackets are **sound for any plan** whose encoded
//! features lie in the box, whose per-node fan-in is at most
//! [`CertifyConfig::max_fanin`], and whose sink sits at data-flow depth ≤
//! `max_depth` (see [`dataflow_depth`]) — conditions every plan produced
//! by [`crate::graph::encode`] under the repo's generators satisfies.
//!
//! ## What the certificate is for
//!
//! IBP enclosures of deep residual message passing are *loose* — widths
//! grow multiplicatively with depth (roughly the product of layer
//! `|W|`-norms per iteration), so a healthy 48-wide model certifies to
//! astronomically wide (but finite and *centered*) normalized brackets at
//! depth 16. The certificate's power is therefore not tight prediction
//! ranges but **explosion and degeneracy detection**, which is exactly
//! what a deploy gate needs:
//!
//! * **ZT601** — the bracket is non-finite, or its magnitude exceeds what
//!   a freshly-initialized model of the same architecture certifies to
//!   (the self-calibrating reference) by more than
//!   [`ZT601_REF_FACTOR`]×&nbsp;+&nbsp;[`ZT601_DECADE_SLACK`] decades:
//!   weight tampering or training divergence.
//! * **ZT602** — some depth's certified bracket *excludes* the training
//!   label band `±`[`ZT602_LABEL_BAND`] (z-units): the model provably
//!   cannot predict any label it was trained on (e.g. a hijacked
//!   constant-output head).
//! * **ZT603** — certified-dead hidden units (warning): provably zero
//!   over the whole domain, strictly stronger than the ZT402 static
//!   weight-sign check.
//! * **ZT604** — encoder input features with certified-zero sensitivity
//!   (warning): the model provably ignores a transferable feature.
//! * **ZT605** — an actual prediction escapes its depth's certified
//!   bracket (error): the certificate's premises were violated or the
//!   serving model differs from the certified one.

use serde::{Deserialize, Serialize};
use zt_nn::certify::{add_bounds, certify_mlp, mean_of_bounds, IntervalVec, MlpCert};
use zt_nn::Mlp;

use crate::bounds::{BoundsReport, Interval};
use crate::diagnostics::{Anchor, Diagnostic, Report};
use crate::estimator::CostPrediction;
use crate::features::{FEATURE_MAX, FEATURE_MIN};
use crate::graph::{GraphEncoding, NodeKind};
use crate::model::{TargetNorm, ZeroTuneModel};

/// Explosion threshold: certified magnitude (log₁₀ of the normalized
/// bracket) may exceed the fresh-reference magnitude by this factor…
pub const ZT601_REF_FACTOR: f64 = 1.5;
/// …plus this many decades before ZT601 fires. Training moves weights by
/// small steps, so a healthy trained model stays near its init's
/// magnitude; multiplying weights by even 100× blows far past this.
pub const ZT601_DECADE_SLACK: f64 = 12.0;
/// The training-label band in normalized (z-score) units: every label the
/// model was fitted on lies within a few σ of the mean, so a certified
/// bracket disjoint from `[-1, 1]` cannot contain *any* plausible label.
pub const ZT602_LABEL_BAND: f64 = 1.0;
/// Slack (normalized z-units) for [`ModelCert::check_prediction_denorm`],
/// which must invert the `f32` denormalization before comparing.
pub const ZT605_NORM_SLACK: f64 = 1e-3;

/// Parameters of the certification pass. The defaults match the premises
/// guaranteed by [`crate::graph::encode`] over the repo's generators.
#[derive(Clone, Copy, Debug)]
pub struct CertifyConfig {
    /// Lower edge of the input box (defaults to [`FEATURE_MIN`]).
    pub feature_lo: f64,
    /// Upper edge of the input box (defaults to [`FEATURE_MAX`]).
    pub feature_hi: f64,
    /// Deepest data-flow depth the certificate covers (per-depth head
    /// brackets are produced for `0..=max_depth`).
    pub max_depth: usize,
    /// Maximum per-node fan-in (mean/weighted-sum term count) the `f32`
    /// rounding model is quoted for.
    pub max_fanin: usize,
    /// Upper bound on an operator's mapping-weight sum (encode produces
    /// ≈ 1; the ZT204 lint tolerates 1 + 1e-3).
    pub mapping_sum_cap: f64,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            feature_lo: f64::from(FEATURE_MIN),
            feature_hi: f64::from(FEATURE_MAX),
            max_depth: 16,
            max_fanin: 1024,
            mapping_sum_cap: 1.002,
        }
    }
}

/// Certified normalized output brackets of the two read-out heads at one
/// data-flow depth.
#[derive(Clone, Copy, Debug)]
pub struct HeadBracket {
    /// Normalized (z-space) latency head bracket.
    pub latency: Interval,
    /// Normalized (z-space) throughput head bracket.
    pub throughput: Interval,
}

impl HeadBracket {
    fn is_finite(&self) -> bool {
        self.latency.lo.is_finite()
            && self.latency.hi.is_finite()
            && self.throughput.lo.is_finite()
            && self.throughput.hi.is_finite()
    }

    /// log₁₀ of the largest absolute endpoint (≥ 0).
    fn magnitude_log10(&self) -> f64 {
        [
            self.latency.lo,
            self.latency.hi,
            self.throughput.lo,
            self.throughput.hi,
        ]
        .iter()
        .fold(1.0f64, |a, v| a.max(v.abs()))
        .log10()
    }
}

/// Certified per-module unit facts (aggregated over the module's hidden
/// layers).
#[derive(Clone, Debug)]
pub struct ModuleCert {
    /// Stable module name (matches [`ZeroTuneModel::modules`]).
    pub name: String,
    /// Total hidden (ReLU) units certified.
    pub hidden_units: usize,
    /// Units whose pre-activation upper bound is ≤ 0 over the whole
    /// input box the module sees.
    pub certified_dead: usize,
    /// Units whose pre-activation lower bound is ≥ 0 (ReLU provably the
    /// identity).
    pub certified_saturated: usize,
}

impl ModuleCert {
    fn from_mlp_cert(name: &str, cert: &MlpCert) -> Self {
        ModuleCert {
            name: name.to_string(),
            hidden_units: cert.hidden.iter().map(|l| l.dead.len()).sum(),
            certified_dead: cert.hidden.iter().map(zt_nn::LayerUnits::num_dead).sum(),
            certified_saturated: cert
                .hidden
                .iter()
                .map(zt_nn::LayerUnits::num_saturated)
                .sum(),
        }
    }
}

/// The full model certificate (the `CertReport` surfaced to consumers):
/// per-depth head brackets, per-module unit facts, per-encoder input
/// sensitivities, and the self-calibration reference.
#[derive(Clone, Debug)]
pub struct ModelCert {
    /// The configuration the certificate was derived under.
    pub cfg: CertifyConfig,
    /// Head brackets indexed by data-flow depth `0..=cfg.max_depth`.
    pub heads: Vec<HeadBracket>,
    /// Per-module certified unit facts.
    pub modules: Vec<ModuleCert>,
    /// Per-encoder `(name, per-input-feature sensitivity upper bound)`.
    pub encoder_sensitivity: Vec<(String, Vec<f64>)>,
    /// The certified model's target normalization (for denormalized
    /// ranges and prediction cross-checks).
    pub norm: TargetNorm,
    /// Certified magnitude of a freshly-initialized model of the same
    /// [`crate::model::ModelConfig`] — the ZT601 self-calibration
    /// reference.
    pub ref_magnitude_log10: f64,
}

/// Serializable one-screen summary of a [`ModelCert`] — stored in the
/// serve registry's `ModelVersion` and echoed by `/healthz`. All floats
/// are clamped finite (the vendored JSON writer renders non-finite
/// numbers as `null`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CertSummary {
    /// No error-severity ZT6xx findings.
    pub certified: bool,
    /// Distinct error codes, sorted.
    pub errors: Vec<String>,
    /// Distinct warning codes, sorted.
    pub warnings: Vec<String>,
    /// Deepest certified data-flow depth.
    pub max_depth: usize,
    /// log₁₀ magnitude of the normalized bracket at `max_depth`.
    pub magnitude_log10: f64,
    /// Certified denormalized latency range `[lo, hi]` (ms) at `max_depth`.
    pub latency_ms: [f64; 2],
    /// Certified denormalized throughput range `[lo, hi]` at `max_depth`.
    pub throughput: [f64; 2],
    /// Total certified-dead hidden units across modules.
    pub dead_units: usize,
    /// Total certified-saturated hidden units across modules.
    pub saturated_units: usize,
    /// Encoder input features with certified-zero sensitivity.
    pub zero_sensitivity_features: usize,
}

impl CertSummary {
    /// Summary for a model the certifier refused to analyze (ZT407
    /// structural failure).
    pub fn failed(code: &str) -> Self {
        CertSummary {
            certified: false,
            errors: vec![code.to_string()],
            warnings: Vec::new(),
            max_depth: 0,
            magnitude_log10: 0.0,
            latency_ms: [0.0, 0.0],
            throughput: [0.0, 0.0],
            dead_units: 0,
            saturated_units: 0,
            zero_sensitivity_features: 0,
        }
    }
}

fn clamp_json(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v.clamp(-f64::MAX, f64::MAX)
    }
}

impl ModelCert {
    /// The head bracket for plans whose sink sits at `depth` (see
    /// [`dataflow_depth`]); `None` beyond the certified depth.
    pub fn head(&self, depth: usize) -> Option<&HeadBracket> {
        self.heads.get(depth)
    }

    /// log₁₀ magnitude of the widest (deepest) normalized bracket.
    pub fn magnitude_log10(&self) -> f64 {
        self.heads
            .last()
            .expect("at least depth 0")
            .magnitude_log10()
    }

    fn denorm(&self, z: Interval, k: usize) -> Interval {
        // exp((z·std + mean)) is monotone in z (std > 0); widen outward
        // for the f32 rounding of the concrete denormalization.
        let std = f64::from(self.norm.std[k]);
        let mean = f64::from(self.norm.mean[k]);
        let lo = (z.lo * std + mean).exp();
        let hi = (z.hi * std + mean).exp();
        Interval::new((lo * (1.0 - 1e-5)).max(0.0), hi * (1.0 + 1e-5))
    }

    /// Certified denormalized latency range (ms) at `depth`.
    pub fn latency_ms(&self, depth: usize) -> Option<Interval> {
        self.head(depth).map(|h| self.denorm(h.latency, 0))
    }

    /// Certified denormalized throughput range (tuples/s) at `depth`.
    pub fn throughput(&self, depth: usize) -> Option<Interval> {
        self.head(depth).map(|h| self.denorm(h.throughput, 1))
    }

    /// The standalone ZT601–ZT604 findings of this certificate.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let deepest = self.heads.last().expect("at least depth 0");

        // ZT601: non-finite or exploded certified range.
        if !deepest.is_finite() {
            out.push(Diagnostic::error(
                "ZT601",
                format!(
                    "certified normalized bracket at depth {} is non-finite (latency [{}, {}], throughput [{}, {}])",
                    self.cfg.max_depth,
                    deepest.latency.lo,
                    deepest.latency.hi,
                    deepest.throughput.lo,
                    deepest.throughput.hi
                ),
            ));
        } else if self.ref_magnitude_log10.is_finite() {
            let mag = self.magnitude_log10();
            let limit = self.ref_magnitude_log10 * ZT601_REF_FACTOR + ZT601_DECADE_SLACK;
            if mag > limit {
                out.push(Diagnostic::error(
                    "ZT601",
                    format!(
                        "certified bracket magnitude 1e{mag:.0} exceeds the fresh-init reference \
                         1e{:.0} beyond the {ZT601_REF_FACTOR}x + {ZT601_DECADE_SLACK}-decade \
                         allowance (limit 1e{limit:.0}) — weights look tampered or diverged",
                        self.ref_magnitude_log10
                    ),
                ));
            }
        }

        // ZT602: some depth's certified bracket excludes the label band.
        for (metric, pick) in [("latency", 0usize), ("throughput", 1usize)] {
            let offending = self.heads.iter().enumerate().find(|(_, h)| {
                let iv = if pick == 0 { h.latency } else { h.throughput };
                // disjoint from [-BAND, BAND]; NaN endpoints never fire
                // (ZT601 covers them)
                iv.lo > ZT602_LABEL_BAND || iv.hi < -ZT602_LABEL_BAND
            });
            if let Some((d, h)) = offending {
                let iv = if pick == 0 { h.latency } else { h.throughput };
                out.push(Diagnostic::error(
                    "ZT602",
                    format!(
                        "certified {metric} bracket [{:.3}, {:.3}] at depth {d} excludes the \
                         training-label band [-{ZT602_LABEL_BAND}, {ZT602_LABEL_BAND}] (z-units) \
                         — the model provably cannot reproduce any label it was fitted on",
                        iv.lo, iv.hi
                    ),
                ));
            }
        }

        // ZT603: certified-dead units per module (warning).
        for m in &self.modules {
            if m.certified_dead > 0 {
                out.push(
                    Diagnostic::warning(
                        "ZT603",
                        format!(
                            "{} of {} hidden units are certified dead (pre-activation upper \
                             bound <= 0 over the whole feature domain)",
                            m.certified_dead, m.hidden_units
                        ),
                    )
                    .at(Anchor::Param(m.name.clone())),
                );
            }
        }

        // ZT604: zero-sensitivity encoder inputs (warning).
        for (name, sens) in &self.encoder_sensitivity {
            let zeros: Vec<usize> = sens
                .iter()
                .enumerate()
                .filter(|(_, &s)| s == 0.0)
                .map(|(i, _)| i)
                .collect();
            if !zeros.is_empty() {
                out.push(
                    Diagnostic::warning(
                        "ZT604",
                        format!(
                            "input feature(s) {zeros:?} have certified-zero sensitivity — the \
                             model provably ignores them everywhere in the feature domain"
                        ),
                    )
                    .at(Anchor::Param(name.clone())),
                );
            }
        }

        out
    }

    /// ZT605 containment check of a *raw normalized* prediction (the
    /// `[f32; 2]` out of `forward_infer`) against the bracket for `depth`.
    /// Exact containment — the certificate's rounding model already
    /// accounts for every `f32` operation. Empty beyond the certified
    /// depth, and empty when the premises hold.
    pub fn check_prediction(&self, depth: usize, raw: [f32; 2]) -> Vec<Diagnostic> {
        let Some(head) = self.head(depth) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (metric, iv, v) in [
            ("latency", head.latency, f64::from(raw[0])),
            ("throughput", head.throughput, f64::from(raw[1])),
        ] {
            if !(v >= iv.lo && v <= iv.hi) {
                out.push(Diagnostic::error(
                    "ZT605",
                    format!(
                        "normalized {metric} prediction {v} escapes the certified depth-{depth} \
                         bracket [{}, {}] — certificate premises violated or weights changed \
                         since certification",
                        iv.lo, iv.hi
                    ),
                ));
            }
        }
        out
    }

    /// ZT605 containment check from a *denormalized* [`CostPrediction`]
    /// (the shape the optimizer holds): renormalizes through the
    /// certified [`TargetNorm`] and compares with [`ZT605_NORM_SLACK`] to
    /// absorb the `f32` round trip.
    pub fn check_prediction_denorm(&self, depth: usize, p: &CostPrediction) -> Vec<Diagnostic> {
        let Some(head) = self.head(depth) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (metric, iv, value, k) in [
            ("latency", head.latency, p.latency_ms, 0usize),
            ("throughput", head.throughput, p.throughput, 1usize),
        ] {
            let std = f64::from(self.norm.std[k]).max(1e-12);
            let z = (value.max(1e-300).ln() - f64::from(self.norm.mean[k])) / std;
            if !(z >= iv.lo - ZT605_NORM_SLACK && z <= iv.hi + ZT605_NORM_SLACK) {
                out.push(Diagnostic::error(
                    "ZT605",
                    format!(
                        "{metric} prediction {value:.4} (z = {z:.3}) escapes the certified \
                         depth-{depth} bracket [{}, {}]",
                        iv.lo, iv.hi
                    ),
                ));
            }
        }
        out
    }

    /// Intersect the certificate's denormalized ranges with a plan's
    /// physics brackets ([`BoundsReport`]): when they are disjoint, the
    /// model can never predict inside the provable physical envelope for
    /// this deployment (warning-severity ZT605 — the model is globally
    /// mis-calibrated for the plan, even if no single prediction has
    /// escaped yet).
    pub fn lint_certificate_bounds(&self, depth: usize, report: &BoundsReport) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let pairs = [
            ("latency", self.latency_ms(depth), report.latency_ms),
            ("throughput", self.throughput(depth), report.throughput),
        ];
        for (metric, cert_iv, plan_iv) in pairs {
            let Some(c) = cert_iv else { continue };
            let disjoint = c.lo > plan_iv.hi || c.hi < plan_iv.lo;
            if disjoint {
                out.push(Diagnostic::warning(
                    "ZT605",
                    format!(
                        "certified {metric} range [{:.4}, {:.4}] is disjoint from the plan's \
                         provable bracket [{:.4}, {:.4}] — the model cannot land inside the \
                         physical envelope of this deployment",
                        c.lo, c.hi, plan_iv.lo, plan_iv.hi
                    ),
                ));
            }
        }
        out
    }

    /// The serializable summary (registry / `/healthz` shape).
    pub fn summary(&self) -> CertSummary {
        let report = Report::new(self.diagnostics());
        let lat = self
            .latency_ms(self.cfg.max_depth)
            .unwrap_or(Interval::ZERO);
        let tpt = self
            .throughput(self.cfg.max_depth)
            .unwrap_or(Interval::ZERO);
        let mut errors: Vec<String> = Vec::new();
        let mut warnings: Vec<String> = Vec::new();
        for d in &report.diagnostics {
            match d.severity {
                crate::diagnostics::Severity::Error => errors.push(d.code.to_string()),
                crate::diagnostics::Severity::Warning => warnings.push(d.code.to_string()),
                crate::diagnostics::Severity::Info => {}
            }
        }
        errors.sort();
        errors.dedup();
        warnings.sort();
        warnings.dedup();
        CertSummary {
            certified: errors.is_empty(),
            errors,
            warnings,
            max_depth: self.cfg.max_depth,
            magnitude_log10: clamp_json(self.magnitude_log10()),
            latency_ms: [clamp_json(lat.lo), clamp_json(lat.hi)],
            throughput: [clamp_json(tpt.lo), clamp_json(tpt.hi)],
            dead_units: self.modules.iter().map(|m| m.certified_dead).sum(),
            saturated_units: self.modules.iter().map(|m| m.certified_saturated).sum(),
            zero_sensitivity_features: self
                .encoder_sensitivity
                .iter()
                .map(|(_, s)| s.iter().filter(|&&v| v == 0.0).count())
                .sum(),
        }
    }
}

/// Longest data-flow path length into the sink of an encoded graph — the
/// depth index into [`ModelCert::heads`] covering this graph.
pub fn dataflow_depth(graph: &GraphEncoding) -> usize {
    let n = graph.nodes.len();
    let mut depth = vec![0usize; n];
    for &node in &graph.topo {
        depth[node] = graph
            .data_flow
            .iter()
            .filter(|&&(_, d)| d == node)
            .map(|&(u, _)| depth.get(u).copied().unwrap_or(0) + 1)
            .max()
            .unwrap_or(0);
    }
    depth.get(graph.sink).copied().unwrap_or(0)
}

struct Propagation {
    heads: Vec<HeadBracket>,
    modules: Vec<ModuleCert>,
    encoder_sensitivity: Vec<(String, Vec<f64>)>,
}

fn head_bracket(cert: &MlpCert) -> Interval {
    // read-out heads are 1-wide; NaN-tolerant construction
    Interval {
        lo: cert.output.lo[0],
        hi: cert.output.hi[0],
    }
}

fn certify_mlp_at(
    store: &zt_nn::ParamStore,
    mlp: &Mlp,
    input: &IntervalVec,
    name: &str,
    modules: &mut Vec<ModuleCert>,
) -> MlpCert {
    let cert = certify_mlp(store, mlp, input);
    modules.push(ModuleCert::from_mlp_cert(name, &cert));
    cert
}

/// Push the feature box through the whole GNN. Assumes the model already
/// passed the ZT407 structural lint.
fn propagate(model: &ZeroTuneModel, cfg: &CertifyConfig) -> Propagation {
    let store = &model.store;
    let mut modules = Vec::new();
    let mut encoder_sensitivity = Vec::new();

    // Step ②: encode every node kind over the feature box; hidden states
    // are the post-ReLU encoder outputs.
    let mut h0: Option<IntervalVec> = None;
    for &kind in &NodeKind::ALL {
        let enc = model.encoder(kind);
        let in_dim = store.value(enc.layers[0].w).rows;
        let input = IntervalVec::uniform(in_dim, cfg.feature_lo, cfg.feature_hi);
        let name = format!("enc.{kind:?}");
        let cert = certify_mlp_at(store, enc, &input, &name, &mut modules);
        encoder_sensitivity.push((name, cert.sensitivity.clone()));
        let mut e = cert.output;
        e.relu(); // forward applies an extra ReLU after every encoder
        match &mut h0 {
            None => h0 = Some(e),
            Some(h) => h.hull_assign(&e),
        }
    }
    let h0 = h0.expect("at least one node kind");

    let (upd_physical, upd_mapping, upd_dataflow) = model.update_mlps();
    let (readout_latency, readout_throughput) = model.readout_mlps();

    // Phase 1 (physical): messages are means of pre-phase states.
    let msg1 = mean_of_bounds(&[&h0], cfg.max_fanin);
    let in1 = h0.concat(&msg1);
    let c1 = certify_mlp_at(store, upd_physical, &in1, "upd.physical", &mut modules);
    let mut h1 = h0.clone();
    h1.hull_assign(&add_bounds(&h0, &c1.output));

    // Phase 2 (mapping): messages are sub-unit weighted sums of resource
    // states — enclosed by the capped zero-hull.
    let mut msg2 = h1.scale_hull(cfg.mapping_sum_cap);
    msg2.widen_rel(2 * cfg.max_fanin + 8);
    let in2 = h1.concat(&msg2);
    let c2 = certify_mlp_at(store, upd_mapping, &in2, "upd.mapping", &mut modules);
    let mut h2 = h1.clone();
    h2.hull_assign(&add_bounds(&h1, &c2.output));

    // Phase 3 (dataflow) + read-outs per depth. `upd.dataflow` and the
    // read-out module stats are recorded at their widest (deepest) input,
    // replacing the narrower earlier entries.
    let mut heads = Vec::with_capacity(cfg.max_depth + 1);
    let mut state = h2.clone();
    let mut tail_modules: Vec<ModuleCert> = Vec::new();
    for d in 0..=cfg.max_depth {
        tail_modules.clear();
        let lat = certify_mlp_at(
            store,
            readout_latency,
            &state,
            "readout.latency",
            &mut tail_modules,
        );
        // throughput context: mean of source finals (all in `state`'s
        // enclosure) or a copy of the sink state.
        let ctx = mean_of_bounds(&[&state], cfg.max_fanin);
        let tpt_in = state.concat(&ctx);
        let tpt = certify_mlp_at(
            store,
            readout_throughput,
            &tpt_in,
            "readout.throughput",
            &mut tail_modules,
        );
        heads.push(HeadBracket {
            latency: head_bracket(&lat),
            throughput: head_bracket(&tpt),
        });
        if d < cfg.max_depth {
            let msg = mean_of_bounds(&[&state], cfg.max_fanin);
            let cat = h2.concat(&msg);
            let c3 = certify_mlp_at(store, upd_dataflow, &cat, "upd.dataflow", &mut tail_modules);
            state.hull_assign(&add_bounds(&h2, &c3.output));
        }
    }
    modules.append(&mut tail_modules);

    Propagation {
        heads,
        modules,
        encoder_sensitivity,
    }
}

/// Certify a model over the feature domain. Fails (without touching any
/// weight data) when the model's shape metadata is inconsistent with its
/// stored matrices — the first ZT407 finding is returned.
pub fn certify_model(model: &ZeroTuneModel, cfg: &CertifyConfig) -> Result<ModelCert, Diagnostic> {
    if let Some(d) = crate::diagnostics::lint_model_structure(model)
        .into_iter()
        .next()
    {
        return Err(d);
    }
    let prop = propagate(model, cfg);
    // Self-calibration reference: a freshly-initialized model of the same
    // architecture, certified under the same config.
    let reference = ZeroTuneModel::new(model.config);
    let ref_prop = propagate(&reference, cfg);
    let ref_magnitude_log10 = ref_prop
        .heads
        .last()
        .expect("at least depth 0")
        .magnitude_log10();
    Ok(ModelCert {
        cfg: *cfg,
        heads: prop.heads,
        modules: prop.modules,
        encoder_sensitivity: prop.encoder_sensitivity,
        norm: model.norm,
        ref_magnitude_log10,
    })
}

/// Convenience: certify under the default config and bundle the ZT6xx
/// findings (or the ZT407 refusal) into a [`Report`].
pub fn certify_report(model: &ZeroTuneModel) -> (Option<ModelCert>, Report) {
    match certify_model(model, &CertifyConfig::default()) {
        Ok(cert) => {
            let report = Report::new(cert.diagnostics());
            (Some(cert), report)
        }
        Err(d) => (None, Report::new(vec![d])),
    }
}

/// Render a certificate as a human-readable table (the `zt-lint
/// --certify` detail block).
pub fn explain_certificate(cert: &ModelCert) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "certified over feature box [{}, {}], max depth {}, fan-in <= {}",
        cert.cfg.feature_lo, cert.cfg.feature_hi, cert.cfg.max_depth, cert.cfg.max_fanin
    );
    let _ = writeln!(
        out,
        "normalized magnitude: 1e{:.1} (fresh-init reference 1e{:.1})",
        cert.magnitude_log10(),
        cert.ref_magnitude_log10
    );
    let _ = writeln!(out, "depth | latency bracket (z) | throughput bracket (z)");
    for d in [0usize, 1, 2, 4, 8, cert.cfg.max_depth] {
        if d > cert.cfg.max_depth {
            continue;
        }
        if let Some(h) = cert.head(d) {
            let _ = writeln!(
                out,
                "{d:>5} | [{:>10.3e}, {:>10.3e}] | [{:>10.3e}, {:>10.3e}]",
                h.latency.lo, h.latency.hi, h.throughput.lo, h.throughput.hi
            );
        }
    }
    if let (Some(lat), Some(tpt)) = (
        cert.latency_ms(cert.cfg.max_depth),
        cert.throughput(cert.cfg.max_depth),
    ) {
        let _ = writeln!(
            out,
            "denormalized @ depth {}: latency [{:.3e}, {:.3e}] ms, throughput [{:.3e}, {:.3e}] /s",
            cert.cfg.max_depth, lat.lo, lat.hi, tpt.lo, tpt.hi
        );
    }
    for m in &cert.modules {
        if m.certified_dead > 0 || m.certified_saturated > 0 {
            let _ = writeln!(
                out,
                "{}: {} dead, {} saturated of {} hidden units",
                m.name, m.certified_dead, m.certified_saturated, m.hidden_units
            );
        }
    }
    for (name, sens) in &cert.encoder_sensitivity {
        let zeros = sens.iter().filter(|&&s| s == 0.0).count();
        let max = sens.iter().fold(0.0f64, |a, &b| a.max(b));
        let _ = writeln!(
            out,
            "{name}: max input sensitivity {max:.3e}, {zeros} zero-sensitivity feature(s)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    fn mini_model() -> ZeroTuneModel {
        ZeroTuneModel::new(ModelConfig {
            hidden: 12,
            seed: 42,
        })
    }

    fn mini_cfg() -> CertifyConfig {
        CertifyConfig {
            max_depth: 6,
            ..CertifyConfig::default()
        }
    }

    #[test]
    fn fresh_model_certifies_without_errors() {
        let model = mini_model();
        let cert = certify_model(&model, &mini_cfg()).expect("structure ok");
        let report = Report::new(cert.diagnostics());
        assert!(
            !report.has_errors(),
            "fresh model must certify clean:\n{report}"
        );
        assert_eq!(cert.heads.len(), 7);
        // brackets are nested: deeper ⊇ shallower
        for d in 1..cert.heads.len() {
            assert!(cert.heads[d].latency.lo <= cert.heads[d - 1].latency.lo);
            assert!(cert.heads[d].latency.hi >= cert.heads[d - 1].latency.hi);
        }
        // fresh init: the bracket contains 0 at every depth
        for h in &cert.heads {
            assert!(h.latency.contains(0.0));
            assert!(h.throughput.contains(0.0));
        }
    }

    #[test]
    fn inflated_weights_trigger_zt601() {
        let mut model = mini_model();
        let ids: Vec<_> = model.store.ids().collect();
        for id in ids {
            for v in &mut model.store.value_mut(id).data {
                *v *= 1e4;
            }
        }
        let cert = certify_model(&model, &mini_cfg()).expect("structure ok");
        let report = Report::new(cert.diagnostics());
        assert!(report.has_code("ZT601"), "expected ZT601:\n{report}");
        assert!(!cert.summary().certified);
    }

    #[test]
    fn hijacked_constant_head_triggers_zt602() {
        let mut model = mini_model();
        // Zero every weight of the latency head, then plant a huge bias
        // on its output: the head provably outputs exactly 1e6.
        let (lat, _) = {
            let (l, t) = model.readout_mlps();
            (l.clone(), t.clone())
        };
        for layer in &lat.layers {
            model.store.value_mut(layer.w).data.fill(0.0);
            model.store.value_mut(layer.b).data.fill(0.0);
        }
        let out_bias = lat.layers.last().unwrap().b;
        model.store.value_mut(out_bias).data[0] = 1e6;
        let cert = certify_model(&model, &mini_cfg()).expect("structure ok");
        let report = Report::new(cert.diagnostics());
        assert!(report.has_code("ZT602"), "expected ZT602:\n{report}");
    }

    #[test]
    fn zeroed_encoder_feature_triggers_zt604() {
        let mut model = mini_model();
        // Cut input feature 0 of the Source encoder.
        let enc = model.encoder(NodeKind::Source).clone();
        let w_id = enc.layers[0].w;
        let cols = model.store.value(w_id).cols;
        for j in 0..cols {
            model.store.value_mut(w_id).data[j] = 0.0;
        }
        let cert = certify_model(&model, &mini_cfg()).expect("structure ok");
        let report = Report::new(cert.diagnostics());
        assert!(report.has_code("ZT604"), "expected ZT604:\n{report}");
        let (_, sens) = cert
            .encoder_sensitivity
            .iter()
            .find(|(n, _)| n == "enc.Source")
            .unwrap();
        assert_eq!(sens[0], 0.0);
        assert!(cert.summary().zero_sensitivity_features >= 1);
    }

    #[test]
    fn forced_dead_unit_triggers_zt603() {
        let mut model = mini_model();
        let enc = model.encoder(NodeKind::Sink).clone();
        let w_id = enc.layers[0].w;
        let b_id = enc.layers[0].b;
        let (rows, cols) = {
            let w = model.store.value(w_id);
            (w.rows, w.cols)
        };
        // unit 2: strongly negative column + negative bias → certified dead
        for r in 0..rows {
            model.store.value_mut(w_id).data[r * cols + 2] = -10.0;
        }
        model.store.value_mut(b_id).data[2] = -1.0;
        let cert = certify_model(&model, &mini_cfg()).expect("structure ok");
        let report = Report::new(cert.diagnostics());
        assert!(report.has_code("ZT603"), "expected ZT603:\n{report}");
        assert!(cert.summary().dead_units >= 1);
    }

    #[test]
    fn check_prediction_flags_escapes_only() {
        let model = mini_model();
        let cert = certify_model(&model, &mini_cfg()).expect("structure ok");
        // 0 is inside every fresh bracket
        assert!(cert.check_prediction(0, [0.0, 0.0]).is_empty());
        // something absurdly far outside is flagged
        let flagged = cert.check_prediction(0, [f32::MAX, 0.0]);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].code, "ZT605");
        // beyond the certified depth: silent (premise not covered)
        assert!(cert
            .check_prediction(cert.cfg.max_depth + 1, [f32::MAX, 0.0])
            .is_empty());
    }

    #[test]
    fn structural_tamper_is_refused_with_zt407() {
        let mut tampered = mini_model();
        // grow one stored matrix's row count behind the layer metadata's
        // back: the certifier must refuse before touching weight data
        let id = tampered.store.ids().next().unwrap();
        tampered.store.value_mut(id).rows += 1;
        let err = certify_model(&tampered, &mini_cfg());
        match err {
            Err(d) => assert_eq!(d.code, "ZT407"),
            Ok(_) => panic!("tampered model must be refused"),
        }
    }

    #[test]
    fn summary_serializes_without_nonfinite_floats() {
        let model = mini_model();
        let cert = certify_model(&model, &mini_cfg()).expect("structure ok");
        let s = cert.summary();
        assert!(s.certified);
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("null"), "clamped floats only: {json}");
        let back: CertSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.certified, s.certified);
        assert_eq!(back.max_depth, s.max_depth);
    }

    #[test]
    fn explain_renders_depth_table() {
        let model = mini_model();
        let cert = certify_model(&model, &mini_cfg()).expect("structure ok");
        let text = explain_certificate(&cert);
        assert!(text.contains("depth | latency bracket"));
        assert!(text.contains("denormalized @ depth 6"));
    }
}
