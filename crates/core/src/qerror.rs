//! The q-error metric (Leis et al. \[29\] in the paper).
//!
//! `q(c, c') = max(c/c', c'/c) ≥ 1` measures the *relative factor* by
//! which a prediction deviates from the truth, symmetrically for over- and
//! under-estimation. A perfect estimate has q = 1.

use zt_dspsim::metrics::percentile;

/// Q-error of a prediction against the true value. Values are clamped to
/// a tiny positive floor so degenerate zero costs do not produce
/// infinities; a non-finite prediction or truth (NaN, ±∞ — e.g. a
/// diverged model) is the worst possible estimate and reports `+∞`
/// rather than silently clamping NaN to the floor.
pub fn q_error(predicted: f64, truth: f64) -> f64 {
    if !predicted.is_finite() || !truth.is_finite() {
        return f64::INFINITY;
    }
    let p = predicted.max(1e-9);
    let t = truth.max(1e-9);
    (p / t).max(t / p)
}

/// Summary of a q-error sample (median / 95th / mean), the numbers
/// reported in every table and figure of the paper's evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct QErrorStats {
    pub median: f64,
    pub p95: f64,
    pub mean: f64,
    pub count: usize,
}

impl QErrorStats {
    /// Compute stats from raw q-errors.
    pub fn from_qerrors(qs: &[f64]) -> Self {
        let mean = if qs.is_empty() {
            f64::NAN
        } else {
            qs.iter().sum::<f64>() / qs.len() as f64
        };
        QErrorStats {
            median: percentile(qs, 50.0),
            p95: percentile(qs, 95.0),
            mean,
            count: qs.len(),
        }
    }

    /// Compute stats from (prediction, truth) pairs.
    pub fn from_pairs<I: IntoIterator<Item = (f64, f64)>>(pairs: I) -> Self {
        let qs: Vec<f64> = pairs.into_iter().map(|(p, t)| q_error(p, t)).collect();
        Self::from_qerrors(&qs)
    }
}

impl std::fmt::Display for QErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {:.2}, 95th {:.2} (n={})",
            self.median, self.p95, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_one() {
        assert_eq!(q_error(42.0, 42.0), 1.0);
    }

    #[test]
    fn symmetric_over_and_under_estimation() {
        assert_eq!(q_error(10.0, 5.0), 2.0);
        assert_eq!(q_error(5.0, 10.0), 2.0);
    }

    #[test]
    fn always_at_least_one() {
        for (p, t) in [
            (1.0, 3.0),
            (3.0, 1.0),
            (0.0, 5.0),
            (5.0, 0.0),
            (1e-12, 1e-12),
        ] {
            assert!(q_error(p, t) >= 1.0, "q({p},{t}) < 1");
        }
    }

    #[test]
    fn zero_truth_does_not_blow_up_to_infinity() {
        let q = q_error(1.0, 0.0);
        assert!(q.is_finite());
    }

    #[test]
    fn stats_from_pairs() {
        let s = QErrorStats::from_pairs(vec![(1.0, 1.0), (2.0, 1.0), (1.0, 4.0)]);
        assert_eq!(s.count, 3);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - (1.0 + 2.0 + 4.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = QErrorStats::from_qerrors(&[]);
        assert!(s.median.is_nan());
        assert!(s.p95.is_nan());
        assert!(s.mean.is_nan());
        assert_eq!(s.count, 0);
    }

    #[test]
    fn empty_pairs_match_empty_qerrors() {
        let s = QErrorStats::from_pairs(Vec::<(f64, f64)>::new());
        assert_eq!(s.count, 0);
        assert!(s.median.is_nan());
    }

    #[test]
    fn zero_and_near_zero_predictions_are_floored() {
        // Both sides at/below the floor collapse to a perfect score
        // instead of 0/0 noise.
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(1e-300, 1e-300), 1.0);
        assert_eq!(q_error(-4.0, 0.0), 1.0); // negative costs clamp too
        let q = q_error(1e-12, 1.0);
        assert!((q - 1e9).abs() / 1e9 < 1e-9, "floored q {q}");
    }

    #[test]
    fn non_finite_inputs_are_worst_case_not_clamped() {
        assert_eq!(q_error(f64::NAN, 5.0), f64::INFINITY);
        assert_eq!(q_error(5.0, f64::NAN), f64::INFINITY);
        assert_eq!(q_error(f64::INFINITY, 5.0), f64::INFINITY);
        assert_eq!(q_error(f64::NEG_INFINITY, 5.0), f64::INFINITY);
        assert_eq!(q_error(f64::NAN, f64::NAN), f64::INFINITY);
    }

    #[test]
    fn nan_prediction_poisons_mean_but_is_never_nan() {
        let s = QErrorStats::from_pairs(vec![(1.0, 1.0), (f64::NAN, 1.0)]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, f64::INFINITY);
        assert!(!s.mean.is_nan());
    }
}
