//! The ZeroTune GNN (Section III-C, Fig. 4 of the paper).
//!
//! Architecture:
//!
//! * one **encoder MLP per node type** embeds the node's transferable
//!   feature vector into a shared hidden space (step ② of Fig. 4);
//! * three **message-passing phases** update hidden states with
//!   type-specific combine MLPs: physical edges between resources,
//!   operator-resource mapping edges (weighted by instance share), and
//!   finally the data-flow edges walked bottom-up to the sink (step ③);
//! * a **read-out MLP** on the sink's hidden state predicts normalized
//!   `[log latency, log throughput]` (step ④). Both cost metrics share the
//!   trunk, as the paper's final MLP node does; fine-tuning for other
//!   metrics only needs to replace this head.

use std::cell::RefCell;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use zt_nn::infer::{concat_pair, mean_of, relu_inplace, weighted_sum_of};
use zt_nn::{Matrix, Mlp, ParamStore, Scratch, Tape, Var};

use crate::diagnostics::Diagnostic;
use crate::estimator::{CostEstimator, CostPrediction};
use crate::features::{
    AGG_EXTRA_DIM, FILTER_EXTRA_DIM, JOIN_EXTRA_DIM, OP_COMMON_DIM, RESOURCE_DIM, SINK_EXTRA_DIM,
    SOURCE_EXTRA_DIM,
};
use crate::graph::{GraphEncoding, NodeKind};

/// Hyper-parameters of the GNN.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hidden-state width shared by all node types.
    pub hidden: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            hidden: 48,
            seed: 0x5EED,
        }
    }
}

/// Z-normalization of the two log-scaled targets.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TargetNorm {
    pub mean: [f32; 2],
    pub std: [f32; 2],
}

impl Default for TargetNorm {
    fn default() -> Self {
        TargetNorm {
            mean: [0.0, 0.0],
            std: [1.0, 1.0],
        }
    }
}

impl TargetNorm {
    /// Fit mean/std of `[ln latency, ln throughput]` over the training
    /// labels.
    pub fn fit<I: IntoIterator<Item = (f64, f64)>>(labels: I) -> Self {
        let logs: Vec<[f64; 2]> = labels
            .into_iter()
            .map(|(l, t)| [l.max(1e-9).ln(), t.max(1e-9).ln()])
            .collect();
        if logs.is_empty() {
            return TargetNorm::default();
        }
        let n = logs.len() as f64;
        let mut mean = [0f64; 2];
        for l in &logs {
            mean[0] += l[0];
            mean[1] += l[1];
        }
        mean[0] /= n;
        mean[1] /= n;
        let mut var = [0f64; 2];
        for l in &logs {
            var[0] += (l[0] - mean[0]).powi(2);
            var[1] += (l[1] - mean[1]).powi(2);
        }
        let std = [(var[0] / n).sqrt().max(1e-6), (var[1] / n).sqrt().max(1e-6)];
        TargetNorm {
            mean: [mean[0] as f32, mean[1] as f32],
            std: [std[0] as f32, std[1] as f32],
        }
    }

    /// `(latency_ms, throughput)` → normalized target vector.
    pub fn normalize(&self, latency_ms: f64, throughput: f64) -> [f32; 2] {
        [
            ((latency_ms.max(1e-9).ln() as f32) - self.mean[0]) / self.std[0],
            ((throughput.max(1e-9).ln() as f32) - self.mean[1]) / self.std[1],
        ]
    }

    /// Normalized model output → `(latency_ms, throughput)`.
    pub fn denormalize(&self, out: [f32; 2]) -> (f64, f64) {
        (
            ((out[0] * self.std[0] + self.mean[0]) as f64).exp(),
            ((out[1] * self.std[1] + self.mean[1]) as f64).exp(),
        )
    }
}

/// The zero-shot cost model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZeroTuneModel {
    pub config: ModelConfig,
    pub store: ParamStore,
    /// Encoders indexed by [`NodeKind`] position in [`NodeKind::ALL`].
    encoders: Vec<Mlp>,
    upd_physical: Mlp,
    upd_mapping: Mlp,
    upd_dataflow: Mlp,
    readout_latency: Mlp,
    readout_throughput: Mlp,
    pub norm: TargetNorm,
}

pub(crate) fn kind_index(kind: NodeKind) -> usize {
    NodeKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL")
}

pub(crate) fn kind_feature_dim(kind: NodeKind) -> usize {
    match kind {
        NodeKind::Source => OP_COMMON_DIM + SOURCE_EXTRA_DIM,
        NodeKind::Filter => OP_COMMON_DIM + FILTER_EXTRA_DIM,
        NodeKind::Aggregate => OP_COMMON_DIM + AGG_EXTRA_DIM,
        NodeKind::Join => OP_COMMON_DIM + JOIN_EXTRA_DIM,
        NodeKind::Sink => OP_COMMON_DIM + SINK_EXTRA_DIM,
        NodeKind::Resource => RESOURCE_DIM,
    }
}

impl ZeroTuneModel {
    pub fn new(config: ModelConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let h = config.hidden;
        let encoders = NodeKind::ALL
            .iter()
            .map(|&k| {
                Mlp::new(
                    &mut store,
                    &format!("enc.{k:?}"),
                    &[kind_feature_dim(k), h, h],
                    &mut rng,
                )
            })
            .collect();
        let upd_physical = Mlp::new(&mut store, "upd.physical", &[2 * h, h, h], &mut rng);
        let upd_mapping = Mlp::new(&mut store, "upd.mapping", &[2 * h, h, h], &mut rng);
        let upd_dataflow = Mlp::new(&mut store, "upd.dataflow", &[2 * h, h, h], &mut rng);
        // Two read-out heads sharing the message-passing trunk (the
        // paper's final MLP node, one output per cost metric): the
        // latency head reads the sink's hidden state; the throughput head
        // additionally sees a source-context skip (mean of the encoded
        // source nodes), anchoring throughput to the offered rates no
        // matter how deep the plan is.
        let readout_latency = Mlp::new(&mut store, "readout.latency", &[h, h, 1], &mut rng);
        let readout_throughput =
            Mlp::new(&mut store, "readout.throughput", &[2 * h, h, 1], &mut rng);
        ZeroTuneModel {
            config,
            store,
            encoders,
            upd_physical,
            upd_mapping,
            upd_dataflow,
            readout_latency,
            readout_throughput,
            norm: TargetNorm::default(),
        }
    }

    /// Total trainable weights.
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }

    /// Parameter ids of the read-out and message-combine MLPs — the set
    /// updated during few-shot fine-tuning (encoders stay frozen).
    pub fn head_param_ids(&self) -> Vec<zt_nn::ParamId> {
        let mut ids = self.readout_latency.param_ids();
        ids.extend(self.readout_throughput.param_ids());
        ids.extend(self.upd_dataflow.param_ids());
        ids.extend(self.upd_mapping.param_ids());
        ids
    }

    /// All named MLP modules — per-kind encoders, the three
    /// message-combine networks and the two read-out heads. This is the
    /// traversal surface for the diagnostics weight lints (dead-ReLU
    /// detection needs layer structure, not just the flat parameter
    /// store).
    pub fn modules(&self) -> Vec<(String, &Mlp)> {
        let mut out: Vec<(String, &Mlp)> = NodeKind::ALL
            .iter()
            .map(|&k| (format!("enc.{k:?}"), &self.encoders[kind_index(k)]))
            .collect();
        out.push(("upd.physical".to_string(), &self.upd_physical));
        out.push(("upd.mapping".to_string(), &self.upd_mapping));
        out.push(("upd.dataflow".to_string(), &self.upd_dataflow));
        out.push(("readout.latency".to_string(), &self.readout_latency));
        out.push(("readout.throughput".to_string(), &self.readout_throughput));
        out
    }

    /// The encoder MLP for a node kind (certification needs per-module
    /// access with the kind still attached, which [`ZeroTuneModel::modules`]
    /// erases into a display name).
    pub(crate) fn encoder(&self, kind: NodeKind) -> &Mlp {
        &self.encoders[kind_index(kind)]
    }

    /// The three message-combine MLPs `(physical, mapping, dataflow)`.
    pub(crate) fn update_mlps(&self) -> (&Mlp, &Mlp, &Mlp) {
        (&self.upd_physical, &self.upd_mapping, &self.upd_dataflow)
    }

    /// The two read-out heads `(latency, throughput)`.
    pub(crate) fn readout_mlps(&self) -> (&Mlp, &Mlp) {
        (&self.readout_latency, &self.readout_throughput)
    }

    /// Build the forward graph on `tape`; returns the 1×2 normalized
    /// prediction node.
    pub fn forward(&self, tape: &mut Tape, graph: &GraphEncoding) -> Var {
        let n = graph.nodes.len();

        // Step ②: encode every node with its type's MLP.
        let mut h: Vec<Var> = Vec::with_capacity(n);
        for node in &graph.nodes {
            let x = tape.leaf(zt_nn::Matrix::row(&node.features));
            let enc = &self.encoders[kind_index(node.kind)];
            debug_assert_eq!(enc.in_dim(), node.features.len());
            let e = enc.forward(tape, &self.store, x);
            h.push(tape.relu(e));
        }

        // Phase 1: physical edges among resources (synchronous update).
        // All phases use residual updates (h ← h + U(h ‖ msg)): residuals
        // keep hidden states stable when the message-passing depth at
        // inference exceeds the depths seen in training (e.g. 6-way joins
        // after training on 2-/3-way joins).
        if !graph.physical.is_empty() {
            let mut incoming: Vec<Vec<Var>> = vec![Vec::new(); n];
            for &(a, b) in &graph.physical {
                incoming[b].push(h[a]);
            }
            let snapshot = h.clone();
            for (i, inc) in incoming.iter().enumerate() {
                if inc.is_empty() {
                    continue;
                }
                let msg = tape.mean_vars(inc);
                let cat = tape.concat_cols(&[snapshot[i], msg]);
                let upd = self.upd_physical.forward(tape, &self.store, cat);
                h[i] = tape.add(snapshot[i], upd);
            }
        }

        // Phase 2: operator-resource mapping (instance-share weighted).
        {
            let mut per_op: Vec<Vec<(Var, f32)>> = vec![Vec::new(); n];
            for &(res, op, w) in &graph.mapping {
                per_op[op].push((h[res], w));
            }
            let snapshot = h.clone();
            for (op, terms) in per_op.iter().enumerate() {
                if terms.is_empty() {
                    continue;
                }
                let msg = tape.weighted_sum(terms);
                let cat = tape.concat_cols(&[snapshot[op], msg]);
                let upd = self.upd_mapping.forward(tape, &self.store, cat);
                h[op] = tape.add(snapshot[op], upd);
            }
        }

        // Phase 3: bottom-up data-flow pass toward the sink.
        for &node in &graph.topo {
            let upstream: Vec<Var> = graph
                .data_flow
                .iter()
                .filter(|&&(_, d)| d == node)
                .map(|&(u, _)| h[u])
                .collect();
            if upstream.is_empty() {
                continue;
            }
            let msg = tape.mean_vars(&upstream);
            let cat = tape.concat_cols(&[h[node], msg]);
            let upd = self.upd_dataflow.forward(tape, &self.store, cat);
            h[node] = tape.add(h[node], upd);
        }

        // Step ④: read out at the sink. Latency from the sink state;
        // throughput additionally from the source-context skip.
        let source_states: Vec<Var> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| node.kind == NodeKind::Source)
            .map(|(i, _)| h[i])
            .collect();
        let context = if source_states.is_empty() {
            h[graph.sink]
        } else {
            tape.mean_vars(&source_states)
        };
        let lat = self
            .readout_latency
            .forward(tape, &self.store, h[graph.sink]);
        let tpt_in = tape.concat_cols(&[h[graph.sink], context]);
        let tpt = self.readout_throughput.forward(tape, &self.store, tpt_in);
        tape.concat_cols(&[lat, tpt])
    }

    /// Tapeless forward pass: the same three message-passing phases as
    /// [`ZeroTuneModel::forward`], computed directly on [`Matrix`] values
    /// from a reusable [`Scratch`] arena — no tape nodes, no weight
    /// clones, and (after warm-up) no allocation. Every aggregation
    /// mirrors the corresponding tape op's accumulation order, so the
    /// normalized outputs match the taped forward bit for bit.
    pub fn forward_infer(&self, graph: &GraphEncoding, scratch: &mut Scratch) -> [f32; 2] {
        let n = graph.nodes.len();

        // Step ②: encode every node with its type's MLP.
        let mut h: Vec<Matrix> = Vec::with_capacity(n);
        for node in &graph.nodes {
            let x = scratch.row_of(&node.features);
            let enc = &self.encoders[kind_index(node.kind)];
            debug_assert_eq!(enc.in_dim(), node.features.len());
            let mut e = enc.infer(&self.store, &x, scratch);
            relu_inplace(&mut e);
            scratch.recycle(x);
            h.push(e);
        }

        // Phase 1: physical edges among resources (synchronous update —
        // all messages read the pre-phase states, so new states are
        // staged and swapped in afterwards).
        let mut staged: Vec<(usize, Matrix)> = Vec::new();
        if !graph.physical.is_empty() {
            let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
            for &(a, b) in &graph.physical {
                incoming[b].push(a);
            }
            for (i, inc) in incoming.iter().enumerate() {
                if inc.is_empty() {
                    continue;
                }
                let msg = mean_of(&h, inc, scratch);
                let cat = concat_pair(&h[i], &msg, scratch);
                scratch.recycle(msg);
                let upd = self.upd_physical.infer(&self.store, &cat, scratch);
                scratch.recycle(cat);
                let mut next = scratch.copy_of(&h[i]);
                next.add_assign(&upd);
                scratch.recycle(upd);
                staged.push((i, next));
            }
            for (i, next) in staged.drain(..) {
                scratch.recycle(std::mem::replace(&mut h[i], next));
            }
        }

        // Phase 2: operator-resource mapping (instance-share weighted,
        // also synchronous).
        {
            let mut per_op: Vec<Vec<(usize, f32)>> = vec![Vec::new(); n];
            for &(res, op, w) in &graph.mapping {
                per_op[op].push((res, w));
            }
            for (op, terms) in per_op.iter().enumerate() {
                if terms.is_empty() {
                    continue;
                }
                let msg = weighted_sum_of(&h, terms, scratch);
                let cat = concat_pair(&h[op], &msg, scratch);
                scratch.recycle(msg);
                let upd = self.upd_mapping.infer(&self.store, &cat, scratch);
                scratch.recycle(cat);
                let mut next = scratch.copy_of(&h[op]);
                next.add_assign(&upd);
                scratch.recycle(upd);
                staged.push((op, next));
            }
            for (op, next) in staged.drain(..) {
                scratch.recycle(std::mem::replace(&mut h[op], next));
            }
        }

        // Phase 3: bottom-up data-flow pass toward the sink (sequential in
        // topological order: downstream nodes see already-updated
        // upstream states, exactly like the taped pass).
        let mut upstream: Vec<usize> = Vec::new();
        for &node in &graph.topo {
            upstream.clear();
            upstream.extend(
                graph
                    .data_flow
                    .iter()
                    .filter(|&&(_, d)| d == node)
                    .map(|&(u, _)| u),
            );
            if upstream.is_empty() {
                continue;
            }
            let msg = mean_of(&h, &upstream, scratch);
            let cat = concat_pair(&h[node], &msg, scratch);
            scratch.recycle(msg);
            let upd = self.upd_dataflow.infer(&self.store, &cat, scratch);
            scratch.recycle(cat);
            h[node].add_assign(&upd);
            scratch.recycle(upd);
        }

        // Step ④: read out at the sink.
        let sources: Vec<usize> = graph
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| node.kind == NodeKind::Source)
            .map(|(i, _)| i)
            .collect();
        let context = if sources.is_empty() {
            scratch.copy_of(&h[graph.sink])
        } else {
            mean_of(&h, &sources, scratch)
        };
        let lat = self
            .readout_latency
            .infer(&self.store, &h[graph.sink], scratch);
        let tpt_in = concat_pair(&h[graph.sink], &context, scratch);
        scratch.recycle(context);
        let tpt = self.readout_throughput.infer(&self.store, &tpt_in, scratch);
        scratch.recycle(tpt_in);
        let out = [lat.data[0], tpt.data[0]];
        scratch.recycle(lat);
        scratch.recycle(tpt);
        for m in h {
            scratch.recycle(m);
        }
        out
    }

    /// Predict with an explicit scratch arena (the batched/threaded entry
    /// points each own one so repeated calls never allocate).
    pub fn predict_with(&self, graph: &GraphEncoding, scratch: &mut Scratch) -> CostPrediction {
        let raw = self.forward_infer(graph, scratch);
        debug_assert!(
            raw.iter().all(|v| v.is_finite()),
            "non-finite model prediction {raw:?}; run diagnostics::lint_model"
        );
        self.norm.denormalize(raw).into()
    }

    /// Width-guarded [`ZeroTuneModel::forward_infer`]: validates the
    /// stored weight shapes (a deserialized model whose layer metadata
    /// lies about its matrices would otherwise misalign or panic inside
    /// the matmul kernel — ZT407) and every node's feature width against
    /// its encoder (ZT205) *before* running the forward pass. Both checks
    /// compare shape metadata only, so the guard costs nanoseconds per
    /// call.
    pub fn forward_infer_checked(
        &self,
        graph: &GraphEncoding,
        scratch: &mut Scratch,
    ) -> Result<[f32; 2], Diagnostic> {
        if let Some(d) = crate::diagnostics::lint_model_structure(self)
            .into_iter()
            .next()
        {
            return Err(d);
        }
        for (i, node) in graph.nodes.iter().enumerate() {
            let enc = &self.encoders[kind_index(node.kind)];
            let expected = self.store.value(enc.layers[0].w).rows;
            if node.features.len() != expected {
                return Err(Diagnostic::error(
                    "ZT205",
                    format!(
                        "{:?} node {i} has {} features, its encoder expects {expected}",
                        node.kind,
                        node.features.len()
                    ),
                ));
            }
        }
        Ok(self.forward_infer(graph, scratch))
    }

    /// Like [`ZeroTuneModel::predict_with`], but routed through
    /// [`ZeroTuneModel::forward_infer_checked`] (ZT205/ZT407 width guards)
    /// and surfacing a non-finite prediction as a ZT406 [`Diagnostic`]
    /// instead of silently propagating NaN costs into the optimizer's
    /// Eq. 1 objective.
    pub fn predict_checked(&self, graph: &GraphEncoding) -> Result<CostPrediction, Diagnostic> {
        let raw = SCRATCH.with(|s| self.forward_infer_checked(graph, &mut s.borrow_mut()))?;
        if raw.iter().all(|v| v.is_finite()) {
            Ok(self.norm.denormalize(raw).into())
        } else {
            Err(Diagnostic::error(
                "ZT406",
                format!(
                    "model produced a non-finite prediction [{}, {}] — weights are likely corrupted (run lint_model)",
                    raw[0], raw[1]
                ),
            ))
        }
    }

    /// Serialize the model (weights + normalization) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Load a model back from [`ZeroTuneModel::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

thread_local! {
    /// Per-thread scratch arena for [`CostEstimator::predict`]: the trait
    /// method takes `&self`, so the reusable buffers live thread-locally —
    /// repeated single predictions allocate nothing after warm-up and the
    /// model stays `Sync`.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

impl CostEstimator for ZeroTuneModel {
    fn name(&self) -> &'static str {
        "ZeroTune"
    }

    fn predict(&self, graph: &GraphEncoding) -> CostPrediction {
        SCRATCH.with(|s| self.predict_with(graph, &mut s.borrow_mut()))
    }

    /// Evaluate a candidate batch, fanning the chunks out over scoped
    /// threads (each with its own scratch arena). Falls back to a serial
    /// loop on single-core hosts or tiny batches.
    fn predict_batch(&self, graphs: &[GraphEncoding]) -> Vec<CostPrediction> {
        let _span = zt_telemetry::span_arg("predict.batch", || graphs.len().to_string());
        zt_telemetry::counter_add("predict.graphs", graphs.len() as u64);
        let batch_start = std::time::Instant::now();
        let workers = std::thread::available_parallelism()
            .map_or(1, std::num::NonZero::get)
            .min(graphs.len());
        let out: Vec<CostPrediction> = if workers <= 1 {
            let mut scratch = Scratch::new();
            graphs
                .iter()
                .map(|g| self.predict_with(g, &mut scratch))
                .collect()
        } else {
            let chunk = graphs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = graphs
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            let _chunk_span =
                                zt_telemetry::span_arg("predict.chunk", || part.len().to_string());
                            let mut scratch = Scratch::new();
                            part.iter()
                                .map(|g| self.predict_with(g, &mut scratch))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|hdl| hdl.join().expect("prediction worker panicked"))
                    .collect()
            })
        };
        if !graphs.is_empty() {
            zt_telemetry::observe(
                "predict.batch_ms",
                batch_start.elapsed().as_secs_f64() * 1e3,
            );
        }
        out
    }

    /// Derive the interval certificate on demand (milliseconds for the
    /// paper-scale network; the strict tuner calls this once per query).
    fn certificate(&self) -> Option<crate::certify::ModelCert> {
        crate::certify::certify_model(self, &crate::certify::CertifyConfig::default()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureMask;
    use crate::graph::encode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_dspsim::cluster::{Cluster, ClusterType};
    use zt_dspsim::ChainingMode;
    use zt_query::{ParallelQueryPlan, QueryGenerator, QueryStructure};

    fn sample_graph(structure: QueryStructure, p: u32, seed: u64) -> GraphEncoding {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = QueryGenerator::seen().generate(structure, &mut rng);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
        encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all())
    }

    #[test]
    fn forward_produces_two_outputs() {
        let model = ZeroTuneModel::new(ModelConfig::default());
        for s in [
            QueryStructure::Linear,
            QueryStructure::TwoWayJoin,
            QueryStructure::NWayJoin(5),
        ] {
            let g = sample_graph(s, 4, 1);
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &g);
            assert_eq!(tape.value(out).shape(), (1, 2));
            assert!(tape.value(out).data.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn scoped_thread_predict_batch_handles_empty_candidate_list() {
        let model = ZeroTuneModel::new(ModelConfig::default());
        assert!(model.predict_batch(&[]).is_empty());
    }

    #[test]
    fn different_parallelism_different_prediction() {
        let model = ZeroTuneModel::new(ModelConfig::default());
        let g1 = sample_graph(QueryStructure::Linear, 1, 2);
        let g16 = sample_graph(QueryStructure::Linear, 16, 2);
        let p1 = model.predict(&g1);
        let p16 = model.predict(&g16);
        assert_ne!(p1, p16);
    }

    #[test]
    fn tapeless_forward_matches_tape_exactly() {
        let model = ZeroTuneModel::new(ModelConfig::default());
        let mut scratch = Scratch::new();
        for (i, s) in [
            QueryStructure::Linear,
            QueryStructure::TwoWayJoin,
            QueryStructure::NWayJoin(5),
        ]
        .into_iter()
        .enumerate()
        {
            let g = sample_graph(s, 1 + i as u32 * 3, 7 + i as u64);
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &g);
            let taped = tape.value(out).clone();
            let tapeless = model.forward_infer(&g, &mut scratch);
            assert_eq!(taped.data, tapeless.to_vec(), "structure {s:?}");
        }
    }

    #[test]
    fn target_norm_round_trip() {
        let norm = TargetNorm::fit(vec![(10.0, 1000.0), (100.0, 5000.0), (55.0, 2000.0)]);
        let z = norm.normalize(42.0, 3000.0);
        let (lat, tpt) = norm.denormalize(z);
        assert!((lat - 42.0).abs() / 42.0 < 1e-3);
        assert!((tpt - 3000.0).abs() / 3000.0 < 1e-3);
    }

    #[test]
    fn target_norm_is_standardizing() {
        let labels: Vec<(f64, f64)> = (1..100).map(|i| (i as f64, (i * i) as f64)).collect();
        let norm = TargetNorm::fit(labels.clone());
        let zs: Vec<[f32; 2]> = labels.iter().map(|&(l, t)| norm.normalize(l, t)).collect();
        let mean: f32 = zs.iter().map(|z| z[0]).sum::<f32>() / zs.len() as f32;
        assert!(mean.abs() < 1e-3, "mean {mean}");
    }

    #[test]
    fn gnn_gradients_match_finite_differences() {
        let mut model = ZeroTuneModel::new(ModelConfig { hidden: 8, seed: 3 });
        let g = sample_graph(QueryStructure::TwoWayJoin, 2, 4);
        let target = zt_nn::Matrix::row(&[0.3, -0.5]);
        let report = zt_nn::gradcheck::check_gradients(
            &mut model.store.clone(),
            |tape, store| {
                // rebuild the model view over the checked store
                let mut m = model.clone();
                m.store = store.clone();
                let out = m.forward(tape, &g);
                let t = tape.leaf(target.clone());
                tape.mse_loss(out, t)
            },
            1e-2,
            4,
        );
        assert!(report.checked > 20, "checked only {}", report.checked);
        // A handful of coordinates may sit on ReLU kinks where central
        // differences are unreliable; a systematic gradient bug would
        // affect a large fraction of coordinates.
        assert!(
            report.median_rel_error() < 0.01,
            "GNN median gradient mismatch: {}",
            report.median_rel_error()
        );
        assert!(
            report.fraction_above(0.1) < 0.1,
            "too many mismatched gradients: {:.1}% above 0.1 (max {})",
            report.fraction_above(0.1) * 100.0,
            report.max_rel_error
        );
        // keep model "used"
        model.norm = TargetNorm::default();
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let mut model = ZeroTuneModel::new(ModelConfig::default());
        model.norm = TargetNorm::fit(vec![(10.0, 100.0), (20.0, 200.0)]);
        let g = sample_graph(QueryStructure::Linear, 4, 5);
        let before = model.predict(&g);
        let json = model.to_json();
        let restored = ZeroTuneModel::from_json(&json).unwrap();
        let after = restored.predict(&g);
        assert_eq!(before, after);
    }

    #[test]
    fn head_params_are_a_strict_subset() {
        let model = ZeroTuneModel::new(ModelConfig::default());
        let head = model.head_param_ids();
        assert!(!head.is_empty());
        assert!(head.len() < model.store.len());
    }
}
