//! Parallelism-degree enumeration strategies for training-data collection
//! (Section IV of the paper).
//!
//! * [`OptiSampleConfig`] — Algorithm 1: walk the operator graph
//!   bottom-up, estimate selectivities (Definitions 4–6) and output rates
//!   (Definition 3), and set each operator's parallelism proportionally to
//!   its estimated input rate (Definitions 7–8): `P(ω) = sf · In_ER(ω)`,
//!   clamped to `1 ≤ P ≤ n_core`. The scaling factor is drawn per query
//!   from a log-uniform spread and the selectivity estimates carry
//!   lognormal noise — the paper deliberately uses *estimated* (imperfect)
//!   values to keep exploration in the training data.
//! * [`RandomConfig`] — the baseline used by prior work \[20\]: uniform
//!   random degrees, which produce many noisy plans (e.g. low parallelism
//!   upstream of high parallelism, causing backpressure).

use rand::Rng;
use serde::{Deserialize, Serialize};
use zt_dspsim::cluster::Cluster;
use zt_query::{LogicalPlan, OperatorKind};

/// Configuration of the OptiSample strategy.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OptiSampleConfig {
    /// Base scaling factor `sf` (instances per tuple/s), calibrated to the
    /// backpressure point of the simulated operators (~50k tuples/s per
    /// instance keeps one instance just below saturation; see the paper's
    /// footnote 3).
    pub base_sf: f64,
    /// Per-query log-uniform spread of the scaling factor: a multiplier is
    /// drawn from `[1/spread, spread]` so the training data explores a
    /// band of over-/under-provisioning around the analytical optimum.
    pub sf_spread: f64,
    /// Lognormal σ of the selectivity estimation error (estimates are
    /// deliberately imperfect).
    pub estimate_noise: f64,
    /// Hard cap on any parallelism degree (Table III ends at XL < 128).
    pub max_parallelism: u32,
}

impl Default for OptiSampleConfig {
    fn default() -> Self {
        OptiSampleConfig {
            base_sf: 1.0 / 50_000.0,
            sf_spread: 6.0,
            estimate_noise: 0.3,
            max_parallelism: 128,
        }
    }
}

/// Configuration of the uniform-random baseline strategy.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RandomConfig {
    pub max_parallelism: u32,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            max_parallelism: 128,
        }
    }
}

/// A parallelism-degree enumeration strategy.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum EnumerationStrategy {
    OptiSample(OptiSampleConfig),
    Random(RandomConfig),
}

impl EnumerationStrategy {
    pub fn opti_sample() -> Self {
        EnumerationStrategy::OptiSample(OptiSampleConfig::default())
    }

    pub fn random() -> Self {
        EnumerationStrategy::Random(RandomConfig::default())
    }

    pub fn name(&self) -> &'static str {
        match self {
            EnumerationStrategy::OptiSample(_) => "OptiSample",
            EnumerationStrategy::Random(_) => "Random",
        }
    }

    /// Assign a parallelism degree to every operator of `plan` for a
    /// deployment on `cluster`.
    pub fn assign<R: Rng + ?Sized>(
        &self,
        plan: &LogicalPlan,
        cluster: &Cluster,
        rng: &mut R,
    ) -> Vec<u32> {
        match self {
            EnumerationStrategy::OptiSample(cfg) => opti_sample_assign(plan, cluster, cfg, rng),
            EnumerationStrategy::Random(cfg) => {
                let cap = cfg.max_parallelism.min(cluster.total_cores()).max(1);
                plan.ops().iter().map(|_| rng.gen_range(1..=cap)).collect()
            }
        }
    }

    /// Factored enumeration: `k` independent assignments for **one**
    /// `(plan, cluster)` template. Because `P(ω) = ⌈sf · In_ER(ω)⌉` is
    /// clamped to `[1, n_core]` and the per-query scaling factor only
    /// spreads log-uniformly, nearby draws frequently collapse to the
    /// *same* parallelism vector — exactly the repeated
    /// `(template, cluster, assignment)` tuples that
    /// [`zt_dspsim::simcache::SimCache`] memoizes during labeling.
    pub fn enumerate<R: Rng + ?Sized>(
        &self,
        plan: &LogicalPlan,
        cluster: &Cluster,
        k: usize,
        rng: &mut R,
    ) -> Vec<Vec<u32>> {
        (0..k).map(|_| self.assign(plan, cluster, rng)).collect()
    }
}

/// Estimated input rates per operator (Definition 3 applied with noisy
/// selectivity estimates). `noise_mult` perturbs each selectivity
/// estimate; pass 1.0-factors for exact estimates.
pub fn estimate_input_rates<R: Rng + ?Sized>(
    plan: &LogicalPlan,
    estimate_noise: f64,
    rng: &mut R,
) -> Vec<f64> {
    let ir = plan.validate().expect("validated plan");
    let n = plan.num_ops();
    let mut input = vec![0f64; n];
    let mut output = vec![0f64; n];
    for &id in ir.topo_order() {
        let i = id.idx();
        let up = ir.upstream(id);
        let in_rate: f64 = up.iter().map(|u| output[u.idx()]).sum();
        let noise = if estimate_noise > 0.0 {
            let u1: f64 = rng.gen_range(1e-9..1.0f64);
            let u2: f64 = rng.gen_range(0.0..1.0f64);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (estimate_noise * z).exp()
        } else {
            1.0
        };
        match &plan.op(id).kind {
            OperatorKind::Source(s) => {
                input[i] = s.event_rate;
                output[i] = s.event_rate;
            }
            kind => {
                input[i] = in_rate;
                // Out_ER(ω) = In_ER(ω) · ŝel(ω)  (Definition 3; estimates
                // use Definitions 4–6 with estimation noise).
                let est_sel = (kind.selectivity() * noise).clamp(0.0, 1.0);
                output[i] = in_rate * est_sel;
            }
        }
    }
    input
}

/// Algorithm 1 of the paper.
fn opti_sample_assign<R: Rng + ?Sized>(
    plan: &LogicalPlan,
    cluster: &Cluster,
    cfg: &OptiSampleConfig,
    rng: &mut R,
) -> Vec<u32> {
    // Per-query scaling factor (exploration band around base_sf).
    let spread = cfg.sf_spread.max(1.0);
    let mult = spread.powf(rng.gen_range(-1.0..1.0f64));
    let sf = cfg.base_sf * mult;
    let cap = cfg.max_parallelism.min(cluster.total_cores()).max(1);

    let input_rates = estimate_input_rates(plan, cfg.estimate_noise, rng);
    plan.ops()
        .iter()
        .map(|op| {
            // P(ω) = sf · In_ER(ω)  (Definitions 7 and 8), with the
            // constraints 1 ≤ P ≤ n_core.
            let p = (sf * input_rates[op.id.idx()]).ceil() as i64;
            (p.clamp(1, cap as i64)) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_dspsim::cluster::ClusterType;
    use zt_query::{QueryGenerator, QueryStructure};

    fn plan_with_rate(seed: u64) -> LogicalPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        QueryGenerator::seen().generate(QueryStructure::Linear, &mut rng)
    }

    fn cluster() -> Cluster {
        Cluster::homogeneous(ClusterType::M510, 4, 10.0) // 32 cores
    }

    #[test]
    fn assignments_respect_constraints() {
        let mut rng = StdRng::seed_from_u64(1);
        let cluster = cluster();
        for strategy in [
            EnumerationStrategy::opti_sample(),
            EnumerationStrategy::random(),
        ] {
            for seed in 0..30 {
                let plan = plan_with_rate(seed);
                let p = strategy.assign(&plan, &cluster, &mut rng);
                assert_eq!(p.len(), plan.num_ops());
                for &pi in &p {
                    assert!(pi >= 1, "{}: P < 1", strategy.name());
                    assert!(
                        pi <= cluster.total_cores(),
                        "{}: P {pi} exceeds cores",
                        strategy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn optisample_scales_with_event_rate() {
        // Average assigned parallelism must grow with the source rate.
        let cfg = OptiSampleConfig {
            estimate_noise: 0.0,
            sf_spread: 1.0,
            ..OptiSampleConfig::default()
        };
        let strategy = EnumerationStrategy::OptiSample(cfg);
        let cluster = cluster();
        let mut rng = StdRng::seed_from_u64(2);

        let mut avg_for = |rate: f64| {
            use zt_query::operators::*;
            use zt_query::{DataType, TupleSchema};
            let mut plan = LogicalPlan::new("t");
            let s = plan.add(OperatorKind::Source(SourceOp {
                event_rate: rate,
                schema: TupleSchema::uniform(DataType::Int, 2),
                key_cardinality: None,
            }));
            let f = plan.add(OperatorKind::Filter(FilterOp {
                function: FilterFunction::Gt,
                literal_class: DataType::Int,
                selectivity: 0.5,
            }));
            let k = plan.add(OperatorKind::Sink(SinkOp));
            plan.connect(s, f);
            plan.connect(f, k);
            let p = strategy.assign(&plan, &cluster, &mut rng);
            p.iter().sum::<u32>() as f64 / p.len() as f64
        };

        let low = avg_for(1_000.0);
        let high = avg_for(500_000.0);
        assert!(high > low, "high-rate avg {high} not above low-rate {low}");
    }

    #[test]
    fn optisample_downstream_parallelism_follows_selectivity() {
        // With a very selective filter, the downstream operator needs
        // less parallelism than the filter itself (Definition 8).
        use zt_query::operators::*;
        use zt_query::{DataType, TupleSchema};
        let mut plan = LogicalPlan::new("t");
        let s = plan.add(OperatorKind::Source(SourceOp {
            event_rate: 800_000.0,
            schema: TupleSchema::uniform(DataType::Int, 2),
            key_cardinality: None,
        }));
        let f = plan.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Eq,
            literal_class: DataType::Int,
            selectivity: 0.01,
        }));
        let f2 = plan.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Int,
            selectivity: 0.5,
        }));
        let k = plan.add(OperatorKind::Sink(SinkOp));
        plan.connect(s, f);
        plan.connect(f, f2);
        plan.connect(f2, k);

        let cfg = OptiSampleConfig {
            estimate_noise: 0.0,
            sf_spread: 1.0,
            ..OptiSampleConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let p = EnumerationStrategy::OptiSample(cfg).assign(&plan, &cluster(), &mut rng);
        assert!(
            p[f2.idx()] < p[f.idx()],
            "downstream of selective filter should need less parallelism: {p:?}"
        );
    }

    #[test]
    fn estimated_rates_match_exact_propagation_without_noise() {
        let plan = plan_with_rate(7);
        let mut rng = StdRng::seed_from_u64(4);
        let rates = estimate_input_rates(&plan, 0.0, &mut rng);
        // source input = event rate; filter input = event rate
        let src_rate = plan
            .ops()
            .iter()
            .find_map(|o| match &o.kind {
                OperatorKind::Source(s) => Some(s.event_rate),
                _ => None,
            })
            .unwrap();
        assert_eq!(rates[0], src_rate);
        assert_eq!(rates[1], src_rate);
    }

    #[test]
    fn noise_perturbs_estimates() {
        let plan = plan_with_rate(8);
        let exact = estimate_input_rates(&plan, 0.0, &mut StdRng::seed_from_u64(5));
        let noisy = estimate_input_rates(&plan, 0.5, &mut StdRng::seed_from_u64(5));
        // downstream rates (after a selectivity) differ under noise
        assert_ne!(exact[2], noisy[2]);
    }

    #[test]
    fn factored_enumeration_recurs_on_assignments() {
        // Low input rates clamp most OptiSample draws to all-ones
        // parallelism, so a factored enumeration over one template must
        // revisit assignments — the recurrence the label cache exploits.
        let plan = plan_with_rate(1); // seen ranges, moderate rate
        let mut rng = StdRng::seed_from_u64(10);
        let strategy = EnumerationStrategy::opti_sample();
        let cands = strategy.enumerate(&plan, &cluster(), 64, &mut rng);
        assert_eq!(cands.len(), 64);
        let mut unique: Vec<&Vec<u32>> = Vec::new();
        for c in &cands {
            if !unique.contains(&c) {
                unique.push(c);
            }
        }
        assert!(
            unique.len() < cands.len(),
            "64 draws produced {} distinct assignments — no recurrence",
            unique.len()
        );
    }

    #[test]
    fn random_strategy_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let cluster = cluster();
        let strategy = EnumerationStrategy::random();
        let mut seen_low = false;
        let mut seen_high = false;
        for seed in 0..50 {
            let plan = plan_with_rate(seed);
            for p in strategy.assign(&plan, &cluster, &mut rng) {
                if p <= 4 {
                    seen_low = true;
                }
                if p >= 24 {
                    seen_high = true;
                }
            }
        }
        assert!(seen_low && seen_high, "random strategy not exploring");
    }
}
