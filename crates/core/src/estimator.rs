//! The unified cost-estimation interface.
//!
//! Every cost model in the workspace — the ZeroTune GNN and the
//! flat-vector baselines — predicts the same two quantities for an encoded
//! plan. [`CostEstimator`] is the one trait they all implement, so the
//! optimizer, the experiment harness and the examples share a single
//! prediction path:
//!
//! * [`CostEstimator::predict`] — one what-if prediction;
//! * [`CostEstimator::predict_batch`] — a candidate batch. The default
//!   implementation is a serial loop; estimators with a cheaper amortized
//!   path (the GNN reuses a scratch arena and fans out over
//!   `std::thread::scope`) override it.
//!
//! Implementations must be `Send + Sync`: the optimizer may evaluate
//! candidate batches from multiple threads against one shared estimator,
//! so `predict` takes `&self` and interior state (if any) must be
//! thread-safe (the GNN keeps its scratch buffers thread-local).

use crate::dataset::Sample;
use crate::graph::GraphEncoding;
use crate::qerror::QErrorStats;

/// A what-if cost prediction for one candidate deployment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostPrediction {
    /// Predicted end-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// Predicted sustained throughput in events per second.
    pub throughput: f64,
}

impl CostPrediction {
    /// `(latency_ms, throughput)` — the historical tuple shape.
    pub fn pair(self) -> (f64, f64) {
        (self.latency_ms, self.throughput)
    }
}

impl From<(f64, f64)> for CostPrediction {
    fn from((latency_ms, throughput): (f64, f64)) -> Self {
        CostPrediction {
            latency_ms,
            throughput,
        }
    }
}

/// A cost model predicting `(latency, throughput)` for encoded plans.
pub trait CostEstimator: Send + Sync {
    /// Human-readable model name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Predict the cost of one encoded plan.
    fn predict(&self, graph: &GraphEncoding) -> CostPrediction;

    /// Predict a batch of candidates. Semantics are exactly
    /// `graphs.iter().map(|g| self.predict(g))` — same values, same order —
    /// but implementations may amortize per-call setup or evaluate
    /// candidates in parallel.
    ///
    /// The exact-values/exact-order contract is load-bearing for the
    /// optimizer: the lattice search (`SearchSpace::Lattice`) proves its
    /// branch-and-bound outcome-equivalent to exhaustive scoring by
    /// feeding both the identical survivor batch, which only pins the
    /// same argmin if batching itself can never reorder or perturb a
    /// prediction (`tests/optimizer_search.rs` checks the winners
    /// bitwise).
    fn predict_batch(&self, graphs: &[GraphEncoding]) -> Vec<CostPrediction> {
        graphs.iter().map(|g| self.predict(g)).collect()
    }

    /// The estimator's domain-wide interval certificate
    /// ([`crate::certify::certify_model`]), when one can be derived.
    /// `None` (the default) for estimators without a certifiable network;
    /// the optimizer's strict mode uses this to cross-check the winning
    /// prediction against its certified bracket (ZT605).
    fn certificate(&self) -> Option<crate::certify::ModelCert> {
        None
    }
}

/// Q-error statistics of any estimator over a sample set:
/// `(latency stats, throughput stats)`.
pub fn evaluate_estimator<E: CostEstimator + ?Sized>(
    est: &E,
    samples: &[Sample],
) -> (QErrorStats, QErrorStats) {
    let mut lat = Vec::with_capacity(samples.len());
    let mut tpt = Vec::with_capacity(samples.len());
    for s in samples {
        let p = est.predict(&s.graph);
        lat.push((p.latency_ms, s.latency_ms));
        tpt.push((p.throughput, s.throughput));
    }
    (QErrorStats::from_pairs(lat), QErrorStats::from_pairs(tpt))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64, f64);

    impl CostEstimator for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }

        fn predict(&self, _graph: &GraphEncoding) -> CostPrediction {
            CostPrediction {
                latency_ms: self.0,
                throughput: self.1,
            }
        }
    }

    fn graph() -> GraphEncoding {
        use crate::features::FeatureMask;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use zt_dspsim::cluster::{Cluster, ClusterType};
        use zt_dspsim::ChainingMode;
        use zt_query::{ParallelQueryPlan, QueryGenerator, QueryStructure};

        let mut rng = StdRng::seed_from_u64(1);
        let plan = QueryGenerator::seen().generate(QueryStructure::Linear, &mut rng);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![2; n]);
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
        crate::graph::encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all())
    }

    #[test]
    fn default_batch_matches_serial_predict() {
        let est = Fixed(12.5, 4_000.0);
        let graphs = vec![graph(), graph(), graph()];
        let batch = est.predict_batch(&graphs);
        assert_eq!(batch.len(), 3);
        for (g, p) in graphs.iter().zip(&batch) {
            assert_eq!(*p, est.predict(g));
        }
    }

    #[test]
    fn empty_candidate_list_yields_empty_batch() {
        let est = Fixed(1.0, 2.0);
        assert!(est.predict_batch(&[]).is_empty());
        // also through a trait object (the optimizer's calling shape)
        let dyn_est: &dyn CostEstimator = &est;
        assert!(dyn_est.predict_batch(&[]).is_empty());
    }

    #[test]
    fn trait_is_object_safe() {
        let est = Fixed(1.0, 2.0);
        let dyn_est: &dyn CostEstimator = &est;
        assert_eq!(dyn_est.name(), "fixed");
        assert_eq!(dyn_est.predict(&graph()).pair(), (1.0, 2.0));
    }

    #[test]
    fn pair_and_from_round_trip() {
        let p = CostPrediction::from((3.0, 7.0));
        assert_eq!(p.pair(), (3.0, 7.0));
    }
}
