//! Supervised training of the zero-shot cost model.
//!
//! Mini-batch Adam on the MSE of normalized `[log latency, log
//! throughput]`, with global-norm gradient clipping, a validation split
//! and early stopping that restores the best weights.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zt_nn::optim::clip_grad_norm;
use zt_nn::{Adam, Matrix, Optimizer, Tape};

use crate::dataset::{Dataset, Sample};
use crate::estimator::CostEstimator;
use crate::model::{TargetNorm, ZeroTuneModel};
use crate::qerror::QErrorStats;

/// Trainer configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Global-norm gradient clip.
    pub clip: f32,
    /// Fraction of the training data held out for validation.
    pub val_fraction: f64,
    /// Early-stopping patience in epochs (0 disables early stopping).
    pub patience: usize,
    pub seed: u64,
    /// Refit the target normalization on this data (disable when
    /// fine-tuning a trained model).
    pub refit_norm: bool,
    /// Restrict updates to these parameters (used by few-shot
    /// fine-tuning).
    pub param_mask: Option<Vec<zt_nn::ParamId>>,
    /// Run the diagnostics pre-flight (dataset + model lints) and abort
    /// on `Error`-severity findings. Defaults to the `ZT_STRICT`
    /// environment variable.
    pub strict: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 40,
            batch_size: 16,
            lr: 1.5e-3,
            clip: 5.0,
            val_fraction: 0.1,
            patience: 8,
            seed: 0xBEEF,
            refit_norm: true,
            param_mask: None,
            strict: crate::diagnostics::strict_from_env(),
        }
    }
}

/// Training outcome.
#[derive(Clone, Debug)]
pub struct TrainReport {
    pub epochs_run: usize,
    pub best_val_loss: f64,
    pub train_loss: Vec<f64>,
    pub val_loss: Vec<f64>,
    pub wall_secs: f64,
}

fn sample_loss(model: &ZeroTuneModel, tape: &mut Tape, sample: &Sample) -> zt_nn::Var {
    let out = model.forward(tape, &sample.graph);
    let target = model.norm.normalize(sample.latency_ms, sample.throughput);
    let t = tape.leaf(Matrix::row(&target));
    tape.mse_loss(out, t)
}

/// Mean loss over samples without touching gradients.
fn eval_loss(model: &ZeroTuneModel, samples: &[&Sample]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut total = 0f64;
    for s in samples {
        let mut tape = Tape::new();
        let loss = sample_loss(model, &mut tape, s);
        total += tape.scalar_value(loss) as f64;
    }
    total / samples.len() as f64
}

/// Train `model` on `data` in place.
pub fn train(model: &mut ZeroTuneModel, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    if cfg.strict {
        crate::diagnostics::preflight_train(model, data, cfg.refit_norm).enforce("train");
    }
    let _span = zt_telemetry::span("train");
    let start = std::time::Instant::now();
    if cfg.refit_norm {
        model.norm = TargetNorm::fit(data.labels());
    }

    // Validation split.
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let n_val = ((data.len() as f64 * cfg.val_fraction) as usize).min(data.len().saturating_sub(1));
    let (val_idx, train_idx) = idx.split_at(n_val);
    let val: Vec<&Sample> = val_idx.iter().map(|&i| &data.samples[i]).collect();
    let mut train_order: Vec<usize> = train_idx.to_vec();

    let mut opt = Adam::new(cfg.lr);
    opt.set_mask(cfg.param_mask.clone());

    let mut report = TrainReport {
        epochs_run: 0,
        best_val_loss: f64::INFINITY,
        train_loss: Vec::new(),
        val_loss: Vec::new(),
        wall_secs: 0.0,
    };
    let mut best_weights = model.store.clone();
    let mut since_best = 0usize;

    for epoch in 0..cfg.epochs {
        let _epoch_span = zt_telemetry::span_arg("train.epoch", || epoch.to_string());
        // Shuffle the epoch order.
        for i in (1..train_order.len()).rev() {
            let j = rng.gen_range(0..=i);
            train_order.swap(i, j);
        }

        let mut epoch_loss = 0f64;
        let mut batch_count = 0usize;
        for batch in train_order.chunks(cfg.batch_size.max(1)) {
            model.store.zero_grad();
            let mut batch_loss = 0f64;
            for &i in batch {
                let sample = &data.samples[i];
                let mut tape = Tape::new();
                let loss = sample_loss(model, &mut tape, sample);
                batch_loss += tape.scalar_value(loss) as f64;
                tape.backward(loss, &mut model.store);
            }
            model.store.scale_grads(1.0 / batch.len() as f32);
            let grad_norm = clip_grad_norm(&mut model.store, cfg.clip);
            zt_telemetry::observe("train.grad_norm", f64::from(grad_norm));
            opt.step(&mut model.store);
            epoch_loss += batch_loss / batch.len() as f64;
            batch_count += 1;
        }
        report
            .train_loss
            .push(epoch_loss / batch_count.max(1) as f64);
        zt_telemetry::observe(
            "train.epoch_loss",
            *report.train_loss.last().expect("one epoch ran"),
        );

        let vl = if val.is_empty() {
            *report.train_loss.last().expect("one epoch ran")
        } else {
            eval_loss(model, &val)
        };
        report.val_loss.push(vl);
        zt_telemetry::observe("train.val_loss", vl);
        report.epochs_run += 1;
        zt_telemetry::counter_add("train.epochs", 1);

        if vl < report.best_val_loss {
            report.best_val_loss = vl;
            best_weights = model.store.clone();
            since_best = 0;
        } else {
            since_best += 1;
            // halve the learning rate on a validation plateau
            if cfg.patience > 0 && since_best == cfg.patience.div_ceil(2) {
                opt.lr *= 0.5;
            }
            if cfg.patience > 0 && since_best >= cfg.patience {
                break;
            }
        }
    }

    model.store.copy_weights_from(&best_weights);
    report.wall_secs = start.elapsed().as_secs_f64();

    // Strict mode: post-training certification. Training must not have
    // pushed the weights anywhere the interval certificate flags —
    // exploded brackets (ZT601) or a head that provably cannot reproduce
    // any training label (ZT602) abort here instead of at deploy time.
    if cfg.strict {
        let _s = zt_telemetry::span("train.certify");
        let (_, cert_report) = crate::certify::certify_report(model);
        cert_report.enforce("post-training certification");
    }
    report
}

/// Q-error statistics of any [`CostEstimator`] on `samples`, per metric:
/// `(latency stats, throughput stats)`.
pub fn evaluate<E: CostEstimator + ?Sized>(
    est: &E,
    samples: &[Sample],
) -> (QErrorStats, QErrorStats) {
    crate::estimator::evaluate_estimator(est, samples)
}

/// Evaluate on the subset of samples matching `pred`.
pub fn evaluate_where<E: CostEstimator + ?Sized>(
    est: &E,
    samples: &[Sample],
    pred: impl Fn(&Sample) -> bool,
) -> (QErrorStats, QErrorStats) {
    let filtered: Vec<Sample> = samples.iter().filter(|s| pred(s)).cloned().collect();
    evaluate(est, &filtered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, GenConfig};
    use crate::model::ModelConfig;

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            epochs: 12,
            batch_size: 8,
            patience: 0,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn loss_decreases_during_training() {
        let data = generate_dataset(&GenConfig::seen(), 120, 11);
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 24,
            seed: 1,
        });
        let report = train(&mut model, &data, &quick_cfg());
        assert_eq!(report.epochs_run, 12);
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(
            last < first * 0.7,
            "training did not reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn trained_model_beats_untrained_on_qerror() {
        let data = generate_dataset(&GenConfig::seen(), 150, 12);
        let (train_set, test_set, _) = data.split(0.8, 0.2, 0);
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 24,
            seed: 2,
        });
        // untrained but with fitted norm, so the comparison is fair
        model.norm = TargetNorm::fit(train_set.labels());
        let (untrained_lat, _) = evaluate(&model, &test_set.samples);
        let report = train(&mut model, &train_set, &quick_cfg());
        let (trained_lat, trained_tpt) = evaluate(&model, &test_set.samples);
        assert!(report.best_val_loss.is_finite());
        assert!(
            trained_lat.median < untrained_lat.median,
            "training did not improve latency q-error: {} vs {}",
            trained_lat.median,
            untrained_lat.median
        );
        assert!(trained_tpt.median >= 1.0);
    }

    #[test]
    fn early_stopping_stops_before_epoch_budget() {
        let data = generate_dataset(&GenConfig::seen(), 60, 13);
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 16,
            seed: 3,
        });
        let cfg = TrainConfig {
            epochs: 200,
            patience: 3,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &data, &cfg);
        assert!(report.epochs_run < 200, "early stopping never triggered");
    }

    #[test]
    fn param_mask_limits_updates() {
        let data = generate_dataset(&GenConfig::seen(), 40, 14);
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 16,
            seed: 4,
        });
        let head = model.head_param_ids();
        let frozen_id = model
            .store
            .ids()
            .find(|id| !head.contains(id))
            .expect("some frozen param");
        let before = model.store.value(frozen_id).clone();
        let cfg = TrainConfig {
            epochs: 3,
            param_mask: Some(head),
            ..quick_cfg()
        };
        train(&mut model, &data, &cfg);
        assert_eq!(
            model.store.value(frozen_id),
            &before,
            "masked parameter changed"
        );
    }

    #[test]
    fn evaluate_where_filters() {
        let data = generate_dataset(&GenConfig::seen(), 30, 15);
        let model = {
            let mut m = ZeroTuneModel::new(ModelConfig {
                hidden: 16,
                seed: 5,
            });
            m.norm = TargetNorm::fit(data.labels());
            m
        };
        let (all_lat, _) = evaluate(&model, &data.samples);
        let (linear_lat, _) =
            evaluate_where(&model, &data.samples, |s| s.meta.structure == "linear");
        assert!(linear_lat.count < all_lat.count);
        assert_eq!(all_lat.count, 30);
    }
}
