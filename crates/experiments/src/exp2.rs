//! Exp. 2: fine-grained parallelism analysis (Fig. 7a–d) and the few-shot
//! improvement on complex joins (Fig. 6).

use serde::Serialize;
use zt_core::dataset::{generate_dataset, GenConfig, Sample};
use zt_core::fewshot::{fine_tune, FewShotConfig};
use zt_core::train::{evaluate, evaluate_where};
use zt_core::CostEstimator;
use zt_dspsim::cluster::ClusterType;
use zt_query::{ParallelismCategory, QueryStructure};

use crate::report::{f2, Table};
use crate::{train_pipeline, Scale, TrainedPipeline};

/// Q-errors of one parallelism category within one panel.
#[derive(Clone, Debug, Serialize)]
pub struct CategoryRow {
    pub panel: String,
    pub category: String,
    pub lat_median: f64,
    pub lat_p95: f64,
    pub tpt_median: f64,
    pub tpt_p95: f64,
    pub n: usize,
}

/// Fig. 6: per-join-type throughput accuracy, zero-shot vs few-shot.
#[derive(Clone, Debug, Serialize)]
pub struct FewShotRow {
    pub structure: String,
    pub zero_shot_tpt_median: f64,
    pub few_shot_tpt_median: f64,
    pub improvement: f64,
}

/// Scatter point for the Fig. 6 plot.
#[derive(Clone, Debug, Serialize)]
pub struct ScatterPoint {
    pub structure: String,
    pub true_throughput: f64,
    pub zero_shot_pred: f64,
    pub few_shot_pred: f64,
}

#[derive(Clone, Debug, Serialize)]
pub struct Exp2Result {
    pub categories: Vec<CategoryRow>,
    pub few_shot: Vec<FewShotRow>,
    pub scatter: Vec<ScatterPoint>,
}

fn category_rows(
    model: &zt_core::model::ZeroTuneModel,
    panel: &str,
    samples: &[Sample],
) -> Vec<CategoryRow> {
    ParallelismCategory::ALL
        .iter()
        .filter_map(|&cat| {
            let (lat, tpt) = evaluate_where(model, samples, |s| s.meta.category == cat);
            (lat.count > 0).then(|| CategoryRow {
                panel: panel.to_string(),
                category: cat.to_string(),
                lat_median: lat.median,
                lat_p95: lat.p95,
                tpt_median: tpt.median,
                tpt_p95: tpt.p95,
                n: lat.count,
            })
        })
        .collect()
}

/// Run Exp. 2 with a trained pipeline.
pub fn run_with(pipeline: &TrainedPipeline) -> Exp2Result {
    let scale = &pipeline.scale;
    let mut categories = Vec::new();

    // (a) seen plans — enlarge the pool so every category is populated.
    let mut seen_pool = pipeline.test_seen.clone();
    seen_pool.extend(generate_dataset(
        &GenConfig::seen(),
        scale.test_per_group * 3,
        scale.seed + 300,
    ));
    categories.extend(category_rows(
        &pipeline.model,
        "(a) seen",
        &seen_pool.samples,
    ));

    // (b) unseen benchmarks (OptiSample picks low categories here — the
    // paper notes only XS/S appear).
    let bench_pool = generate_dataset(
        &GenConfig::unseen_structures().with_structures(QueryStructure::benchmarks()),
        scale.test_per_group * 2,
        scale.seed + 310,
    );
    categories.extend(category_rows(
        &pipeline.model,
        "(b) benchmarks",
        &bench_pool.samples,
    ));

    // (c) unseen hardware: homogeneous (c6420) and heterogeneous mixes.
    let homo_pool = generate_dataset(
        &GenConfig::seen().with_cluster_types(vec![ClusterType::C6420]),
        scale.test_per_group * 2,
        scale.seed + 320,
    );
    categories.extend(category_rows(
        &pipeline.model,
        "(c) unseen homogeneous hw",
        &homo_pool.samples,
    ));
    let hetero_pool = generate_dataset(
        &GenConfig::seen().with_cluster_types(ClusterType::unseen()),
        scale.test_per_group * 2,
        scale.seed + 330,
    );
    categories.extend(category_rows(
        &pipeline.model,
        "(c) unseen heterogeneous hw",
        &hetero_pool.samples,
    ));

    // (d) unseen complex plans: zero-shot vs few-shot.
    let complex = vec![
        QueryStructure::NWayJoin(4),
        QueryStructure::NWayJoin(5),
        QueryStructure::NWayJoin(6),
    ];
    let complex_pool = generate_dataset(
        &GenConfig::unseen_structures().with_structures(complex.clone()),
        scale.test_per_group * 3,
        scale.seed + 340,
    );
    categories.extend(category_rows(
        &pipeline.model,
        "(d) unseen plans zero-shot",
        &complex_pool.samples,
    ));

    // Few-shot: fine-tune on ~500 (scaled) complex-join queries.
    let shots = generate_dataset(
        &GenConfig::unseen_structures().with_structures(complex.clone()),
        (scale.test_per_group * 4).min(500),
        scale.seed + 350,
    );
    let mut tuned = pipeline.model.clone();
    fine_tune(&mut tuned, &shots, &FewShotConfig::default());
    categories.extend(category_rows(
        &tuned,
        "(d) unseen plans few-shot",
        &complex_pool.samples,
    ));

    // Fig. 6: per-join-type throughput medians + scatter.
    let mut few_shot = Vec::new();
    let mut scatter = Vec::new();
    for s in &complex {
        let name = s.name();
        let subset: Vec<Sample> = complex_pool
            .samples
            .iter()
            .filter(|x| x.meta.structure == name)
            .cloned()
            .collect();
        let (_, zs) = evaluate(&pipeline.model, &subset);
        let (_, fs) = evaluate(&tuned, &subset);
        few_shot.push(FewShotRow {
            structure: name.clone(),
            zero_shot_tpt_median: zs.median,
            few_shot_tpt_median: fs.median,
            improvement: zs.median / fs.median.max(1e-9),
        });
        for x in subset.iter().take(40) {
            scatter.push(ScatterPoint {
                structure: name.clone(),
                true_throughput: x.throughput,
                zero_shot_pred: pipeline.model.predict(&x.graph).throughput,
                few_shot_pred: tuned.predict(&x.graph).throughput,
            });
        }
    }

    Exp2Result {
        categories,
        few_shot,
        scatter,
    }
}

pub fn run(scale: &Scale) -> Exp2Result {
    let pipeline = train_pipeline(scale, &GenConfig::seen());
    run_with(&pipeline)
}

pub fn print(result: &Exp2Result) {
    let mut t = Table::new(
        "Fig. 7: q-errors per parallelism category (XS..XL)",
        &[
            "panel",
            "cat",
            "lat median",
            "lat 95th",
            "tpt median",
            "tpt 95th",
            "n",
        ],
    );
    for r in &result.categories {
        t.row(vec![
            r.panel.clone(),
            r.category.clone(),
            f2(r.lat_median),
            f2(r.lat_p95),
            f2(r.tpt_median),
            f2(r.tpt_p95),
            r.n.to_string(),
        ]);
    }
    t.print();

    let mut t6 = Table::new(
        "Fig. 6: few-shot (500 queries) throughput improvement on complex joins",
        &[
            "structure",
            "zero-shot tpt median",
            "few-shot tpt median",
            "improvement",
        ],
    );
    for r in &result.few_shot {
        t6.row(vec![
            r.structure.clone(),
            f2(r.zero_shot_tpt_median),
            f2(r.few_shot_tpt_median),
            format!("{}x", f2(r.improvement)),
        ]);
    }
    t6.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp2_panels_are_populated() {
        let scale = Scale {
            name: "tiny",
            train_queries: 150,
            test_per_group: 20,
            epochs: 8,
            hidden: 20,
            seed: 0xE2,
        };
        let result = run(&scale);
        let panels: std::collections::HashSet<&str> =
            result.categories.iter().map(|r| r.panel.as_str()).collect();
        assert!(panels.contains("(a) seen"));
        assert!(panels.contains("(b) benchmarks"));
        assert!(panels.contains("(c) unseen homogeneous hw"));
        assert!(panels.contains("(d) unseen plans zero-shot"));
        assert!(panels.contains("(d) unseen plans few-shot"));
        assert_eq!(result.few_shot.len(), 3);
        assert!(!result.scatter.is_empty());
        // every row is a valid q-error
        for r in &result.categories {
            assert!(r.lat_median >= 1.0);
            assert!(r.n > 0);
        }
    }
}
