//! Exp. 4 runner: Fig. 9a–b data-efficient training.
//!
//! Usage: `cargo run --release --bin exp4_efficiency -- [--scale smoke|standard|full] [--workers N] [--resume[=DIR]] [--strict] [--telemetry[=PATH]]`

use zt_experiments::{exp4, report, Scale};

fn main() {
    zt_experiments::apply_datagen_cli();
    let scale = Scale::from_args();
    eprintln!(
        "exp4 (OptiSample vs random data efficiency), scale = {}",
        scale.name
    );
    let result = exp4::run(&scale);
    exp4::print(&result);
    for strategy in ["OptiSample", "Random"] {
        if let Some(n) = exp4::convergence_point(&result, strategy, 1.6) {
            println!("{strategy} reaches median latency q-error <= 1.6 at {n} queries");
        }
    }
    if let Ok(path) = report::save_json("exp4_efficiency", &result) {
        eprintln!("saved {}", path.display());
    }
    zt_experiments::finish_telemetry("exp4_efficiency");
}
