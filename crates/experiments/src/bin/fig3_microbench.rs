//! Fig. 3 runner: parallelism/operator-grouping micro-benchmark.
//!
//! Usage: `cargo run --release --bin fig3_microbench [-- rate workers] [--telemetry[=PATH]]`

use zt_experiments::{fig3, report};

fn main() {
    zt_experiments::apply_datagen_cli();
    let args: Vec<String> = std::env::args().collect();
    let rate: f64 = args
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3_000_000.0);
    let workers: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(8);
    let result = fig3::run(rate, workers);
    fig3::print(&result);
    if let Ok(path) = report::save_json("fig3_microbench", &result) {
        eprintln!("saved {}", path.display());
    }
    zt_experiments::finish_telemetry("fig3_microbench");
}
