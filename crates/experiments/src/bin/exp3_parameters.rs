//! Exp. 3 runner: Fig. 8a–e generalization over unseen parameters.
//!
//! Usage: `cargo run --release --bin exp3_parameters -- [--scale smoke|standard|full] [--workers N] [--resume[=DIR]] [--strict] [--telemetry[=PATH]]`

use zt_experiments::{exp3, report, Scale};

fn main() {
    zt_experiments::apply_datagen_cli();
    let scale = Scale::from_args();
    eprintln!(
        "exp3 (unseen parameter generalization), scale = {}",
        scale.name
    );
    let result = exp3::run(&scale);
    exp3::print(&result);
    if let Ok(path) = report::save_json("exp3_parameters", &result) {
        eprintln!("saved {}", path.display());
    }
    zt_experiments::finish_telemetry("exp3_parameters");
}
