//! Exp. 6 runner: Fig. 11 feature ablation.
//!
//! Usage: `cargo run --release --bin exp6_ablation -- [--scale smoke|standard|full] [--workers N] [--resume[=DIR]] [--strict] [--telemetry[=PATH]]`

use zt_experiments::{exp6, report, Scale};

fn main() {
    zt_experiments::apply_datagen_cli();
    let scale = Scale::from_args();
    eprintln!(
        "exp6 (transferable-feature ablation), scale = {}",
        scale.name
    );
    let result = exp6::run(&scale);
    exp6::print(&result);
    if let Ok(path) = report::save_json("exp6_ablation", &result) {
        eprintln!("saved {}", path.display());
    }
    zt_experiments::finish_telemetry("exp6_ablation");
}
