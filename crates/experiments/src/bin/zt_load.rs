//! `zt-load` — deterministic load generator for the zt-serve daemon.
//!
//! Replays a seeded request mix over the three benchmark queries
//! (spike detection, local and global smart grid) in two phases that
//! issue the *identical* request sequence:
//!
//! * `cold` — the server's prediction cache is empty, every `/predict`
//!   goes through the micro-batching scorer;
//! * `warm` — the same sequence again, so repeated feature vectors are
//!   answered straight from the cache.
//!
//! Per-request wall latencies feed QPS + p50/p95/p99 into
//! `results/BENCH_serve.json`; the warm phase demonstrates the
//! cache-hit speedup the serving layer exists for.
//!
//! ```text
//! zt-load [--smoke] [--addr HOST:PORT] [--out PATH] [--requests N]
//!         [--threads N] [--seed N]
//! ```
//!
//! Without `--addr` the daemon is spawned in-process on an ephemeral
//! port (the CI smoke path passes `--addr` to exercise a real separate
//! process over loopback).

use std::io::Write as _;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use zt_core::model::{ModelConfig, ZeroTuneModel};
use zt_query::benchmarks::{smart_grid_global, smart_grid_local, spike_detection};
use zt_query::LogicalPlan;
use zt_serve::{http_request, ServeConfig, Server};
use zt_telemetry::summary::Summary;

/// One pre-rendered request of the mix.
#[derive(Clone)]
struct Shot {
    method: &'static str,
    path: &'static str,
    body: Option<String>,
}

#[derive(Serialize)]
struct PhaseReport {
    phase: String,
    requests: usize,
    failures: usize,
    elapsed_ms: f64,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    cache_hits: u64,
    cache_misses: u64,
}

#[derive(Serialize)]
struct ServeBenchReport {
    smoke: bool,
    requests_per_phase: usize,
    threads: usize,
    seed: u64,
    predict_shots: usize,
    tune_shots: usize,
    explain_shots: usize,
    lint_shots: usize,
    healthz_shots: usize,
    phases: Vec<PhaseReport>,
    /// cold QPS / warm QPS ratio; > 1 means the cache pays for itself.
    warm_speedup: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: zt-load [--smoke] [--addr HOST:PORT] [--out PATH] [--requests N]\n\
         \u{20}              [--threads N] [--seed N]"
    );
    std::process::exit(2);
}

/// Envelope a sealed benchmark plan for the wire.
fn wire(plan: &LogicalPlan) -> String {
    let ir = plan.validate().expect("benchmark plans are valid");
    ir.to_json(plan).expect("benchmark plans serialize")
}

/// Build the deterministic request mix: mostly `/predict` over a small
/// set of recurring (plan, parallelism) deployments — recurrence is what
/// makes the warm phase hit the cache — plus a sprinkle of the other
/// endpoints.
fn build_mix(n: usize, seed: u64) -> Vec<Shot> {
    let families: [fn(f64) -> LogicalPlan; 3] =
        [spike_detection, smart_grid_local, smart_grid_global];

    let mut rng = StdRng::seed_from_u64(seed);
    let mut shots = Vec::with_capacity(n);
    for _ in 0..n {
        // A near-unique event rate per shot keeps the cold phase
        // miss-dominated; the warm replay of the identical sequence is
        // then a pure cache-hit workload.
        let family = families[rng.gen_range(0..families.len())];
        let rate = 50.0 * f64::from(rng.gen_range(1u32..=2000));
        let plan = family(rate);
        let env = wire(&plan);
        let num_ops = plan.num_ops();
        let par = 1u32 << rng.gen_range(0..3u32); // 1, 2 or 4
        let par_vec: Vec<String> = (0..num_ops).map(|_| par.to_string()).collect();
        let deployment = format!("{{\"plan\":{env},\"parallelism\":[{}]}}", par_vec.join(","));
        let roll: f64 = rng.gen_range(0.0..1.0);
        let shot = if roll < 0.80 {
            Shot {
                method: "POST",
                path: "/predict",
                body: Some(deployment),
            }
        } else if roll < 0.85 {
            // Bound the optimizer grid so a tune shot stays cheap.
            Shot {
                method: "POST",
                path: "/tune",
                body: Some(format!("{{\"plan\":{env},\"max_parallelism\":8}}")),
            }
        } else if roll < 0.90 {
            Shot {
                method: "POST",
                path: "/explain",
                body: Some(deployment),
            }
        } else if roll < 0.95 {
            Shot {
                method: "POST",
                path: "/lint",
                body: Some(deployment),
            }
        } else {
            Shot {
                method: "GET",
                path: "/healthz",
                body: None,
            }
        };
        shots.push(shot);
    }
    shots
}

/// Cache counters as reported by the daemon itself.
fn cache_counters(addr: SocketAddr) -> (u64, u64) {
    let Ok(resp) = http_request(addr, "GET", "/healthz", None) else {
        return (0, 0);
    };
    let Ok(v) = serde_json::from_str::<serde::Value>(&resp.body) else {
        return (0, 0);
    };
    let num = |key: &str| v.get(key).and_then(serde::Value::as_f64).unwrap_or(0.0) as u64;
    (num("cache_hits"), num("cache_misses"))
}

/// Fire the whole mix across `threads` workers; returns latencies (ms),
/// wall time and failure count.
fn run_phase(addr: SocketAddr, shots: &[Shot], threads: usize) -> (Vec<f64>, f64, usize) {
    let failures = AtomicU64::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(shots.len()));
    let wall = Instant::now();
    let failures = &failures;
    let latencies_ref = &latencies;
    std::thread::scope(|scope| {
        for chunk in shots.chunks(shots.len().div_ceil(threads).max(1)) {
            scope.spawn(move || {
                let mut local = Vec::with_capacity(chunk.len());
                for shot in chunk {
                    let t = Instant::now();
                    let ok = match http_request(addr, shot.method, shot.path, shot.body.as_deref())
                    {
                        Ok(resp) => resp.status == 200,
                        Err(_) => false,
                    };
                    local.push(t.elapsed().as_secs_f64() * 1e3);
                    if !ok {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
                latencies_ref.lock().expect("latency sink").extend(local);
            });
        }
    });
    let elapsed = wall.elapsed().as_secs_f64();
    (
        latencies.into_inner().expect("latency sink"),
        elapsed,
        failures.load(Ordering::Relaxed) as usize,
    )
}

fn phase_report(
    phase: &str,
    latencies: &[f64],
    elapsed_s: f64,
    failures: usize,
    cache_before: (u64, u64),
    cache_after: (u64, u64),
) -> PhaseReport {
    let mut summary = Summary::new();
    for l in latencies {
        summary.add(*l);
    }
    PhaseReport {
        phase: phase.to_string(),
        requests: latencies.len(),
        failures,
        elapsed_ms: elapsed_s * 1e3,
        qps: latencies.len() as f64 / elapsed_s.max(1e-9),
        p50_ms: summary.percentile(0.50),
        p95_ms: summary.percentile(0.95),
        p99_ms: summary.percentile(0.99),
        mean_ms: summary.mean(),
        cache_hits: cache_after.0 - cache_before.0,
        cache_misses: cache_after.1 - cache_before.1,
    }
}

fn main() {
    let mut smoke = false;
    let mut addr_flag: Option<String> = None;
    let mut out = "results/BENCH_serve.json".to_string();
    let mut requests: Option<usize> = None;
    let mut threads = 4usize;
    let mut seed = 0x0417_u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--addr" => addr_flag = args.next().or_else(|| usage()),
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => requests = Some(n),
                None => usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("zt-load: unknown flag `{other}`");
                usage()
            }
        }
    }
    let n = requests.unwrap_or(if smoke { 200 } else { 1200 });

    // Spawn in-process unless pointed at a running daemon.
    let (addr, handle) = match &addr_flag {
        Some(a) => {
            let addr: SocketAddr = match a.parse() {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("zt-load: bad --addr `{a}`: {e}");
                    std::process::exit(2);
                }
            };
            (addr, None)
        }
        None => {
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServeConfig::default()
            };
            let model = ZeroTuneModel::new(ModelConfig::default());
            let handle = Server::bind(cfg, model)
                .and_then(zt_serve::BoundServer::spawn)
                .unwrap_or_else(|e| {
                    eprintln!("zt-load: cannot spawn in-process server: {e}");
                    std::process::exit(1);
                });
            (handle.addr(), Some(handle))
        }
    };

    let shots = build_mix(n, seed);
    let count = |p: &str| shots.iter().filter(|s| s.path == p).count();
    let mix_counts = (
        count("/predict"),
        count("/tune"),
        count("/explain"),
        count("/lint"),
        count("/healthz"),
    );

    let mut phases = Vec::new();
    for phase in ["cold", "warm"] {
        let before = cache_counters(addr);
        let (latencies, elapsed, failures) = run_phase(addr, &shots, threads);
        let after = cache_counters(addr);
        let report = phase_report(phase, &latencies, elapsed, failures, before, after);
        eprintln!(
            "zt-load: {phase}: {} req in {:.1} ms ({:.0} qps, p50 {:.3} ms, p99 {:.3} ms, {} hits)",
            report.requests,
            report.elapsed_ms,
            report.qps,
            report.p50_ms,
            report.p99_ms,
            report.cache_hits
        );
        phases.push(report);
    }

    let warm_speedup = if phases[1].qps > 0.0 {
        phases[1].qps / phases[0].qps.max(1e-9)
    } else {
        0.0
    };
    let total_failures: usize = phases.iter().map(|p| p.failures).sum();
    let report = ServeBenchReport {
        smoke,
        requests_per_phase: n,
        threads,
        seed,
        predict_shots: mix_counts.0,
        tune_shots: mix_counts.1,
        explain_shots: mix_counts.2,
        lint_shots: mix_counts.3,
        healthz_shots: mix_counts.4,
        phases,
        warm_speedup,
    };

    if let Some(handle) = handle {
        handle.shutdown();
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    let mut file = std::fs::File::create(&out).expect("open report file");
    file.write_all(json.as_bytes()).expect("write report");
    file.write_all(b"\n").expect("write report");
    eprintln!("zt-load: wrote {out} (warm speedup {warm_speedup:.2}x)");

    if total_failures > 0 {
        eprintln!("zt-load: {total_failures} request(s) failed");
        std::process::exit(1);
    }
}
