//! Certification-cost runner: how expensive is interval bound
//! propagation, and what does it certify?
//!
//! Sweeps `zt_core::certify_model` over fresh GNNs at several hidden
//! widths and unroll depths, then trains a mini model on
//! simulator-labeled data and certifies it post-training. Each row
//! records wall time (the latency a `/swap` pays at the certification
//! gate) alongside the certificate itself: bracket magnitude,
//! certified-dead/saturated units and zero-sensitivity features.
//!
//! Artifacts:
//! * `results/BENCH_certify.json` — the committed timing/certificate
//!   baseline;
//! * `results/model_mini_trained.json` — the trained model (gitignored;
//!   regenerated per run), which CI feeds back through
//!   `zt-lint --certify --model` to prove a benchmark-trained model
//!   certifies clean.
//!
//! Usage: `cargo run --release --bin bench_certify [-- reps]`

use serde::Serialize;
use zt_core::certify::{certify_model, CertifyConfig, ModelCert};
use zt_core::dataset::{generate_dataset, GenConfig};
use zt_core::diagnostics::Severity;
use zt_core::model::{ModelConfig, ZeroTuneModel};
use zt_core::train::{train, TrainConfig};

#[derive(Serialize)]
struct CertifyRow {
    model: String,
    hidden: usize,
    max_depth: usize,
    elapsed_ms: f64,
    magnitude_log10: f64,
    certified_dead_units: usize,
    certified_saturated_units: usize,
    error_diagnostics: usize,
    warning_diagnostics: usize,
}

#[derive(Serialize)]
struct CertifyReport {
    reps: usize,
    rows: Vec<CertifyRow>,
}

fn measure(name: &str, model: &ZeroTuneModel, cfg: &CertifyConfig, reps: usize) -> CertifyRow {
    // warm-up, then timed reps
    let cert = certify_model(model, cfg).expect("model certifies structurally");
    let start = std::time::Instant::now();
    for _ in 0..reps {
        let _ = certify_model(model, cfg).expect("model certifies structurally");
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3 / reps.max(1) as f64;
    row(name, model.config.hidden, cfg, elapsed_ms, &cert)
}

fn row(
    name: &str,
    hidden: usize,
    cfg: &CertifyConfig,
    elapsed_ms: f64,
    cert: &ModelCert,
) -> CertifyRow {
    let diags = cert.diagnostics();
    CertifyRow {
        model: name.to_string(),
        hidden,
        max_depth: cfg.max_depth,
        elapsed_ms,
        magnitude_log10: cert.magnitude_log10(),
        certified_dead_units: cert.modules.iter().map(|m| m.certified_dead).sum(),
        certified_saturated_units: cert.modules.iter().map(|m| m.certified_saturated).sum(),
        error_diagnostics: diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count(),
        warning_diagnostics: diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count(),
    }
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);

    let mut rows = Vec::new();
    for hidden in [8usize, 16, 32, 48] {
        let model = ZeroTuneModel::new(ModelConfig { hidden, seed: 7 });
        rows.push(measure(
            &format!("fresh_h{hidden}"),
            &model,
            &CertifyConfig::default(),
            reps,
        ));
    }
    for max_depth in [4usize, 8, 16] {
        let model = ZeroTuneModel::new(ModelConfig {
            hidden: 48,
            seed: 7,
        });
        let cfg = CertifyConfig {
            max_depth,
            ..CertifyConfig::default()
        };
        rows.push(measure(
            &format!("fresh_h48_d{max_depth}"),
            &model,
            &cfg,
            reps,
        ));
    }

    // Train a mini model on simulator-labeled plans and certify it
    // post-training; the serialized weights feed the CI
    // `zt-lint --certify --model` gate.
    let data = generate_dataset(&GenConfig::seen(), 48, 11);
    let mut model = ZeroTuneModel::new(ModelConfig {
        hidden: 16,
        seed: 3,
    });
    let train_report = train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 8,
            strict: false,
            ..TrainConfig::default()
        },
    );
    eprintln!(
        "mini model trained: {} epochs, val loss {:.4}",
        train_report.epochs_run, train_report.best_val_loss
    );
    rows.push(measure(
        "trained_mini_h16",
        &model,
        &CertifyConfig::default(),
        reps,
    ));
    match zt_experiments::report::save_json("model_mini_trained", &model) {
        Ok(path) => eprintln!("saved trained model to {}", path.display()),
        Err(e) => eprintln!("failed to save trained model: {e}"),
    }

    let report = CertifyReport { reps, rows };
    for r in &report.rows {
        println!(
            "{:<16} hidden={:<2} depth={:<2} {:>8.2} ms  mag=1e{:<6.1} dead={:<3} sat={:<3} err={} warn={}",
            r.model,
            r.hidden,
            r.max_depth,
            r.elapsed_ms,
            r.magnitude_log10,
            r.certified_dead_units,
            r.certified_saturated_units,
            r.error_diagnostics,
            r.warning_diagnostics
        );
    }
    match zt_experiments::report::save_json("BENCH_certify", &report) {
        Ok(path) => eprintln!("saved {}", path.display()),
        Err(e) => eprintln!("failed to save report: {e}"),
    }
}
