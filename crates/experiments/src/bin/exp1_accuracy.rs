//! Exp. 1 runner: Table IV and the Fig. 1/5 architecture comparison.
//!
//! Usage: `cargo run --release --bin exp1_accuracy -- [--scale smoke|standard|full] [--workers N] [--resume[=DIR]] [--strict] [--telemetry[=PATH]]`

use zt_experiments::{exp1, report, Scale};

fn main() {
    zt_experiments::apply_datagen_cli();
    let scale = Scale::from_args();
    eprintln!(
        "exp1 (accuracy on seen/unseen workloads), scale = {}",
        scale.name
    );
    let result = exp1::run(&scale);
    exp1::print(&result);
    if let Ok(path) = report::save_json("exp1_accuracy", &result) {
        eprintln!("saved {}", path.display());
    }
    zt_experiments::finish_telemetry("exp1_accuracy");
}
