//! Exp. 5 runner: Fig. 10a–b optimizer comparison (greedy, Dhalion).
//!
//! Usage: `cargo run --release --bin exp5_optimizer -- [--scale smoke|standard|full] [--workers N] [--resume[=DIR]] [--strict] [--telemetry[=PATH]] [--no-prune] [--no-dataflow-cap]`

use zt_experiments::{exp5, report, Scale};

fn main() {
    zt_experiments::apply_datagen_cli();
    let scale = Scale::from_args();
    eprintln!(
        "exp5 (parallelism tuning vs greedy/Dhalion), scale = {}",
        scale.name
    );
    let result = exp5::run(&scale);
    exp5::print(&result);
    if let Ok(path) = report::save_json("exp5_optimizer", &result) {
        eprintln!("saved {}", path.display());
    }
    zt_experiments::finish_telemetry("exp5_optimizer");
}
