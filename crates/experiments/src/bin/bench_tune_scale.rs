//! Tune-throughput runner: candidates covered per second by `tune`.
//!
//! Three sections, all saved to `results/BENCH_tune_scale.json`:
//!
//! * **plans** — end-to-end flat-search candidates/sec on a linear, a
//!   joining and a multi-sink shared-subplan query (the historical
//!   numbers; the IR's CSR topology is sealed once and reused per
//!   candidate).
//! * **search** — the product-lattice space on deep filter chains and a
//!   wide fan-out plan, covered by bounds-guided branch-and-bound versus
//!   exhaustive scoring. Both return the identical winner by
//!   construction; the branch-and-bound walk certifies subtrees
//!   infeasible from parallelism-independent work floors and never
//!   analyzes them, so its candidates/sec (lattice points *covered* per
//!   second, analyzed or provably skipped) scales past the exhaustive
//!   rate as plans get deeper.
//! * **kernels** — lane-vs-scalar matmul wall clock on the GNN's hot
//!   shapes (hidden panels, the 2-column read-out head). Build with
//!   `RUSTFLAGS="-C target-cpu=native"` to let the lane kernel fuse
//!   multiply-adds; the JSON records the build's actual features.
//!
//! Usage: `cargo run --release --bin bench_tune_scale [-- [--smoke] [reps]]`
//!
//! `--smoke` keeps lattices at ≤4096 points and one timed rep so CI can
//! regenerate the artifact in seconds.

use serde::Serialize;
use std::time::Instant;
use zt_core::model::{ModelConfig, ZeroTuneModel};
use zt_core::optimizer::{tune, OptimizerConfig, SearchSpace, TuningOutcome};
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_nn::kernels::{matmul_into_lanes, matmul_into_scalar, ACTIVE_KERNELS};
use zt_query::benchmarks::{smart_grid_combined, spike_detection};
use zt_query::LogicalPlan;

#[derive(Serialize)]
struct PlanThroughput {
    plan: String,
    ops: usize,
    sinks: usize,
    candidates_evaluated: usize,
    candidates_pruned: usize,
    elapsed_ms: f64,
    candidates_per_sec: f64,
}

#[derive(Serialize)]
struct SearchMode {
    elapsed_ms: f64,
    /// Lattice points covered per second: the full lattice size over the
    /// wall clock (branch-and-bound covers skipped points by certificate,
    /// exhaustive scoring by analyzing each one).
    candidates_per_sec: f64,
    /// Leaves actually run through the interval analysis.
    visited: u64,
    /// Subtrees cut by infeasibility certificates or incumbent dominance.
    subtrees_pruned: u64,
    parallelism: Vec<u32>,
}

#[derive(Serialize)]
struct SearchScale {
    plan: String,
    ops: usize,
    lattice_size: u64,
    bnb: SearchMode,
    /// Absent when the lattice is too large to score exhaustively.
    exhaustive: Option<SearchMode>,
    /// candidates/sec ratio bnb ÷ exhaustive (when both ran).
    speedup: Option<f64>,
    /// Winners compared whenever both modes ran — must always be true.
    same_winner: Option<bool>,
}

#[derive(Serialize)]
struct KernelShape {
    rows: usize,
    inner: usize,
    cols: usize,
    lanes_us_per_op: f64,
    scalar_us_per_op: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct TuneScaleReport {
    smoke: bool,
    reps: usize,
    hidden: usize,
    active_kernels: &'static str,
    fma: bool,
    plans: Vec<PlanThroughput>,
    search: Vec<SearchScale>,
    kernels: Vec<KernelShape>,
    matmul_speedup_max: f64,
}

fn cluster() -> Cluster {
    Cluster::homogeneous(ClusterType::M510, 4, 10.0)
}

fn model() -> ZeroTuneModel {
    ZeroTuneModel::new(ModelConfig {
        hidden: 48,
        seed: 7,
    })
}

fn measure(name: &str, plan: &LogicalPlan, reps: usize) -> PlanThroughput {
    let cluster = cluster();
    let model = model();
    let cfg = OptimizerConfig {
        strict: false,
        ..OptimizerConfig::default()
    };
    // warm-up run, then timed reps
    let warm = tune(&model, plan, &cluster, &cfg).expect("benchmark plans are valid");
    let start = Instant::now();
    let mut evaluated = 0usize;
    for _ in 0..reps {
        let out = tune(&model, plan, &cluster, &cfg).expect("benchmark plans are valid");
        evaluated += out.candidates_evaluated;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let ir = plan.validate().expect("benchmark plans are valid");
    PlanThroughput {
        plan: name.to_string(),
        ops: plan.num_ops(),
        sinks: ir.sinks().len(),
        candidates_evaluated: evaluated / reps.max(1),
        candidates_pruned: warm.candidates_pruned,
        elapsed_ms: elapsed * 1e3,
        candidates_per_sec: evaluated as f64 / elapsed.max(f64::MIN_POSITIVE),
    }
}

/// `source → filter^(ops-2) → sink`: depth grows the parallelism lattice
/// exponentially while the high source rate keeps low-degree subtrees
/// provably infeasible — the branch-and-bound sweet spot.
fn filter_chain(rate: f64, ops: usize) -> LogicalPlan {
    use zt_query::{DataType, FilterFunction, FilterOp, OperatorKind, SourceOp, TupleSchema};
    assert!(ops >= 3, "need source + filter + sink");
    let mut p = LogicalPlan::new(format!("filter_chain_{ops}"));
    let mut prev = p.add(OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(DataType::Double, 3),
        key_cardinality: None,
    }));
    for _ in 0..ops - 2 {
        let f = p.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Double,
            selectivity: 0.95,
        }));
        p.connect(prev, f);
        prev = f;
    }
    let k = p.add(OperatorKind::Sink(zt_query::operators::SinkOp));
    p.connect(prev, k);
    p
}

/// `source → (filter → sink)^branches`: a wide multi-sink fan-out, the
/// other axis of lattice growth.
fn fan_out(rate: f64, branches: usize) -> LogicalPlan {
    use zt_query::{DataType, FilterFunction, FilterOp, OperatorKind, SourceOp, TupleSchema};
    let mut p = LogicalPlan::new(format!("fan_out_{branches}"));
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(DataType::Double, 3),
        key_cardinality: None,
    }));
    for _ in 0..branches {
        let f = p.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Double,
            selectivity: 0.95,
        }));
        let k = p.add(OperatorKind::Sink(zt_query::operators::SinkOp));
        p.connect(s, f);
        p.connect(f, k);
    }
    p
}

fn run_mode(plan: &LogicalPlan, prune: bool, reps: usize) -> (SearchMode, TuningOutcome) {
    let cluster = cluster();
    let model = model();
    let cfg = OptimizerConfig {
        strict: false,
        prune,
        search: SearchSpace::Lattice {
            max_degrees_per_op: 2,
            visit_budget: 8_000_000,
        },
        ..OptimizerConfig::default()
    };
    let reps = reps.max(1);
    let warm = tune(&model, plan, &cluster, &cfg).expect("benchmark plans are valid");
    let start = Instant::now();
    let mut last = warm;
    for _ in 0..reps {
        last = tune(&model, plan, &cluster, &cfg).expect("benchmark plans are valid");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let covered = last.search_space.saturating_mul(reps as u64);
    (
        SearchMode {
            elapsed_ms: elapsed * 1e3,
            candidates_per_sec: covered as f64 / elapsed.max(f64::MIN_POSITIVE),
            visited: last.search_visited,
            subtrees_pruned: last.search_subtrees_pruned,
            parallelism: last.parallelism.clone(),
        },
        last,
    )
}

fn search_scale(name: &str, plan: &LogicalPlan, reps: usize, exhaustive_cap: u64) -> SearchScale {
    let (bnb, bnb_out) = run_mode(plan, true, reps);
    let run_exhaustive = bnb_out.search_space <= exhaustive_cap;
    let exhaustive = run_exhaustive.then(|| run_mode(plan, false, reps).0);
    let speedup = exhaustive
        .as_ref()
        .map(|e| bnb.candidates_per_sec / e.candidates_per_sec.max(f64::MIN_POSITIVE));
    let same_winner = exhaustive
        .as_ref()
        .map(|e| e.parallelism == bnb.parallelism);
    assert!(
        same_winner != Some(false),
        "branch-and-bound and exhaustive scoring disagree on {name}"
    );
    SearchScale {
        plan: name.to_string(),
        ops: plan.num_ops(),
        lattice_size: bnb_out.search_space,
        bnb,
        exhaustive,
        speedup,
        same_winner,
    }
}

fn time_matmul(rows: usize, inner: usize, cols: usize, lanes: bool, reps: usize) -> f64 {
    let fill = |n: usize, seed: u32| -> Vec<f32> {
        let mut state = seed.wrapping_mul(2_654_435_761).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    };
    let a = fill(rows * inner, 11);
    let b = fill(inner * cols, 12);
    let mut out = vec![0.0f32; rows * cols];
    let mut run_batch = |n: usize| -> f64 {
        let start = Instant::now();
        for _ in 0..n {
            out.fill(0.0);
            if lanes {
                matmul_into_lanes(&a, rows, inner, &b, cols, &mut out);
            } else {
                matmul_into_scalar(&a, rows, inner, &b, cols, &mut out);
            }
            std::hint::black_box(&out[0]);
        }
        start.elapsed().as_secs_f64() / n as f64 * 1e6
    };
    // warm-up, then best-of-batches: the minimum is robust against the
    // scheduling noise of shared single-core runners.
    run_batch(reps / 4 + 1);
    const BATCHES: usize = 8;
    let per_batch = (reps / BATCHES).max(8);
    (0..BATCHES).fold(f64::INFINITY, |best, _| best.min(run_batch(per_batch)))
}

fn kernel_shapes(smoke: bool) -> Vec<KernelShape> {
    let shapes: &[(usize, usize, usize, usize)] = &[
        (16, 48, 48, 4000),
        (64, 64, 64, 2000),
        (256, 48, 48, 500),
        (64, 48, 2, 8000),
    ];
    shapes
        .iter()
        .map(|&(rows, inner, cols, full_reps)| {
            let reps = if smoke { full_reps / 10 + 1 } else { full_reps };
            let lanes_us = time_matmul(rows, inner, cols, true, reps);
            let scalar_us = time_matmul(rows, inner, cols, false, reps);
            KernelShape {
                rows,
                inner,
                cols,
                lanes_us_per_op: lanes_us,
                scalar_us_per_op: scalar_us,
                speedup: scalar_us / lanes_us.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

fn main() {
    let mut smoke = false;
    let mut reps = 3usize;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                if let Ok(n) = other.parse() {
                    reps = n;
                }
            }
        }
    }
    if smoke {
        reps = 1;
    }
    let exhaustive_cap = 4_096u64;
    let search_rate = 5_000_000.0;

    let mut search = vec![
        search_scale(
            "filter_chain_12",
            &filter_chain(search_rate, 12),
            reps,
            exhaustive_cap,
        ),
        search_scale("fan_out_7", &fan_out(search_rate, 7), reps, exhaustive_cap),
    ];
    if !smoke {
        search.push(search_scale(
            "filter_chain_16",
            &filter_chain(search_rate, 16),
            reps,
            exhaustive_cap,
        ));
        search.push(search_scale(
            "filter_chain_20",
            &filter_chain(search_rate, 20),
            reps,
            exhaustive_cap,
        ));
    }

    let kernels = kernel_shapes(smoke);
    let matmul_speedup_max = kernels.iter().fold(0.0f64, |m, k| m.max(k.speedup));

    let report = TuneScaleReport {
        smoke,
        reps,
        hidden: 48,
        active_kernels: ACTIVE_KERNELS,
        fma: cfg!(target_feature = "fma"),
        plans: vec![
            measure("linear_filter", &filter_chain(500_000.0, 3), reps),
            measure("spike_detection", &spike_detection(500_000.0), reps),
            measure("smart_grid_combined", &smart_grid_combined(500_000.0), reps),
        ],
        search,
        kernels,
        matmul_speedup_max,
    };

    for p in &report.plans {
        println!(
            "{:<22} ops={:<2} sinks={} candidates={:<5} {:>10.1} candidates/sec",
            p.plan, p.ops, p.sinks, p.candidates_evaluated, p.candidates_per_sec
        );
    }
    for s in &report.search {
        let exh = s.exhaustive.as_ref().map_or("n/a".to_string(), |e| {
            format!("{:.0}", e.candidates_per_sec)
        });
        println!(
            "{:<22} ops={:<2} lattice={:<8} bnb {:>10.0} cand/s (visited {:>6}, pruned {:>6}) exhaustive {exh} cand/s{}",
            s.plan,
            s.ops,
            s.lattice_size,
            s.bnb.candidates_per_sec,
            s.bnb.visited,
            s.bnb.subtrees_pruned,
            s.speedup.map_or(String::new(), |x| format!(" => {x:.1}x")),
        );
    }
    for k in &report.kernels {
        println!(
            "matmul {:>3}x{:>3}x{:>3}: lanes {:>8.2} µs, scalar {:>8.2} µs, speedup {:.2}x",
            k.rows, k.inner, k.cols, k.lanes_us_per_op, k.scalar_us_per_op, k.speedup
        );
    }
    match zt_experiments::report::save_json("BENCH_tune_scale", &report) {
        Ok(path) => eprintln!("saved {}", path.display()),
        Err(e) => eprintln!("failed to save report: {e}"),
    }
}
