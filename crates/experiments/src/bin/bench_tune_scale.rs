//! Tune-throughput runner: candidates scored per second by `tune`.
//!
//! The optimizer's enumeration loop seals the plan once and then reuses
//! the IR's CSR topology for every candidate (placement, bounds pre-pass,
//! feature encoding), so per-candidate cost no longer includes edge-list
//! scans or Kahn re-runs. This runner measures end-to-end candidates/sec
//! on a linear, a joining and a multi-sink shared-subplan query and seeds
//! `results/BENCH_tune_scale.json`.
//!
//! Usage: `cargo run --release --bin bench_tune_scale [-- reps]`

use serde::Serialize;
use zt_core::model::{ModelConfig, ZeroTuneModel};
use zt_core::optimizer::{tune, OptimizerConfig};
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_query::benchmarks::{smart_grid_combined, spike_detection};
use zt_query::LogicalPlan;

#[derive(Serialize)]
struct PlanThroughput {
    plan: String,
    ops: usize,
    sinks: usize,
    candidates_evaluated: usize,
    candidates_pruned: usize,
    elapsed_ms: f64,
    candidates_per_sec: f64,
}

#[derive(Serialize)]
struct TuneScaleReport {
    reps: usize,
    hidden: usize,
    plans: Vec<PlanThroughput>,
}

fn measure(name: &str, plan: &LogicalPlan, reps: usize) -> PlanThroughput {
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let model = ZeroTuneModel::new(ModelConfig {
        hidden: 48,
        seed: 7,
    });
    let cfg = OptimizerConfig {
        strict: false,
        ..OptimizerConfig::default()
    };
    // warm-up run, then timed reps
    let warm = tune(&model, plan, &cluster, &cfg);
    let start = std::time::Instant::now();
    let mut evaluated = 0usize;
    for _ in 0..reps {
        let out = tune(&model, plan, &cluster, &cfg);
        evaluated += out.candidates_evaluated;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let ir = plan.validate().expect("benchmark plans are valid");
    PlanThroughput {
        plan: name.to_string(),
        ops: plan.num_ops(),
        sinks: ir.sinks().len(),
        candidates_evaluated: evaluated / reps.max(1),
        candidates_pruned: warm.candidates_pruned,
        elapsed_ms: elapsed * 1e3,
        candidates_per_sec: evaluated as f64 / elapsed.max(f64::MIN_POSITIVE),
    }
}

fn linear_plan(rate: f64) -> LogicalPlan {
    use zt_query::{DataType, FilterFunction, FilterOp, OperatorKind, SourceOp, TupleSchema};
    let mut p = LogicalPlan::new("linear_filter");
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(DataType::Double, 3),
    }));
    let f = p.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Double,
        selectivity: 0.5,
    }));
    let k = p.add(OperatorKind::Sink(zt_query::operators::SinkOp));
    p.connect(s, f);
    p.connect(f, k);
    p
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let report = TuneScaleReport {
        reps,
        hidden: 48,
        plans: vec![
            measure("linear_filter", &linear_plan(500_000.0), reps),
            measure("spike_detection", &spike_detection(500_000.0), reps),
            measure("smart_grid_combined", &smart_grid_combined(500_000.0), reps),
        ],
    };
    for p in &report.plans {
        println!(
            "{:<22} ops={:<2} sinks={} candidates={:<5} {:>10.1} candidates/sec",
            p.plan, p.ops, p.sinks, p.candidates_evaluated, p.candidates_per_sec
        );
    }
    match zt_experiments::report::save_json("BENCH_tune_scale", &report) {
        Ok(path) => eprintln!("saved {}", path.display()),
        Err(e) => eprintln!("failed to save report: {e}"),
    }
}
