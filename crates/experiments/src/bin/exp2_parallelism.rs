//! Exp. 2 runner: Fig. 7a–d parallelism categories and Fig. 6 few-shot.
//!
//! Usage: `cargo run --release --bin exp2_parallelism -- [--scale smoke|standard|full] [--workers N] [--resume[=DIR]] [--strict] [--telemetry[=PATH]]`

use zt_experiments::{exp2, report, Scale};

fn main() {
    zt_experiments::apply_datagen_cli();
    let scale = Scale::from_args();
    eprintln!(
        "exp2 (fine-grained parallelism analysis), scale = {}",
        scale.name
    );
    let result = exp2::run(&scale);
    exp2::print(&result);
    if let Ok(path) = report::save_json("exp2_parallelism", &result) {
        eprintln!("saved {}", path.display());
    }
    zt_experiments::finish_telemetry("exp2_parallelism");
}
