//! `zt-lint` — run every static diagnostics pass and print a rustc-style
//! report.
//!
//! Usage: `cargo run --release -p zt-experiments --bin zt-lint -- [TARGETS]`
//!
//! Targets (combine freely; no arguments runs `--benchmarks
//! --gen-dataset 24` plus a fresh-model lint):
//!
//! * `--benchmarks` — lint the three benchmark queries (spike detection,
//!   local/global smart grid) as parallelism-1 deployments on a 4-node
//!   m510 cluster.
//! * `--gen-dataset N` — generate an N-sample seen-workload dataset
//!   (fixed seed) and lint its labels, encodings and batch statistics.
//! * `--plan FILE` — lint a serialized `ParallelQueryPlan` (or bare
//!   `LogicalPlan`) JSON file.
//! * `--dataset FILE` — lint a serialized `Dataset` JSON file.
//! * `--model FILE` — lint a serialized `ZeroTuneModel` JSON file; when a
//!   `--dataset` target is also given, additionally checks the model's
//!   target normalization against that dataset's labels.
//! * `--codes` — print the lint-code registry and exit.
//!
//! Exit status: 0 when no `Error`-severity findings were produced
//! (warnings are fine), 1 when at least one error was found, 2 on usage
//! errors.

use std::process::ExitCode;

use zt_core::diagnostics::{
    lint_dataset, lint_model, lint_model_against, lint_plan, lint_pqp, Report, Severity, REGISTRY,
};
use zt_core::{generate_dataset, Dataset, GenConfig, ZeroTuneModel};
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_query::benchmarks;
use zt_query::{LogicalPlan, ParallelQueryPlan};

/// One lint target: a heading plus the diagnostics found under it.
struct Section {
    heading: String,
    report: Report,
}

fn section(heading: impl Into<String>, report: Report) -> Section {
    Section {
        heading: heading.into(),
        report,
    }
}

fn lint_benchmarks(sections: &mut Vec<Section>) {
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let queries: [(&str, LogicalPlan); 3] = [
        ("spike_detection", benchmarks::spike_detection(10_000.0)),
        ("smart_grid_local", benchmarks::smart_grid_local(10_000.0)),
        ("smart_grid_global", benchmarks::smart_grid_global(10_000.0)),
    ];
    for (name, plan) in queries {
        let pqp = ParallelQueryPlan::new(plan);
        let report = Report::new(lint_pqp(&pqp, Some(&cluster)));
        sections.push(section(format!("benchmark query `{name}`"), report));
    }
}

fn lint_generated(n: usize, sections: &mut Vec<Section>) {
    let data = generate_dataset(&GenConfig::seen(), n, 7);
    let report = Report::new(lint_dataset(&data));
    sections.push(section(
        format!("generated dataset ({n} samples, seed 7)"),
        report,
    ));
}

fn lint_fresh_model(sections: &mut Vec<Section>) {
    let model = ZeroTuneModel::new(zt_core::ModelConfig {
        hidden: 32,
        seed: 42,
    });
    let report = Report::new(lint_model(&model));
    sections.push(section(
        "freshly initialized model (hidden 32, seed 42)",
        report,
    ));
}

fn read_json(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn lint_plan_file(path: &str, sections: &mut Vec<Section>) -> Result<(), String> {
    let json = read_json(path)?;
    // A PQP file carries the parallel configuration; fall back to a bare
    // logical plan so both serializations are accepted.
    if let Ok(pqp) = serde_json::from_str::<ParallelQueryPlan>(&json) {
        sections.push(section(
            format!("parallel query plan `{path}`"),
            Report::new(lint_pqp(&pqp, None)),
        ));
        return Ok(());
    }
    let plan = serde_json::from_str::<LogicalPlan>(&json)
        .map_err(|e| format!("`{path}` is neither a ParallelQueryPlan nor a LogicalPlan: {e}"))?;
    sections.push(section(
        format!("logical plan `{path}`"),
        Report::new(lint_plan(&plan)),
    ));
    Ok(())
}

fn print_codes() {
    println!("zt-lint code registry ({} codes):", REGISTRY.len());
    for info in REGISTRY {
        println!(
            "  {} [{:>7}] {}",
            info.code,
            info.severity.label(),
            info.summary
        );
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: zt-lint [--benchmarks] [--gen-dataset N] [--plan FILE] [--dataset FILE] [--model FILE] [--codes]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sections: Vec<Section> = Vec::new();
    let mut model_file: Option<String> = None;
    let mut dataset_for_drift: Option<(String, Dataset)> = None;

    let run = |sections: &mut Vec<Section>,
               model_file: &mut Option<String>,
               dataset_for_drift: &mut Option<(String, Dataset)>|
     -> Result<(), String> {
        if args.is_empty() {
            lint_benchmarks(sections);
            lint_generated(24, sections);
            lint_fresh_model(sections);
            return Ok(());
        }
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--benchmarks" => lint_benchmarks(sections),
                "--gen-dataset" => {
                    i += 1;
                    let n: usize = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--gen-dataset needs a sample count")?;
                    lint_generated(n, sections);
                }
                "--plan" => {
                    i += 1;
                    let path = args.get(i).ok_or("--plan needs a file")?;
                    lint_plan_file(path, sections)?;
                }
                "--dataset" => {
                    i += 1;
                    let path = args.get(i).ok_or("--dataset needs a file")?;
                    let data: Dataset = serde_json::from_str(&read_json(path)?)
                        .map_err(|e| format!("`{path}` is not a Dataset: {e}"))?;
                    sections.push(section(
                        format!("dataset `{path}`"),
                        Report::new(lint_dataset(&data)),
                    ));
                    *dataset_for_drift = Some((path.clone(), data));
                }
                "--model" => {
                    i += 1;
                    let path = args.get(i).ok_or("--model needs a file")?;
                    *model_file = Some(path.clone());
                }
                "--codes" => {
                    print_codes();
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
            i += 1;
        }
        Ok(())
    };

    if let Err(e) = run(&mut sections, &mut model_file, &mut dataset_for_drift) {
        eprintln!("zt-lint: {e}");
        return usage();
    }

    // Model lints run last so a `--dataset` given in any position can
    // feed the normalization-drift check.
    if let Some(path) = model_file {
        let result = read_json(&path).and_then(|json| {
            ZeroTuneModel::from_json(&json).map_err(|e| format!("`{path}` is not a model: {e}"))
        });
        match result {
            Ok(model) => {
                let diags = match &dataset_for_drift {
                    Some((_, data)) => lint_model_against(&model, data),
                    None => lint_model(&model),
                };
                sections.push(section(format!("model `{path}`"), Report::new(diags)));
            }
            Err(e) => {
                eprintln!("zt-lint: {e}");
                return usage();
            }
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for s in &sections {
        println!("── {} ──", s.heading);
        if s.report.is_clean() {
            println!("clean");
        } else {
            for d in &s.report.diagnostics {
                println!("{d}");
            }
        }
        println!("{}\n", s.report.summary());
        errors += s.report.count(Severity::Error);
        warnings += s.report.count(Severity::Warning);
    }
    println!(
        "zt-lint: {} target(s), {errors} error(s), {warnings} warning(s)",
        sections.len()
    );
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
