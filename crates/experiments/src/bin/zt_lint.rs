//! `zt-lint` — run every static diagnostics pass and print a rustc-style
//! report.
//!
//! Usage: `cargo run --release -p zt-experiments --bin zt-lint -- [TARGETS]`
//!
//! Targets (combine freely; no arguments runs `--benchmarks
//! --gen-dataset 24` plus a fresh-model lint):
//!
//! * `--benchmarks` — lint the three benchmark queries (spike detection,
//!   local/global smart grid) as parallelism-1 deployments on a 4-node
//!   m510 cluster.
//! * `--gen-dataset N` — generate an N-sample seen-workload dataset
//!   (fixed seed) and lint its labels, encodings and batch statistics.
//! * `--plan FILE` — lint a serialized `ParallelQueryPlan` (or bare
//!   `LogicalPlan`) JSON file.
//! * `--dataset FILE` — lint a serialized `Dataset` JSON file.
//! * `--model FILE` — lint a serialized `ZeroTuneModel` JSON file; when a
//!   `--dataset` target is also given, additionally checks the model's
//!   target normalization against that dataset's labels.
//! * `--bounds` — additionally run the interval-bounds pass (ZT5xx) over
//!   every linted deployment: benchmark queries and `--plan`/`--results`
//!   files that deserialize as a `ParallelQueryPlan` get a provable
//!   lower/upper-bound report rendered next to their diagnostics.
//! * `--dataflow` — additionally run the monotone dataflow analyses over
//!   every linted deployment and render the per-edge fact table
//!   (rate/width brackets, key cardinality, distribution property, key
//!   classes). The ZT7xx findings themselves are part of the ordinary
//!   plan lint; this flag adds the underlying facts.
//! * `--certify` — additionally certify every linted model by interval
//!   bound propagation over its trained weights (ZT6xx): certified
//!   per-depth output brackets, dead/saturated units and per-feature
//!   sensitivity bounds are rendered next to the model's diagnostics;
//!   applies to the fresh-model target, `--model` and `--results` models.
//! * `--results[=DIR]` — sniff every `*.json` under DIR (default
//!   `results`) and lint whatever it deserializes as (plan, dataset or
//!   model); unrecognized artifacts are skipped with a note.
//! * `--fuzz N` — seeded random-plan smoke test: generate N plans across
//!   every `QueryStructure` (fixed per-plan seeds, so runs are
//!   reproducible), seal each through `validate()`, round-trip it
//!   through the `PlanIr::to_json` wire envelope (fingerprint must
//!   survive re-sealing — the zt-serve ZT109 check), lint it, derive its
//!   interval bounds and run the analytical simulator, checking the
//!   simulated point estimates land inside the provable brackets, that
//!   the dataflow rate facts are a fixpoint, and that the bounds
//!   module's unthrottled rates nest inside the dataflow brackets. Any
//!   error-severity finding or out-of-bracket estimate fails the run,
//!   except ZT503 (provably infeasible deployment), which is an expected
//!   verdict for random workloads pinned at parallelism 1.
//! * `--codes` — print the lint-code registry and exit.
//!
//! Exit status: 0 when no `Error`-severity findings were produced
//! (warnings are fine), 1 when at least one error was found, 2 on usage
//! errors.

use std::process::ExitCode;

use zt_core::diagnostics::{
    lint_bounds_report, lint_dataset, lint_model, lint_model_against, lint_plan, lint_pqp, Report,
    Severity, REGISTRY,
};
use zt_core::{generate_dataset, BoundsConfig, Dataset, GenConfig, ZeroTuneModel};
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_query::benchmarks;
use zt_query::{LogicalPlan, ParallelQueryPlan, PlanIr};

/// One lint target: a heading, the diagnostics found under it, and an
/// optional pre-rendered detail block (the bounds table).
struct Section {
    heading: String,
    report: Report,
    detail: Option<String>,
}

fn section(heading: impl Into<String>, report: Report) -> Section {
    Section {
        heading: heading.into(),
        report,
        detail: None,
    }
}

/// The reference cluster deployments are linted against (4× m510,
/// 10 Gbps — the benchmark setup of the paper's evaluation).
fn reference_cluster() -> Cluster {
    Cluster::homogeneous(ClusterType::M510, 4, 10.0)
}

/// Run the interval-bounds pass over one deployment: ZT5xx lints plus the
/// rendered per-operator interval table.
fn bounds_section(name: &str, pqp: &ParallelQueryPlan, cluster: &Cluster) -> Section {
    let report = zt_core::bounds::analyze(pqp, cluster, &BoundsConfig::default());
    Section {
        heading: format!("bounds `{name}` (reference 4-node m510 cluster)"),
        report: Report::new(lint_bounds_report(&report)),
        detail: Some(zt_core::explain::explain_bounds(pqp, &report, None)),
    }
}

/// Certify one model by interval bound propagation: the ZT6xx findings
/// plus the rendered per-depth bracket table.
fn certify_section(name: &str, model: &ZeroTuneModel) -> Section {
    let (cert, report) = zt_core::certify_report(model);
    Section {
        heading: format!("certify `{name}` (interval bound propagation)"),
        report,
        detail: cert.as_ref().map(zt_core::explain_certificate),
    }
}

/// Render the per-edge dataflow fact table for one deployment. The ZT7xx
/// findings already appear in the deployment's ordinary lint section, so
/// this section carries only the underlying facts.
fn dataflow_section(name: &str, pqp: &ParallelQueryPlan, ir: &PlanIr) -> Section {
    let report = zt_core::dataflow::analyze_pqp(pqp, ir);
    Section {
        heading: format!("dataflow `{name}` (per-edge fixpoint facts)"),
        report: Report::default(),
        detail: Some(zt_core::explain::explain_dataflow(pqp, ir, &report)),
    }
}

fn lint_benchmarks(bounds: bool, dataflow: bool, sections: &mut Vec<Section>) {
    let cluster = reference_cluster();
    let queries: [(&str, LogicalPlan); 3] = [
        ("spike_detection", benchmarks::spike_detection(10_000.0)),
        ("smart_grid_local", benchmarks::smart_grid_local(10_000.0)),
        ("smart_grid_global", benchmarks::smart_grid_global(10_000.0)),
    ];
    for (name, plan) in queries {
        let pqp = ParallelQueryPlan::new(plan);
        let report = Report::new(lint_pqp(&pqp, Some(&cluster)));
        sections.push(section(format!("benchmark query `{name}`"), report));
        if bounds {
            sections.push(bounds_section(name, &pqp, &cluster));
        }
        if dataflow {
            if let Ok(ir) = pqp.plan.validate() {
                sections.push(dataflow_section(name, &pqp, &ir));
            }
        }
    }
}

fn lint_generated(n: usize, sections: &mut Vec<Section>) {
    let data = generate_dataset(&GenConfig::seen(), n, 7);
    let report = Report::new(lint_dataset(&data));
    sections.push(section(
        format!("generated dataset ({n} samples, seed 7)"),
        report,
    ));
}

fn lint_fresh_model(certify: bool, sections: &mut Vec<Section>) {
    let model = ZeroTuneModel::new(zt_core::ModelConfig {
        hidden: 32,
        seed: 42,
    });
    let report = Report::new(lint_model(&model));
    sections.push(section(
        "freshly initialized model (hidden 32, seed 42)",
        report,
    ));
    if certify {
        sections.push(certify_section("fresh model", &model));
    }
}

fn read_json(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn lint_plan_file(
    path: &str,
    bounds: bool,
    dataflow: bool,
    sections: &mut Vec<Section>,
) -> Result<(), String> {
    let json = read_json(path)?;
    // A PQP file carries the parallel configuration; fall back to a bare
    // logical plan so both serializations are accepted.
    if let Ok(pqp) = serde_json::from_str::<ParallelQueryPlan>(&json) {
        sections.push(section(
            format!("parallel query plan `{path}`"),
            Report::new(lint_pqp(&pqp, None)),
        ));
        if bounds && pqp.validate().is_ok() {
            sections.push(bounds_section(path, &pqp, &reference_cluster()));
        }
        if dataflow && pqp.validate().is_ok() {
            if let Ok(ir) = pqp.plan.validate() {
                sections.push(dataflow_section(path, &pqp, &ir));
            }
        }
        return Ok(());
    }
    let plan = serde_json::from_str::<LogicalPlan>(&json)
        .map_err(|e| format!("`{path}` is neither a ParallelQueryPlan nor a LogicalPlan: {e}"))?;
    sections.push(section(
        format!("logical plan `{path}`"),
        Report::new(lint_plan(&plan)),
    ));
    Ok(())
}

/// Sniff every `*.json` under `dir` and lint whatever each file
/// deserializes as. Experiment result files (and anything else
/// unrecognized) are skipped with a note; a missing directory is a note,
/// not an error, so CI can run this before any experiment has executed.
fn lint_results_dir(
    dir: &str,
    bounds: bool,
    certify: bool,
    dataflow: bool,
    sections: &mut Vec<Section>,
) {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            let mut s = section(format!("results directory `{dir}`"), Report::default());
            s.detail = Some(format!("skipped: cannot read directory ({e})\n"));
            sections.push(s);
            return;
        }
    };
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        let mut s = section(format!("results directory `{dir}`"), Report::default());
        s.detail = Some("skipped: no *.json files\n".to_string());
        sections.push(s);
        return;
    }
    for p in paths {
        let path = p.display().to_string();
        let Ok(json) = std::fs::read_to_string(&p) else {
            let mut s = section(format!("result `{path}`"), Report::default());
            s.detail = Some("skipped: unreadable\n".to_string());
            sections.push(s);
            continue;
        };
        if let Ok(pqp) = serde_json::from_str::<ParallelQueryPlan>(&json) {
            sections.push(section(
                format!("parallel query plan `{path}`"),
                Report::new(lint_pqp(&pqp, None)),
            ));
            if bounds && pqp.validate().is_ok() {
                sections.push(bounds_section(&path, &pqp, &reference_cluster()));
            }
            if dataflow && pqp.validate().is_ok() {
                if let Ok(ir) = pqp.plan.validate() {
                    sections.push(dataflow_section(&path, &pqp, &ir));
                }
            }
        } else if let Ok(plan) = serde_json::from_str::<LogicalPlan>(&json) {
            sections.push(section(
                format!("logical plan `{path}`"),
                Report::new(lint_plan(&plan)),
            ));
        } else if let Ok(data) = serde_json::from_str::<Dataset>(&json) {
            sections.push(section(
                format!("dataset `{path}`"),
                Report::new(lint_dataset(&data)),
            ));
        } else if let Ok(model) = ZeroTuneModel::from_json(&json) {
            sections.push(section(
                format!("model `{path}`"),
                Report::new(lint_model(&model)),
            ));
            if certify {
                sections.push(certify_section(&path, &model));
            }
        } else {
            let mut s = section(format!("result `{path}`"), Report::default());
            s.detail = Some("skipped: not a lintable artifact (plan/dataset/model)\n".to_string());
            sections.push(s);
        }
    }
}

/// Seeded random-plan smoke test: generator → seal → lint → bounds →
/// simulate. Returns the number of plans that failed any stage; their
/// error diagnostics are collected into one section so the usual exit
/// logic sees them.
fn fuzz_smoke(n: usize, sections: &mut Vec<Section>) -> usize {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zt_dspsim::analytical::{simulate, SimConfig};
    use zt_query::{QueryGenerator, QueryStructure};

    let cluster = reference_cluster();
    let mut failed = 0usize;
    let mut lines = String::new();
    let mut findings = Vec::new();
    for i in 0..n {
        let structure = match i % 8 {
            0 => QueryStructure::Linear,
            1 => QueryStructure::TwoWayJoin,
            2 => QueryStructure::ThreeWayJoin,
            3 => QueryStructure::ChainedFilters(2 + (i % 3) as u8),
            4 => QueryStructure::NWayJoin(4 + (i % 3) as u8),
            5 => QueryStructure::SpikeDetection,
            6 => QueryStructure::SmartGridLocal,
            _ => QueryStructure::SmartGridGlobal,
        };
        let generator = if structure.is_seen() {
            QueryGenerator::seen()
        } else {
            QueryGenerator::unseen()
        };
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + i as u64);
        let plan = generator.generate(structure, &mut rng);
        let ir = match plan.validate() {
            Ok(ir) => ir,
            Err(e) => {
                failed += 1;
                lines.push_str(&format!("plan {i} ({structure:?}): seal failed: {e:?}\n"));
                continue;
            }
        };
        // Every sealed plan must survive the wire: envelope → re-seal →
        // identical fingerprint (the ZT109 integrity check zt-serve
        // applies to every request).
        match ir.to_json(&plan).and_then(|json| PlanIr::from_json(&json)) {
            Ok((_, ir2)) if ir2.fingerprint() == ir.fingerprint() => {}
            Ok((_, ir2)) => {
                failed += 1;
                lines.push_str(&format!(
                    "plan {i} ({structure:?}): wire fingerprint drift {:016x} -> {:016x}\n",
                    ir.fingerprint(),
                    ir2.fingerprint()
                ));
                continue;
            }
            Err(e) => {
                failed += 1;
                lines.push_str(&format!(
                    "plan {i} ({structure:?}): wire round-trip failed: {e}\n"
                ));
                continue;
            }
        }
        let pqp = ParallelQueryPlan::new(plan);
        let diags = lint_pqp(&pqp, Some(&cluster));
        let report = zt_core::bounds::analyze(&pqp, &cluster, &BoundsConfig::default());
        let bounds_diags = lint_bounds_report(&report);
        // Dataflow cross-check: the deployed rate facts must be a
        // fixpoint, sit inside the plan-level (parallelism-hulled)
        // brackets, and contain the bounds module's unthrottled rates.
        let df_ok = {
            use zt_core::dataflow::{is_fixpoint, solve, Domain, RateAnalysis};
            let hull = solve(&RateAnalysis { pqp: None }, &pqp.plan, &ir);
            let deployed_analysis = RateAnalysis { pqp: Some(&pqp) };
            let deployed = solve(&deployed_analysis, &pqp.plan, &ir);
            is_fixpoint(&deployed_analysis, &pqp.plan, &ir, &deployed)
                && deployed
                    .per_op
                    .iter()
                    .zip(&hull.per_op)
                    .all(|(p, h)| p.leq(h))
                && report
                    .per_op
                    .iter()
                    .zip(&hull.per_op)
                    .all(|(b, h)| h.rate.contains(b.output_rate.hi))
        };
        let mut sim_rng = StdRng::seed_from_u64(0xD1CE_0000 + i as u64);
        let m = simulate(&pqp, &cluster, &SimConfig::noiseless(), &mut sim_rng);
        let sim_ok = m.latency_ms.is_finite()
            && m.latency_ms > 0.0
            && m.throughput.is_finite()
            && m.throughput > 0.0
            && report.latency_ms.contains(m.latency_ms)
            && report.throughput.contains(m.throughput);
        // ZT503 (provably infeasible deployment) is an *expected* verdict
        // for random workloads deployed at parallelism 1 — the fuzz pass
        // checks pipeline health, not workload feasibility.
        let errors: Vec<_> = diags
            .into_iter()
            .chain(bounds_diags)
            .filter(|d| d.severity == Severity::Error && d.code != "ZT503")
            .collect();
        if !errors.is_empty() || !sim_ok || !df_ok {
            failed += 1;
            lines.push_str(&format!(
                "plan {i} ({structure:?}): {} error(s), sim_ok={sim_ok}, df_ok={df_ok} (latency {} ms in {:?}?)\n",
                errors.len(),
                m.latency_ms,
                report.latency_ms
            ));
            findings.extend(errors);
        }
    }
    if failed == 0 {
        lines.push_str(&format!(
            "all {n} generated plans sealed, linted clean, simulated inside their bounds, and \
             nested their dataflow brackets\n"
        ));
    }
    let mut s = section(
        format!("fuzz smoke ({n} seeded random plans)"),
        Report::new(findings),
    );
    s.detail = Some(lines);
    sections.push(s);
    failed
}

fn print_codes() {
    println!("zt-lint code registry ({} codes):", REGISTRY.len());
    for info in REGISTRY {
        println!(
            "  {} [{:>7}] {}",
            info.code,
            info.severity.label(),
            info.summary
        );
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: zt-lint [--benchmarks] [--gen-dataset N] [--plan FILE] [--dataset FILE] [--model FILE] [--bounds] [--certify] [--dataflow] [--results[=DIR]] [--fuzz N] [--codes]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sections: Vec<Section> = Vec::new();
    let mut model_file: Option<String> = None;
    let mut dataset_for_drift: Option<(String, Dataset)> = None;
    let fuzz_failures = std::cell::Cell::new(0usize);
    // Pre-scanned: `--bounds` modifies every plan target and `--certify`
    // every model target, regardless of argument order.
    let bounds = args.iter().any(|a| a == "--bounds");
    let certify = args.iter().any(|a| a == "--certify");
    let dataflow = args.iter().any(|a| a == "--dataflow");

    let run = |sections: &mut Vec<Section>,
               model_file: &mut Option<String>,
               dataset_for_drift: &mut Option<(String, Dataset)>|
     -> Result<(), String> {
        // No targets (only the pre-scanned modifier flags, or nothing at
        // all): run the default target set.
        if args
            .iter()
            .all(|a| a == "--bounds" || a == "--certify" || a == "--dataflow")
        {
            lint_benchmarks(bounds, dataflow, sections);
            lint_generated(24, sections);
            lint_fresh_model(certify, sections);
            return Ok(());
        }
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--benchmarks" => lint_benchmarks(bounds, dataflow, sections),
                "--bounds" | "--certify" | "--dataflow" => {} // pre-scanned above
                "--results" => lint_results_dir("results", bounds, certify, dataflow, sections),
                "--gen-dataset" => {
                    i += 1;
                    let n: usize = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--gen-dataset needs a sample count")?;
                    lint_generated(n, sections);
                }
                "--fuzz" => {
                    i += 1;
                    let n: usize = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--fuzz needs a plan count")?;
                    fuzz_failures.set(fuzz_failures.get() + fuzz_smoke(n, sections));
                }
                "--plan" => {
                    i += 1;
                    let path = args.get(i).ok_or("--plan needs a file")?;
                    lint_plan_file(path, bounds, dataflow, sections)?;
                }
                "--dataset" => {
                    i += 1;
                    let path = args.get(i).ok_or("--dataset needs a file")?;
                    let data: Dataset = serde_json::from_str(&read_json(path)?)
                        .map_err(|e| format!("`{path}` is not a Dataset: {e}"))?;
                    sections.push(section(
                        format!("dataset `{path}`"),
                        Report::new(lint_dataset(&data)),
                    ));
                    *dataset_for_drift = Some((path.clone(), data));
                }
                "--model" => {
                    i += 1;
                    let path = args.get(i).ok_or("--model needs a file")?;
                    *model_file = Some(path.clone());
                }
                "--codes" => {
                    print_codes();
                }
                other => {
                    if let Some(dir) = other.strip_prefix("--results=") {
                        lint_results_dir(dir, bounds, certify, dataflow, sections);
                    } else {
                        return Err(format!("unknown argument `{other}`"));
                    }
                }
            }
            i += 1;
        }
        Ok(())
    };

    if let Err(e) = run(&mut sections, &mut model_file, &mut dataset_for_drift) {
        eprintln!("zt-lint: {e}");
        return usage();
    }

    // Model lints run last so a `--dataset` given in any position can
    // feed the normalization-drift check.
    if let Some(path) = model_file {
        let result = read_json(&path).and_then(|json| {
            ZeroTuneModel::from_json(&json).map_err(|e| format!("`{path}` is not a model: {e}"))
        });
        match result {
            Ok(model) => {
                let diags = match &dataset_for_drift {
                    Some((_, data)) => lint_model_against(&model, data),
                    None => lint_model(&model),
                };
                sections.push(section(format!("model `{path}`"), Report::new(diags)));
                if certify {
                    sections.push(certify_section(&path, &model));
                }
            }
            Err(e) => {
                eprintln!("zt-lint: {e}");
                return usage();
            }
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for s in &sections {
        println!("── {} ──", s.heading);
        if s.report.is_clean() {
            println!("clean");
        } else {
            for d in &s.report.diagnostics {
                println!("{d}");
            }
        }
        if let Some(detail) = &s.detail {
            print!("{detail}");
        }
        println!("{}\n", s.report.summary());
        errors += s.report.count(Severity::Error);
        warnings += s.report.count(Severity::Warning);
    }
    println!(
        "zt-lint: {} target(s), {errors} error(s), {warnings} warning(s)",
        sections.len()
    );
    // Fuzz failures without an attributable diagnostic (e.g. an estimate
    // outside its bracket) still fail the run.
    errors += fuzz_failures.get().saturating_sub(
        sections
            .iter()
            .filter(|s| s.heading.starts_with("fuzz smoke"))
            .map(|s| s.report.count(Severity::Error))
            .sum(),
    );
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
