//! Exp. 1: accuracy on seen and unseen workloads (Table IV) and the
//! model-architecture comparison (Fig. 1 / Fig. 5).

use serde::Serialize;
use zt_baselines::{evaluate_estimator, BaselineModel, CostEstimator};
use zt_core::dataset::{generate_dataset, Dataset, GenConfig};
use zt_core::train::evaluate_where;
use zt_query::QueryStructure;

use crate::report::{f2, Table};
use crate::{train_pipeline, Scale, TrainedPipeline};

/// One Table-IV row.
#[derive(Clone, Debug, Serialize)]
pub struct QErrorRow {
    pub group: String,
    pub structure: String,
    pub lat_median: f64,
    pub lat_p95: f64,
    pub tpt_median: f64,
    pub tpt_p95: f64,
    pub n: usize,
}

/// One Fig.-5 row (per architecture × workload group).
#[derive(Clone, Debug, Serialize)]
pub struct ArchitectureRow {
    pub model: String,
    pub workload: String,
    pub lat_median: f64,
    pub lat_p95: f64,
    pub tpt_median: f64,
    pub tpt_p95: f64,
}

#[derive(Clone, Debug, Serialize)]
pub struct Exp1Result {
    pub table4: Vec<QErrorRow>,
    pub architectures: Vec<ArchitectureRow>,
}

fn qrow(
    pipeline: &TrainedPipeline,
    group: &str,
    structure: &str,
    samples: &[zt_core::dataset::Sample],
) -> QErrorRow {
    let (lat, tpt) = zt_core::train::evaluate(&pipeline.model, samples);
    QErrorRow {
        group: group.to_string(),
        structure: structure.to_string(),
        lat_median: lat.median,
        lat_p95: lat.p95,
        tpt_median: tpt.median,
        tpt_p95: tpt.p95,
        n: lat.count,
    }
}

/// Generate an evaluation set for one structure.
pub fn structure_test_set(structure: QueryStructure, n: usize, seed: u64) -> Dataset {
    let base = if structure.is_seen() {
        GenConfig::seen()
    } else {
        GenConfig::unseen_structures()
    };
    generate_dataset(&base.with_structures(vec![structure]), n, seed)
}

/// Run Exp. 1 (optionally reusing an already-trained pipeline).
pub fn run_with(pipeline: &TrainedPipeline) -> Exp1Result {
    let scale = &pipeline.scale;
    let mut table4 = Vec::new();

    // ① seen workload: classical test split per structure + overall.
    for s in QueryStructure::seen() {
        let name = s.name();
        let (lat, tpt) = evaluate_where(&pipeline.model, &pipeline.test_seen.samples, |x| {
            x.meta.structure == name
        });
        table4.push(QErrorRow {
            group: "seen".into(),
            structure: name,
            lat_median: lat.median,
            lat_p95: lat.p95,
            tpt_median: tpt.median,
            tpt_p95: tpt.p95,
            n: lat.count,
        });
    }
    table4.push(qrow(
        pipeline,
        "seen",
        "overall",
        &pipeline.test_seen.samples,
    ));

    // ② unseen structures (200 queries each in the paper).
    let mut unseen_pool = Dataset::default();
    for (i, s) in QueryStructure::unseen_synthetic().into_iter().enumerate() {
        let set = structure_test_set(s, scale.test_per_group, scale.seed + 100 + i as u64);
        table4.push(qrow(pipeline, "unseen", &s.name(), &set.samples));
        unseen_pool.extend(set);
    }

    // ③ public benchmarks.
    for (i, s) in QueryStructure::benchmarks().into_iter().enumerate() {
        let set = structure_test_set(s, scale.test_per_group, scale.seed + 200 + i as u64);
        table4.push(qrow(pipeline, "benchmark", &s.name(), &set.samples));
    }

    // Fig. 5: flat-vector architectures vs ZeroTune, seen + unseen.
    let baselines = BaselineModel::fit_all(&pipeline.train_set, scale.seed);
    let mut architectures = Vec::new();
    let mut arch_eval = |est: &dyn CostEstimator| {
        for (workload, samples) in [
            ("seen", &pipeline.test_seen.samples),
            ("unseen", &unseen_pool.samples),
        ] {
            let (lat, tpt) = evaluate_estimator(est, samples);
            architectures.push(ArchitectureRow {
                model: est.name().to_string(),
                workload: workload.to_string(),
                lat_median: lat.median,
                lat_p95: lat.p95,
                tpt_median: tpt.median,
                tpt_p95: tpt.p95,
            });
        }
    };
    arch_eval(&pipeline.model);
    for b in &baselines {
        arch_eval(b);
    }

    Exp1Result {
        table4,
        architectures,
    }
}

/// Full Exp. 1: train and evaluate.
pub fn run(scale: &Scale) -> Exp1Result {
    let pipeline = train_pipeline(scale, &GenConfig::seen());
    run_with(&pipeline)
}

/// Print the result in the paper's layout.
pub fn print(result: &Exp1Result) {
    let mut t = Table::new(
        "Table IV: q-errors of cost prediction (seen / unseen / benchmarks)",
        &[
            "group",
            "query structure",
            "lat median",
            "lat 95th",
            "tpt median",
            "tpt 95th",
            "n",
        ],
    );
    for r in &result.table4 {
        t.row(vec![
            r.group.clone(),
            r.structure.clone(),
            f2(r.lat_median),
            f2(r.lat_p95),
            f2(r.tpt_median),
            f2(r.tpt_p95),
            r.n.to_string(),
        ]);
    }
    t.print();

    let mut a = Table::new(
        "Fig. 5: model architectures, median (95th) latency/throughput q-error",
        &[
            "model",
            "workload",
            "lat median",
            "lat 95th",
            "tpt median",
            "tpt 95th",
        ],
    );
    for r in &result.architectures {
        a.row(vec![
            r.model.clone(),
            r.workload.clone(),
            f2(r.lat_median),
            f2(r.lat_p95),
            f2(r.tpt_median),
            f2(r.tpt_p95),
        ]);
    }
    a.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            name: "tiny",
            train_queries: 160,
            test_per_group: 25,
            epochs: 10,
            hidden: 20,
            seed: 0xE1,
        }
    }

    #[test]
    fn exp1_produces_all_rows() {
        let result = run(&tiny_scale());
        // 3 seen + overall + 6 unseen + 3 benchmarks
        assert_eq!(result.table4.len(), 3 + 1 + 6 + 3);
        // 4 models × 2 workloads
        assert_eq!(result.architectures.len(), 8);
        for r in &result.table4 {
            assert!(r.lat_median >= 1.0, "{}: q < 1", r.structure);
            assert!(r.lat_p95 >= r.lat_median);
        }
    }

    #[test]
    fn zerotune_beats_flat_mlp_tails_on_unseen() {
        // The paper's headline architecture result: flat-vector deep
        // models extrapolate catastrophically on unseen structures while
        // the graph model degrades gracefully. The tail (95th) comparison
        // is robust at every training scale; median orderings among the
        // non-catastrophic baselines need paper-scale training (see
        // EXPERIMENTS.md).
        let result = run(&tiny_scale());
        let get = |model: &str, workload: &str, p95: bool| {
            let r = result
                .architectures
                .iter()
                .find(|r| r.model == model && r.workload == workload)
                .unwrap();
            if p95 {
                r.lat_p95
            } else {
                r.lat_median
            }
        };
        let zt_p95 = get("ZeroTune", "unseen", true);
        let mlp_p95 = get("Flat Vector MLP", "unseen", true);
        assert!(
            zt_p95 < mlp_p95,
            "ZeroTune p95 ({zt_p95}) should beat the flat MLP p95 ({mlp_p95}) on unseen plans"
        );
        // and ZeroTune must be a usable in-distribution predictor even at
        // this tiny training scale (the strict ordering against the other
        // architectures needs paper-scale training; see EXPERIMENTS.md)
        let zt_seen = get("ZeroTune", "seen", false);
        assert!(zt_seen < 3.0, "ZeroTune seen median {zt_seen} unusable");
    }
}
