//! Fig. 3 micro-benchmark: effect of the parallelism degree and operator
//! grouping on latency and throughput.
//!
//! Reproduces the paper's setup: a linear query with a count-based
//! tumbling window where everything except the parallelism degree is kept
//! deterministic, with the input rate high enough to drive the cluster to
//! full utilization. With increasing parallelism, latency falls and
//! throughput rises; when the deployment saturates the cluster's slots
//! the scheduler switches to fused (chained) execution — the highlighted
//! discontinuity of the paper's figure.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use zt_dspsim::analytical::{simulate, SimConfig};
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_query::operators::*;
use zt_query::{DataType, LogicalPlan, OperatorKind, ParallelQueryPlan, TupleSchema};

use crate::report::{f2, fmt_qty, Table};

/// One sweep point.
#[derive(Clone, Debug, Serialize)]
pub struct SweepPoint {
    pub parallelism: u32,
    pub latency_ms: f64,
    pub throughput: f64,
    /// Whether the scheduler fused operators at this degree (the paper's
    /// "operator grouping" region).
    pub chained: bool,
    /// Grouping number of the filter operator.
    pub grouping: u32,
}

#[derive(Clone, Debug, Serialize)]
pub struct Fig3Result {
    pub points: Vec<SweepPoint>,
    pub offered_rate: f64,
    pub workers: usize,
}

/// The micro-benchmark query: source → filter → count-tumbling
/// window-aggregate → sink with fixed parameters.
pub fn microbench_query(rate: f64) -> LogicalPlan {
    let mut plan = LogicalPlan::new("fig3-microbench");
    let s = plan.add(OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(DataType::Double, 3),
        key_cardinality: None,
    }));
    let f = plan.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Double,
        selectivity: 0.5,
    }));
    let a = plan.add(OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::tumbling(WindowPolicy::Count, 50.0),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: Some(DataType::Int),
        selectivity: 0.2,
        key_cardinality: None,
    }));
    let k = plan.add(OperatorKind::Sink(SinkOp));
    plan.connect(s, f);
    plan.connect(f, a);
    plan.connect(a, k);
    plan
}

/// Run the sweep. `rate` should saturate the cluster at low parallelism
/// (the paper: "maximum utilization … while ensuring there is no
/// backpressure with increasing parallelism").
pub fn run(rate: f64, workers: usize) -> Fig3Result {
    let cluster = Cluster::homogeneous(ClusterType::M510, workers, 10.0);
    let sim = SimConfig::noiseless();
    let degrees = [1u32, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 32, 48, 64];
    let plan = microbench_query(rate);
    let points = degrees
        .iter()
        .map(|&p| {
            let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), vec![p; 4]);
            let mut rng = StdRng::seed_from_u64(3);
            let m = simulate(&pqp, &cluster, &sim, &mut rng);
            SweepPoint {
                parallelism: p,
                latency_ms: m.latency_ms,
                throughput: m.throughput,
                chained: m.deployment.chained,
                grouping: m.deployment.grouping_number(zt_query::OpId(1)),
            }
        })
        .collect();
    Fig3Result {
        points,
        offered_rate: rate,
        workers,
    }
}

pub fn print(result: &Fig3Result) {
    let mut t = Table::new(
        format!(
            "Fig. 3: parallelism sweep (offered {} ev/s, {} workers)",
            fmt_qty(result.offered_rate),
            result.workers
        ),
        &[
            "parallelism",
            "latency (ms)",
            "throughput (ev/s)",
            "chained",
            "grouping",
        ],
    );
    for p in &result.points {
        t.row(vec![
            p.parallelism.to_string(),
            f2(p.latency_ms),
            fmt_qty(p.throughput),
            if p.chained { "yes".into() } else { "no".into() },
            p.grouping.to_string(),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_paper_fig3_shape() {
        let result = run(3_000_000.0, 8); // 64 slots
        let pts = &result.points;
        assert!(pts.len() >= 10);

        // throughput increases with parallelism (up to saturation)
        let t1 = pts[0].throughput;
        let t_mid = pts.iter().find(|p| p.parallelism == 16).unwrap().throughput;
        assert!(t_mid > t1 * 2.0, "throughput not scaling: {t1} -> {t_mid}");

        // latency decreases from p=1 to mid parallelism
        let l1 = pts[0].latency_ms;
        let l_mid = pts.iter().find(|p| p.parallelism == 16).unwrap().latency_ms;
        assert!(l_mid < l1, "latency not dropping: {l1} -> {l_mid}");

        // the chaining discontinuity exists: some low-p points unchained,
        // some high-p points chained
        assert!(pts.iter().any(|p| !p.chained));
        assert!(pts.iter().any(|p| p.chained));
        // grouping number reflects the fusion
        let first_chained = pts.iter().find(|p| p.chained).unwrap();
        assert!(first_chained.grouping >= 2);
    }

    #[test]
    fn chaining_transition_improves_latency() {
        let result = run(3_000_000.0, 8);
        let pts = &result.points;
        // find the transition index
        let idx = pts.iter().position(|p| p.chained);
        if let Some(i) = idx {
            if i > 0 {
                let before = &pts[i - 1];
                let after = &pts[i];
                // the paper's highlighted effect: a sudden improvement at
                // the grouping transition despite higher parallelism
                assert!(
                    after.latency_ms < before.latency_ms,
                    "no latency improvement at the chaining transition: {} -> {}",
                    before.latency_ms,
                    after.latency_ms
                );
            }
        }
    }
}
