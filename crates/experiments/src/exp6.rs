//! Exp. 6: feature ablation (Fig. 11).
//!
//! Trains three models — operator-related features only, parallelism- and
//! resource-related features only, and all transferable features — and
//! compares latency q-errors on seen and unseen plans. The paper's
//! finding: operator features alone are insufficient; combining them with
//! parallelism/resource features is what unlocks generalization.

use serde::Serialize;
use zt_core::dataset::{generate_dataset, GenConfig};
use zt_core::features::FeatureMask;
use zt_core::train::evaluate;

use crate::report::{f2, Table};
use crate::{train_pipeline, Scale};

/// One ablation variant's accuracy.
#[derive(Clone, Debug, Serialize)]
pub struct AblationRow {
    pub features: String,
    pub seen_lat_median: f64,
    pub seen_lat_p95: f64,
    pub unseen_lat_median: f64,
    pub unseen_lat_p95: f64,
}

#[derive(Clone, Debug, Serialize)]
pub struct Exp6Result {
    pub rows: Vec<AblationRow>,
}

pub fn run(scale: &Scale) -> Exp6Result {
    let masks = [
        FeatureMask::operator_only(),
        FeatureMask::parallelism_resource_only(),
        FeatureMask::all(),
    ];
    let mut rows = Vec::new();
    for mask in masks {
        // Both the training data and the evaluation data are encoded with
        // the same mask — the model never sees the ablated features. The
        // evaluation sets use *random* parallelism enumeration: under
        // OptiSample, degrees correlate with event rates, which would let
        // an operator-only model infer the missing parallelism features
        // and mute the ablation effect.
        let pipeline = train_pipeline(scale, &GenConfig::seen().with_mask(mask));
        let eval_seen = generate_dataset(
            &GenConfig::seen()
                .with_mask(mask)
                .with_strategy(zt_core::optisample::EnumerationStrategy::random()),
            scale.test_per_group * 2,
            scale.seed + 701,
        );
        let unseen = generate_dataset(
            &GenConfig::unseen_structures()
                .with_mask(mask)
                .with_strategy(zt_core::optisample::EnumerationStrategy::random()),
            scale.test_per_group * 2,
            scale.seed + 700,
        );
        let (seen_lat, _) = evaluate(&pipeline.model, &eval_seen.samples);
        let (unseen_lat, _) = evaluate(&pipeline.model, &unseen.samples);
        rows.push(AblationRow {
            features: mask.label().to_string(),
            seen_lat_median: seen_lat.median,
            seen_lat_p95: seen_lat.p95,
            unseen_lat_median: unseen_lat.median,
            unseen_lat_p95: unseen_lat.p95,
        });
    }
    Exp6Result { rows }
}

pub fn print(result: &Exp6Result) {
    let mut t = Table::new(
        "Fig. 11: feature ablation — latency q-errors",
        &[
            "features",
            "seen median",
            "seen 95th",
            "unseen median",
            "unseen 95th",
        ],
    );
    for r in &result.rows {
        t.row(vec![
            r.features.clone(),
            f2(r.seen_lat_median),
            f2(r.seen_lat_p95),
            f2(r.unseen_lat_median),
            f2(r.unseen_lat_p95),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_features_beat_single_group_ablations() {
        let scale = Scale {
            name: "tiny",
            train_queries: 250,
            test_per_group: 25,
            epochs: 12,
            hidden: 20,
            seed: 0xE6,
        };
        let result = run(&scale);
        assert_eq!(result.rows.len(), 3);
        let get = |name: &str| {
            result
                .rows
                .iter()
                .find(|r| r.features == name)
                .unwrap()
                .seen_lat_median
        };
        // At this tiny training scale the orderings between variants are
        // noisy (the full model has the most parameters to fit); the
        // clean Fig.-11 ordering emerges at the standard scale and is
        // recorded in EXPERIMENTS.md. Here we verify the mechanism: all
        // three variants train, produce valid q-errors, and none is
        // degenerate.
        for name in ["all", "operator-only", "parallelism+resource"] {
            let v = get(name);
            assert!((1.0..15.0).contains(&v), "{name} variant degenerate: {v}");
        }
    }
}
