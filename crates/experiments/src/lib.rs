//! # zt-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation section:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`exp1`] | Table IV ①②③ (seen / unseen / benchmark q-errors) and Fig. 1 / Fig. 5 (architecture comparison) |
//! | [`exp2`] | Fig. 7a–d (parallelism categories) and Fig. 6 (few-shot scatter) |
//! | [`exp3`] | Fig. 8a–e (unseen parameters) |
//! | [`exp4`] | Fig. 9a–b (data-efficient training) |
//! | [`exp5`] | Fig. 10a–b (optimizer speed-ups vs greedy and Dhalion) |
//! | [`exp6`] | Fig. 11 (feature ablation) |
//! | [`fig3`] | Fig. 3 (parallelism/chaining micro-benchmark) |
//!
//! Every runner accepts a [`Scale`] so the same code serves quick smoke
//! runs (`cargo bench`), the default CLI runs, and paper-scale runs.

#![deny(unsafe_code)]

pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod exp4;
pub mod exp5;
pub mod exp6;
pub mod fig3;
pub mod report;

use zt_core::dataset::{generate_dataset, Dataset, GenConfig};
use zt_core::model::{ModelConfig, ZeroTuneModel};
use zt_core::train::{train, TrainConfig, TrainReport};

/// Experiment size preset.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub name: &'static str,
    /// Training queries (the paper uses 19.2k after the 80/10/10 split of
    /// 24k).
    pub train_queries: usize,
    /// Test queries per workload group (the paper uses 200 per unseen
    /// structure).
    pub test_per_group: usize,
    pub epochs: usize,
    pub hidden: usize,
    pub seed: u64,
}

impl Scale {
    /// Fast preset used by `cargo bench` (finishes in seconds per
    /// experiment).
    pub fn smoke() -> Self {
        Scale {
            name: "smoke",
            train_queries: 300,
            test_per_group: 40,
            epochs: 12,
            hidden: 24,
            seed: 0xD0E,
        }
    }

    /// Default CLI preset (a couple of minutes per experiment).
    pub fn standard() -> Self {
        Scale {
            name: "standard",
            train_queries: 3_000,
            test_per_group: 120,
            epochs: 30,
            hidden: 48,
            seed: 0xD0E,
        }
    }

    /// Paper-scale preset (24k queries as in Table III).
    pub fn full() -> Self {
        Scale {
            name: "full",
            train_queries: 19_200,
            test_per_group: 200,
            epochs: 40,
            hidden: 64,
            seed: 0xD0E,
        }
    }

    /// Parse `--scale smoke|standard|full` style CLI args (defaults to
    /// standard).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            if a == "--scale" {
                if let Some(v) = args.get(i + 1) {
                    return Self::by_name(v);
                }
            }
            if let Some(v) = a.strip_prefix("--scale=") {
                return Self::by_name(v);
            }
        }
        Self::standard()
    }

    pub fn by_name(name: &str) -> Self {
        match name {
            "smoke" => Self::smoke(),
            "full" => Self::full(),
            _ => Self::standard(),
        }
    }

    fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            patience: (self.epochs / 4).max(5),
            seed: self.seed,
            ..TrainConfig::default()
        }
    }
}

/// Data-generation flags shared by every experiment binary.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DatagenArgs {
    /// `--workers N` / `--workers=N`.
    pub workers: Option<String>,
    /// `--resume` (defaults to `results/shards`) / `--resume=DIR`.
    pub resume_dir: Option<String>,
    /// `--strict`: run the diagnostics pre-flight in datagen / training /
    /// tuning and abort on `Error`-severity findings.
    pub strict: bool,
    /// `--telemetry` (trace to the default path) / `--telemetry=PATH`.
    /// `None` leaves the `ZT_TELEMETRY` environment variable in charge.
    pub telemetry: Option<Option<String>>,
    /// `--no-prune`: disable the optimizer's interval-bounds pruning
    /// pre-pass (exhaustive candidate scoring).
    pub no_prune: bool,
    /// `--no-dataflow-cap`: disable the optimizer's key-cardinality
    /// lattice capping (search the full degree axes).
    pub no_dataflow_cap: bool,
}

impl DatagenArgs {
    /// Parse `--workers` / `--resume` / `--strict` / `--telemetry` /
    /// `--no-prune` / `--no-dataflow-cap` from an argument list.
    pub fn parse(args: &[String]) -> Self {
        let mut out = DatagenArgs::default();
        for (i, a) in args.iter().enumerate() {
            if a == "--workers" {
                out.workers = args.get(i + 1).cloned();
            } else if let Some(v) = a.strip_prefix("--workers=") {
                out.workers = Some(v.to_string());
            } else if a == "--resume" {
                out.resume_dir = Some("results/shards".to_string());
            } else if let Some(v) = a.strip_prefix("--resume=") {
                out.resume_dir = Some(v.to_string());
            } else if a == "--strict" {
                out.strict = true;
            } else if a == "--telemetry" {
                out.telemetry = Some(None);
            } else if let Some(v) = a.strip_prefix("--telemetry=") {
                out.telemetry = Some(Some(v.to_string()));
            } else if a == "--no-prune" {
                out.no_prune = true;
            } else if a == "--no-dataflow-cap" {
                out.no_dataflow_cap = true;
            }
        }
        out
    }
}

/// Map the shared `--workers N` / `--resume[=DIR]` / `--strict` /
/// `--telemetry[=PATH]` / `--no-prune` / `--no-dataflow-cap` CLI flags
/// onto the `ZT_DATAGEN_WORKERS` / `ZT_DATAGEN_RESUME` / `ZT_STRICT` /
/// `ZT_TELEMETRY`(`_PATH`) / `ZT_NO_PRUNE` / `ZT_NO_DATAFLOW_CAP`
/// environment variables read by
/// [`zt_core::datagen::GenPlan::from_env`],
/// [`zt_core::diagnostics::strict_from_env`],
/// [`zt_core::telemetry::init_from_env`] and
/// [`zt_core::optimizer::prune_from_env`], so every `generate_dataset` /
/// `train` / `tune` call inside the experiment — including nested ones
/// in the exp modules — inherits the worker count, the resumable shard
/// directory, the strict pre-flight mode, the telemetry level and the
/// pruning knob. Call this first thing in an experiment `main`; pair
/// with [`finish_telemetry`] last thing.
pub fn apply_datagen_cli() {
    let args: Vec<String> = std::env::args().collect();
    let parsed = DatagenArgs::parse(&args);
    if let Some(w) = parsed.workers {
        std::env::set_var("ZT_DATAGEN_WORKERS", w);
    }
    if let Some(dir) = parsed.resume_dir {
        std::env::set_var("ZT_DATAGEN_RESUME", &dir);
        eprintln!("datagen: resumable shards under {dir}");
    }
    if parsed.strict {
        std::env::set_var("ZT_STRICT", "1");
        eprintln!("diagnostics: strict pre-flight enabled");
    }
    if let Some(path) = parsed.telemetry {
        std::env::set_var("ZT_TELEMETRY", "trace");
        if let Some(p) = path {
            std::env::set_var("ZT_TELEMETRY_PATH", p);
        }
        eprintln!("telemetry: trace mode enabled");
    }
    if parsed.no_prune {
        std::env::set_var("ZT_NO_PRUNE", "1");
        eprintln!("optimizer: bounds pruning pre-pass disabled (exhaustive scoring)");
    }
    if parsed.no_dataflow_cap {
        std::env::set_var("ZT_NO_DATAFLOW_CAP", "1");
        eprintln!("optimizer: key-cardinality lattice capping disabled (full degree axes)");
    }
    // Telemetry may already have self-initialized from a pre-existing
    // ZT_TELEMETRY value; re-read so the flags above take effect.
    zt_core::telemetry::init_from_env();
}

/// End-of-run telemetry flush for the experiment binaries: print the
/// summary report and, in trace mode, write the Chrome-trace JSON to
/// `ZT_TELEMETRY_PATH` (default `results/<bin>-trace.json`). Call last
/// thing in an experiment `main`. No-op when telemetry is off.
pub fn finish_telemetry(bin: &str) {
    use zt_core::telemetry as tel;
    match tel::mode() {
        tel::Mode::Off => {}
        tel::Mode::Summary => eprint!("{}", tel::snapshot().summary_report()),
        tel::Mode::Trace => {
            let snap = tel::snapshot();
            eprint!("{}", snap.summary_report());
            let path = std::env::var("ZT_TELEMETRY_PATH")
                .ok()
                .filter(|p| !p.trim().is_empty())
                .map_or_else(
                    || std::path::PathBuf::from("results").join(format!("{bin}-trace.json")),
                    std::path::PathBuf::from,
                );
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&path, snap.chrome_trace_json()) {
                Ok(()) => eprintln!(
                    "telemetry: Chrome trace written to {} (load in chrome://tracing or https://ui.perfetto.dev)",
                    path.display()
                ),
                Err(e) => eprintln!("telemetry: could not write {}: {e}", path.display()),
            }
        }
    }
}

/// A trained ZeroTune model together with the datasets used to produce it.
pub struct TrainedPipeline {
    pub model: ZeroTuneModel,
    pub train_set: Dataset,
    pub test_seen: Dataset,
    pub report: TrainReport,
    pub scale: Scale,
}

/// Generate the seen workload, split 80/10/10 and train ZeroTune — the
/// common preamble of experiments 1, 2, 3, 5 and 6.
pub fn train_pipeline(scale: &Scale, gen_cfg: &GenConfig) -> TrainedPipeline {
    // train_queries is the post-split training budget; generate 100/80 of
    // it so the 80/10/10 split yields the requested size.
    let total = scale.train_queries * 10 / 8;
    let data = generate_dataset(gen_cfg, total, scale.seed);
    let (train_set, test_seen, _val) = data.split(0.8, 0.1, scale.seed);
    let mut model = ZeroTuneModel::new(ModelConfig {
        hidden: scale.hidden,
        seed: scale.seed,
    });
    let report = train(&mut model, &train_set, &scale.train_config());
    TrainedPipeline {
        model,
        train_set,
        test_seen,
        report,
        scale: *scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::by_name("smoke").name, "smoke");
        assert_eq!(Scale::by_name("full").name, "full");
        assert_eq!(Scale::by_name("anything").name, "standard");
    }

    #[test]
    fn datagen_args_parsing() {
        let args = |xs: &[&str]| {
            xs.iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
        };
        assert_eq!(DatagenArgs::parse(&args(&[])), DatagenArgs::default());
        let a = DatagenArgs::parse(&args(&["exp", "--workers", "4", "--resume"]));
        assert_eq!(a.workers.as_deref(), Some("4"));
        assert_eq!(a.resume_dir.as_deref(), Some("results/shards"));
        let b = DatagenArgs::parse(&args(&["--workers=8", "--resume=/tmp/shards"]));
        assert_eq!(b.workers.as_deref(), Some("8"));
        assert_eq!(b.resume_dir.as_deref(), Some("/tmp/shards"));
        assert!(!b.strict);
        let c = DatagenArgs::parse(&args(&["exp", "--strict"]));
        assert!(c.strict);
        assert_eq!(c.telemetry, None);
        let d = DatagenArgs::parse(&args(&["exp", "--telemetry"]));
        assert_eq!(d.telemetry, Some(None));
        let e = DatagenArgs::parse(&args(&["exp", "--telemetry=/tmp/t.json"]));
        assert_eq!(e.telemetry, Some(Some("/tmp/t.json".to_string())));
        assert!(!e.no_prune);
        let f = DatagenArgs::parse(&args(&["exp", "--no-prune"]));
        assert!(f.no_prune);
    }

    #[test]
    fn pipeline_trains_at_smoke_scale() {
        let scale = Scale::smoke();
        let p = train_pipeline(&scale, &GenConfig::seen());
        assert_eq!(p.train_set.len(), scale.train_queries);
        assert!(!p.test_seen.is_empty());
        assert!(p.report.epochs_run > 0);
        let (lat, _) = zt_core::train::evaluate(&p.model, &p.test_seen.samples);
        assert!(
            lat.median < 10.0,
            "smoke model too inaccurate: {}",
            lat.median
        );
    }
}
