//! Exp. 3: generalization for unseen parameters (Fig. 8a–e).
//!
//! The model is trained on the seen ranges of linear/2-way/3-way queries
//! and evaluated on *pinned* parameter values covering the seen and unseen
//! grids: tuple width, event rate, window duration, window length, and
//! number of workers. The white/grey split of the paper's plots maps to
//! the `seen` flag of each row.

use serde::Serialize;
use zt_core::dataset::{generate_dataset, GenConfig, Sample};
use zt_core::train::evaluate;
use zt_query::params;
use zt_query::ParamRanges;

use crate::report::{f2, fmt_qty, Table};
use crate::{train_pipeline, Scale, TrainedPipeline};

/// Median q-error at one pinned parameter value.
#[derive(Clone, Debug, Serialize)]
pub struct ParamRow {
    pub parameter: String,
    pub value: f64,
    pub seen: bool,
    pub lat_median: f64,
    pub tpt_median: f64,
    pub n: usize,
}

#[derive(Clone, Debug, Serialize)]
pub struct Exp3Result {
    pub rows: Vec<ParamRow>,
}

fn eval_pinned(
    pipeline: &TrainedPipeline,
    parameter: &str,
    value: f64,
    seen: bool,
    pin: impl Fn(&mut ParamRanges),
    filter: impl Fn(&Sample) -> bool,
    seed: u64,
) -> ParamRow {
    let mut ranges = ParamRanges::seen();
    pin(&mut ranges);
    let cfg = GenConfig {
        ranges,
        ..GenConfig::seen()
    };
    // Generate extra so post-filter counts stay near the target.
    let want = pipeline.scale.test_per_group;
    let pool = generate_dataset(&cfg, want * 3, seed);
    let samples: Vec<Sample> = pool
        .samples
        .into_iter()
        .filter(|s| filter(s))
        .take(want)
        .collect();
    let (lat, tpt) = evaluate(&pipeline.model, &samples);
    ParamRow {
        parameter: parameter.to_string(),
        value,
        seen,
        lat_median: lat.median,
        tpt_median: tpt.median,
        n: lat.count,
    }
}

pub fn run_with(pipeline: &TrainedPipeline) -> Exp3Result {
    let mut rows = Vec::new();
    let mut seed = pipeline.scale.seed + 400;

    // (a) tuple widths 1–5 (seen) and 6–15 (unseen, extrapolation).
    for (vals, seen) in [
        (params::TRAIN_TUPLE_WIDTHS, true),
        (params::TEST_TUPLE_WIDTHS, false),
    ] {
        for &w in vals {
            seed += 1;
            rows.push(eval_pinned(
                pipeline,
                "tuple width",
                w as f64,
                seen,
                |r| r.tuple_widths = vec![w],
                |_| true,
                seed,
            ));
        }
    }

    // (b) event rates (interpolation + extrapolation). Subsample the grids
    // to keep the sweep bounded.
    let pick = |grid: &[f64]| -> Vec<f64> { grid.iter().step_by(2).copied().collect() };
    for (vals, seen) in [
        (pick(params::TRAIN_EVENT_RATES), true),
        (pick(params::TEST_EVENT_RATES), false),
    ] {
        for &rate in &vals {
            seed += 1;
            rows.push(eval_pinned(
                pipeline,
                "event rate",
                rate,
                seen,
                |r| r.event_rates = vec![rate],
                |_| true,
                seed,
            ));
        }
    }

    // (c) time-window durations — keep only samples that drew a time
    // window at the pinned value.
    for (vals, seen) in [
        (params::TRAIN_WINDOW_DURATIONS.to_vec(), true),
        (pick(params::TEST_WINDOW_DURATIONS), false),
    ] {
        for &d in &vals {
            seed += 1;
            rows.push(eval_pinned(
                pipeline,
                "window duration (ms)",
                d,
                seen,
                |r| r.window_durations_ms = vec![d],
                move |s| s.meta.window_duration == Some(d),
                seed,
            ));
        }
    }

    // (d) count-window lengths.
    for (vals, seen) in [
        (params::TRAIN_WINDOW_LENGTHS.to_vec(), true),
        (pick(params::TEST_WINDOW_LENGTHS), false),
    ] {
        for &l in &vals {
            seed += 1;
            rows.push(eval_pinned(
                pipeline,
                "window length (tuples)",
                l,
                seen,
                |r| r.window_lengths = vec![l],
                move |s| s.meta.window_length == Some(l),
                seed,
            ));
        }
    }

    // (e) number of workers.
    for (vals, seen) in [
        (params::TRAIN_NUM_WORKERS, true),
        (params::TEST_NUM_WORKERS, false),
    ] {
        for &w in vals {
            seed += 1;
            rows.push(eval_pinned(
                pipeline,
                "workers",
                w as f64,
                seen,
                |r| r.num_workers = vec![w],
                |_| true,
                seed,
            ));
        }
    }

    Exp3Result { rows }
}

pub fn run(scale: &Scale) -> Exp3Result {
    let pipeline = train_pipeline(scale, &GenConfig::seen());
    run_with(&pipeline)
}

pub fn print(result: &Exp3Result) {
    let mut t = Table::new(
        "Fig. 8: median q-errors across (un)seen parameter values",
        &[
            "parameter",
            "value",
            "range",
            "lat median",
            "tpt median",
            "n",
        ],
    );
    for r in &result.rows {
        t.row(vec![
            r.parameter.clone(),
            fmt_qty(r.value),
            if r.seen {
                "seen".into()
            } else {
                "unseen".into()
            },
            f2(r.lat_median),
            f2(r.tpt_median),
            r.n.to_string(),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp3_covers_all_five_parameters() {
        let scale = Scale {
            name: "tiny",
            train_queries: 150,
            test_per_group: 15,
            epochs: 8,
            hidden: 20,
            seed: 0xE3,
        };
        let result = run(&scale);
        let params: std::collections::HashSet<&str> =
            result.rows.iter().map(|r| r.parameter.as_str()).collect();
        assert_eq!(params.len(), 5);
        // both seen and unseen ranges appear for every parameter
        for p in params {
            assert!(result.rows.iter().any(|r| r.parameter == p && r.seen));
            assert!(result.rows.iter().any(|r| r.parameter == p && !r.seen));
        }
        // pinned tuple-width rows carry data
        let width_rows: Vec<_> = result
            .rows
            .iter()
            .filter(|r| r.parameter == "tuple width")
            .collect();
        assert_eq!(width_rows.len(), 15);
        assert!(width_rows.iter().all(|r| r.n > 0));
    }
}
