//! Exp. 4: data-efficient training (Fig. 9a–b).
//!
//! Trains ZeroTune with increasing amounts of data collected by the
//! OptiSample strategy and by the random strategy, and reports q-error on
//! fixed seen/unseen evaluation sets plus wall-clock training time. The
//! paper's finding: OptiSample reaches the converged accuracy with ~¼ of
//! the queries and roughly half the training time.

use serde::Serialize;
use zt_core::dataset::{generate_dataset, GenConfig};
use zt_core::model::{ModelConfig, ZeroTuneModel};
use zt_core::optisample::EnumerationStrategy;
use zt_core::train::{evaluate, train, TrainConfig};

use crate::report::{f2, Table};
use crate::Scale;

/// One sweep point of Fig. 9.
#[derive(Clone, Debug, Serialize)]
pub struct EfficiencyRow {
    pub strategy: String,
    pub train_queries: usize,
    pub seen_lat_median: f64,
    pub unseen_lat_median: f64,
    pub seen_tpt_median: f64,
    pub unseen_tpt_median: f64,
    /// Wall-clock time: data collection + training, seconds.
    pub total_secs: f64,
}

#[derive(Clone, Debug, Serialize)]
pub struct Exp4Result {
    pub rows: Vec<EfficiencyRow>,
}

/// Training-set sizes: geometric sweep up to the scale's budget.
pub fn sweep_sizes(max: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut n = (max / 16).max(50);
    while n < max {
        sizes.push(n);
        n *= 2;
    }
    sizes.push(max);
    sizes
}

pub fn run(scale: &Scale) -> Exp4Result {
    // Fixed evaluation sets shared by every sweep point.
    let eval_seen = generate_dataset(
        &GenConfig::seen(),
        scale.test_per_group * 2,
        scale.seed + 501,
    );
    let eval_unseen = generate_dataset(
        &GenConfig::unseen_structures(),
        scale.test_per_group * 2,
        scale.seed + 502,
    );

    let mut rows = Vec::new();
    for strategy in [
        EnumerationStrategy::opti_sample(),
        EnumerationStrategy::random(),
    ] {
        for &n in &sweep_sizes(scale.train_queries) {
            let start = std::time::Instant::now();
            let data = generate_dataset(
                &GenConfig::seen().with_strategy(strategy),
                n,
                scale.seed + 510,
            );
            let mut model = ZeroTuneModel::new(ModelConfig {
                hidden: scale.hidden,
                seed: scale.seed,
            });
            train(
                &mut model,
                &data,
                &TrainConfig {
                    epochs: scale.epochs,
                    patience: (scale.epochs / 4).max(5),
                    seed: scale.seed,
                    ..TrainConfig::default()
                },
            );
            let total_secs = start.elapsed().as_secs_f64();
            let (seen_lat, seen_tpt) = evaluate(&model, &eval_seen.samples);
            let (unseen_lat, unseen_tpt) = evaluate(&model, &eval_unseen.samples);
            rows.push(EfficiencyRow {
                strategy: strategy.name().to_string(),
                train_queries: n,
                seen_lat_median: seen_lat.median,
                unseen_lat_median: unseen_lat.median,
                seen_tpt_median: seen_tpt.median,
                unseen_tpt_median: unseen_tpt.median,
                total_secs,
            });
        }
    }
    Exp4Result { rows }
}

pub fn print(result: &Exp4Result) {
    let mut t = Table::new(
        "Fig. 9: data efficiency — q-error and training time vs #queries",
        &[
            "strategy",
            "#queries",
            "seen lat med",
            "unseen lat med",
            "seen tpt med",
            "unseen tpt med",
            "time (s)",
        ],
    );
    for r in &result.rows {
        t.row(vec![
            r.strategy.clone(),
            r.train_queries.to_string(),
            f2(r.seen_lat_median),
            f2(r.unseen_lat_median),
            f2(r.seen_tpt_median),
            f2(r.unseen_tpt_median),
            f2(r.total_secs),
        ]);
    }
    t.print();
}

/// The smallest training-set size at which the strategy's seen latency
/// q-error drops below `threshold` (Fig. 9a's "convergence point").
pub fn convergence_point(result: &Exp4Result, strategy: &str, threshold: f64) -> Option<usize> {
    result
        .rows
        .iter()
        .filter(|r| r.strategy == strategy && r.seen_lat_median <= threshold)
        .map(|r| r.train_queries)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sizes_are_increasing_and_end_at_max() {
        let s = sweep_sizes(4000);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*s.last().unwrap(), 4000);
        assert!(s.len() >= 3);
    }

    #[test]
    fn exp4_runs_both_strategies() {
        let scale = Scale {
            name: "tiny",
            train_queries: 200,
            test_per_group: 20,
            epochs: 8,
            hidden: 20,
            seed: 0xE4,
        };
        let result = run(&scale);
        let strategies: std::collections::HashSet<&str> =
            result.rows.iter().map(|r| r.strategy.as_str()).collect();
        assert!(strategies.contains("OptiSample"));
        assert!(strategies.contains("Random"));
        for r in &result.rows {
            assert!(r.total_secs > 0.0);
            assert!(r.seen_lat_median >= 1.0);
        }
        // more data should not hurt badly: last point ≤ 3× first point
        let opti: Vec<_> = result
            .rows
            .iter()
            .filter(|r| r.strategy == "OptiSample")
            .collect();
        assert!(
            opti.last().unwrap().seen_lat_median <= opti.first().unwrap().seen_lat_median * 3.0
        );
    }
}
