//! Exp. 5: parallelism tuning with the optimizer (Fig. 10a–b).
//!
//! For a set of query structures (seen and unseen), the ZeroTune optimizer
//! (Eq. 1) picks parallelism degrees from what-if predictions; the chosen
//! deployments are *executed* (on the noiseless simulator, standing in for
//! the Flink cluster) and compared against:
//!
//! * the greedy autopipelining heuristic \[20\] → mean latency/throughput
//!   speed-ups (Fig. 10a), and
//! * the Dhalion scaling controller \[19\] → weighted cost, Eq. 1
//!   (Fig. 10b), plus Dhalion's reconfiguration count (the oscillation
//!   cost of challenge C1).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use zt_baselines::{dhalion_tune, greedy_tune, DhalionConfig, GreedyConfig};
use zt_core::dataset::GenConfig;
use zt_core::optimizer::{measured_weighted_cost, tune, OptimizerConfig};
use zt_dspsim::analytical::SimConfig;
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_query::{ParallelQueryPlan, ParamRanges, QueryGenerator, QueryStructure};

use crate::report::{f2, Table};
use crate::{train_pipeline, Scale, TrainedPipeline};

/// Per-structure tuning comparison.
#[derive(Clone, Debug, Serialize)]
pub struct TuningRow {
    pub structure: String,
    pub seen: bool,
    /// Mean latency speed-up of ZeroTune over greedy (Fig. 10a).
    pub speedup_latency: f64,
    /// Mean throughput speed-up of ZeroTune over greedy (Fig. 10a).
    pub speedup_throughput: f64,
    /// Mean weighted cost (Eq. 1) of the ZeroTune configuration.
    pub zerotune_cost: f64,
    /// Mean weighted cost of the Dhalion configuration (Fig. 10b).
    pub dhalion_cost: f64,
    /// Mean number of reconfiguration rounds Dhalion needed.
    pub dhalion_reconfigs: f64,
    pub queries: usize,
}

#[derive(Clone, Debug, Serialize)]
pub struct Exp5Result {
    pub rows: Vec<TuningRow>,
    pub mean_speedup_latency: f64,
    pub mean_speedup_throughput: f64,
    /// Hit rate of the simulator memo across the tuner executions (the
    /// three tuners frequently choose identical deployments).
    pub sim_cache_hit_rate: f64,
    /// Candidates actually scored by the ZeroTune model across all
    /// tuning runs (post-pruning).
    pub candidates_scored: usize,
    /// Candidates discarded by the interval-bounds pruning pre-pass
    /// before any model inference ran (0 with `--no-prune`).
    pub candidates_pruned: usize,
}

fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

pub fn run_with(pipeline: &TrainedPipeline) -> Exp5Result {
    let scale = &pipeline.scale;
    let structures = [
        QueryStructure::Linear,
        QueryStructure::TwoWayJoin,
        QueryStructure::ThreeWayJoin,
        QueryStructure::ChainedFilters(3),
        QueryStructure::NWayJoin(4),
        QueryStructure::NWayJoin(5),
    ];
    let queries_per_structure = (scale.test_per_group / 4).max(4);
    let wt = 0.5;
    let sim = SimConfig::noiseless();
    let opt_cfg = OptimizerConfig {
        wt,
        ..OptimizerConfig::default()
    };

    let mut rows = Vec::new();
    let mut all_lat_speedups = Vec::new();
    let mut all_tpt_speedups = Vec::new();
    let mut candidates_scored = 0usize;
    let mut candidates_pruned = 0usize;
    // Memoize the noiseless solver: when two tuners pick the same
    // parallelism vector for a query, its execution is solved once.
    let cache = zt_dspsim::SimCache::default();

    for (si, s) in structures.iter().enumerate() {
        let ranges = if s.is_seen() {
            ParamRanges::seen()
        } else {
            ParamRanges::unseen()
        };
        let generator = QueryGenerator::new(ranges.clone());
        let mut rng = StdRng::seed_from_u64(scale.seed + 600 + si as u64);

        let mut lat_speedups = Vec::new();
        let mut tpt_speedups = Vec::new();
        let mut zt_costs = Vec::new();
        let mut dh_costs = Vec::new();
        let mut dh_iters = Vec::new();

        for _ in 0..queries_per_structure {
            let plan = generator.generate(*s, &mut rng);
            let cluster = Cluster::sample(
                &ClusterType::seen(),
                ranges.sample_num_workers(&mut rng),
                &ranges.link_speeds_gbps,
                &mut rng,
            );

            // --- the three tuners ------------------------------------
            let zt = tune(&pipeline.model, &plan, &cluster, &opt_cfg)
                .expect("generated benchmark plans are always valid");
            candidates_scored += zt.candidates_evaluated;
            candidates_pruned += zt.candidates_pruned;
            let greedy = greedy_tune(&plan, &cluster, &GreedyConfig::default());
            let dhalion = dhalion_tune(&plan, &cluster, &DhalionConfig::default(), &sim, &mut rng);

            // --- execute all three ------------------------------------
            let mut exec_rng = StdRng::seed_from_u64(1);
            let exec = |p: &Vec<u32>, rng: &mut StdRng| {
                let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), p.clone());
                cache.simulate(&pqp, &cluster, &sim, rng)
            };
            let m_zt = exec(&zt.parallelism, &mut exec_rng);
            let m_gr = exec(&greedy, &mut exec_rng);
            let m_dh = exec(&dhalion.parallelism, &mut exec_rng);

            lat_speedups.push(m_gr.latency_ms / m_zt.latency_ms.max(1e-9));
            tpt_speedups.push(m_zt.throughput / m_gr.throughput.max(1e-9));

            // weighted cost over the shared envelope of the three
            // measured deployments
            let lat_env = (
                m_zt.latency_ms.min(m_gr.latency_ms).min(m_dh.latency_ms),
                m_zt.latency_ms.max(m_gr.latency_ms).max(m_dh.latency_ms),
            );
            let tpt_env = (
                m_zt.throughput.min(m_gr.throughput).min(m_dh.throughput),
                m_zt.throughput.max(m_gr.throughput).max(m_dh.throughput),
            );
            zt_costs.push(measured_weighted_cost(
                wt,
                m_zt.latency_ms,
                m_zt.throughput,
                lat_env,
                tpt_env,
            ));
            dh_costs.push(measured_weighted_cost(
                wt,
                m_dh.latency_ms,
                m_dh.throughput,
                lat_env,
                tpt_env,
            ));
            dh_iters.push(dhalion.reconfigurations as f64);
        }

        all_lat_speedups.extend(lat_speedups.iter().copied());
        all_tpt_speedups.extend(tpt_speedups.iter().copied());
        rows.push(TuningRow {
            structure: s.name(),
            seen: s.is_seen(),
            speedup_latency: geo_mean(&lat_speedups),
            speedup_throughput: geo_mean(&tpt_speedups),
            zerotune_cost: zt_costs.iter().sum::<f64>() / zt_costs.len() as f64,
            dhalion_cost: dh_costs.iter().sum::<f64>() / dh_costs.len() as f64,
            dhalion_reconfigs: dh_iters.iter().sum::<f64>() / dh_iters.len() as f64,
            queries: queries_per_structure,
        });
    }

    Exp5Result {
        mean_speedup_latency: geo_mean(&all_lat_speedups),
        mean_speedup_throughput: geo_mean(&all_tpt_speedups),
        sim_cache_hit_rate: cache.stats().hit_rate(),
        candidates_scored,
        candidates_pruned,
        rows,
    }
}

pub fn run(scale: &Scale) -> Exp5Result {
    let pipeline = train_pipeline(scale, &GenConfig::seen());
    run_with(&pipeline)
}

pub fn print(result: &Exp5Result) {
    let mut t = Table::new(
        "Fig. 10a/b: parallelism tuning — speed-up vs greedy, weighted cost vs Dhalion",
        &[
            "structure",
            "range",
            "lat speed-up",
            "tpt speed-up",
            "ZT cost (Eq.1)",
            "Dhalion cost",
            "Dhalion reconfigs",
            "queries",
        ],
    );
    for r in &result.rows {
        t.row(vec![
            r.structure.clone(),
            if r.seen {
                "seen".into()
            } else {
                "unseen".into()
            },
            format!("{}x", f2(r.speedup_latency)),
            format!("{}x", f2(r.speedup_throughput)),
            f2(r.zerotune_cost),
            f2(r.dhalion_cost),
            f2(r.dhalion_reconfigs),
            r.queries.to_string(),
        ]);
    }
    t.print();
    println!(
        "mean speed-up vs greedy: latency {}x, throughput {}x (sim-cache hit rate {:.0}%)",
        f2(result.mean_speedup_latency),
        f2(result.mean_speedup_throughput),
        result.sim_cache_hit_rate * 100.0
    );
    let enumerated = result.candidates_scored + result.candidates_pruned;
    println!(
        "bounds pruning: {} of {} candidate(s) pruned before scoring ({:.0}%)",
        result.candidates_pruned,
        enumerated,
        if enumerated == 0 {
            0.0
        } else {
            result.candidates_pruned as f64 / enumerated as f64 * 100.0
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp5_compares_all_tuners() {
        let scale = Scale {
            name: "tiny",
            train_queries: 200,
            test_per_group: 16,
            epochs: 10,
            hidden: 20,
            seed: 0xE5,
        };
        let result = run(&scale);
        assert_eq!(result.rows.len(), 6);
        for r in &result.rows {
            assert!(r.speedup_latency.is_finite() && r.speedup_latency > 0.0);
            assert!(r.speedup_throughput.is_finite());
            assert!((0.0..=1.0).contains(&r.zerotune_cost));
            assert!((0.0..=1.0).contains(&r.dhalion_cost));
        }
        assert!(result.mean_speedup_latency.is_finite());
        assert!((0.0..=1.0).contains(&result.sim_cache_hit_rate));
        // The bounds pre-pass must have discarded at least one provably
        // infeasible/dominated candidate somewhere across the sampled
        // rates (the seen range goes up to 500k events/s, where P=1
        // deployments collapse), while still scoring the survivors.
        assert!(result.candidates_scored > 0);
        assert!(
            result.candidates_pruned > 0,
            "expected the pruning pre-pass to fire across {} scored candidates",
            result.candidates_scored
        );
    }
}
