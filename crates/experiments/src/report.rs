//! Table rendering and result persistence.
//!
//! Every experiment prints an ASCII table mirroring the paper's
//! presentation and (optionally) persists the raw rows as JSON under
//! `results/` so EXPERIMENTS.md can reference stable numbers.

use serde::Serialize;

/// A simple fixed-column ASCII table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+";
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("| {:w$} ", c, w = widths[i]))
                .collect::<String>()
                + "|"
        };
        let mut out = format!(
            "\n== {} ==\n{sep}\n{}\n{sep}\n",
            self.title,
            fmt_row(&self.header)
        );
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 2 decimals (the paper's q-error precision).
pub fn f2(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a rate/latency with adaptive precision.
pub fn fmt_qty(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v >= 100_000.0 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1000.0 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.2}")
    }
}

/// Persist a serializable result under `results/<name>.json` (relative to
/// the workspace root if found, else the current directory).
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    let mut dir = std::env::current_dir()?;
    // walk up to the workspace root (where Cargo.toml with [workspace] is)
    for anc in dir.clone().ancestors() {
        let manifest = anc.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    dir = anc.to_path_buf();
                    break;
                }
            }
        }
    }
    let results = dir.join("results");
    std::fs::create_dir_all(&results)?;
    let path = results.join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["short".into(), "1.00".into()]);
        t.row(vec!["a-much-longer-name".into(), "2.50".into()]);
        let out = t.render();
        assert!(out.contains("demo"));
        assert!(out.contains("| short"));
        assert!(out.contains("| a-much-longer-name"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f2(f64::NAN), "-");
        assert_eq!(f2(12345.6), "12346");
        assert_eq!(fmt_qty(2_500_000.0), "2.50M");
        assert_eq!(fmt_qty(2_500.0), "2.5k");
        assert_eq!(fmt_qty(25.0), "25.00");
    }

    #[test]
    fn save_json_writes_to_results() {
        let path = save_json("unit_test_artifact", &vec![1, 2, 3]).unwrap();
        assert!(path.exists());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('1'));
        std::fs::remove_file(path).ok();
    }
}
