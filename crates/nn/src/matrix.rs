//! Dense row-major `f32` matrix with the handful of operations the
//! autodiff tape needs.

use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix, row-major.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(rows * cols, data.len(), "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// 1×n row vector.
    pub fn row(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Scalar 1×1 matrix.
    pub fn scalar(v: f32) -> Self {
        Matrix::from_vec(1, 1, vec![v])
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn same_shape(&self, other: &Matrix) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }

    /// `self × other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self × other`, accumulated into a pre-zeroed `out`.
    ///
    /// This is the single matmul entry point of the crate: the tape op and
    /// the tapeless inference path both call it, so they produce bitwise
    /// identical results. The arithmetic lives in [`crate::kernels`] — an
    /// 8-wide lane kernel by default, the scalar i-k-j oracle under the
    /// `scalar-kernels` feature; both keep the same per-element
    /// ascending-`k` accumulation chain, so the flavors are themselves
    /// bitwise-equal here (pre-zeroed `out`, finite inputs).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(out.shape(), (self.rows, other.cols), "matmul out shape");
        crate::kernels::matmul_into(
            &self.data,
            self.rows,
            self.cols,
            &other.data,
            other.cols,
            &mut out.data,
        );
    }

    /// Transpose.
    pub fn t(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert!(self.same_shape(other), "add shape mismatch");
        crate::kernels::add_assign(&mut self.data, &other.data);
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiply every element by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Element-wise product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert!(self.same_shape(other), "hadamard shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fill with zeros in place (reuses the allocation).
    pub fn zero_out(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matmul out shape")]
    fn matmul_into_wrong_out_shape_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3); // should be 2×4
        a.matmul_into(&b, &mut out);
    }

    #[test]
    #[should_panic(expected = "matmul out data/shape mismatch")]
    fn matmul_into_corrupted_out_buffer_panics() {
        // `data` is public: a buffer whose storage disagrees with its
        // logical shape must be rejected, not silently written past.
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 4);
        out.data.truncate(5);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    #[should_panic(expected = "matmul lhs data/shape mismatch")]
    fn matmul_into_corrupted_lhs_buffer_panics() {
        let mut a = Matrix::zeros(2, 3);
        a.data.push(1.0);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 4);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn matmul_empty_dimensions() {
        // 0×3 × 3×2 → 0×2
        let a = Matrix::zeros(0, 3);
        let b = Matrix::from_vec(3, 2, vec![1.0; 6]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (0, 2));
        assert!(c.data.is_empty());
        // 2×0 × 0×3 → 2×3 of zeros (empty inner dimension)
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.data, vec![0.0; 6]);
        // 2×3 × 3×0 → 2×0
        let a = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let b = Matrix::zeros(3, 0);
        assert_eq!(a.matmul(&b).shape(), (2, 0));
    }

    #[test]
    fn matmul_into_accumulates_into_nonzero_out() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let mut out = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data, vec![11.0, 22.0]);
    }

    #[test]
    fn matmul_into_with_aliased_operands() {
        // `self × self` is the one aliasing the borrow checker permits
        // (two shared borrows of the same matrix); the kernels must read
        // both operands correctly even when they are one buffer.
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut out = Matrix::zeros(2, 2);
        a.matmul_into(&a, &mut out);
        assert_eq!(out.data, vec![7.0, 10.0, 15.0, 22.0]);
        // and the convenience wrapper agrees
        assert_eq!(a.matmul(&a).data, out.data);
    }

    #[test]
    fn transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.t();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.get(2, 0), 3.0);
        assert_eq!(t.t(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::row(&[1.0, -2.0, 3.0]);
        let b = Matrix::row(&[0.5, 0.5, 0.5]);
        assert_eq!(a.add(&b).data, vec![1.5, -1.5, 3.5]);
        assert_eq!(a.hadamard(&b).data, vec![0.5, -1.0, 1.5]);
        assert_eq!(a.scale(2.0).data, vec![2.0, -4.0, 6.0]);
        assert_eq!(a.map(f32::abs).data, vec![1.0, 2.0, 3.0]);
        assert_eq!(a.sum(), 2.0);
    }

    #[test]
    fn norm_and_zero() {
        let mut a = Matrix::row(&[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        a.zero_out();
        assert_eq!(a.data, vec![0.0, 0.0]);
    }

    #[test]
    fn serde_round_trip() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let s = serde_json::to_string(&a).unwrap();
        let b: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
    }
}
