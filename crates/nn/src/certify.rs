//! Interval bound propagation (IBP) over trained networks.
//!
//! The tapeless inference path in [`crate::infer`] evaluates a network at
//! one point; this module evaluates it over a *box* — an axis-aligned
//! interval per input coordinate — and returns sound enclosures of
//! everything the `f32` forward pass could produce anywhere in that box.
//! No data, no execution of the network itself: the analysis walks the
//! same layers with interval arithmetic.
//!
//! Soundness is with respect to the concrete `f32` semantics of
//! [`crate::layers::Mlp::infer`] / [`crate::matrix::Matrix::matmul_into`],
//! not idealized real arithmetic: all interval endpoints are computed in
//! `f64` and every step widens outward by an explicit bound on the `f32`
//! rounding error of the corresponding concrete kernel (a standard
//! `γ_n = n·u` style accumulation bound evaluated against the sum of
//! absolute values flowing through the dot product, which dominates any
//! cancellation in the rounded result). The containment proptests in
//! `tests/certify_soundness.rs` assert *exact* containment — no test-side
//! tolerance — for sampled inputs across the box.
//!
//! Three artifacts come out of [`certify_mlp`]:
//!
//! * a certified output bracket per output coordinate;
//! * per hidden layer, the **certified-dead** units (pre-activation upper
//!   bound ≤ 0: the ReLU provably never fires anywhere in the box) and
//!   **certified-saturated** units (lower bound ≥ 0: the ReLU is provably
//!   the identity), a strictly stronger statement than any sampled
//!   dead-unit check;
//! * a per-input **interval sensitivity bound**: entry `i` bounds
//!   `|∂y_j/∂x_i|` over the box for every output `j`, from the product of
//!   absolute weight matrices restricted to certified-active units
//!   (certified-dead units contribute a hard zero).

use crate::layers::Mlp;
use crate::matrix::Matrix;
use crate::ParamStore;

/// `f32` machine epsilon as `f64` — the per-operation relative rounding
/// grain of the concrete inference kernels. One full ulp (2⁻²³) per
/// counted operation over-approximates the true half-ulp rounding unit,
/// which absorbs the (second-order) `γ_n` denominator and the `f64`
/// rounding of the certificate computation itself.
const EPS32: f64 = f32::EPSILON as f64;

/// Absolute floor added to every outward widening so zero-magnitude
/// intervals still dominate `f32` subnormal rounding.
const PAD_ABS: f64 = 1e-30;

/// A box: one `[lo, hi]` interval per coordinate, endpoints in `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct IntervalVec {
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
}

impl IntervalVec {
    /// The degenerate box `[lo, hi]^n`.
    pub fn uniform(n: usize, lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        IntervalVec {
            lo: vec![lo; n],
            hi: vec![hi; n],
        }
    }

    /// A point box around a concrete `f32` row.
    pub fn point(values: &[f32]) -> Self {
        IntervalVec {
            lo: values.iter().map(|&v| f64::from(v)).collect(),
            hi: values.iter().map(|&v| f64::from(v)).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.lo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// Does the box contain this concrete `f32` row?
    pub fn contains(&self, values: &[f32]) -> bool {
        values.len() == self.len()
            && values
                .iter()
                .zip(self.lo.iter().zip(self.hi.iter()))
                .all(|(&v, (&lo, &hi))| f64::from(v) >= lo && f64::from(v) <= hi)
    }

    /// Componentwise interval hull (smallest box containing both).
    pub fn hull_assign(&mut self, other: &IntervalVec) {
        assert_eq!(self.len(), other.len(), "hull width mismatch");
        for (a, &b) in self.lo.iter_mut().zip(other.lo.iter()) {
            *a = a.min(b);
        }
        for (a, &b) in self.hi.iter_mut().zip(other.hi.iter()) {
            *a = a.max(b);
        }
    }

    /// Componentwise max of `max(|lo|, |hi|)` — the magnitude scale the
    /// rounding model is quoted against.
    pub fn magnitude(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&lo, &hi)| lo.abs().max(hi.abs()))
            .fold(0.0, f64::max)
    }

    /// Widen every component outward by `ops` counted `f32` rounding steps
    /// at that component's own magnitude (plus the absolute floor). Used
    /// for aggregation steps whose error is proportional to the magnitude
    /// of the aggregated values themselves (mean, residual add).
    pub fn widen_rel(&mut self, ops: usize) {
        let rel = ops as f64 * EPS32;
        for (lo, hi) in self.lo.iter_mut().zip(self.hi.iter_mut()) {
            let pad = rel * lo.abs().max(hi.abs()) + PAD_ABS;
            *lo -= pad;
            *hi += pad;
        }
    }

    /// Interval ReLU: `max(·, 0)` on both endpoints. Exact — `f32::max`
    /// with zero introduces no rounding.
    pub fn relu(&mut self) {
        for v in &mut self.lo {
            *v = v.max(0.0);
        }
        for v in &mut self.hi {
            *v = v.max(0.0);
        }
    }

    /// Interval counterpart of [`crate::infer::concat_pair`]: exact.
    pub fn concat(&self, other: &IntervalVec) -> IntervalVec {
        let mut lo = self.lo.clone();
        lo.extend_from_slice(&other.lo);
        let mut hi = self.hi.clone();
        hi.extend_from_slice(&other.hi);
        IntervalVec { lo, hi }
    }

    /// Enclosure of `s · v` for any `s ∈ [0, cap]` and `v` in the box:
    /// each component becomes `[cap·min(lo, 0), cap·max(hi, 0)]`. This is
    /// the hull of all sub-unit down-scalings, used for mapping messages
    /// whose instance-share weights sum to (at most) `cap`.
    pub fn scale_hull(&self, cap: f64) -> IntervalVec {
        assert!(cap >= 0.0);
        IntervalVec {
            lo: self.lo.iter().map(|&v| cap * v.min(0.0)).collect(),
            hi: self.hi.iter().map(|&v| cap * v.max(0.0)).collect(),
        }
    }

    /// All endpoints finite?
    pub fn is_finite(&self) -> bool {
        self.lo.iter().chain(self.hi.iter()).all(|v| v.is_finite())
    }
}

/// Interval counterpart of the residual update `a + b`, widened for the
/// single `f32` add per component.
pub fn add_bounds(a: &IntervalVec, b: &IntervalVec) -> IntervalVec {
    assert_eq!(a.len(), b.len(), "add width mismatch");
    let mut out = IntervalVec {
        lo: a.lo.iter().zip(b.lo.iter()).map(|(&x, &y)| x + y).collect(),
        hi: a.hi.iter().zip(b.hi.iter()).map(|(&x, &y)| x + y).collect(),
    };
    out.widen_rel(4);
    out
}

/// Interval counterpart of [`crate::infer::mean_of`] over any selection of
/// up to `max_fanin` states drawn from the per-state boxes: mean of the
/// `lo`s / mean of the `hi`s, hulled over all states, widened for the
/// accumulate-and-scale rounding of the concrete kernel. Since the mean of
/// values lying in a common box stays in that box, callers that aggregate
/// states sharing one enclosure can pass that single enclosure.
pub fn mean_of_bounds(states: &[&IntervalVec], max_fanin: usize) -> IntervalVec {
    assert!(!states.is_empty());
    let mut out = states[0].clone();
    for s in &states[1..] {
        out.hull_assign(s);
    }
    out.widen_rel(max_fanin + 4);
    out
}

/// Interval counterpart of [`crate::infer::weighted_sum_of`] with concrete
/// non-negative weights: sign-free because instance shares are in `[0, 1]`,
/// so each term contributes `w·[lo, hi]` directly.
pub fn weighted_sum_of_bounds(states: &[(&IntervalVec, f64)]) -> IntervalVec {
    assert!(!states.is_empty());
    let n = states[0].0.len();
    let mut out = IntervalVec {
        lo: vec![0.0; n],
        hi: vec![0.0; n],
    };
    for (s, w) in states {
        assert!(*w >= 0.0, "instance shares are non-negative");
        for c in 0..n {
            out.lo[c] += w * s.lo[c];
            out.hi[c] += w * s.hi[c];
        }
    }
    out.widen_rel(2 * states.len() + 4);
    out
}

/// Certified facts about one hidden (ReLU) layer.
#[derive(Clone, Debug)]
pub struct LayerUnits {
    /// Pre-activation upper bound ≤ 0: the unit provably never fires.
    pub dead: Vec<bool>,
    /// Pre-activation lower bound ≥ 0: the ReLU is provably the identity.
    pub saturated: Vec<bool>,
}

impl LayerUnits {
    pub fn num_dead(&self) -> usize {
        self.dead.iter().filter(|&&d| d).count()
    }

    pub fn num_saturated(&self) -> usize {
        self.saturated.iter().filter(|&&s| s).count()
    }
}

/// The certificate [`certify_mlp`] produces for one MLP over one input box.
#[derive(Clone, Debug)]
pub struct MlpCert {
    /// Certified bracket per output coordinate (post final linear layer).
    pub output: IntervalVec,
    /// Per hidden layer (one entry per ReLU), certified unit facts.
    pub hidden: Vec<LayerUnits>,
    /// `sensitivity[i]` bounds `|∂y_j/∂x_i|` over the box for every
    /// output `j` (max over outputs of the restricted `|W|` product).
    pub sensitivity: Vec<f64>,
}

/// Interval affine layer: propagate `input` through `x·W + b` with the
/// positive/negative weight split, widening each output by the rounding
/// model of the concrete `f32` dot product (`(in+4)` rounding steps at the
/// magnitude of the *absolute-value* sum, which dominates cancellation).
pub fn linear_bounds(w: &Matrix, b: &Matrix, input: &IntervalVec) -> IntervalVec {
    assert_eq!(
        input.len(),
        w.rows,
        "linear_bounds width mismatch: input {} vs weight rows {}",
        input.len(),
        w.rows
    );
    assert_eq!(b.cols, w.cols, "bias width mismatch");
    let rel = (w.rows + 4) as f64 * EPS32;
    let mut out = IntervalVec {
        lo: Vec::with_capacity(w.cols),
        hi: Vec::with_capacity(w.cols),
    };
    for j in 0..w.cols {
        let bias = f64::from(b.data[j]);
        let mut lo = bias;
        let mut hi = bias;
        let mut absmag = bias.abs();
        for k in 0..w.rows {
            let wv = f64::from(w.data[k * w.cols + j]);
            if wv >= 0.0 {
                lo += input.lo[k] * wv;
                hi += input.hi[k] * wv;
            } else {
                lo += input.hi[k] * wv;
                hi += input.lo[k] * wv;
            }
            absmag += input.lo[k].abs().max(input.hi[k].abs()) * wv.abs();
        }
        let pad = rel * absmag + PAD_ABS;
        out.lo.push(lo - pad);
        out.hi.push(hi + pad);
    }
    out
}

/// Propagate an input box through a whole MLP (ReLU between layers, linear
/// output — the exact shape of [`Mlp::infer`]), collecting certified
/// output brackets, per-layer dead/saturated units and the per-input
/// sensitivity bound.
pub fn certify_mlp(store: &ParamStore, mlp: &Mlp, input: &IntervalVec) -> MlpCert {
    let last = mlp.layers.len() - 1;
    let mut cur = input.clone();
    let mut hidden = Vec::with_capacity(last);
    // sens[i][j] bounds |∂(current layer output j)/∂x_i|; starts as the
    // identity map folded into the first |W|.
    let mut sens: Vec<Vec<f64>> = Vec::new();
    for (li, layer) in mlp.layers.iter().enumerate() {
        let w = store.value(layer.w);
        let b = store.value(layer.b);
        let mut next = linear_bounds(w, b, &cur);
        // Fold |W| into the sensitivity product before masking by this
        // layer's activation facts.
        sens = match sens.is_empty() {
            true => (0..w.rows)
                .map(|i| {
                    (0..w.cols)
                        .map(|j| f64::from(w.data[i * w.cols + j]).abs())
                        .collect()
                })
                .collect(),
            false => sens
                .iter()
                .map(|row| {
                    (0..w.cols)
                        .map(|j| {
                            row.iter()
                                .enumerate()
                                .map(|(k, &s)| s * f64::from(w.data[k * w.cols + j]).abs())
                                .sum()
                        })
                        .collect()
                })
                .collect(),
        };
        if li < last {
            let units = LayerUnits {
                dead: next.hi.iter().map(|&h| h <= 0.0).collect(),
                saturated: next.lo.iter().map(|&l| l >= 0.0).collect(),
            };
            // Certified-dead units pass no gradient anywhere in the box.
            for row in &mut sens {
                for (j, s) in row.iter_mut().enumerate() {
                    if units.dead[j] {
                        *s = 0.0;
                    }
                }
            }
            hidden.push(units);
            next.relu();
        }
        cur = next;
    }
    let sensitivity = sens
        .iter()
        .map(|row| row.iter().fold(0.0, |a: f64, &b| a.max(b)))
        .collect();
    MlpCert {
        output: cur,
        hidden,
        sensitivity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::Scratch;
    use crate::layers::{Linear, Mlp, ParamStore};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_in_box(lo: f32, hi: f32, n: usize, salt: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let t = (((i as u64 + 1) * (salt * 2 + 1)) % 1000) as f32 / 999.0;
                lo + (hi - lo) * t
            })
            .collect()
    }

    #[test]
    fn mlp_outputs_stay_inside_certified_bracket() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut store = ParamStore::new();
            let mlp = Mlp::new(&mut store, "m", &[7, 13, 9, 2], &mut rng);
            let input = IntervalVec::uniform(7, -1e-3, 2.5);
            let cert = certify_mlp(&store, &mlp, &input);
            let mut scratch = Scratch::new();
            for salt in 0..50u64 {
                let x = sample_in_box(-1e-3, 2.5, 7, seed * 100 + salt);
                let out = mlp.infer(&store, &Matrix::row(&x), &mut scratch);
                assert!(
                    cert.output.contains(&out.data),
                    "seed {seed} salt {salt}: {:?} escapes {:?}..{:?}",
                    out.data,
                    cert.output.lo,
                    cert.output.hi
                );
                scratch.recycle(out);
            }
        }
    }

    #[test]
    fn certified_dead_units_never_fire() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[4, 10, 1], &mut rng);
        // Force unit 3 of the hidden layer dead over a non-negative box:
        // strongly negative weights and bias.
        {
            let w = store.value_mut(mlp.layers[0].w);
            for i in 0..4 {
                w.data[i * 10 + 3] = -5.0;
            }
            store.value_mut(mlp.layers[0].b).data[3] = -1.0;
        }
        let input = IntervalVec::uniform(4, 0.0, 2.5);
        let cert = certify_mlp(&store, &mlp, &input);
        assert!(cert.hidden[0].dead[3], "unit forced dead must certify dead");
        let lin: &Linear = &mlp.layers[0];
        let mut scratch = Scratch::new();
        for salt in 0..40u64 {
            let x = sample_in_box(0.0, 2.5, 4, salt);
            let pre = lin.infer(&store, &Matrix::row(&x), &mut scratch);
            for (j, &dead) in cert.hidden[0].dead.iter().enumerate() {
                if dead {
                    assert!(pre.data[j] <= 0.0, "dead unit {j} fired: {}", pre.data[j]);
                }
            }
            scratch.recycle(pre);
        }
    }

    #[test]
    fn saturated_units_have_nonnegative_preactivation_bound() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 6, 1], &mut rng);
        // Huge positive bias saturates unit 0 on any modest box.
        store.value_mut(mlp.layers[0].b).data[0] = 100.0;
        let input = IntervalVec::uniform(3, -1.0, 1.0);
        let cert = certify_mlp(&store, &mlp, &input);
        assert!(cert.hidden[0].saturated[0]);
        assert!(!cert.hidden[0].dead[0]);
    }

    #[test]
    fn zeroed_input_row_has_zero_sensitivity() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[5, 8, 8, 2], &mut rng);
        // Cut every outgoing weight of input feature 2.
        {
            let w = store.value_mut(mlp.layers[0].w);
            for j in 0..8 {
                w.data[2 * 8 + j] = 0.0;
            }
        }
        let input = IntervalVec::uniform(5, -1e-3, 2.5);
        let cert = certify_mlp(&store, &mlp, &input);
        assert_eq!(cert.sensitivity.len(), 5);
        assert_eq!(cert.sensitivity[2], 0.0);
        assert!(cert.sensitivity[0] > 0.0);
    }

    #[test]
    fn sensitivity_bounds_finite_differences() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[4, 9, 3], &mut rng);
        let input = IntervalVec::uniform(4, 0.0, 1.0);
        let cert = certify_mlp(&store, &mlp, &input);
        let mut scratch = Scratch::new();
        let base = vec![0.4, 0.6, 0.2, 0.8];
        let y0 = mlp.infer(&store, &Matrix::row(&base), &mut scratch);
        for i in 0..4 {
            let mut x = base.clone();
            x[i] += 0.1;
            let y1 = mlp.infer(&store, &Matrix::row(&x), &mut scratch);
            for (a, b) in y0.data.iter().zip(y1.data.iter()) {
                let slope = f64::from((a - b).abs()) / 0.1;
                assert!(
                    slope <= cert.sensitivity[i] * (1.0 + 1e-4) + 1e-6,
                    "feature {i}: slope {slope} exceeds bound {}",
                    cert.sensitivity[i]
                );
            }
            scratch.recycle(y1);
        }
        scratch.recycle(y0);
    }

    #[test]
    fn combinator_bounds_contain_concrete_combinators() {
        let mut scratch = Scratch::new();
        let a = Matrix::row(&[1.0, -2.0, 0.5]);
        let b = Matrix::row(&[0.25, 4.0, -1.0]);
        let box_a = IntervalVec::point(&a.data);
        let box_b = IntervalVec::point(&b.data);

        let states = [a.clone(), b.clone()];
        let m = crate::infer::mean_of(&states, &[0, 1], &mut scratch);
        let mb = mean_of_bounds(&[&box_a, &box_b], 2);
        assert!(mb.contains(&m.data));

        let ws = crate::infer::weighted_sum_of(&states, &[(0, 0.3), (1, 0.6)], &mut scratch);
        let wb = weighted_sum_of_bounds(&[(&box_a, 0.3), (&box_b, 0.6)]);
        assert!(wb.contains(&ws.data));

        let c = crate::infer::concat_pair(&a, &b, &mut scratch);
        let cb = box_a.concat(&box_b);
        assert!(cb.contains(&c.data));

        let sum = a.add(&b);
        let ab = add_bounds(&box_a, &box_b);
        assert!(ab.contains(&sum.data));
    }

    #[test]
    fn scale_hull_covers_all_subunit_scalings() {
        let b = IntervalVec {
            lo: vec![-2.0, 1.0],
            hi: vec![3.0, 4.0],
        };
        let s = b.scale_hull(1.0);
        // any w in [0,1], any v in box: w*v must be inside
        for &w in &[0.0f64, 0.25, 1.0] {
            for &(v0, v1) in &[(-2.0f64, 1.0f64), (3.0, 4.0), (0.0, 2.5)] {
                assert!(s.lo[0] <= w * v0 && w * v0 <= s.hi[0]);
                assert!(s.lo[1] <= w * v1 && w * v1 <= s.hi[1]);
            }
        }
        // scaling by 0 is always reachable, so 0 is inside
        assert!(s.lo[1] <= 0.0, "zero-scaling must stay representable");
    }
}
