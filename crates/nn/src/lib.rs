//! # zt-nn
//!
//! A small, fully-tested neural-network stack built from scratch for the
//! ZeroTune reproduction (mature GNN crates are not available, and the
//! paper's model — per-node-type MLP encoders, DAG message passing, an MLP
//! read-out — is small enough that a purpose-built tape is the right
//! tool).
//!
//! * [`matrix`] — a dense row-major `f32` matrix.
//! * [`tape`] — reverse-mode autodiff over matrices with a fixed op set
//!   (matmul, broadcast add, ReLU/tanh, concat, element-wise mean of
//!   several inputs, losses). Gradients are checked against central finite
//!   differences in [`gradcheck`].
//! * [`layers`] — parameter store, `Linear` and `Mlp` modules, each with
//!   a taped `forward` (training) and a tapeless `infer` (prediction).
//! * [`infer`] — the tapeless inference support: a reusable [`infer::Scratch`]
//!   buffer arena plus aggregation helpers that mirror the tape ops'
//!   accumulation order exactly.
//! * [`kernels`] — the dense `f32` hot-path kernels (matmul, ReLU, add,
//!   Adam update), each as an 8-wide lane kernel *and* a scalar oracle.
//!   The lane flavor is the default; building with the `scalar-kernels`
//!   feature switches every dispatch site back to the oracle, and the two
//!   are pinned bitwise-equal by `tests/kernel_equivalence.rs`.
//! * [`certify`] — interval bound propagation over trained weights:
//!   certified output brackets, certified-dead/saturated ReLU units and
//!   per-input sensitivity bounds over an input box, sound against the
//!   `f32` inference kernels.
//! * [`optim`] — SGD (with momentum) and Adam, with global-norm gradient
//!   clipping.
//! * [`linalg`] — `f64` Cholesky solver used by the ridge-regression
//!   baseline.

#![deny(unsafe_code)]

pub mod certify;
pub mod gradcheck;
pub mod infer;
pub mod kernels;
pub mod layers;
pub mod linalg;
pub mod matrix;
pub mod optim;
pub mod tape;

pub use certify::{certify_mlp, IntervalVec, LayerUnits, MlpCert};
pub use infer::Scratch;
pub use layers::{DimMismatch, Linear, Mlp, ParamId, ParamStore};
pub use matrix::Matrix;
pub use optim::{Adam, Optimizer, Sgd};
pub use tape::{Tape, Var};
