//! First-order optimizers: SGD with momentum and Adam, plus global-norm
//! gradient clipping.

use crate::layers::{ParamId, ParamStore};
use crate::matrix::Matrix;

/// A gradient-descent optimizer stepping a [`ParamStore`].
pub trait Optimizer {
    /// Apply one update using the store's accumulated gradients. Does
    /// *not* zero the gradients; call [`ParamStore::zero_grad`] after.
    fn step(&mut self, store: &mut ParamStore);

    /// Restrict updates to a subset of parameters (`None` = all). Used by
    /// few-shot fine-tuning to freeze encoder weights.
    fn set_mask(&mut self, mask: Option<Vec<ParamId>>);
}

fn masked_ids(store: &ParamStore, mask: &Option<Vec<ParamId>>) -> Vec<ParamId> {
    match mask {
        Some(ids) => ids.clone(),
        None => store.ids().collect(),
    }
}

/// Clip gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_grad_norm(store: &mut ParamStore, max_norm: f32) -> f32 {
    let norm = store.grad_norm();
    if norm.is_finite() && norm > max_norm && norm > 0.0 {
        store.scale_grads(max_norm / norm);
    }
    norm
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    mask: Option<Vec<ParamId>>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            mask: None,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        for id in masked_ids(store, &self.mask) {
            let (value, m, _v, grad) = store.optim_state(id);
            let Some(grad) = grad else { continue };
            let grad = grad.clone();
            let velocity = m.get_or_insert_with(|| Matrix::zeros(value.rows, value.cols));
            for i in 0..value.data.len() {
                velocity.data[i] = self.momentum * velocity.data[i] - self.lr * grad.data[i];
                value.data[i] += velocity.data[i];
            }
        }
    }

    fn set_mask(&mut self, mask: Option<Vec<ParamId>>) {
        self.mask = mask;
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: i32,
    mask: Option<Vec<ParamId>>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            mask: None,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let step = crate::kernels::AdamStep {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            b1t: 1.0 - self.beta1.powi(self.t),
            b2t: 1.0 - self.beta2.powi(self.t),
        };
        for id in masked_ids(store, &self.mask) {
            let (value, m, v, grad) = store.optim_state(id);
            let Some(grad) = grad else { continue };
            let grad = grad.clone();
            let m = m.get_or_insert_with(|| Matrix::zeros(value.rows, value.cols));
            let v = v.get_or_insert_with(|| Matrix::zeros(value.rows, value.cols));
            crate::kernels::adam_update(
                &mut value.data,
                &mut m.data,
                &mut v.data,
                &grad.data,
                &step,
            );
        }
    }

    fn set_mask(&mut self, mask: Option<Vec<ParamId>>) {
        self.mask = mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// Minimize (w − 3)² and check convergence.
    fn optimize_quadratic(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.alloc("w", Matrix::scalar(0.0));
        for _ in 0..steps {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let target = tape.leaf(Matrix::scalar(3.0));
            let loss = tape.mse_loss(wv, target);
            store.zero_grad();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        store.value(w).data[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = optimize_quadratic(&mut Sgd::new(0.1, 0.0), 200);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = optimize_quadratic(&mut Sgd::new(0.05, 0.9), 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = optimize_quadratic(&mut Adam::new(0.1), 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn mask_freezes_parameters() {
        let mut store = ParamStore::new();
        let a = store.alloc("a", Matrix::scalar(0.0));
        let b = store.alloc("b", Matrix::scalar(0.0));
        let mut opt = Adam::new(0.1);
        opt.set_mask(Some(vec![b]));
        for _ in 0..50 {
            let mut tape = Tape::new();
            let av = tape.param(&store, a);
            let bv = tape.param(&store, b);
            let s = tape.add(av, bv);
            let target = tape.leaf(Matrix::scalar(4.0));
            let loss = tape.mse_loss(s, target);
            store.zero_grad();
            tape.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert_eq!(store.value(a).data[0], 0.0, "masked param moved");
        assert!(store.value(b).data[0] > 1.0, "unmasked param frozen");
    }

    #[test]
    fn clipping_caps_global_norm() {
        let mut store = ParamStore::new();
        let a = store.alloc("a", Matrix::scalar(0.0));
        store.accumulate_grad(a, &Matrix::scalar(30.0));
        let pre = clip_grad_norm(&mut store, 5.0);
        assert_eq!(pre, 30.0);
        assert!((store.grad_norm() - 5.0).abs() < 1e-4);
        // clipping below the threshold is a no-op
        let pre2 = clip_grad_norm(&mut store, 10.0);
        assert!((pre2 - 5.0).abs() < 1e-4);
        assert!((store.grad_norm() - 5.0).abs() < 1e-4);
    }
}
