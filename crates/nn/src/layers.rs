//! Parameter storage and neural-network modules (`Linear`, `Mlp`).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::infer::Scratch;
use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ParamId(pub usize);

#[derive(Clone, Debug, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    value: Matrix,
    #[serde(skip)]
    grad: Option<Matrix>,
    /// First/second Adam moments (lazily initialized by the optimizer).
    #[serde(skip)]
    m: Option<Matrix>,
    #[serde(skip)]
    v: Option<Matrix>,
}

/// Owns all trainable parameters of a model, their gradients and optimizer
/// state. Serializable (weights only) so trained models can be persisted.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<ParamEntry>,
}

impl ParamStore {
    pub fn new() -> Self {
        ParamStore { params: Vec::new() }
    }

    /// Register a parameter and return its id.
    pub fn alloc(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.params.push(ParamEntry {
            name: name.into(),
            value,
            grad: None,
            m: None,
            v: None,
        });
        ParamId(self.params.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(|p| p.value.data.len()).sum()
    }

    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Current gradient (zeros if never touched).
    pub fn grad(&self, id: ParamId) -> Matrix {
        let p = &self.params[id.0];
        p.grad
            .clone()
            .unwrap_or_else(|| Matrix::zeros(p.value.rows, p.value.cols))
    }

    /// Add `g` into the parameter's gradient accumulator.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Matrix) {
        let p = &mut self.params[id.0];
        match &mut p.grad {
            Some(existing) => existing.add_assign(g),
            slot @ None => *slot = Some(g.clone()),
        }
    }

    /// Reset all gradients to zero (keeps allocations).
    pub fn zero_grad(&mut self) {
        for p in &mut self.params {
            if let Some(g) = &mut p.grad {
                g.zero_out();
            }
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .filter_map(|p| p.grad.as_ref())
            .map(|g| g.data.iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all gradients by `s` (used for gradient clipping and
    /// mini-batch averaging).
    pub fn scale_grads(&mut self, s: f32) {
        for p in &mut self.params {
            if let Some(g) = &mut p.grad {
                for v in &mut g.data {
                    *v *= s;
                }
            }
        }
    }

    pub(crate) fn optim_state(
        &mut self,
        id: ParamId,
    ) -> (
        &mut Matrix,
        &mut Option<Matrix>,
        &mut Option<Matrix>,
        Option<&Matrix>,
    ) {
        let p = &mut self.params[id.0];
        (&mut p.value, &mut p.m, &mut p.v, p.grad.as_ref())
    }

    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Copy all weights from another store with identical layout (used by
    /// few-shot fine-tuning to restore snapshots).
    pub fn copy_weights_from(&mut self, other: &ParamStore) {
        assert_eq!(self.params.len(), other.params.len(), "layout mismatch");
        for (a, b) in self.params.iter_mut().zip(other.params.iter()) {
            assert!(
                a.value.same_shape(&b.value),
                "shape mismatch for {}",
                a.name
            );
            a.value = b.value.clone();
        }
    }
}

/// Structured width error for the checked inference entry points: the
/// input (or a stored weight matrix) does not have the width the layer
/// expects. Returned by [`Linear::infer_checked`] / [`Mlp::infer_checked`]
/// so release-mode serving paths reject mis-shaped inputs instead of
/// panicking inside the matmul kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimMismatch {
    /// Index of the offending layer inside its module.
    pub layer: usize,
    /// Width the layer expects (its weight matrix's row count).
    pub expected: usize,
    /// Width actually supplied.
    pub got: usize,
}

impl std::fmt::Display for DimMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimension mismatch at layer {}: expected input width {}, got {}",
            self.layer, self.expected, self.got
        )
    }
}

impl std::error::Error for DimMismatch {}

/// A fully connected layer `y = x·W + b`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    /// He-initialized layer (suits ReLU activations).
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        let w = Matrix {
            rows: in_dim,
            cols: out_dim,
            data: (0..in_dim * out_dim)
                .map(|_| {
                    // Box–Muller normal draw.
                    let u1: f32 = rng.gen_range(1e-7..1.0);
                    let u2: f32 = rng.gen_range(0.0..1.0);
                    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos() * std
                })
                .collect(),
        };
        let b = Matrix::zeros(1, out_dim);
        Linear {
            w: store.alloc(format!("{name}.w"), w),
            b: store.alloc(format!("{name}.b"), b),
            in_dim,
            out_dim,
        }
    }

    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        tape.add_row(xw, b)
    }

    /// Tapeless forward pass: `x·W + b` computed directly against the
    /// store's weights (no tape nodes, no weight clones). Produces the
    /// same `f32` values as [`Linear::forward`] — both use
    /// [`Matrix::matmul_into`] and add the bias after accumulation.
    pub fn infer(&self, store: &ParamStore, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        let w = store.value(self.w);
        let b = store.value(self.b);
        let mut out = scratch.zeros(x.rows, self.out_dim);
        x.matmul_into(w, &mut out);
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += b.data[c];
            }
        }
        out
    }

    /// Width-checked [`Linear::infer`]: verifies the input width against
    /// the *stored weight matrix* (not just the `in_dim` metadata, which a
    /// tampered serialized model could mis-declare) before touching the
    /// matmul kernel.
    pub fn infer_checked(
        &self,
        store: &ParamStore,
        x: &Matrix,
        scratch: &mut Scratch,
    ) -> Result<Matrix, DimMismatch> {
        let w = store.value(self.w);
        if x.cols != w.rows {
            return Err(DimMismatch {
                layer: 0,
                expected: w.rows,
                got: x.cols,
            });
        }
        Ok(self.infer(store, x, scratch))
    }
}

/// Multi-layer perceptron with ReLU activations between layers and a
/// linear output layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    pub layers: Vec<Linear>,
}

impl Mlp {
    /// `dims = [in, hidden…, out]`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty MLP").in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty MLP").out_dim
    }

    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, store, x);
            if i < last {
                x = tape.relu(x);
            }
        }
        x
    }

    /// Tapeless forward pass mirroring [`Mlp::forward`] (ReLU between
    /// layers, linear output). Intermediate activations live in `scratch`
    /// and are recycled layer by layer; the returned matrix can be
    /// recycled by the caller once read.
    pub fn infer(&self, store: &ParamStore, x: &Matrix, scratch: &mut Scratch) -> Matrix {
        debug_assert!(
            x.data.iter().all(|v| v.is_finite()),
            "non-finite input to Mlp::infer — upstream features or activations are corrupted"
        );
        let last = self.layers.len() - 1;
        let mut cur: Option<Matrix> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut next = layer.infer(store, cur.as_ref().unwrap_or(x), scratch);
            if i < last {
                crate::infer::relu_inplace(&mut next);
            }
            if let Some(prev) = cur.take() {
                scratch.recycle(prev);
            }
            cur = Some(next);
        }
        cur.expect("non-empty MLP")
    }

    /// Width-checked [`Mlp::infer`]: validates the input width and the
    /// layer-to-layer width chain against the stored weight matrices
    /// before running the forward pass, so a mis-shaped input (or a
    /// deserialized model whose metadata lies about its shapes) surfaces
    /// as a structured [`DimMismatch`] instead of a release-mode panic.
    pub fn infer_checked(
        &self,
        store: &ParamStore,
        x: &Matrix,
        scratch: &mut Scratch,
    ) -> Result<Matrix, DimMismatch> {
        let mut width = x.cols;
        for (i, layer) in self.layers.iter().enumerate() {
            let w = store.value(layer.w);
            if width != w.rows {
                return Err(DimMismatch {
                    layer: i,
                    expected: w.rows,
                    got: width,
                });
            }
            width = w.cols;
        }
        Ok(self.infer(store, x, scratch))
    }

    /// Parameter ids of this module (for per-module learning-rate masks).
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.layers.iter().flat_map(|l| [l.w, l.b]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 3, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(2, 4));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (2, 3));
    }

    #[test]
    fn mlp_forward_shape_and_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[5, 8, 8, 2], &mut rng);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(store.len(), 6); // 3 layers × (w, b)
        assert_eq!(store.num_weights(), 5 * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(1, 5));
        let y = mlp.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), (1, 2));
    }

    #[test]
    fn he_init_has_reasonable_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 100, 100, &mut rng);
        let w = store.value(lin.w);
        let std = (w.data.iter().map(|v| v * v).sum::<f32>() / w.data.len() as f32).sqrt();
        let expected = (2.0f32 / 100.0).sqrt();
        assert!((std - expected).abs() / expected < 0.15, "std {std}");
        // bias starts at zero
        assert!(store.value(lin.b).data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_grad_resets() {
        let mut store = ParamStore::new();
        let id = store.alloc("p", Matrix::scalar(1.0));
        store.accumulate_grad(id, &Matrix::scalar(5.0));
        assert_eq!(store.grad(id).data[0], 5.0);
        store.accumulate_grad(id, &Matrix::scalar(2.0));
        assert_eq!(store.grad(id).data[0], 7.0);
        store.zero_grad();
        assert_eq!(store.grad(id).data[0], 0.0);
    }

    #[test]
    fn grad_norm_and_scaling() {
        let mut store = ParamStore::new();
        let a = store.alloc("a", Matrix::scalar(0.0));
        let b = store.alloc("b", Matrix::scalar(0.0));
        store.accumulate_grad(a, &Matrix::scalar(3.0));
        store.accumulate_grad(b, &Matrix::scalar(4.0));
        assert!((store.grad_norm() - 5.0).abs() < 1e-6);
        store.scale_grads(0.5);
        assert!((store.grad_norm() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn weights_serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let _ = Mlp::new(&mut store, "m", &[3, 4, 1], &mut rng);
        let json = serde_json::to_string(&store).unwrap();
        let back: ParamStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), store.len());
        for id in store.ids() {
            assert_eq!(back.value(id), store.value(id));
        }
    }

    #[test]
    fn infer_matches_tape_forward_exactly() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[6, 16, 16, 3], &mut rng);
        let mut scratch = Scratch::new();
        for row in 0..20 {
            let x = Matrix::row(
                &(0..6)
                    .map(|c| ((row * 7 + c) as f32 * 0.31).sin())
                    .collect::<Vec<_>>(),
            );
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let out = mlp.forward(&mut tape, &store, xv);
            let taped = tape.value(out).clone();
            let tapeless = mlp.infer(&store, &x, &mut scratch);
            // bitwise equality: both paths share the matmul kernel and
            // accumulation order
            assert_eq!(taped.data, tapeless.data);
            scratch.recycle(tapeless);
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Random MLP shapes and seeds: the tapeless path must agree
            /// with the tape within 1e-5 (in fact bitwise).
            #[test]
            fn infer_matches_tape(
                seed in 0u64..10_000,
                hidden in 2usize..24,
                depth in 1usize..4,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut store = ParamStore::new();
                let mut dims = vec![5];
                dims.extend(std::iter::repeat_n(hidden, depth));
                dims.push(2);
                let mlp = Mlp::new(&mut store, "m", &dims, &mut rng);
                let x = Matrix::row(&[0.9, -1.4, 0.02, 3.0, -0.6]);
                let mut tape = Tape::new();
                let xv = tape.leaf(x.clone());
                let out = mlp.forward(&mut tape, &store, xv);
                let taped = tape.value(out).clone();
                let mut scratch = Scratch::new();
                let tapeless = mlp.infer(&store, &x, &mut scratch);
                for (a, b) in taped.data.iter().zip(tapeless.data.iter()) {
                    prop_assert!((a - b).abs() <= 1e-5, "tape {a} vs tapeless {b}");
                }
            }
        }
    }

    #[test]
    fn infer_checked_rejects_wrong_width_matrix() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[6, 16, 3], &mut rng);
        let mut scratch = Scratch::new();
        // wrong-width input: 4 columns into a 6-wide first layer
        let bad = Matrix::row(&[1.0, 2.0, 3.0, 4.0]);
        let err = mlp
            .infer_checked(&store, &bad, &mut scratch)
            .expect_err("wrong width must be rejected");
        assert_eq!(
            err,
            DimMismatch {
                layer: 0,
                expected: 6,
                got: 4
            }
        );
        assert!(err.to_string().contains("expected input width 6"));
        let lin_err = mlp.layers[0]
            .infer_checked(&store, &bad, &mut scratch)
            .expect_err("linear layer rejects too");
        assert_eq!(lin_err.expected, 6);

        // correct width passes and matches the unchecked path bit for bit
        let good = Matrix::row(&[0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);
        let checked = mlp.infer_checked(&store, &good, &mut scratch).unwrap();
        let unchecked = mlp.infer(&store, &good, &mut scratch);
        assert_eq!(checked.data, unchecked.data);
    }

    #[test]
    fn infer_checked_catches_lying_shape_metadata() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut store = ParamStore::new();
        let mut mlp = Mlp::new(&mut store, "m", &[3, 5, 2], &mut rng);
        // Tamper the metadata the way a hand-edited artifact could: the
        // declared in_dim no longer matches the stored weight matrix.
        mlp.layers[0].in_dim = 4;
        let mut scratch = Scratch::new();
        let x = Matrix::row(&[1.0, 2.0, 3.0, 4.0]);
        let err = mlp
            .infer_checked(&store, &x, &mut scratch)
            .expect_err("stored weights are still 3-wide");
        assert_eq!(err.expected, 3);
        assert_eq!(err.got, 4);
    }

    #[test]
    fn copy_weights_from_restores_snapshot() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let _ = Mlp::new(&mut store, "m", &[2, 2], &mut rng);
        let snapshot = store.clone();
        store.value_mut(ParamId(0)).data[0] += 10.0;
        store.copy_weights_from(&snapshot);
        assert_eq!(store.value(ParamId(0)), snapshot.value(ParamId(0)));
    }
}
