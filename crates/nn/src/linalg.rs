//! Small dense `f64` linear algebra: Cholesky factorization and solves,
//! used by the ridge-regression baseline (closed-form normal equations).

/// Errors from the linear solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not (numerically) positive definite.
    NotPositiveDefinite,
    /// Dimension mismatch between the matrix and the right-hand side.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Cholesky factor `L` (lower triangular, row-major `n×n`) of a symmetric
/// positive-definite matrix `a` (row-major `n×n`).
pub fn cholesky(a: &[f64], n: usize) -> Result<Vec<f64>, LinalgError> {
    if a.len() != n * n {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut l = vec![0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    Ok(l)
}

/// Solve `A·x = b` for symmetric positive-definite `A` via Cholesky.
pub fn solve_spd(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>, LinalgError> {
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    let l = cholesky(a, n)?;
    // forward: L·y = b
    let mut y = vec![0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // backward: Lᵀ·x = y
    let mut x = vec![0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Ridge regression: solve `(XᵀX + λI)·w = Xᵀy` for the weight vector `w`.
///
/// `x` is `rows × cols` row-major, `y` has `rows` entries. Returns `cols`
/// weights.
pub fn ridge_fit(
    x: &[f64],
    y: &[f64],
    rows: usize,
    cols: usize,
    lambda: f64,
) -> Result<Vec<f64>, LinalgError> {
    if x.len() != rows * cols || y.len() != rows {
        return Err(LinalgError::DimensionMismatch);
    }
    // XᵀX + λI
    let mut xtx = vec![0f64; cols * cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            let xi = row[i];
            if xi == 0.0 {
                continue;
            }
            for j in 0..cols {
                xtx[i * cols + j] += xi * row[j];
            }
        }
    }
    for i in 0..cols {
        xtx[i * cols + i] += lambda;
    }
    // Xᵀy
    let mut xty = vec![0f64; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            xty[i] += row[i] * y[r];
        }
    }
    solve_spd(&xtx, &xty, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_of_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let l = cholesky(&a, 2).unwrap();
        assert_eq!(l, a);
    }

    #[test]
    fn cholesky_known_factor() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, √2]]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let l = cholesky(&a, 2).unwrap();
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[2] - 1.0).abs() < 1e-12);
        assert!((l[3] - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn not_positive_definite_detected() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert_eq!(cholesky(&a, 2), Err(LinalgError::NotPositiveDefinite));
    }

    #[test]
    fn solve_recovers_known_solution() {
        // A = [[4, 2], [2, 3]], x = [1, 2] → b = [8, 8]
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let b = vec![8.0, 8.0];
        let x = solve_spd(&a, &b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn ridge_fits_exact_linear_data() {
        // y = 2·x1 − 3·x2, plenty of rows, tiny λ.
        let rows = 50;
        let mut x = Vec::with_capacity(rows * 2);
        let mut y = Vec::with_capacity(rows);
        for i in 0..rows {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.11).cos();
            x.push(a);
            x.push(b);
            y.push(2.0 * a - 3.0 * b);
        }
        let w = ridge_fit(&x, &y, rows, 2, 1e-9).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6, "w = {w:?}");
        assert!((w[1] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let rows = 20;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..rows {
            let a = i as f64 / rows as f64;
            x.push(a);
            y.push(5.0 * a);
        }
        let w_small = ridge_fit(&x, &y, rows, 1, 1e-9).unwrap()[0];
        let w_big = ridge_fit(&x, &y, rows, 1, 100.0).unwrap()[0];
        assert!(w_big.abs() < w_small.abs());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        assert_eq!(
            ridge_fit(&[1.0, 2.0], &[1.0], 1, 1, 0.1),
            Err(LinalgError::DimensionMismatch)
        );
    }
}
