//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records a computation as a flat list of nodes; calling
//! [`Tape::backward`] walks the list in reverse, propagating gradients and
//! accumulating them into the [`ParamStore`] for every parameter node.
//! The op set is exactly what the ZeroTune GNN and the MLP baselines need;
//! every gradient is verified against finite differences in
//! [`crate::gradcheck`] and in this module's tests.

use crate::layers::{ParamId, ParamStore};
use crate::matrix::Matrix;

/// Handle to a node on the tape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Var(pub usize);

#[derive(Debug)]
enum Op {
    /// Constant input (no gradient needed).
    Leaf,
    /// Trainable parameter; gradients accumulate into the store.
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    /// `X (n×d) + broadcast b (1×d)`.
    AddRow(Var, Var),
    Sub(Var, Var),
    Hadamard(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    Tanh(Var),
    /// Horizontal concatenation of same-row-count matrices.
    ConcatCols(Vec<Var>),
    /// Element-wise mean of same-shape matrices.
    MeanVars(Vec<Var>),
    /// Element-wise weighted sum of same-shape matrices.
    WeightedSum(Vec<(Var, f32)>),
    /// Mean squared error against a constant target → 1×1.
    MseLoss(Var, Var),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// The autodiff tape.
pub struct Tape {
    nodes: Vec<Node>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Value of a 1×1 node.
    pub fn scalar_value(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "not a scalar node");
        m.data[0]
    }

    /// Record a constant input.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Record a parameter: its current value is read from the store and
    /// its gradient flows back into the store on [`Tape::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        self.push(store.value(id).clone(), Op::Param(id))
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// `x (n×d) + row-broadcast bias (1×d)`.
    pub fn add_row(&mut self, x: Var, bias: Var) -> Var {
        let xm = self.value(x);
        let bm = self.value(bias);
        assert_eq!(bm.rows, 1, "bias must be a row vector");
        assert_eq!(xm.cols, bm.cols, "bias width mismatch");
        let mut out = xm.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bm.data[c];
            }
        }
        self.push(out, Op::AddRow(x, bias))
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(&self.value(b).scale(-1.0));
        self.push(v, Op::Sub(a, b))
    }

    pub fn hadamard(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        self.push(v, Op::Hadamard(a, b))
    }

    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Horizontal concatenation; all inputs must share the row count.
    pub fn concat_cols(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty());
        let rows = self.value(vars[0]).rows;
        let total_cols: usize = vars.iter().map(|&v| self.value(v).cols).sum();
        let mut out = Matrix::zeros(rows, total_cols);
        let mut offset = 0;
        for &v in vars {
            let m = self.value(v);
            assert_eq!(m.rows, rows, "concat row mismatch");
            for r in 0..rows {
                for c in 0..m.cols {
                    out.data[r * total_cols + offset + c] = m.data[r * m.cols + c];
                }
            }
            offset += m.cols;
        }
        self.push(out, Op::ConcatCols(vars.to_vec()))
    }

    /// Element-wise mean of same-shape inputs (the GNN's neighbour
    /// aggregation).
    pub fn mean_vars(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty());
        let mut out = self.value(vars[0]).clone();
        for &v in &vars[1..] {
            out.add_assign(self.value(v));
        }
        let out = out.scale(1.0 / vars.len() as f32);
        self.push(out, Op::MeanVars(vars.to_vec()))
    }

    /// Element-wise weighted sum of same-shape inputs (weighted neighbour
    /// aggregation, e.g. by instance counts).
    pub fn weighted_sum(&mut self, terms: &[(Var, f32)]) -> Var {
        assert!(!terms.is_empty());
        let mut out = self.value(terms[0].0).scale(terms[0].1);
        for &(v, w) in &terms[1..] {
            out.add_assign(&self.value(v).scale(w));
        }
        self.push(out, Op::WeightedSum(terms.to_vec()))
    }

    /// Mean-squared-error loss against a constant target.
    pub fn mse_loss(&mut self, pred: Var, target: Var) -> Var {
        let p = self.value(pred);
        let t = self.value(target);
        assert!(p.same_shape(t), "loss shape mismatch");
        let n = p.data.len() as f32;
        let mse = p
            .data
            .iter()
            .zip(t.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / n;
        self.push(Matrix::scalar(mse), Op::MseLoss(pred, target))
    }

    /// Backpropagate from `loss` (must be 1×1) and accumulate parameter
    /// gradients into `store`.
    pub fn backward(&self, loss: Var, store: &mut ParamStore) {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::scalar(1.0));

        let add_grad = |grads: &mut Vec<Option<Matrix>>, v: Var, g: Matrix| match &mut grads[v.0] {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        };

        for idx in (0..self.nodes.len()).rev() {
            let Some(grad) = grads[idx].take() else {
                continue;
            };
            match &self.nodes[idx].op {
                Op::Leaf => {}
                Op::Param(id) => store.accumulate_grad(*id, &grad),
                Op::MatMul(a, b) => {
                    let da = grad.matmul(&self.value(*b).t());
                    let db = self.value(*a).t().matmul(&grad);
                    add_grad(&mut grads, *a, da);
                    add_grad(&mut grads, *b, db);
                }
                Op::Add(a, b) => {
                    add_grad(&mut grads, *a, grad.clone());
                    add_grad(&mut grads, *b, grad);
                }
                Op::AddRow(x, bias) => {
                    // bias gradient: column sums.
                    let mut db = Matrix::zeros(1, grad.cols);
                    for r in 0..grad.rows {
                        for c in 0..grad.cols {
                            db.data[c] += grad.data[r * grad.cols + c];
                        }
                    }
                    add_grad(&mut grads, *x, grad);
                    add_grad(&mut grads, *bias, db);
                }
                Op::Sub(a, b) => {
                    add_grad(&mut grads, *a, grad.clone());
                    add_grad(&mut grads, *b, grad.scale(-1.0));
                }
                Op::Hadamard(a, b) => {
                    let da = grad.hadamard(self.value(*b));
                    let db = grad.hadamard(self.value(*a));
                    add_grad(&mut grads, *a, da);
                    add_grad(&mut grads, *b, db);
                }
                Op::Scale(a, s) => add_grad(&mut grads, *a, grad.scale(*s)),
                Op::Relu(a) => {
                    let mask = self.value(*a).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    add_grad(&mut grads, *a, grad.hadamard(&mask));
                }
                Op::Tanh(a) => {
                    // d tanh = 1 − tanh²; node value *is* tanh(a).
                    let t = &self.nodes[idx].value;
                    let dt = t.map(|x| 1.0 - x * x);
                    add_grad(&mut grads, *a, grad.hadamard(&dt));
                }
                Op::ConcatCols(vars) => {
                    let mut offset = 0;
                    for &v in vars {
                        let m = self.value(v);
                        let mut part = Matrix::zeros(m.rows, m.cols);
                        for r in 0..m.rows {
                            for c in 0..m.cols {
                                part.data[r * m.cols + c] = grad.data[r * grad.cols + offset + c];
                            }
                        }
                        offset += m.cols;
                        add_grad(&mut grads, v, part);
                    }
                }
                Op::MeanVars(vars) => {
                    let share = grad.scale(1.0 / vars.len() as f32);
                    for &v in vars {
                        add_grad(&mut grads, v, share.clone());
                    }
                }
                Op::WeightedSum(terms) => {
                    for &(v, w) in terms {
                        add_grad(&mut grads, v, grad.scale(w));
                    }
                }
                Op::MseLoss(pred, target) => {
                    let p = self.value(*pred);
                    let t = self.value(*target);
                    let n = p.data.len() as f32;
                    let scale = 2.0 / n * grad.data[0];
                    let dp = Matrix {
                        rows: p.rows,
                        cols: p.cols,
                        data: p
                            .data
                            .iter()
                            .zip(t.data.iter())
                            .map(|(a, b)| scale * (a - b))
                            .collect(),
                    };
                    add_grad(&mut grads, *pred, dp);
                    // target is a constant: no gradient.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        ParamStore::new()
    }

    #[test]
    fn matmul_forward_and_backward() {
        let mut st = store();
        let w = st.alloc("w", Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row(&[1.0, 2.0]));
        let wv = tape.param(&st, w);
        let y = tape.matmul(x, wv); // 1×1 = 3 + 8
        assert_eq!(tape.scalar_value(y), 11.0);
        let target = tape.leaf(Matrix::scalar(0.0));
        let loss = tape.mse_loss(y, target); // (11)^2
        assert_eq!(tape.scalar_value(loss), 121.0);
        tape.backward(loss, &mut st);
        // dL/dw = 2·y·x = 22·[1,2]
        assert_eq!(st.grad(w).data, vec![22.0, 44.0]);
    }

    #[test]
    fn relu_gradient_masks_negatives() {
        let mut st = store();
        let w = st.alloc("w", Matrix::row(&[-1.0, 2.0]));
        let mut tape = Tape::new();
        let wv = tape.param(&st, w);
        let r = tape.relu(wv);
        assert_eq!(tape.value(r).data, vec![0.0, 2.0]);
        let target = tape.leaf(Matrix::row(&[0.0, 0.0]));
        let loss = tape.mse_loss(r, target);
        tape.backward(loss, &mut st);
        // negative input: zero grad; positive: 2·2/2 = 2
        assert_eq!(st.grad(w).data, vec![0.0, 2.0]);
    }

    #[test]
    fn tanh_gradient() {
        let mut st = store();
        let w = st.alloc("w", Matrix::scalar(0.5));
        let mut tape = Tape::new();
        let wv = tape.param(&st, w);
        let t = tape.tanh(wv);
        let target = tape.leaf(Matrix::scalar(0.0));
        let loss = tape.mse_loss(t, target);
        tape.backward(loss, &mut st);
        let th = 0.5f32.tanh();
        let expected = 2.0 * th * (1.0 - th * th);
        assert!((st.grad(w).data[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn concat_splits_gradient() {
        let mut st = store();
        let a = st.alloc("a", Matrix::row(&[1.0]));
        let b = st.alloc("b", Matrix::row(&[2.0, 3.0]));
        let mut tape = Tape::new();
        let av = tape.param(&st, a);
        let bv = tape.param(&st, b);
        let c = tape.concat_cols(&[av, bv]);
        assert_eq!(tape.value(c).data, vec![1.0, 2.0, 3.0]);
        let target = tape.leaf(Matrix::row(&[0.0, 0.0, 0.0]));
        let loss = tape.mse_loss(c, target);
        tape.backward(loss, &mut st);
        // d = 2·x/3
        assert!((st.grad(a).data[0] - 2.0 / 3.0).abs() < 1e-6);
        assert!((st.grad(b).data[0] - 4.0 / 3.0).abs() < 1e-6);
        assert!((st.grad(b).data[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mean_vars_divides_gradient() {
        let mut st = store();
        let a = st.alloc("a", Matrix::row(&[4.0]));
        let b = st.alloc("b", Matrix::row(&[8.0]));
        let mut tape = Tape::new();
        let av = tape.param(&st, a);
        let bv = tape.param(&st, b);
        let m = tape.mean_vars(&[av, bv]);
        assert_eq!(tape.value(m).data, vec![6.0]);
        let target = tape.leaf(Matrix::scalar(0.0));
        let loss = tape.mse_loss(m, target);
        tape.backward(loss, &mut st);
        // dL/da = 2·6 · 1/2 = 6
        assert!((st.grad(a).data[0] - 6.0).abs() < 1e-6);
        assert!((st.grad(b).data[0] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn add_row_broadcast() {
        let mut st = store();
        let b = st.alloc("b", Matrix::row(&[1.0, -1.0]));
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let bv = tape.param(&st, b);
        let y = tape.add_row(x, bv);
        assert_eq!(tape.value(y).data, vec![2.0, 1.0, 4.0, 3.0]);
        let target = tape.leaf(Matrix::zeros(2, 2));
        let loss = tape.mse_loss(y, target);
        tape.backward(loss, &mut st);
        // dL/db_c = Σ_r 2·y_rc/4
        assert!((st.grad(b).data[0] - (2.0 + 4.0) / 2.0).abs() < 1e-6);
        assert!((st.grad(b).data[1] - (1.0 + 3.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_sum_gradient() {
        let mut st = store();
        let a = st.alloc("a", Matrix::scalar(2.0));
        let mut tape = Tape::new();
        let av = tape.param(&st, a);
        let s = tape.weighted_sum(&[(av, 3.0)]);
        assert_eq!(tape.scalar_value(s), 6.0);
        let target = tape.leaf(Matrix::scalar(0.0));
        let loss = tape.mse_loss(s, target);
        tape.backward(loss, &mut st);
        // dL/da = 2·6·3 = 36
        assert!((st.grad(a).data[0] - 36.0).abs() < 1e-5);
    }

    #[test]
    fn grad_accumulates_across_uses() {
        // A parameter used twice must receive the sum of both paths.
        let mut st = store();
        let a = st.alloc("a", Matrix::scalar(3.0));
        let mut tape = Tape::new();
        let av = tape.param(&st, a);
        let doubled = tape.add(av, av); // 6
        let target = tape.leaf(Matrix::scalar(0.0));
        let loss = tape.mse_loss(doubled, target); // 36
        tape.backward(loss, &mut st);
        // dL/da = 2·6·2 = 24
        assert!((st.grad(a).data[0] - 24.0).abs() < 1e-6);
    }
}
