//! Dense `f32` hot-path kernels, each in two always-compiled flavors.
//!
//! Every inner loop that dominates training/inference time — matmul, ReLU,
//! element-wise add, the Adam update — lives here as a pair:
//!
//! * `*_scalar` — the original straight-line loop, kept verbatim as the
//!   **test oracle** (the "slow twin");
//! * `*_lanes` — an explicit 8-wide lane kernel ([`LANES`]) written so the
//!   per-element operation chain is *identical* to the scalar twin, which
//!   makes the two bitwise-equal on the call shapes the crate uses (see
//!   the equivalence policy below). Lane bodies are fixed-count loops over
//!   `[f32; LANES]` blocks, which LLVM reliably turns into vector code on
//!   stable Rust without `unsafe` or nightly intrinsics.
//!
//! The public un-suffixed functions ([`matmul_into`], [`relu`],
//! [`add_assign`], [`adam_update`]) are the *active* dispatch: they call
//! the lane kernels by default and the scalar oracle when the crate is
//! built with the `scalar-kernels` feature. Both flavors are always
//! compiled regardless of the feature, so one test binary can compare them
//! directly and one bench binary can measure the speedup.
//!
//! # Equivalence policy (same as the tape-vs-tapeless contract)
//!
//! Bitwise, not approximate. The lane matmul keeps **one accumulator per
//! output element** and sums over `k` in ascending order — exactly the
//! chain the scalar i-k-j loop performs — so with a pre-zeroed `out`
//! (every call site in this workspace) the results are bit-identical for
//! finite inputs. Both flavors skip `a == 0.0` rows of the inner loop: an
//! accumulator seeded with `+0.0` is never changed by adding a `±0.0`
//! product under round-to-nearest, so the skip is value-neutral, and doing
//! it in *both* kernels keeps them in lockstep even for non-finite `b`.
//! ReLU, add and Adam are element-wise, so lane blocking cannot reorder
//! anything. When `out` is *not* pre-zeroed, the lane matmul folds the
//! prior value in with a single final add instead of threading it through
//! the chain — at most one rounding step of difference, covered by the
//! ≤1e-6 relative branch of the policy in `tests/kernel_equivalence.rs`.
//!
//! `f32::mul_add` is used **only** when the build compiles in hardware FMA
//! (`target_feature = "fma"`, e.g. `RUSTFLAGS="-C target-cpu=native"`): one
//! fused µop with a single rounding, which moves those builds onto the
//! ≤1e-6 branch of the policy. On the default generic `x86_64` target
//! `mul_add` would lower to a slow libm call *and* change rounding, so the
//! baseline keeps the oracle's exact two-rounding chain and stays bitwise.

/// Lane width of the fast kernels: 8 × `f32` = one 256-bit vector.
pub const LANES: usize = 8;

/// Name of the kernel flavor the un-suffixed dispatch functions use.
pub const ACTIVE_KERNELS: &str = if cfg!(feature = "scalar-kernels") {
    "scalar"
} else {
    "lanes"
};

#[inline]
fn check_matmul(a: &[f32], rows: usize, inner: usize, b: &[f32], cols: usize, out: &[f32]) {
    assert_eq!(a.len(), rows * inner, "matmul lhs data/shape mismatch");
    assert_eq!(b.len(), inner * cols, "matmul rhs data/shape mismatch");
    assert_eq!(out.len(), rows * cols, "matmul out data/shape mismatch");
}

/// `out += a × b` over row-major slices — scalar oracle.
///
/// This is the crate's historical i-k-j loop, verbatim: stream through `b`
/// rows for cache locality, skip zero `a` elements (encoder inputs are
/// one-hot-ish).
pub fn matmul_into_scalar(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    cols: usize,
    out: &mut [f32],
) {
    check_matmul(a, rows, inner, b, cols, out);
    for i in 0..rows {
        let out_row = &mut out[i * cols..(i + 1) * cols];
        for k in 0..inner {
            let av = a[i * inner + k];
            if av == 0.0 {
                continue;
            }
            let b_row = &b[k * cols..(k + 1) * cols];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `out += a × b` over row-major slices — 8-wide lane kernel.
///
/// Register-blocked over `cols`: each 8-column block keeps its partial
/// sums in a `[f32; LANES]` accumulator across the whole `k` loop, so the
/// output row is loaded and stored once instead of once per `k`. Tail
/// columns (`cols % LANES`) fall back to one scalar accumulator per
/// column with the same ascending-`k` chain.
pub fn matmul_into_lanes(
    a: &[f32],
    rows: usize,
    inner: usize,
    b: &[f32],
    cols: usize,
    out: &mut [f32],
) {
    check_matmul(a, rows, inner, b, cols, out);
    const TILE: usize = 4 * LANES;
    for i in 0..rows {
        let a_row = &a[i * inner..(i + 1) * inner];
        let out_row = &mut out[i * cols..(i + 1) * cols];
        let mut j = 0;
        while j + TILE <= cols {
            matmul_col_tile::<{ 4 * LANES }>(a_row, b, cols, j, out_row);
            j += TILE;
        }
        while j + LANES <= cols {
            matmul_col_tile::<LANES>(a_row, b, cols, j, out_row);
            j += LANES;
        }
        // Tail columns: one register-resident pass per fixed tail width so
        // narrow outputs (e.g. the 2-column read-out head) never touch the
        // output row inside the `k` loop.
        match cols - j {
            0 => {}
            1 => matmul_col_tile::<1>(a_row, b, cols, j, out_row),
            2 => matmul_col_tile::<2>(a_row, b, cols, j, out_row),
            3 => matmul_col_tile::<3>(a_row, b, cols, j, out_row),
            4 => matmul_col_tile::<4>(a_row, b, cols, j, out_row),
            5 => matmul_col_tile::<5>(a_row, b, cols, j, out_row),
            6 => matmul_col_tile::<6>(a_row, b, cols, j, out_row),
            _ => matmul_col_tile::<7>(a_row, b, cols, j, out_row),
        }
    }
}

/// One register tile of the lane matmul: accumulate `a_row × b[:, j..j+N]`
/// into `out_row[j..j+N]` with one `[f32; N]` accumulator held across the
/// whole `k` loop. Each output column keeps its own ascending-`k` sum
/// chain (bit-identical to the scalar oracle's chain when `out` starts at
/// zero), and the `a == 0` skip matches the oracle term for term.
#[inline(always)]
fn matmul_col_tile<const N: usize>(
    a_row: &[f32],
    b: &[f32],
    cols: usize,
    j: usize,
    out_row: &mut [f32],
) {
    let mut acc = [0.0f32; N];
    for (k, &av) in a_row.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let b_blk: &[f32; N] = b[k * cols + j..k * cols + j + N]
            .try_into()
            .expect("lane tile");
        for l in 0..N {
            // With hardware FMA compiled in, fuse the multiply-add: one
            // µop instead of two and one rounding instead of two, which
            // is why FMA builds sit on the ≤1e-6-relative branch of the
            // equivalence policy instead of the bitwise one. Without the
            // target feature `mul_add` would lower to a libm call, so the
            // baseline keeps the exact two-rounding chain of the oracle.
            if cfg!(target_feature = "fma") {
                acc[l] = av.mul_add(b_blk[l], acc[l]);
            } else {
                acc[l] += av * b_blk[l];
            }
        }
    }
    let out_blk: &mut [f32; N] = (&mut out_row[j..j + N]).try_into().expect("lane tile");
    for l in 0..N {
        out_blk[l] += acc[l];
    }
}

/// In-place ReLU — scalar oracle.
pub fn relu_scalar(data: &mut [f32]) {
    for v in data {
        *v = v.max(0.0);
    }
}

/// In-place ReLU — 8-wide lane kernel. Element-wise, so trivially
/// bitwise-equal to the oracle.
pub fn relu_lanes(data: &mut [f32]) {
    let mut chunks = data.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        let blk: &mut [f32; LANES] = chunk.try_into().expect("lane block");
        for v in blk {
            *v = v.max(0.0);
        }
    }
    for v in chunks.into_remainder() {
        *v = v.max(0.0);
    }
}

/// `dst[i] += src[i]` — scalar oracle.
pub fn add_assign_scalar(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

/// `dst[i] += src[i]` — 8-wide lane kernel.
pub fn add_assign_lanes(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add length mismatch");
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let dc: &mut [f32; LANES] = dc.try_into().expect("lane block");
        let sc: &[f32; LANES] = sc.try_into().expect("lane block");
        for l in 0..LANES {
            dc[l] += sc[l];
        }
    }
    for (dv, &sv) in d.into_remainder().iter_mut().zip(s.remainder().iter()) {
        *dv += sv;
    }
}

/// Hyper-parameters of one Adam step, with the bias corrections
/// (`b1t = 1 − β₁ᵗ`, `b2t = 1 − β₂ᵗ`) precomputed once per step.
#[derive(Clone, Copy, Debug)]
pub struct AdamStep {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub b1t: f32,
    pub b2t: f32,
}

#[inline]
fn adam_one(value: &mut f32, m: &mut f32, v: &mut f32, g: f32, s: &AdamStep) {
    *m = s.beta1 * *m + (1.0 - s.beta1) * g;
    *v = s.beta2 * *v + (1.0 - s.beta2) * g * g;
    let m_hat = *m / s.b1t;
    let v_hat = *v / s.b2t;
    *value -= s.lr * m_hat / (v_hat.sqrt() + s.eps);
}

#[inline]
fn check_adam(value: &[f32], m: &[f32], v: &[f32], grad: &[f32]) {
    assert!(
        value.len() == m.len() && value.len() == v.len() && value.len() == grad.len(),
        "adam state length mismatch"
    );
}

/// One Adam update over a parameter tensor — scalar oracle.
pub fn adam_update_scalar(
    value: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    grad: &[f32],
    step: &AdamStep,
) {
    check_adam(value, m, v, grad);
    for i in 0..value.len() {
        adam_one(&mut value[i], &mut m[i], &mut v[i], grad[i], step);
    }
}

/// One Adam update over a parameter tensor — 8-wide lane kernel. The
/// element chain (`m`, `v`, bias-correct, `sqrt`, update) is identical to
/// the oracle; lane blocking lets the divides and square roots vectorize.
pub fn adam_update_lanes(
    value: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    grad: &[f32],
    step: &AdamStep,
) {
    check_adam(value, m, v, grad);
    // One fused pass over zipped iterators: the dynamic-length loop
    // vectorizes into packed 8-wide mul/div/sqrt lanes, and zipping (vs
    // the oracle's indexed loop) removes the per-element bounds checks.
    // Profiling showed the update is div/sqrt-throughput-bound, so unlike
    // the matmul there is no register-tiling headroom here — the point of
    // the twin is the shared-oracle contract, not a speedup. The
    // per-element chain is the oracle's, token for token, so results stay
    // bit-identical.
    for (val, (mb, (vb, &gb))) in value
        .iter_mut()
        .zip(m.iter_mut().zip(v.iter_mut().zip(grad.iter())))
    {
        adam_one(val, mb, vb, gb, step);
    }
}

// ---------------------------------------------------------------------
// Active dispatch: lanes by default, scalar oracle under `scalar-kernels`.
// ---------------------------------------------------------------------

/// `out += a × b` with the active kernel flavor.
pub fn matmul_into(a: &[f32], rows: usize, inner: usize, b: &[f32], cols: usize, out: &mut [f32]) {
    #[cfg(feature = "scalar-kernels")]
    matmul_into_scalar(a, rows, inner, b, cols, out);
    #[cfg(not(feature = "scalar-kernels"))]
    matmul_into_lanes(a, rows, inner, b, cols, out);
}

/// In-place ReLU with the active kernel flavor.
pub fn relu(data: &mut [f32]) {
    #[cfg(feature = "scalar-kernels")]
    relu_scalar(data);
    #[cfg(not(feature = "scalar-kernels"))]
    relu_lanes(data);
}

/// `dst += src` with the active kernel flavor.
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    #[cfg(feature = "scalar-kernels")]
    add_assign_scalar(dst, src);
    #[cfg(not(feature = "scalar-kernels"))]
    add_assign_lanes(dst, src);
}

/// One Adam update with the active kernel flavor.
pub fn adam_update(value: &mut [f32], m: &mut [f32], v: &mut [f32], grad: &[f32], step: &AdamStep) {
    #[cfg(feature = "scalar-kernels")]
    adam_update_scalar(value, m, v, grad, step);
    #[cfg(not(feature = "scalar-kernels"))]
    adam_update_lanes(value, m, v, grad, step);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill(rng: &mut StdRng, n: usize, sparse: bool) -> Vec<f32> {
        (0..n)
            .map(|_| {
                if sparse && rng.gen_bool(0.4) {
                    0.0
                } else {
                    rng.gen_range(-2.0f32..2.0)
                }
            })
            .collect()
    }

    #[test]
    fn matmul_lanes_matches_scalar_bitwise_across_shapes() {
        let mut rng = StdRng::seed_from_u64(0xD15E);
        // deliberate mix of lane multiples, tails (<8, %8 != 0) and empties
        let shapes = [
            (1, 48, 48),
            (3, 5, 7),
            (2, 16, 8),
            (4, 9, 13),
            (1, 1, 1),
            (5, 8, 3),
            (0, 4, 4),
            (4, 0, 4),
            (4, 4, 0),
        ];
        for &(rows, inner, cols) in &shapes {
            for sparse in [false, true] {
                let a = fill(&mut rng, rows * inner, sparse);
                let b = fill(&mut rng, inner * cols, false);
                let mut out_s = vec![0.0f32; rows * cols];
                let mut out_l = vec![0.0f32; rows * cols];
                matmul_into_scalar(&a, rows, inner, &b, cols, &mut out_s);
                matmul_into_lanes(&a, rows, inner, &b, cols, &mut out_l);
                if cfg!(target_feature = "fma") {
                    // FMA builds fuse the lane multiply-adds, so the
                    // policy's tolerance branch applies instead of the
                    // bitwise one: ≤1e-6 relative to the accumulated
                    // magnitude Σ|a||b| (relative to the *result* would be
                    // unsound under cancellation).
                    for (idx, (s, l)) in out_s.iter().zip(&out_l).enumerate() {
                        let (r, c) = (idx / cols, idx % cols);
                        let mag: f64 = (0..inner)
                            .map(|k| {
                                f64::from(a[r * inner + k].abs()) * f64::from(b[k * cols + c].abs())
                            })
                            .sum();
                        assert!(
                            f64::from((s - l).abs()) <= 1e-6 * mag.max(1e-30),
                            "shape {rows}x{inner}x{cols} sparse={sparse}: {s} vs {l}"
                        );
                    }
                } else {
                    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(
                        bits(&out_s),
                        bits(&out_l),
                        "shape {rows}x{inner}x{cols} sparse={sparse}"
                    );
                }
            }
        }
    }

    #[test]
    fn elementwise_kernels_match_bitwise() {
        let mut rng = StdRng::seed_from_u64(0xE1E);
        for n in [0usize, 1, 7, 8, 9, 31, 64, 100] {
            let mut r_s = fill(&mut rng, n, false);
            let mut r_l = r_s.clone();
            relu_scalar(&mut r_s);
            relu_lanes(&mut r_l);
            assert_eq!(r_s, r_l, "relu n={n}");

            let src = fill(&mut rng, n, false);
            let mut d_s = fill(&mut rng, n, false);
            let mut d_l = d_s.clone();
            add_assign_scalar(&mut d_s, &src);
            add_assign_lanes(&mut d_l, &src);
            assert_eq!(d_s, d_l, "add n={n}");

            let step = AdamStep {
                lr: 1e-3,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                b1t: 1.0 - 0.9f32.powi(3),
                b2t: 1.0 - 0.999f32.powi(3),
            };
            let grad = fill(&mut rng, n, false);
            let (mut val_s, mut m_s, mut v_s) = (
                fill(&mut rng, n, false),
                fill(&mut rng, n, false),
                fill(&mut rng, n, false)
                    .iter()
                    .map(|x| x.abs())
                    .collect::<Vec<_>>(),
            );
            let (mut val_l, mut m_l, mut v_l) = (val_s.clone(), m_s.clone(), v_s.clone());
            adam_update_scalar(&mut val_s, &mut m_s, &mut v_s, &grad, &step);
            adam_update_lanes(&mut val_l, &mut m_l, &mut v_l, &grad, &step);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&val_s), bits(&val_l), "adam value n={n}");
            assert_eq!(bits(&m_s), bits(&m_l), "adam m n={n}");
            assert_eq!(bits(&v_s), bits(&v_l), "adam v n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "matmul rhs data/shape mismatch")]
    fn lane_matmul_rejects_bad_rhs_length() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 3]; // should be 2×2 = 4
        let mut out = vec![0.0f32; 4];
        matmul_into_lanes(&a, 2, 2, &b, 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "adam state length mismatch")]
    fn adam_rejects_mismatched_state() {
        let step = AdamStep {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            b1t: 0.1,
            b2t: 0.001,
        };
        let mut value = vec![0.0f32; 4];
        let mut m = vec![0.0f32; 4];
        let mut v = vec![0.0f32; 3];
        adam_update_lanes(&mut value, &mut m, &mut v, &[0.0; 4], &step);
    }
}
