//! Tapeless inference: forward passes computed directly on [`Matrix`]
//! values, with no autodiff bookkeeping.
//!
//! Training needs the [`crate::tape::Tape`] — every intermediate value has
//! to stay alive for the backward pass, and every parameter use records a
//! node (cloning the weight matrix onto the tape). Inference needs none of
//! that: what-if cost prediction in the optimizer issues hundreds of
//! forward passes per tuning call and throws every intermediate away.
//!
//! [`Scratch`] is a reusable buffer arena: matrices are taken from a free
//! list and recycled after use, so a warmed-up scratch performs a whole
//! forward pass without touching the allocator. The aggregation helpers
//! ([`mean_of`], [`weighted_sum_of`], [`concat_pair`]) mirror the
//! accumulation order of the corresponding tape ops exactly, so the
//! tapeless path reproduces the tape's `f32` results bit for bit (see the
//! equivalence proptests in [`crate::layers`] and `tests/`).

use crate::matrix::Matrix;

/// Reusable matrix-buffer arena for tapeless forward passes.
///
/// Buffers handed out by [`Scratch::zeros`] / [`Scratch::row_of`] should be
/// returned with [`Scratch::recycle`] once dead; a warmed-up arena then
/// serves every request from its free list. Dropping a buffer instead of
/// recycling it is safe — it merely costs a future allocation.
#[derive(Default)]
pub struct Scratch {
    free: Vec<Matrix>,
}

impl Scratch {
    pub fn new() -> Self {
        Scratch { free: Vec::new() }
    }

    /// A zero-filled `rows × cols` buffer.
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        match self.free.pop() {
            Some(mut m) => {
                m.rows = rows;
                m.cols = cols;
                m.data.clear();
                m.data.resize(rows * cols, 0.0);
                m
            }
            None => Matrix::zeros(rows, cols),
        }
    }

    /// A 1×n buffer holding a copy of `values`.
    pub fn row_of(&mut self, values: &[f32]) -> Matrix {
        let mut m = self.take(1, values.len());
        m.data.extend_from_slice(values);
        m
    }

    /// A buffer holding a copy of `src`.
    pub fn copy_of(&mut self, src: &Matrix) -> Matrix {
        let mut m = self.take(src.rows, src.cols);
        m.data.extend_from_slice(&src.data);
        m
    }

    /// Return a dead buffer to the free list.
    pub fn recycle(&mut self, m: Matrix) {
        self.free.push(m);
    }

    /// An empty-data buffer with the given logical shape (callers fill
    /// `data` to `rows * cols` themselves).
    fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        match self.free.pop() {
            Some(mut m) => {
                m.rows = rows;
                m.cols = cols;
                m.data.clear();
                m
            }
            None => Matrix {
                rows,
                cols,
                data: Vec::with_capacity(rows * cols),
            },
        }
    }
}

/// In-place ReLU; same values as the tape's `relu` op. Dispatches to the
/// active [`crate::kernels`] flavor (lane kernel by default, scalar oracle
/// under `scalar-kernels`) — ReLU is element-wise, so both are bitwise
/// identical.
pub fn relu_inplace(m: &mut Matrix) {
    crate::kernels::relu(&mut m.data);
}

/// Element-wise mean of `states[idx[0]], states[idx[1]], …`, mirroring
/// `Tape::mean_vars`: copy the first input, add the rest, scale by `1/n`.
pub fn mean_of(states: &[Matrix], idx: &[usize], scratch: &mut Scratch) -> Matrix {
    assert!(!idx.is_empty());
    let mut out = scratch.copy_of(&states[idx[0]]);
    for &i in &idx[1..] {
        out.add_assign(&states[i]);
    }
    let s = 1.0 / idx.len() as f32;
    for v in &mut out.data {
        *v *= s;
    }
    out
}

/// Element-wise weighted sum of `states[i] · w` over `terms`, mirroring
/// `Tape::weighted_sum`: scale the first term, then add each scaled term.
pub fn weighted_sum_of(states: &[Matrix], terms: &[(usize, f32)], scratch: &mut Scratch) -> Matrix {
    assert!(!terms.is_empty());
    let (i0, w0) = terms[0];
    let first = &states[i0];
    let mut out = scratch.take(first.rows, first.cols);
    out.data.extend(first.data.iter().map(|&v| v * w0));
    for &(i, w) in &terms[1..] {
        for (o, &v) in out.data.iter_mut().zip(states[i].data.iter()) {
            *o += v * w;
        }
    }
    out
}

/// Horizontal concatenation of two single-row matrices (`Tape::concat_cols`
/// restricted to the shapes the GNN uses).
pub fn concat_pair(a: &Matrix, b: &Matrix, scratch: &mut Scratch) -> Matrix {
    assert_eq!(a.rows, 1, "concat_pair expects row vectors");
    assert_eq!(b.rows, 1, "concat_pair expects row vectors");
    let mut out = scratch.take(1, a.cols + b.cols);
    out.data.extend_from_slice(&a.data);
    out.data.extend_from_slice(&b.data);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    #[test]
    fn scratch_reuses_buffers() {
        let mut s = Scratch::new();
        let a = s.zeros(2, 3);
        let ptr = a.data.as_ptr();
        s.recycle(a);
        let b = s.zeros(3, 2); // smaller or equal capacity: same allocation
        assert_eq!(b.data.as_ptr(), ptr);
        assert_eq!(b.shape(), (3, 2));
        assert!(b.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn aggregations_match_tape_ops() {
        let states = vec![
            Matrix::row(&[1.0, -2.0, 0.5]),
            Matrix::row(&[0.25, 4.0, -1.0]),
            Matrix::row(&[3.0, 0.0, 7.0]),
        ];
        let mut scratch = Scratch::new();
        let mut tape = Tape::new();
        let vars: Vec<_> = states.iter().map(|m| tape.leaf(m.clone())).collect();

        let m = mean_of(&states, &[0, 1, 2], &mut scratch);
        let mv = tape.mean_vars(&vars);
        assert_eq!(m.data, tape.value(mv).data);

        let w = weighted_sum_of(&states, &[(0, 0.3), (2, -1.7)], &mut scratch);
        let wv = tape.weighted_sum(&[(vars[0], 0.3), (vars[2], -1.7)]);
        assert_eq!(w.data, tape.value(wv).data);

        let c = concat_pair(&states[0], &states[1], &mut scratch);
        let cv = tape.concat_cols(&[vars[0], vars[1]]);
        assert_eq!(c.data, tape.value(cv).data);
    }

    #[test]
    fn relu_matches_tape() {
        let mut m = Matrix::row(&[-1.0, 0.0, 2.5]);
        relu_inplace(&mut m);
        assert_eq!(m.data, vec![0.0, 0.0, 2.5]);
    }
}
