//! Finite-difference gradient verification.
//!
//! Every model in the workspace is checked end-to-end against central
//! finite differences: for a loss `L(θ)`, the analytic gradient from
//! [`crate::tape::Tape::backward`] must match
//! `(L(θ+ε) − L(θ−ε)) / 2ε` on every coordinate.

use crate::layers::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// Result of a gradient check.
#[derive(Clone, Debug)]
pub struct GradCheckReport {
    /// Worst relative error over all checked coordinates.
    pub max_rel_error: f64,
    /// Coordinates checked.
    pub checked: usize,
    /// All relative errors (one per checked coordinate).
    pub errors: Vec<f64>,
}

impl GradCheckReport {
    /// Fraction of checked coordinates whose relative error exceeds
    /// `threshold`. ReLU networks have kinks where central differences
    /// straddle the non-differentiability, so a tiny fraction of large
    /// discrepancies is expected; systematic gradient bugs show up as a
    /// large fraction.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().filter(|&&e| e > threshold).count() as f64 / self.errors.len() as f64
    }

    /// Median relative error over checked coordinates.
    pub fn median_rel_error(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        let mut v = self.errors.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
        v[v.len() / 2]
    }
}

/// Check analytic gradients of `loss_fn` against central differences.
///
/// `loss_fn` must build the full forward computation on the supplied tape
/// and return the scalar loss node. `eps` is the perturbation size
/// (`1e-2` works well for `f32`); coordinates where both gradients are
/// tiny are skipped.
pub fn check_gradients<F>(
    store: &mut ParamStore,
    mut loss_fn: F,
    eps: f32,
    max_coords_per_param: usize,
) -> GradCheckReport
where
    F: FnMut(&mut Tape, &ParamStore) -> Var,
{
    // Analytic pass.
    let mut tape = Tape::new();
    let loss = loss_fn(&mut tape, store);
    store.zero_grad();
    tape.backward(loss, store);
    let analytic: Vec<(ParamId, Vec<f32>)> = store
        .ids()
        .map(|id| (id, store.grad(id).data.clone()))
        .collect();

    let mut max_rel_error = 0f64;
    let mut checked = 0usize;
    let mut errors = Vec::new();

    for (id, grads) in &analytic {
        let n = grads.len();
        let step = (n / max_coords_per_param.max(1)).max(1);
        for i in (0..n).step_by(step) {
            let mut central_diff = |eps: f32| {
                let orig = store.value(*id).data[i];

                store.value_mut(*id).data[i] = orig + eps;
                let mut t_plus = Tape::new();
                let l_plus = loss_fn(&mut t_plus, store);
                let f_plus = t_plus.scalar_value(l_plus) as f64;

                store.value_mut(*id).data[i] = orig - eps;
                let mut t_minus = Tape::new();
                let l_minus = loss_fn(&mut t_minus, store);
                let f_minus = t_minus.scalar_value(l_minus) as f64;

                store.value_mut(*id).data[i] = orig;
                (f_plus - f_minus) / (2.0 * eps as f64)
            };

            let a = grads[i] as f64;
            let rel_at = |numeric: f64| {
                let scale = a.abs().max(numeric.abs());
                (scale >= 1e-4).then(|| (a - numeric).abs() / scale)
            };

            let Some(mut rel) = rel_at(central_diff(eps)) else {
                continue; // both ~zero: nothing to compare against
            };
            if rel > 0.02 {
                // The perturbation may have crossed a ReLU kink, where a
                // central difference is meaningless. A genuine gradient bug
                // stays wrong at any step size, so retry with a smaller one
                // and keep the better estimate.
                if let Some(rel_small) = rel_at(central_diff(eps / 8.0)) {
                    rel = rel.min(rel_small);
                }
            }
            max_rel_error = max_rel_error.max(rel);
            errors.push(rel);
            checked += 1;
        }
    }

    GradCheckReport {
        max_rel_error,
        checked,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Mlp;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[4, 8, 2], &mut rng);
        let x = Matrix::row(&[0.3, -0.7, 1.2, 0.1]);
        let y = Matrix::row(&[0.5, -0.2]);

        let report = check_gradients(
            &mut store,
            |tape, store| {
                let xv = tape.leaf(x.clone());
                let out = mlp.forward(tape, store, xv);
                let target = tape.leaf(y.clone());
                tape.mse_loss(out, target)
            },
            1e-2,
            16,
        );
        assert!(report.checked > 10, "too few coordinates checked");
        assert!(
            report.max_rel_error < 0.03,
            "gradient mismatch: {}",
            report.max_rel_error
        );
    }

    #[test]
    fn composite_ops_gradients_match() {
        // Exercise concat, mean, tanh and weighted sum in one graph.
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let enc_a = Mlp::new(&mut store, "a", &[2, 4], &mut rng);
        let enc_b = Mlp::new(&mut store, "b", &[3, 4], &mut rng);
        let head = Mlp::new(&mut store, "h", &[8, 4, 1], &mut rng);
        let xa = Matrix::row(&[0.2, -0.4]);
        let xb = Matrix::row(&[1.0, 0.5, -0.3]);

        let report = check_gradients(
            &mut store,
            |tape, store| {
                let a_in = tape.leaf(xa.clone());
                let b_in = tape.leaf(xb.clone());
                let ha = enc_a.forward(tape, store, a_in);
                let hb = enc_b.forward(tape, store, b_in);
                let ha_t = tape.tanh(ha);
                let mean = tape.mean_vars(&[ha_t, hb]);
                let weighted = tape.weighted_sum(&[(mean, 0.7), (hb, 0.3)]);
                let cat = tape.concat_cols(&[weighted, hb]);
                let out = head.forward(tape, store, cat);
                let target = tape.leaf(Matrix::scalar(0.25));
                tape.mse_loss(out, target)
            },
            1e-2,
            8,
        );
        assert!(report.checked > 10);
        assert!(
            report.max_rel_error < 0.05,
            "gradient mismatch: {}",
            report.max_rel_error
        );
    }
}
