//! Bench target regenerating Fig. 11 (transferable-feature ablation).
//!
//! Run: `cargo bench --bench fig11_ablation`

fn main() {
    let scale = zt_bench::bench_scale();
    eprintln!("[bench] Fig. 11 at scale `{}`", scale.name);
    let start = std::time::Instant::now();
    let result = zt_experiments::exp6::run(&scale);
    zt_experiments::exp6::print(&result);
    println!("fig11_ablation: {:.1}s", start.elapsed().as_secs_f64());
}
