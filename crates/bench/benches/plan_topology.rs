//! Criterion microbenches for the sealed plan IR's topology hot paths.
//!
//! The solver, bounds analysis and optimizer all hammer `upstream` /
//! `downstream` / `topo_order` in their inner loops. Before the IR these
//! were `O(E)` edge-list scans (and a full Kahn run per `topo_order`
//! call) that allocated a fresh `Vec` per query; on a sealed [`PlanIr`]
//! they are zero-allocation CSR slice lookups. The `slow_*` / `ir_*`
//! pairs below measure exactly that before/after on a deep (depth-12
//! chain) and a wide (32-branch fan-out) plan; see
//! `results/BENCH_tune_scale.json` for the tune-candidates/sec impact.

use criterion::{criterion_group, criterion_main, Criterion};
use zt_query::operators::SinkOp;
use zt_query::{
    DataType, FilterFunction, FilterOp, LogicalPlan, OperatorKind, SourceOp, TupleSchema,
};

/// A linear chain: source → (depth-2 filters) → sink.
fn deep_plan(depth: usize) -> LogicalPlan {
    let mut p = LogicalPlan::new("deep");
    let mut prev = p.add(OperatorKind::Source(SourceOp {
        event_rate: 10_000.0,
        schema: TupleSchema::uniform(DataType::Double, 3),
        key_cardinality: None,
    }));
    for _ in 0..depth.saturating_sub(2) {
        let f = p.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Double,
            selectivity: 0.9,
        }));
        p.connect(prev, f);
        prev = f;
    }
    let k = p.add(OperatorKind::Sink(SinkOp));
    p.connect(prev, k);
    p
}

/// A multi-sink fan-out: source → `width` parallel filter branches, each
/// terminating in its own sink (sinks accept exactly one input).
fn wide_plan(width: usize) -> LogicalPlan {
    let mut p = LogicalPlan::new("wide");
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate: 10_000.0,
        schema: TupleSchema::uniform(DataType::Double, 3),
        key_cardinality: None,
    }));
    for _ in 0..width {
        let f = p.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Double,
            selectivity: 0.9,
        }));
        let k = p.add(OperatorKind::Sink(SinkOp));
        p.connect(s, f);
        p.connect(f, k);
    }
    p
}

fn bench_neighbors(c: &mut Criterion) {
    for (label, plan) in [("deep12", deep_plan(12)), ("wide32", wide_plan(32))] {
        let ir = plan.validate().expect("valid bench plan");
        let ids: Vec<_> = plan.ops().iter().map(|o| o.id).collect();

        c.bench_function(&format!("{label}/slow_upstream_downstream"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &id in &ids {
                    acc += plan.upstream(std::hint::black_box(id)).len();
                    acc += plan.downstream(std::hint::black_box(id)).len();
                }
                acc
            });
        });
        c.bench_function(&format!("{label}/ir_upstream_downstream"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &id in &ids {
                    acc += ir.upstream(std::hint::black_box(id)).len();
                    acc += ir.downstream(std::hint::black_box(id)).len();
                }
                acc
            });
        });

        c.bench_function(&format!("{label}/slow_topo_order"), |b| {
            b.iter(|| plan.topo_order().expect("acyclic").len());
        });
        c.bench_function(&format!("{label}/ir_topo_order"), |b| {
            b.iter(|| ir.topo_order().len());
        });

        c.bench_function(&format!("{label}/seal"), |b| {
            b.iter(|| plan.validate().expect("valid bench plan").num_ops());
        });
        c.bench_function(&format!("{label}/fingerprint"), |b| {
            b.iter(|| plan.validate().expect("valid bench plan").fingerprint());
        });
    }
}

criterion_group!(benches, bench_neighbors);
criterion_main!(benches);
