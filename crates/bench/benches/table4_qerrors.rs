//! Bench target regenerating Table IV (q-errors on seen / unseen /
//! benchmark workloads) at the bench scale.
//!
//! Run: `cargo bench --bench table4_qerrors`
//! (set `ZT_BENCH_SCALE=standard|full` for larger runs)

fn main() {
    let scale = zt_bench::bench_scale();
    eprintln!("[bench] Table IV at scale `{}`", scale.name);
    let start = std::time::Instant::now();
    let result = zt_experiments::exp1::run(&scale);
    zt_experiments::exp1::print(&result);
    println!("table4_qerrors: {:.1}s", start.elapsed().as_secs_f64());
}
