//! Criterion microbenches for the performance-critical paths:
//!
//! * `analytical_simulate` — the steady-state solver labeling one plan
//!   (the throughput of training-data generation).
//! * `graph_encode` — featurization + graph construction.
//! * `gnn_inference` — one what-if cost prediction (the optimizer issues
//!   dozens per tuning call).
//! * `gnn_train_step` — forward + backward + Adam on one graph.
//! * `optimizer_tune` — a full parallelism-tuning call.
//! * `discrete_event_engine` — one short engine run.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zt_core::dataset::{generate_dataset, GenConfig};
use zt_core::features::FeatureMask;
use zt_core::graph::encode;
use zt_core::model::{ModelConfig, ZeroTuneModel};
use zt_core::optimizer::{tune, OptimizerConfig};
use zt_core::CostEstimator;
use zt_dspsim::analytical::{simulate, SimConfig};
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_dspsim::engine::{run as engine_run, EngineConfig};
use zt_dspsim::ChainingMode;
use zt_nn::{Adam, Matrix, Optimizer, Tape};
use zt_query::{ParallelQueryPlan, QueryGenerator, QueryStructure};

fn fixture() -> (ParallelQueryPlan, Cluster) {
    let mut rng = StdRng::seed_from_u64(7);
    let plan = QueryGenerator::seen().generate(QueryStructure::TwoWayJoin, &mut rng);
    let n = plan.num_ops();
    let pqp = ParallelQueryPlan::with_parallelism(plan, vec![4; n]);
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    (pqp, cluster)
}

fn bench_simulate(c: &mut Criterion) {
    let (pqp, cluster) = fixture();
    let cfg = SimConfig::default();
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("analytical_simulate", |b| {
        b.iter(|| simulate(std::hint::black_box(&pqp), &cluster, &cfg, &mut rng));
    });
}

fn bench_encode(c: &mut Criterion) {
    let (pqp, cluster) = fixture();
    let mask = FeatureMask::all();
    c.bench_function("graph_encode", |b| {
        b.iter(|| {
            encode(
                std::hint::black_box(&pqp),
                &cluster,
                ChainingMode::Auto,
                &mask,
            )
        });
    });
}

fn bench_inference(c: &mut Criterion) {
    let (pqp, cluster) = fixture();
    let graph = encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all());
    let model = ZeroTuneModel::new(ModelConfig::default());
    c.bench_function("gnn_inference", |b| {
        b.iter(|| model.predict(std::hint::black_box(&graph)));
    });
}

fn bench_train_step(c: &mut Criterion) {
    let (pqp, cluster) = fixture();
    let graph = encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all());
    let mut model = ZeroTuneModel::new(ModelConfig::default());
    let mut opt = Adam::new(1e-3);
    c.bench_function("gnn_train_step", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let out = model.forward(&mut tape, &graph);
            let t = tape.leaf(Matrix::row(&[0.1, -0.2]));
            let loss = tape.mse_loss(out, t);
            model.store.zero_grad();
            tape.backward(loss, &mut model.store);
            opt.step(&mut model.store);
        });
    });
}

fn bench_tune(c: &mut Criterion) {
    let data = generate_dataset(&GenConfig::seen(), 60, 1);
    let mut model = ZeroTuneModel::new(ModelConfig {
        hidden: 24,
        seed: 1,
    });
    zt_core::train::train(
        &mut model,
        &data,
        &zt_core::train::TrainConfig {
            epochs: 4,
            patience: 0,
            ..Default::default()
        },
    );
    let (pqp, cluster) = fixture();
    let cfg = OptimizerConfig::default();
    c.bench_function("optimizer_tune", |b| {
        b.iter(|| tune(&model, std::hint::black_box(&pqp.plan), &cluster, &cfg).expect("valid"));
    });
}

fn bench_engine(c: &mut Criterion) {
    let (pqp, cluster) = fixture();
    let cfg = EngineConfig {
        horizon_secs: 0.5,
        target_emissions: 200,
        ..EngineConfig::default()
    };
    c.bench_function("discrete_event_engine", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            engine_run(std::hint::black_box(&pqp), &cluster, &cfg, &mut rng)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_simulate, bench_encode, bench_inference, bench_train_step, bench_tune, bench_engine
}
criterion_main!(benches);
