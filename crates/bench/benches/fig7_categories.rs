//! Bench target regenerating Fig. 7a–d (q-errors per parallelism
//! category).
//!
//! Run: `cargo bench --bench fig7_categories`

fn main() {
    let scale = zt_bench::bench_scale();
    eprintln!("[bench] Fig. 7 at scale `{}`", scale.name);
    let start = std::time::Instant::now();
    let result = zt_experiments::exp2::run(&scale);
    zt_experiments::exp2::print(&result);
    println!("fig7_categories: {:.1}s", start.elapsed().as_secs_f64());
}
