//! Certification-cost microbenches: how long does interval bound
//! propagation take as the network grows?
//!
//! Two axes:
//!
//! * `certify_mlp/h{W}xl{L}` — one MLP certificate (interval matmul +
//!   ReLU + rounding pads) as hidden width `W` and hidden layer count
//!   `L` scale. The kernel is O(L · W²) like inference itself, plus the
//!   O(in · W²) sensitivity products.
//! * `certify_model/hidden{W}` — the full GNN certificate
//!   (`zt_core::certify_model` at the default config: all six encoders,
//!   three update networks, both readout heads unrolled to depth 16,
//!   plus the fresh-reference propagation that calibrates ZT601).
//!
//! This is the cost a `/swap` pays at the certification gate, so the
//! absolute numbers matter operationally: they bound hot-swap latency.
//! `bench_certify` (zt-experiments) records the same sweep to
//! `results/BENCH_certify.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zt_core::certify::{certify_model, CertifyConfig};
use zt_core::features::{FEATURE_MAX, FEATURE_MIN};
use zt_core::model::{ModelConfig, ZeroTuneModel};
use zt_nn::certify::{certify_mlp, IntervalVec};
use zt_nn::{Mlp, ParamStore};

const IN_DIM: usize = 26;

fn bench_certify_mlp(c: &mut Criterion) {
    for &(hidden, layers) in &[(8usize, 1usize), (32, 1), (32, 3), (64, 3)] {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut dims = vec![IN_DIM];
        dims.extend(std::iter::repeat_n(hidden, layers));
        dims.push(2);
        let mlp = Mlp::new(&mut store, "m", &dims, &mut rng);
        let input = IntervalVec::uniform(IN_DIM, f64::from(FEATURE_MIN), f64::from(FEATURE_MAX));
        c.bench_function(&format!("certify_mlp_h{hidden}xl{layers}"), |b| {
            b.iter(|| certify_mlp(&store, &mlp, &input));
        });
    }
}

fn bench_certify_model(c: &mut Criterion) {
    let cfg = CertifyConfig::default();
    for &hidden in &[16usize, 48] {
        let model = ZeroTuneModel::new(ModelConfig { hidden, seed: 7 });
        c.bench_function(&format!("certify_model_hidden{hidden}"), |b| {
            b.iter(|| certify_model(&model, &cfg).expect("fresh model certifies"));
        });
    }
}

criterion_group!(benches, bench_certify_mlp, bench_certify_model);
criterion_main!(benches);
