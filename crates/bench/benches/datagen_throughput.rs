//! Data-generation throughput microbenches for the sharded pipeline:
//!
//! * `datagen_serial_256` — one shard generated on the calling thread
//!   (the legacy single-threaded path).
//! * `datagen_sharded_256` — the same request through the sharded
//!   scoped-thread pipeline at the machine's worker count.
//! * `datagen_cached_repeats` — a repeat-heavy OptiSample-style request
//!   with the simulator memo attached: nearby scaling-factor draws clamp
//!   to identical parallelism vectors, so most labels are cache hits.
//!
//! After the criterion timings, a summary reports samples/sec for the
//! serial and sharded paths at 1..=8 workers, plus the cache hit rate of
//! the memoized run. On a multi-core machine the sharded path scales with
//! the worker count (output is bitwise identical either way); on a
//! single-core machine the cached path is the one that shows the win.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use zt_core::datagen::{generate_dataset_report, GenPlan};
use zt_core::dataset::GenConfig;
use zt_dspsim::SimCache;

const N: usize = 256;
const SEED: u64 = 0xBE7C;

fn bench_serial(c: &mut Criterion) {
    let cfg = GenConfig::seen();
    c.bench_function("datagen_serial_256", |b| {
        b.iter(|| {
            let (data, _) =
                generate_dataset_report(&cfg, N, SEED, &GenPlan::serial().with_shard_size(64));
            std::hint::black_box(data.len())
        });
    });
}

fn bench_sharded(c: &mut Criterion) {
    let cfg = GenConfig::seen();
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZero::get)
        .clamp(1, 8);
    let plan = GenPlan::serial().with_workers(workers).with_shard_size(64);
    c.bench_function("datagen_sharded_256", |b| {
        b.iter(|| {
            let (data, _) = generate_dataset_report(&cfg, N, SEED, &plan);
            std::hint::black_box(data.len())
        });
    });
}

fn bench_cached(c: &mut Criterion) {
    // OptiSample's factored enumeration clamps nearby scaling factors to
    // the same parallelism vector, so the solver sees heavy repetition.
    let cache = Arc::new(SimCache::default());
    let cfg = GenConfig::seen().with_cache(Arc::clone(&cache));
    c.bench_function("datagen_cached_repeats", |b| {
        b.iter(|| {
            let (data, _) =
                generate_dataset_report(&cfg, N, SEED, &GenPlan::serial().with_shard_size(64));
            std::hint::black_box(data.len())
        });
    });
}

/// Samples/sec at 1..=8 workers plus the cache hit rate, printed after
/// the criterion timings.
fn throughput_summary(_c: &mut Criterion) {
    let cfg = GenConfig::seen();
    let time = |plan: &GenPlan| {
        let t0 = std::time::Instant::now();
        let (data, _) = generate_dataset_report(&cfg, N, SEED, plan);
        assert_eq!(data.len(), N);
        t0.elapsed().as_secs_f64()
    };
    // warm-up
    std::hint::black_box(time(&GenPlan::serial()));

    let serial = time(&GenPlan::serial().with_shard_size(64));
    println!();
    println!(
        "datagen serial:        {:>8.0} samples/sec",
        N as f64 / serial
    );
    for workers in [2usize, 4, 8] {
        let t = time(&GenPlan::serial().with_workers(workers).with_shard_size(64));
        println!(
            "datagen {workers} workers:     {:>8.0} samples/sec ({:.2}x vs serial)",
            N as f64 / t,
            serial / t
        );
    }

    let cache = Arc::new(SimCache::default());
    let cached_cfg = GenConfig::seen().with_cache(Arc::clone(&cache));
    let t0 = std::time::Instant::now();
    let (data, _) =
        generate_dataset_report(&cached_cfg, N, SEED, &GenPlan::serial().with_shard_size(64));
    let first = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let (again, _) =
        generate_dataset_report(&cached_cfg, N, SEED, &GenPlan::serial().with_shard_size(64));
    let warm = t1.elapsed().as_secs_f64();
    assert_eq!(data.len(), again.len());
    let stats = cache.stats();
    println!(
        "datagen warm cache:    {:>8.0} samples/sec ({:.2}x vs cold, hit rate {:.0}%)",
        N as f64 / warm,
        first / warm,
        stats.hit_rate() * 100.0
    );
}

criterion_group!(
    benches,
    bench_serial,
    bench_sharded,
    bench_cached,
    throughput_summary
);
criterion_main!(benches);
