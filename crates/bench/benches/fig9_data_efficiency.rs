//! Bench target regenerating Fig. 9a–b (OptiSample vs random data
//! efficiency).
//!
//! Run: `cargo bench --bench fig9_data_efficiency`

fn main() {
    let scale = zt_bench::bench_scale();
    eprintln!("[bench] Fig. 9 at scale `{}`", scale.name);
    let start = std::time::Instant::now();
    let result = zt_experiments::exp4::run(&scale);
    zt_experiments::exp4::print(&result);
    println!(
        "fig9_data_efficiency: {:.1}s",
        start.elapsed().as_secs_f64()
    );
}
